//! Proficiency / pricing / latency presets for the simulated LLMs.

use sage_eval::PriceTable;

/// Behavioural parameters of one simulated LLM.
///
/// The four presets are calibrated so the *orderings* the paper reports
/// hold: GPT-4 > GPT-4o-mini > GPT-3.5-turbo > UnifiedQA-3B in QA quality
/// (§VIII insight 3, Table XII), with prices and generation speeds taken
/// from public figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlmProfile {
    /// Display name for tables.
    pub name: &'static str,
    /// API pricing (Eq. 1).
    pub prices: PriceTable,
    /// In `[0, 1]`: how strongly entity grounding outweighs mere topical
    /// overlap. High resistance ⇒ distractor chunks rarely win.
    pub distractor_resistance: f32,
    /// Softmax temperature for candidate/option sampling. Lower ⇒ closer
    /// to argmax ⇒ fewer noise-induced errors.
    pub temperature: f32,
    /// In `[0, 1]`: probability the model correctly applies elimination
    /// reasoning on "which was NOT…" questions.
    pub elimination_skill: f32,
    /// Output tokens per second (latency simulation for Tables VIII/IX).
    pub tokens_per_second: f64,
    /// Fixed per-call latency overhead in seconds (network + prefill).
    pub base_latency_s: f64,
    /// Minimum candidate score below which the model answers
    /// "unanswerable" instead of guessing.
    pub answer_threshold: f32,
}

impl LlmProfile {
    /// GPT-4 analog: strongest reader, most expensive.
    pub fn gpt4() -> Self {
        Self {
            name: "GPT-4(sim)",
            prices: PriceTable::gpt4(),
            distractor_resistance: 0.95,
            temperature: 0.12,
            elimination_skill: 0.9,
            tokens_per_second: 35.0,
            base_latency_s: 1.6,
            answer_threshold: 0.55,
        }
    }

    /// GPT-4o-mini analog: near-GPT-4 quality at a fraction of the price.
    pub fn gpt4o_mini() -> Self {
        Self {
            name: "GPT-4o-mini(sim)",
            prices: PriceTable::gpt4o_mini(),
            distractor_resistance: 0.85,
            temperature: 0.2,
            elimination_skill: 0.8,
            tokens_per_second: 90.0,
            base_latency_s: 1.4,
            answer_threshold: 0.55,
        }
    }

    /// GPT-3.5-turbo analog: noticeably weaker grounding.
    pub fn gpt35_turbo() -> Self {
        Self {
            name: "GPT-3.5-turbo(sim)",
            prices: PriceTable::gpt35_turbo(),
            distractor_resistance: 0.5,
            temperature: 0.45,
            elimination_skill: 0.5,
            tokens_per_second: 70.0,
            base_latency_s: 1.3,
            answer_threshold: 0.5,
        }
    }

    /// UnifiedQA-3B analog: a small local QA model — free, fast to first
    /// token, weakest reader.
    pub fn unifiedqa_3b() -> Self {
        Self {
            name: "UnifiedQA-3B(sim)",
            prices: PriceTable::free(),
            distractor_resistance: 0.35,
            temperature: 0.6,
            elimination_skill: 0.3,
            tokens_per_second: 60.0,
            base_latency_s: 0.9,
            answer_threshold: 0.45,
        }
    }

    /// Entity-grounding weight used by the reader's sentence scoring.
    pub fn entity_weight(&self) -> f32 {
        1.0 + 2.0 * self.distractor_resistance
    }

    /// Simulated wall-clock latency for a call emitting `output_tokens`.
    pub fn call_latency(&self, output_tokens: usize) -> std::time::Duration {
        let secs = self.base_latency_s + output_tokens as f64 / self.tokens_per_second;
        std::time::Duration::from_secs_f64(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proficiency_ordering() {
        let g4 = LlmProfile::gpt4();
        let mini = LlmProfile::gpt4o_mini();
        let g35 = LlmProfile::gpt35_turbo();
        let uq = LlmProfile::unifiedqa_3b();
        assert!(g4.distractor_resistance > mini.distractor_resistance);
        assert!(mini.distractor_resistance > g35.distractor_resistance);
        assert!(g35.distractor_resistance > uq.distractor_resistance);
        assert!(g4.temperature < mini.temperature);
        assert!(mini.temperature < g35.temperature);
        assert!(g35.temperature < uq.temperature);
        assert!(g4.elimination_skill > uq.elimination_skill);
    }

    #[test]
    fn price_ordering() {
        let cost = |p: PriceTable| p.input_per_token;
        assert!(cost(LlmProfile::gpt4().prices) > cost(LlmProfile::gpt35_turbo().prices));
        assert!(
            cost(LlmProfile::gpt35_turbo().prices) > cost(LlmProfile::gpt4o_mini().prices)
        );
        assert_eq!(cost(LlmProfile::unifiedqa_3b().prices), 0.0);
    }

    #[test]
    fn latency_grows_with_output() {
        let p = LlmProfile::gpt4o_mini();
        assert!(p.call_latency(100) > p.call_latency(10));
        assert!(p.call_latency(0).as_secs_f64() >= p.base_latency_s);
    }

    #[test]
    fn entity_weight_monotone_in_resistance() {
        assert!(LlmProfile::gpt4().entity_weight() > LlmProfile::unifiedqa_3b().entity_weight());
    }
}
