//! The simulated reader: candidate extraction + temperature sampling.

// sage-lint: allow-file(panic-reachability) - candidate and option vectors are checked non-empty before head indexing in each scoring branch; pool ids are phrase-table positions

// sage-lint: allow-file(deterministic-iteration) - sets here are membership guards and the candidate map is drained into a Vec that is fully sorted (score, then lexicographic) before any sampling; the expectations map is get()-only

use crate::profile::LlmProfile;
use crate::prompt::{mc_prompt, open_prompt, prompt_tokens};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sage_corpus::datasets::{wiki, SizeConfig};
use sage_eval::Cost;
use sage_text::ngram::fnv1a;
use sage_text::{count_tokens, is_stopword, split_sentences, stem, tokenize, Vocab};
use std::collections::HashSet;
use std::sync::OnceLock;
use std::time::Duration;

/// The reader's answer plus bookkeeping.
#[derive(Debug, Clone)]
pub struct Answer {
    /// Answer text (a short phrase, an option text, or "unanswerable").
    pub text: String,
    /// Reader confidence in `[0, 1]` (margin-based).
    pub confidence: f32,
    /// Token usage of this one call.
    pub cost: Cost,
    /// Simulated wall-clock latency of the call.
    pub latency: Duration,
}

impl Answer {
    /// Structural validity: what a transport-level response check can see.
    /// A truncated or corrupt reader response (empty text, non-finite or
    /// out-of-range confidence) fails this; every answer the simulated
    /// reader produces organically passes it.
    pub fn is_wellformed(&self) -> bool {
        !self.text.is_empty()
            && self.confidence.is_finite()
            && (0.0..=1.0).contains(&self.confidence)
    }
}

/// Subject pronouns that trigger in-chunk coreference credit.
const PRONOUNS: &[&str] = &["he", "she", "it", "his", "her", "its", "they", "their"];

/// Background IDF statistics standing in for the model's language prior:
/// informative (rare) words make better answers than template/function
/// words. Built once from a fixed synthetic sample.
fn language_prior() -> &'static Vocab {
    static PRIOR: OnceLock<Vocab> = OnceLock::new();
    PRIOR.get_or_init(|| {
        let ds = wiki::generate(SizeConfig { num_docs: 30, questions_per_doc: 0, seed: 0x1D1 });
        let mut vocab = Vocab::new();
        for doc in &ds.documents {
            for para in &doc.paragraphs {
                for sentence in split_sentences(para) {
                    let ids: Vec<u32> =
                        tokenize(&sentence).iter().map(|t| vocab.intern(&stem(t))).collect();
                    vocab.record_document(&ids);
                }
            }
        }
        vocab
    })
}

/// World-knowledge table: the reader knows what *kind* of phrase answers a
/// question ("what color" expects a color, "where" expects a place) — the
/// lexical-semantics knowledge every real LLM has. Maps question stems to
/// the value pools they select, plus membership sets for the pools.
struct TypeLexicon {
    /// question stem → pool ids it selects.
    expectations: std::collections::HashMap<&'static str, Vec<usize>>,
    /// full lowercase phrases per pool.
    phrases: Vec<HashSet<String>>,
    /// individual tokens per pool.
    tokens: Vec<HashSet<String>>,
    /// Relation-synonym classes (as stem sets): "born"/"childhood" is one
    /// relation, "lives"/"settled" another. Lets the reader distinguish
    /// same-pool relations (both answer with a place) the way a competent
    /// LLM does.
    relation_classes: Vec<HashSet<String>>,
}

fn type_lexicon() -> &'static TypeLexicon {
    use sage_corpus::facts::Pool;
    static LEX: OnceLock<TypeLexicon> = OnceLock::new();
    LEX.get_or_init(|| {
        let pools = [
            Pool::Colors,
            Pool::Places,
            Pool::Professions,
            Pool::Foods,
            Pool::Technologies,
            Pool::Instruments,
            Pool::Animals,
        ];
        let mut phrases = Vec::new();
        let mut tokens = Vec::new();
        for pool in pools {
            let mut ph = HashSet::new();
            let mut tk = HashSet::new();
            for w in pool.words() {
                ph.insert(w.to_lowercase());
                for t in tokenize(w) {
                    tk.insert(t);
                }
            }
            phrases.push(ph);
            tokens.push(tk);
        }
        // Indices into `pools` above.
        const COLORS: usize = 0;
        const PLACES: usize = 1;
        const PROFESSIONS: usize = 2;
        const FOODS: usize = 3;
        const TECH: usize = 4;
        const INSTRUMENTS: usize = 5;
        const ANIMALS: usize = 6;
        let mut expectations: std::collections::HashMap<&'static str, Vec<usize>> =
            std::collections::HashMap::new();
        for (stem_key, pool) in [
            ("color", COLORS),
            ("eye", COLORS),
            ("fur", COLORS),
            ("live", PLACES),
            ("born", PLACES),
            ("town", PLACES),
            ("profession", PROFESSIONS),
            ("trade", PROFESSIONS),
            ("liv", PROFESSIONS), // stem of "living" ("do for a living")
            ("food", FOODS),
            ("eat", FOODS),
            ("instrument", INSTRUMENTS),
            ("plai", INSTRUMENTS), // stem of "play(s)"
            ("device", TECH),
            ("develop", TECH),
            ("built", TECH),
            ("animal", ANIMALS),
            ("pet", ANIMALS),
            ("keep", ANIMALS),
        ] {
            expectations.entry(stem_key).or_default().push(pool);
        }
        let relation_surface: &[&[&str]] = &[
            &["born", "childhood"],
            &["lives", "live", "settled", "settle", "house", "town"],
            &["profession", "trade", "works", "work", "earns", "earning", "living"],
            &["food", "eat", "eats", "eating", "begs", "turns", "favorite"],
            &["eyes", "eye", "glow"],
            &["fur", "coat"],
            &["plays", "play", "practices", "practice", "instrument"],
            &["developed", "develop", "built", "invented", "invent", "device", "workbench"],
            &["keeps", "keep", "care", "animal", "pet"],
        ];
        let relation_classes = relation_surface
            .iter()
            .map(|words| words.iter().map(|w| stem(w)).collect::<HashSet<String>>())
            .collect();
        TypeLexicon { expectations, phrases, tokens, relation_classes }
    })
}

/// Classes (indices into `relation_classes`) touched by a stem set.
fn relation_classes_of(stems: &HashSet<String>) -> Vec<usize> {
    let lex = type_lexicon();
    lex.relation_classes
        .iter()
        .enumerate()
        .filter(|(_, class)| class.iter().any(|c| stems.contains(c)))
        .map(|(i, _)| i)
        .collect()
}

/// Analysis of the question: entity terms, content stems, negation flag.
struct QuestionInfo {
    entity_terms: HashSet<String>,
    content_stems: HashSet<String>,
    negation: bool,
    /// Value pools the answer is expected to come from (empty = no
    /// expectation).
    expected_pools: Vec<usize>,
}

fn strip_possessive(token: &str) -> &str {
    token.strip_suffix("'s").unwrap_or_else(|| token.strip_suffix('\'').unwrap_or(token))
}

fn analyze_question(question: &str) -> QuestionInfo {
    let mut entity_terms = HashSet::new();
    for word in question.split_whitespace() {
        if word.chars().next().is_some_and(char::is_uppercase) {
            let cleaned = word.trim_matches(|c: char| !c.is_alphanumeric() && c != '\'');
            let lower = cleaned.to_lowercase();
            let base = strip_possessive(&lower).to_string();
            if !base.is_empty() && !is_stopword(&base) && !base.chars().all(|c| c.is_numeric()) {
                entity_terms.insert(base);
            }
        }
    }
    let mut content_stems = HashSet::new();
    let mut negation = false;
    for tok in tokenize(question) {
        if tok == "not" || tok.ends_with("n't") {
            negation = true;
        }
        if is_stopword(&tok) {
            continue;
        }
        let base = strip_possessive(&tok).to_string();
        if entity_terms.contains(&base) {
            continue;
        }
        content_stems.insert(stem(&base));
    }
    let lex = type_lexicon();
    let mut expected_pools: Vec<usize> = content_stems
        .iter()
        .filter_map(|s| lex.expectations.get(s.as_str()))
        .flatten()
        .copied()
        .collect();
    expected_pools.sort_unstable();
    expected_pools.dedup();
    QuestionInfo { entity_terms, content_stems, negation, expected_pools }
}

/// Answer-type bonus: candidates of the expected kind are strongly
/// preferred (a reader never answers "bright" to a color question), others
/// are damped; with no expectation everything is neutral.
fn type_bonus(q: &QuestionInfo, phrase: &str) -> f32 {
    if q.expected_pools.is_empty() {
        return 1.0;
    }
    let lex = type_lexicon();
    let lower = phrase.to_lowercase();
    let toks = tokenize(&lower);
    let mut bonus: f32 = 0.7;
    for &pool in &q.expected_pools {
        if lex.phrases[pool].contains(&lower) {
            // Exact pool member ("black", "pygmy goat"): the strongest
            // answer-type evidence.
            return 1.6;
        }
        if toks.iter().any(|t| lex.tokens[pool].contains(t)) {
            // Contains a pool token ("bright black"): plausible but less
            // canonical than the exact member.
            bonus = bonus.max(1.35);
        }
    }
    bonus
}

/// One context sentence with its relevance score.
struct ScoredSentence {
    tokens: Vec<String>,
    stems: HashSet<String>,
    score: f32,
    /// Whether the sentence is grounded in the question's subject (entity
    /// or coreference credit). Ungrounded sentences can still support
    /// answers, but a careful reader discounts them.
    grounded: bool,
}

/// The simulated LLM.
///
/// ```
/// use sage_llm::{LlmProfile, SimLlm};
///
/// let llm = SimLlm::new(LlmProfile::gpt4o_mini());
/// let context = vec!["Whiskers is a tabby cat. He has bright green eyes.".to_string()];
/// let answer = llm.answer_open("What is the color of Whiskers's eyes?", &context);
/// assert!(answer.text.contains("green"));
/// assert!(answer.cost.input_tokens > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SimLlm {
    profile: LlmProfile,
    seed: u64,
}

impl SimLlm {
    /// A reader with the given profile and a default seed.
    pub fn new(profile: LlmProfile) -> Self {
        Self { profile, seed: 0x51A9E }
    }

    /// Override the sampling seed (for error-bar studies).
    pub fn with_seed(profile: LlmProfile, seed: u64) -> Self {
        Self { profile, seed }
    }

    /// The behavioural profile.
    pub fn profile(&self) -> &LlmProfile {
        &self.profile
    }

    /// Per-call RNG: keyed by the call content, so results are independent
    /// of call order.
    fn call_rng(&self, key: &str) -> StdRng {
        StdRng::seed_from_u64(fnv1a(key.as_bytes(), self.seed))
    }

    /// Crate-internal access to the per-call RNG (used by the feedback
    /// module).
    pub(crate) fn call_rng_pub(&self, key: &str) -> StdRng {
        self.call_rng(key)
    }

    /// Score every context sentence. Chunk boundaries matter: pronoun
    /// coreference credit only flows *within* a chunk (the model can link
    /// "He has green eyes" to "Whiskers is a cat" only when both are in the
    /// provided chunk — limitation L1's mechanism).
    fn score_sentences(&self, q: &QuestionInfo, context: &[String]) -> Vec<ScoredSentence> {
        let entity_weight = self.profile.entity_weight();
        let mut out = Vec::new();
        for chunk in context {
            let mut entity_seen = false;
            // Name-chain coreference: proper nouns introduced by sentences
            // that are grounded in the question (entity match or strong
            // content overlap) become anchors; later sentences about the
            // same name inherit subject credit. This is how a reader links
            // "Mossy is the tortoise…" to "Mossy has amber eyes" when the
            // question asks about the tortoise.
            let mut anchors: HashSet<String> = HashSet::new();
            for sentence in split_sentences(chunk) {
                let tokens = tokenize(&sentence);
                let proper: Vec<String> = sentence
                    .split_whitespace()
                    .filter(|w| w.chars().next().is_some_and(char::is_uppercase))
                    .map(|w| {
                        let t = w.trim_matches(|c: char| !c.is_alphanumeric()).to_lowercase();
                        strip_possessive(&t).to_string()
                    })
                    .filter(|w| !w.is_empty() && !is_stopword(w))
                    .collect();
                let has_entity = tokens
                    .iter()
                    .any(|t| q.entity_terms.contains(strip_possessive(t)));
                let has_pronoun =
                    tokens.iter().take(4).any(|t| PRONOUNS.contains(&t.as_str()));
                let has_anchor = proper.iter().any(|p| anchors.contains(p));
                let credit = if has_entity {
                    entity_seen = true;
                    1.0
                } else if has_anchor || (has_pronoun && (entity_seen || !anchors.is_empty())) {
                    0.9
                } else {
                    0.0
                };
                let stems: HashSet<String> =
                    tokens.iter().filter(|t| !is_stopword(t)).map(|t| stem(t)).collect();
                let rel = if q.content_stems.is_empty() {
                    0.0
                } else {
                    q.content_stems.iter().filter(|s| stems.contains(*s)).count() as f32
                        / q.content_stems.len() as f32
                };
                // A sentence donates its proper nouns as anchors only when
                // it is grounded, or when it shares an *informative* (rare)
                // content term with the question — a single generic word
                // like "town" appearing in both templates must not link an
                // unrelated entity to the question's subject.
                let informative_overlap = q
                    .content_stems
                    .iter()
                    .any(|qs| stems.contains(qs) && self.stem_idf_norm(qs) >= 0.5);
                if credit > 0.0 || (rel >= 0.3 && informative_overlap) {
                    anchors.extend(proper);
                }
                let score = entity_weight * credit + 2.0 * rel;
                out.push(ScoredSentence { tokens, stems, score, grounded: credit > 0.0 });
            }
        }
        out
    }

    /// Maximum achievable sentence score (used to normalise thresholds).
    /// Questions with no recognisable entity cannot earn entity credit, so
    /// they normalise against the content-overlap ceiling only.
    fn max_score_for(&self, q: &QuestionInfo) -> f32 {
        if q.entity_terms.is_empty() {
            2.0
        } else {
            self.profile.entity_weight() + 2.0
        }
    }

    /// Normalised IDF of one already-stemmed term under the language prior.
    fn stem_idf_norm(&self, stemmed: &str) -> f32 {
        let prior = language_prior();
        let max_idf = (1.0 + (prior.num_docs() as f32 + 0.5) / 0.5).ln();
        match prior.get(stemmed) {
            Some(id) => (prior.idf(id) / max_idf).clamp(0.0, 1.0),
            None => 1.0,
        }
    }

    fn idf_norm(&self, phrase: &str) -> f32 {
        let prior = language_prior();
        let max_idf = (1.0 + (prior.num_docs() as f32 + 0.5) / 0.5).ln();
        let mut total = 0.0;
        let mut n = 0;
        for tok in tokenize(phrase) {
            let s = stem(&tok);
            let idf = match prior.get(&s) {
                Some(id) => prior.idf(id),
                None => max_idf,
            };
            total += idf / max_idf;
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            (total / n as f32).clamp(0.0, 1.0)
        }
    }

    /// Extract candidate answer phrases (content unigrams/bigrams not in
    /// the question) with scores.
    fn candidates(&self, q: &QuestionInfo, sentences: &[ScoredSentence]) -> Vec<(String, f32)> {
        let mut best: std::collections::HashMap<String, f32> = std::collections::HashMap::new();
        // A careful reader notices when a passage is about a different
        // subject than the question asks for; ungrounded sentences are
        // discounted in proportion to the model's distractor resistance.
        let ungrounded_damp = if q.entity_terms.is_empty() {
            1.0
        } else {
            1.0 - 0.5 * self.profile.distractor_resistance
        };
        // Relation-semantics check: a sentence stating a *different known
        // relation* than the question asks about ("lives in Eastmere" for
        // "where was X born?") does not contain the answer. Strong readers
        // discount such sentences heavily; weak readers confuse them.
        let q_classes = relation_classes_of(&q.content_stems);
        let wrong_relation_damp = 1.0 - 0.75 * self.profile.distractor_resistance;
        for s in sentences {
            if s.score <= 0.3 {
                continue;
            }
            let mut damp = if s.grounded { 1.0 } else { ungrounded_damp };
            if !q_classes.is_empty() {
                let s_classes = relation_classes_of(&s.stems);
                if !s_classes.is_empty() {
                    if s_classes.iter().any(|c| q_classes.contains(c)) {
                        damp *= 1.2;
                    } else {
                        damp *= wrong_relation_damp;
                    }
                }
            }
            // Content token positions eligible as answer material.
            let eligible: Vec<(usize, &String)> = s
                .tokens
                .iter()
                .enumerate()
                .filter(|(_, t)| {
                    !is_stopword(t)
                        && !q.entity_terms.contains(strip_possessive(t))
                        && !q.content_stems.contains(&stem(strip_possessive(t)))
                        && !PRONOUNS.contains(&t.as_str())
                        && t.chars().any(|c| c.is_alphabetic())
                })
                .collect();
            for (pos, (i, tok)) in eligible.iter().enumerate() {
                let uni_score =
                    s.score * damp * (0.4 + 0.6 * self.idf_norm(tok)) * type_bonus(q, tok);
                let entry = best.entry((*tok).clone()).or_insert(0.0);
                *entry = entry.max(uni_score);
                // Adjacent bigram (adjacent in the original sentence).
                if let Some((j, next)) = eligible.get(pos + 1) {
                    if *j == i + 1 {
                        let phrase = format!("{tok} {next}");
                        let bi_score = s.score
                            * damp
                            * (0.4 + 0.6 * self.idf_norm(&phrase))
                            * type_bonus(q, &phrase)
                            * 1.05;
                        let entry = best.entry(phrase).or_insert(0.0);
                        *entry = entry.max(bi_score);
                    }
                }
            }
        }
        let mut out: Vec<(String, f32)> = best.into_iter().collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Effective sampling temperature: grows with context size, modelling
    /// long-context attention dilution ("lost in the middle"). A 300-
    /// sentence context reads several times less reliably than a 10-
    /// sentence one — this is what makes whole-document readers
    /// (Longformer baseline) and over-retrieval (Figure 8) lose accuracy.
    fn effective_temperature(&self, context_sentences: usize) -> f32 {
        self.profile.temperature * (1.0 + context_sentences as f32 / 50.0)
    }

    /// Softmax-sample an index from scores at temperature `t`.
    fn sample_at(&self, scores: &[f32], t: f32, rng: &mut StdRng) -> usize {
        debug_assert!(!scores.is_empty());
        let t = t.max(1e-3);
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let weights: Vec<f64> = scores.iter().map(|s| (((s - max) / t) as f64).exp()).collect();
        let total: f64 = weights.iter().sum();
        let mut u = rng.random_range(0.0..1.0) * total;
        for (i, w) in weights.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                return i;
            }
        }
        scores.len() - 1
    }

    /// Answer an open-ended question from retrieved context chunks. A
    /// batch of one through [`crate::LlmBatch`], so the single-call and
    /// cross-query coalesced paths are the same code.
    pub fn answer_open(&self, question: &str, context: &[String]) -> Answer {
        use crate::LlmBatch;
        // Exactly one answer comes back per input; the fallback keeps
        // the serving path panic-free.
        self.answer_open_batch(&[(question, context)])
            .pop()
            .unwrap_or_else(|| self.answer_open_one(question, context))
    }

    /// The per-item open-answer primitive behind [`crate::LlmBatch`].
    /// Seeded per call, so the result is independent of batch position.
    pub(crate) fn answer_open_one(&self, question: &str, context: &[String]) -> Answer {
        let prompt = open_prompt(question, context);
        let input_tokens = prompt_tokens(&prompt);
        let q = analyze_question(question);
        let sentences = self.score_sentences(&q, context);
        let candidates = self.candidates(&q, &sentences);

        let (text, confidence) = if candidates.is_empty()
            || candidates[0].1 / self.max_score_for(&q) < self.profile.answer_threshold
        {
            ("unanswerable".to_string(), 0.15)
        } else {
            let mut rng = self.call_rng(&format!("open|{question}|{}", context.len()));
            let scores: Vec<f32> = candidates.iter().map(|c| c.1).collect();
            let t = self.effective_temperature(sentences.len());
            let pick = self.sample_at(&scores, t, &mut rng);
            let top = scores[0];
            let second = scores.get(1).copied().unwrap_or(0.0);
            let margin = ((top - second) / top.max(1e-6)).clamp(0.0, 1.0);
            let strength = (top / self.max_score_for(&q)).clamp(0.0, 1.0);
            (candidates[pick].0.clone(), (0.5 * margin + 0.5 * strength).clamp(0.0, 1.0))
        };

        let output_tokens = count_tokens(&text) + 3;
        let mut cost = Cost::zero();
        cost.add_call(input_tokens, output_tokens);
        sage_telemetry::metrics::LLM_READER_CALLS.inc();
        sage_telemetry::metrics::LLM_INPUT_TOKENS.add(input_tokens as u64);
        sage_telemetry::metrics::LLM_OUTPUT_TOKENS.add(output_tokens as u64);
        Answer { text, confidence, cost, latency: self.profile.call_latency(output_tokens) }
    }

    /// Support score for a multiple-choice option: the best sentence that
    /// mentions (most of) the option.
    fn option_support(&self, option: &str, sentences: &[ScoredSentence]) -> f32 {
        let opt_stems: Vec<String> = tokenize(option)
            .iter()
            .filter(|t| !is_stopword(t))
            .map(|t| stem(t))
            .collect();
        if opt_stems.is_empty() {
            return 0.0;
        }
        let need = opt_stems.len().div_ceil(2).max(1);
        sentences
            .iter()
            .filter_map(|s| {
                let hits = opt_stems.iter().filter(|o| s.stems.contains(*o)).count();
                if hits >= need {
                    // Full mention outranks partial mention.
                    let completeness = hits as f32 / opt_stems.len() as f32;
                    Some((0.5 + s.score) * completeness)
                } else {
                    None
                }
            })
            .fold(0.0, f32::max)
    }

    /// Answer a multiple-choice question; returns the chosen option index
    /// and the bookkeeping answer (text = option text). A batch of one
    /// through [`crate::LlmBatch`].
    pub fn answer_multiple_choice(
        &self,
        question: &str,
        options: &[String],
        context: &[String],
    ) -> (usize, Answer) {
        use crate::LlmBatch;
        // Exactly one answer comes back per input; the fallback keeps
        // the serving path panic-free.
        self.answer_mc_batch(&[(question, options, context)])
            .pop()
            .unwrap_or_else(|| self.answer_multiple_choice_one(question, options, context))
    }

    /// The per-item multiple-choice primitive behind [`crate::LlmBatch`].
    /// Seeded per call, so the result is independent of batch position.
    pub(crate) fn answer_multiple_choice_one(
        &self,
        question: &str,
        options: &[String],
        context: &[String],
    ) -> (usize, Answer) {
        assert!(!options.is_empty());
        let prompt = mc_prompt(question, options, context);
        let input_tokens = prompt_tokens(&prompt);
        let q = analyze_question(question);
        let sentences = self.score_sentences(&q, context);
        let supports: Vec<f32> =
            options.iter().map(|o| self.option_support(o, &sentences)).collect();

        let mut rng =
            self.call_rng(&format!("mc|{question}|{}|{}", options.len(), context.len()));
        let pick = if q.negation {
            // Elimination: the correct option is the one *without* support.
            // Difficulty modulates success: when exactly one option is
            // clearly unsupported and the rest are clearly supported, the
            // reasoning is easy and even mid readers usually get it; the
            // profile's base skill governs the ambiguous cases.
            let mut sorted = supports.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let easy = sorted[0] <= 0.0 && sorted.get(1).copied().unwrap_or(0.0) > 0.5;
            let base = self.profile.elimination_skill;
            let skill = if easy {
                // Strong models reliably exploit clear evidence; weak ones
                // only partially (elimination stays hard for them even
                // with everything in context — the paper's hard-set gap).
                base + (1.0 - base) * 0.7 * self.profile.distractor_resistance
            } else {
                base
            };
            if rng.random_range(0.0..1.0) < skill {
                // Min-support reasoning; break ties randomly (the reader
                // cannot distinguish options it has no evidence about).
                let min = supports.iter().copied().fold(f32::INFINITY, f32::min);
                let tied: Vec<usize> = supports
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| (**s - min).abs() < 1e-6)
                    .map(|(i, _)| i)
                    .collect();
                tied[rng.random_range(0..tied.len())]
            } else {
                // Failed to apply elimination: falls for the best-supported
                // (wrong) option.
                self.sample_at(&supports, self.effective_temperature(sentences.len()), &mut rng)
            }
        } else if supports.iter().all(|s| *s == 0.0) {
            // No evidence at all: uniform guess.
            rng.random_range(0..options.len())
        } else {
            self.sample_at(&supports, self.effective_temperature(sentences.len()), &mut rng)
        };

        let confidence = if q.negation {
            // Elimination confidence: how clearly one option stands apart
            // as unsupported while the rest are supported.
            let mut sorted = supports.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let min = sorted[0];
            let second_min = sorted.get(1).copied().unwrap_or(0.0);
            if second_min <= 0.0 {
                0.25 // several options unsupported: a guess
            } else {
                ((second_min - min) / second_min).clamp(0.0, 1.0)
            }
        } else {
            let mut sorted = supports.clone();
            sorted.sort_by(|a, b| b.total_cmp(a));
            if sorted[0] <= 0.0 {
                0.25
            } else {
                ((sorted[0] - sorted.get(1).copied().unwrap_or(0.0)) / sorted[0]).clamp(0.0, 1.0)
            }
        };

        let text = options[pick].clone();
        let output_tokens = 2;
        let mut cost = Cost::zero();
        cost.add_call(input_tokens, output_tokens);
        sage_telemetry::metrics::LLM_READER_CALLS.inc();
        sage_telemetry::metrics::LLM_INPUT_TOKENS.add(input_tokens as u64);
        sage_telemetry::metrics::LLM_OUTPUT_TOKENS.add(output_tokens as u64);
        (
            pick,
            Answer { text, confidence, cost, latency: self.profile.call_latency(output_tokens) },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(chunks: &[&str]) -> Vec<String> {
        chunks.iter().map(|c| c.to_string()).collect()
    }

    #[test]
    fn answers_from_clear_evidence() {
        let llm = SimLlm::new(LlmProfile::gpt4());
        let a = llm.answer_open(
            "What is the color of Whiskers's eyes?",
            &ctx(&["Whiskers is a tabby cat. He has bright green eyes."]),
        );
        assert!(a.text.contains("green"), "got: {}", a.text);
        assert!(a.confidence > 0.2);
        assert!(a.cost.input_tokens > 0 && a.cost.output_tokens > 0);
    }

    #[test]
    fn orphan_pronoun_chunk_fails_l1() {
        // The L1 mechanism: the pronoun sentence alone (antecedent cut off
        // by bad segmentation) must not support a confident answer.
        let llm = SimLlm::new(LlmProfile::gpt4());
        let a = llm.answer_open(
            "What is the color of Whiskers's eyes?",
            &ctx(&["He has bright green eyes."]),
        );
        assert_eq!(a.text, "unanswerable", "orphan pronoun chunk should not be enough");
    }

    #[test]
    fn pronoun_with_antecedent_succeeds() {
        let llm = SimLlm::new(LlmProfile::gpt4());
        let joined = llm.answer_open(
            "What is the color of Whiskers's eyes?",
            &ctx(&["Whiskers is a playful tabby cat. His eyes are a deep green."]),
        );
        assert!(joined.text.contains("green"), "got: {}", joined.text);
    }

    #[test]
    fn unanswerable_without_evidence() {
        let llm = SimLlm::new(LlmProfile::gpt4());
        let a = llm.answer_open(
            "Where does Dorinwick live?",
            &ctx(&["The morning fog settled over the valley, as it had for years."]),
        );
        assert_eq!(a.text, "unanswerable");
    }

    #[test]
    fn strong_reader_resists_distractors() {
        let llm = SimLlm::new(LlmProfile::gpt4());
        let context = ctx(&[
            "Whiskers is a tabby cat. He has bright green eyes.",
            "Patchy is a ferret. Patchy has bright orange eyes.",
            "Brone is a hedgehog. Brone has bright amber eyes.",
        ]);
        let a = llm.answer_open("What is the color of Whiskers's eyes?", &context);
        assert!(a.text.contains("green"), "gpt4 analog must resist distractors: {}", a.text);
    }

    #[test]
    fn weak_reader_is_misled_by_enough_noise() {
        // Statistical check over many questions: the UnifiedQA analog must
        // err on a noticeable fraction when distractors outnumber evidence.
        let llm = SimLlm::new(LlmProfile::unifiedqa_3b());
        let mut wrong = 0;
        let total = 40;
        for i in 0..total {
            let q = format!("What is the color of Whiskers{i}'s eyes?");
            let context = vec![
                format!("Whiskers{i} is a tabby cat. He has bright green eyes."),
                "Patchy has bright orange eyes.".to_string(),
                "Brone has bright amber eyes.".to_string(),
                "Moss has bright copper eyes.".to_string(),
                "Tufty has bright violet eyes.".to_string(),
                "Dapple has bright hazel eyes.".to_string(),
            ];
            let a = llm.answer_open(&q, &context);
            if !a.text.contains("green") {
                wrong += 1;
            }
        }
        assert!(wrong > 0, "weak reader should be misled at least sometimes");
        assert!(wrong < total, "but not always");
    }

    #[test]
    fn multiple_choice_picks_supported_option() {
        let llm = SimLlm::new(LlmProfile::gpt4());
        let options: Vec<String> =
            ["orange", "green", "violet", "gray"].iter().map(|s| s.to_string()).collect();
        let (idx, a) = llm.answer_multiple_choice(
            "What is the color of Whiskers's eyes?",
            &options,
            &ctx(&["Whiskers is a tabby cat. He has bright green eyes."]),
        );
        assert_eq!(idx, 1, "answer: {}", a.text);
    }

    #[test]
    fn multiple_choice_no_evidence_guesses() {
        let llm = SimLlm::new(LlmProfile::gpt4());
        let options: Vec<String> =
            ["orange", "green", "violet", "gray"].iter().map(|s| s.to_string()).collect();
        let (_, a) = llm.answer_multiple_choice(
            "What is the color of Whiskers's eyes?",
            &options,
            &ctx(&["The rain fell on the harbor, as it had for years."]),
        );
        assert!(a.confidence <= 0.3, "guessing must not be confident");
    }

    #[test]
    fn elimination_needs_full_evidence() {
        let llm = SimLlm::new(LlmProfile::gpt4());
        let options: Vec<String> = ["vapor engine", "tide clock", "salt battery", "echo compass"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        // Full evidence: Vorden built the first three; echo compass is the
        // correct "not developed" answer.
        let full = ctx(&[
            "Vorden spent years at the workbench. Vorden developed the vapor engine.",
            "He also built the tide clock. He developed the salt battery.",
        ]);
        let (idx, _) = llm.answer_multiple_choice(
            "Which device was not developed by Vorden?",
            &options,
            &full,
        );
        assert_eq!(idx, 3);
        // Partial evidence: only one positive fact retrieved — the reader
        // cannot distinguish the other three options (tie → may guess
        // wrong). Check it is not *reliably* correct across questions.
        let mut correct = 0;
        for i in 0..30 {
            let q = format!("Which device was not developed by Vorden{i}?");
            let partial = vec![format!("Vorden{i} developed the vapor engine.")];
            let (idx, _) = llm.answer_multiple_choice(&q, &options, &partial);
            if idx == 3 {
                correct += 1;
            }
        }
        assert!(correct < 25, "partial evidence should often fail: {correct}/30");
    }

    #[test]
    fn deterministic_per_call() {
        let llm = SimLlm::new(LlmProfile::gpt35_turbo());
        let context = ctx(&["Whiskers has bright green eyes.", "Patchy has orange eyes."]);
        let a1 = llm.answer_open("What is the color of Whiskers's eyes?", &context);
        let a2 = llm.answer_open("What is the color of Whiskers's eyes?", &context);
        assert_eq!(a1.text, a2.text);
        assert_eq!(a1.confidence, a2.confidence);
    }

    #[test]
    fn cost_scales_with_context() {
        let llm = SimLlm::new(LlmProfile::gpt4o_mini());
        let small = llm.answer_open("q?", &ctx(&["short context."]));
        let big_ctx: Vec<String> =
            (0..20).map(|i| format!("Filler sentence number {i} about the town.")).collect();
        let big = llm.answer_open("q?", &big_ctx);
        assert!(big.cost.input_tokens > small.cost.input_tokens);
    }

    #[test]
    fn latency_is_simulated() {
        let llm = SimLlm::new(LlmProfile::gpt4o_mini());
        let a = llm.answer_open("q?", &ctx(&["some context."]));
        assert!(a.latency.as_secs_f64() >= 1.0, "API-call latency should be over a second");
    }

    #[test]
    fn organic_answers_are_wellformed_and_corruption_is_not() {
        let llm = SimLlm::new(LlmProfile::gpt4o_mini());
        let mut a = llm.answer_open("q?", &ctx(&["some context."]));
        assert!(a.is_wellformed());
        // Even the unanswerable path is structurally valid.
        let empty = llm.answer_open("what color is the moon lizard?", &[]);
        assert!(empty.is_wellformed());
        // Truncation and NaN poisoning are caught.
        a.text.clear();
        assert!(!a.is_wellformed());
        a.text = "x".to_string();
        a.confidence = f32::NAN;
        assert!(!a.is_wellformed());
        a.confidence = 1.5;
        assert!(!a.is_wellformed());
    }
}
