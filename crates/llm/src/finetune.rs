//! Fine-tuning analog — the paper's future-work direction §X(2):
//! "Fine-tuning is a simple way to enhance the QA ability of a LLM for a
//! given corpus. For example, we can generate several batches of
//! question-answer pairs to fine-tune GPT-3.5-turbo. Then, we might achieve
//! the same QA performance based on the inexpensive LLM."
//!
//! [`fine_tune`] maps a base profile plus a training-set size to an
//! improved profile with diminishing returns toward a ceiling below the
//! frontier model, and applies the realistic price bump fine-tuned
//! endpoints carry (≈3× the base serving price — still far below GPT-4).

use crate::profile::LlmProfile;
use sage_eval::PriceTable;

/// Quality ceiling a fine-tune can approach (just under the GPT-4 analog's
/// parameters — domain tuning narrows but does not erase the scale gap).
const CEILING_RESISTANCE: f32 = 0.93;
const FLOOR_TEMPERATURE: f32 = 0.16;
const CEILING_ELIMINATION: f32 = 0.85;

/// Examples at which ~63% of the achievable gain is realised.
const SATURATION_EXAMPLES: f64 = 800.0;

/// Fine-tune `base` on `qa_pairs` generated question-answer examples.
///
/// Deterministic and monotone: more pairs → a stronger profile, with
/// exponentially diminishing returns. Zero pairs returns the base profile
/// (with the fine-tuned serving price — uploading a dataset of zero rows is
/// the caller's mistake, not ours to silently undo).
pub fn fine_tune(base: LlmProfile, qa_pairs: usize) -> LlmProfile {
    let gain = 1.0 - (-(qa_pairs as f64) / SATURATION_EXAMPLES).exp();
    let gain = gain as f32;
    LlmProfile {
        name: fine_tuned_name(base.name),
        prices: PriceTable {
            input_per_token: base.prices.input_per_token * 3.0,
            output_per_token: base.prices.output_per_token * 3.0,
        },
        distractor_resistance: base.distractor_resistance
            + (CEILING_RESISTANCE - base.distractor_resistance).max(0.0) * gain,
        temperature: base.temperature - (base.temperature - FLOOR_TEMPERATURE).max(0.0) * gain,
        elimination_skill: base.elimination_skill
            + (CEILING_ELIMINATION - base.elimination_skill).max(0.0) * gain,
        tokens_per_second: base.tokens_per_second,
        base_latency_s: base.base_latency_s,
        answer_threshold: base.answer_threshold.max(0.52),
    }
}

fn fine_tuned_name(base: &'static str) -> &'static str {
    match base {
        "GPT-3.5-turbo(sim)" => "GPT-3.5-turbo-FT(sim)",
        "GPT-4o-mini(sim)" => "GPT-4o-mini-FT(sim)",
        "UnifiedQA-3B(sim)" => "UnifiedQA-3B-FT(sim)",
        _ => "fine-tuned(sim)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::SimLlm;

    #[test]
    fn more_data_is_monotone_better() {
        let base = LlmProfile::gpt35_turbo();
        let small = fine_tune(base, 100);
        let large = fine_tune(base, 2000);
        assert!(small.distractor_resistance > base.distractor_resistance);
        assert!(large.distractor_resistance > small.distractor_resistance);
        assert!(large.temperature < small.temperature);
        assert!(small.temperature < base.temperature);
        assert!(large.elimination_skill > base.elimination_skill);
    }

    #[test]
    fn ceiling_below_gpt4() {
        let maxed = fine_tune(LlmProfile::gpt35_turbo(), 1_000_000);
        let gpt4 = LlmProfile::gpt4();
        assert!(maxed.distractor_resistance < gpt4.distractor_resistance);
        assert!(maxed.elimination_skill < gpt4.elimination_skill);
    }

    #[test]
    fn price_bump_stays_below_gpt4() {
        let ft = fine_tune(LlmProfile::gpt35_turbo(), 1000);
        let base = LlmProfile::gpt35_turbo();
        let gpt4 = LlmProfile::gpt4();
        assert!(ft.prices.input_per_token > base.prices.input_per_token);
        assert!(ft.prices.input_per_token < gpt4.prices.input_per_token);
        assert!(ft.prices.output_per_token < gpt4.prices.output_per_token);
    }

    #[test]
    fn name_reflects_fine_tune() {
        assert_eq!(fine_tune(LlmProfile::gpt35_turbo(), 10).name, "GPT-3.5-turbo-FT(sim)");
        assert_eq!(fine_tune(LlmProfile::unifiedqa_3b(), 10).name, "UnifiedQA-3B-FT(sim)");
    }

    #[test]
    fn fine_tuned_reader_resists_distractors_better() {
        // Behavioural check: the weak base gets fooled on noisy context
        // more often than its fine-tuned counterpart.
        let noisy_context: Vec<String> = {
            let mut c = vec!["Whiskers is a tabby cat. He has bright green eyes.".to_string()];
            for name in ["Patchy", "Brone", "Mossy", "Tufty", "Dapple", "Clover"] {
                c.push(format!("{name} has bright orange eyes."));
            }
            c
        };
        let count_wrong = |profile: LlmProfile| {
            let llm = SimLlm::new(profile);
            (0..40)
                .filter(|i| {
                    let q = format!("What is the color of Whiskers{i}'s eyes?");
                    let mut ctx = noisy_context.clone();
                    ctx[0] = format!("Whiskers{i} is a tabby cat. He has bright green eyes.");
                    !llm.answer_open(&q, &ctx).text.contains("green")
                })
                .count()
        };
        let base_wrong = count_wrong(LlmProfile::unifiedqa_3b());
        let ft_wrong = count_wrong(fine_tune(LlmProfile::unifiedqa_3b(), 3000));
        assert!(
            ft_wrong < base_wrong,
            "fine-tuned wrong {ft_wrong} should be below base wrong {base_wrong}"
        );
    }
}
