//! Prompt assembly (paper §III-C step 1: "we craft a prompt incorporating
//! both the question and the retrieved chunks, tailored to the question's
//! type — be it multiple-choice or open-ended").
//!
//! The prompts exist so token accounting is honest: the simulated reader
//! does not parse them (it receives structured arguments), but every call's
//! input-token count is computed from the exact prompt string an API-based
//! RAG system would send.

use sage_text::count_tokens;

/// Fixed instruction overhead included in every call's token count.
pub const PROMPT_OVERHEAD_TOKENS: usize = 40;

/// Open-ended QA prompt.
pub fn open_prompt(question: &str, context: &[String]) -> String {
    let mut p = String::with_capacity(256 + context.iter().map(String::len).sum::<usize>());
    p.push_str(
        "Answer the question using only the context below. \
         If the context does not contain the answer, reply \"unanswerable\".\n\nContext:\n",
    );
    for (i, chunk) in context.iter().enumerate() {
        p.push_str(&format!("[{}] {}\n", i + 1, chunk));
    }
    p.push_str("\nQuestion: ");
    p.push_str(question);
    p.push_str("\nAnswer:");
    p
}

/// Multiple-choice QA prompt.
pub fn mc_prompt(question: &str, options: &[String], context: &[String]) -> String {
    let mut p = open_prompt(question, context);
    p.push_str("\nOptions:\n");
    for (i, opt) in options.iter().enumerate() {
        p.push_str(&format!("({}) {}\n", (b'A' + i as u8) as char, opt));
    }
    p.push_str("Reply with the letter of the correct option.");
    p
}

/// Input-token count of a prompt (plus fixed overhead).
pub fn prompt_tokens(prompt: &str) -> usize {
    count_tokens(prompt) + PROMPT_OVERHEAD_TOKENS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_prompt_contains_parts() {
        let p = open_prompt("Why?", &["because.".to_string(), "reasons.".to_string()]);
        assert!(p.contains("Why?"));
        assert!(p.contains("[1] because."));
        assert!(p.contains("[2] reasons."));
    }

    #[test]
    fn mc_prompt_letters() {
        let p = mc_prompt(
            "Pick one",
            &["first".into(), "second".into(), "third".into()],
            &[],
        );
        assert!(p.contains("(A) first"));
        assert!(p.contains("(C) third"));
    }

    #[test]
    fn tokens_grow_with_context() {
        let small = prompt_tokens(&open_prompt("q", &["short".into()]));
        let big = prompt_tokens(&open_prompt(
            "q",
            &vec!["a much longer context chunk with many words in it".to_string(); 5],
        ));
        assert!(big > small);
        assert!(small > PROMPT_OVERHEAD_TOKENS);
    }
}
