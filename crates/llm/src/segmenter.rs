//! GPT-4-as-segmenter (the paper's §I "Challenge of addressing (L1)" and
//! the Figure-7 comparison).
//!
//! Using a frontier LLM to segment a corpus works but is slow and
//! expensive: the whole corpus passes through the model as input *and*
//! output. This module prices that path with Eq. 1 and simulates its
//! latency from the model's generation speed, while producing the
//! (high-quality) segmentation itself from paragraph structure — which is
//! what a strong LLM recovers on these corpora.

use crate::profile::LlmProfile;
use sage_eval::Cost;
use sage_text::{count_tokens, split_paragraphs};
use std::time::Duration;

/// An LLM-driven corpus segmenter with cost/latency accounting.
#[derive(Debug, Clone)]
pub struct LlmSegmenter {
    profile: LlmProfile,
}

impl LlmSegmenter {
    /// Segmenter backed by the given model profile (the paper uses GPT-4).
    pub fn new(profile: LlmProfile) -> Self {
        Self { profile }
    }

    /// Segment a corpus, returning the chunks plus the cost and the
    /// *simulated* latency of the LLM calls that a real deployment would
    /// make (corpus in, segmented corpus out).
    pub fn segment(&self, text: &str) -> (Vec<String>, Cost, Duration) {
        // The model reads the full corpus and re-emits it with separators.
        let tokens = count_tokens(text);
        let input_tokens = tokens + 60; // instruction overhead
        let output_tokens = tokens + tokens / 50; // re-emission + markers
        let mut cost = Cost::zero();
        cost.add_call(input_tokens, output_tokens);
        let latency = Duration::from_secs_f64(
            self.profile.base_latency_s + output_tokens as f64 / self.profile.tokens_per_second,
        );
        // A strong LLM recovers semantic paragraph boundaries.
        let chunks = split_paragraphs(text).into_iter().map(str::to_string).collect();
        (chunks, cost, latency)
    }

    /// The backing profile.
    pub fn profile(&self) -> &LlmProfile {
        &self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_eval::PriceTable;

    const TEXT: &str = "First paragraph about cats. It has two sentences.\n\
                        Second paragraph about rockets. They fly high.";

    #[test]
    fn chunks_follow_paragraphs() {
        let seg = LlmSegmenter::new(LlmProfile::gpt4());
        let (chunks, _, _) = seg.segment(TEXT);
        assert_eq!(chunks.len(), 2);
        assert!(chunks[0].contains("cats"));
        assert!(chunks[1].contains("rockets"));
    }

    #[test]
    fn cost_is_roughly_double_the_corpus() {
        let seg = LlmSegmenter::new(LlmProfile::gpt4());
        let (_, cost, _) = seg.segment(TEXT);
        let corpus_tokens = count_tokens(TEXT) as u64;
        assert!(cost.input_tokens > corpus_tokens);
        assert!(cost.output_tokens >= corpus_tokens);
    }

    #[test]
    fn paper_scale_example() {
        // §I: segmenting 1e6 tokens with GPT-4 costs "more than 90 dollars"
        // and takes hours. Check the model reproduces that scale.
        // Build a fake corpus of ~1M tokens without allocating 1M words:
        // use token counts directly.
        let tokens = 1_000_000u64;
        let mut cost = Cost::zero();
        cost.add_call(tokens as usize + 60, tokens as usize + tokens as usize / 50);
        let dollars = cost.dollars(PriceTable::gpt4());
        assert!(dollars > 40.0, "1M-token segmentation should cost tens of dollars: {dollars}");
        let hours =
            (tokens as f64 / LlmProfile::gpt4().tokens_per_second) / 3600.0;
        assert!(hours > 4.0, "1M-token segmentation should take hours: {hours}");
    }

    #[test]
    fn latency_scales_with_corpus() {
        let seg = LlmSegmenter::new(LlmProfile::gpt4());
        let (_, _, small) = seg.segment(TEXT);
        let big_text = TEXT.repeat(50);
        let (_, _, big) = seg.segment(&big_text);
        assert!(big > small);
    }
}
