//! # sage-llm
//!
//! A deterministic simulated LLM — the stand-in for GPT-3.5 / GPT-4 /
//! GPT-4o-mini / UnifiedQA-3B (see DESIGN.md's substitution table).
//!
//! The paper's claims about LLMs in a RAG pipeline are *behavioural*:
//!
//! 1. an LLM answers correctly when the target evidence is in context and
//!    interpretable (intro + fact together — limitation L1);
//! 2. noisy chunks mislead it with probability growing in the number and
//!    salience of distractors (Figure 8 — limitation L2);
//! 3. a missing target chunk forces failure (Figure 9);
//! 4. elimination ("which was NOT…") questions need *all* positive facts in
//!    context;
//! 5. stronger models resist distractors better (Table XII);
//! 6. inference cost is linear in tokens (Eq. 1).
//!
//! [`SimLlm`] implements exactly these behaviours with a textual candidate-
//! extraction reader: sentence relevance = entity match (with in-chunk
//! pronoun resolution) + content overlap; candidates are content n-grams
//! weighted by a language-prior IDF; answers are sampled with a
//! profile-dependent temperature. Everything is seeded per-call, so runs
//! are reproducible regardless of call order.
//!
//! [`profile::LlmProfile`] holds the proficiency/pricing/latency presets;
//! [`feedback`] implements the paper's Figure-6 self-feedback judge;
//! [`segmenter::LlmSegmenter`] prices GPT-4-as-segmenter for Figure 7.

pub mod feedback;
pub mod finetune;
pub mod profile;
pub mod prompt;
pub mod reader;
pub mod segmenter;

pub use feedback::FeedbackOutcome;
pub use finetune::fine_tune;
pub use profile::LlmProfile;
pub use prompt::{mc_prompt, open_prompt, PROMPT_OVERHEAD_TOKENS};
pub use reader::{Answer, SimLlm};
pub use segmenter::LlmSegmenter;

/// Cross-query batched generation: the surface the slot scheduler
/// coalesces same-stage read/feedback work through. The contract is
/// element-wise identity — result `i` of a batch call must be
/// bit-identical to the corresponding single call — which [`SimLlm`]
/// guarantees for free because every call is seeded per `(question,
/// context shape)`, never per process or per call order. The single-call
/// methods are batches of one, so both paths are the same code.
pub trait LlmBatch {
    /// Answer many open-ended `(question, context)` requests.
    fn answer_open_batch(&self, items: &[(&str, &[String])]) -> Vec<Answer>;

    /// Answer many `(question, options, context)` multiple-choice
    /// requests; each result carries the picked option index.
    fn answer_mc_batch(&self, items: &[(&str, &[String], &[String])]) -> Vec<(usize, Answer)>;

    /// Judge many `(question, context, answer)` triples with the Figure-6
    /// self-feedback evaluation.
    fn self_feedback_batch(&self, items: &[(&str, &[String], &Answer)]) -> Vec<FeedbackOutcome>;
}

impl LlmBatch for SimLlm {
    fn answer_open_batch(&self, items: &[(&str, &[String])]) -> Vec<Answer> {
        items.iter().map(|&(q, ctx)| self.answer_open_one(q, ctx)).collect()
    }

    fn answer_mc_batch(&self, items: &[(&str, &[String], &[String])]) -> Vec<(usize, Answer)> {
        items
            .iter()
            .map(|&(q, opts, ctx)| self.answer_multiple_choice_one(q, opts, ctx))
            .collect()
    }

    fn self_feedback_batch(&self, items: &[(&str, &[String], &Answer)]) -> Vec<FeedbackOutcome> {
        items.iter().map(|&(q, ctx, a)| self.self_feedback_one(q, ctx, a)).collect()
    }
}
