//! # sage-llm
//!
//! A deterministic simulated LLM — the stand-in for GPT-3.5 / GPT-4 /
//! GPT-4o-mini / UnifiedQA-3B (see DESIGN.md's substitution table).
//!
//! The paper's claims about LLMs in a RAG pipeline are *behavioural*:
//!
//! 1. an LLM answers correctly when the target evidence is in context and
//!    interpretable (intro + fact together — limitation L1);
//! 2. noisy chunks mislead it with probability growing in the number and
//!    salience of distractors (Figure 8 — limitation L2);
//! 3. a missing target chunk forces failure (Figure 9);
//! 4. elimination ("which was NOT…") questions need *all* positive facts in
//!    context;
//! 5. stronger models resist distractors better (Table XII);
//! 6. inference cost is linear in tokens (Eq. 1).
//!
//! [`SimLlm`] implements exactly these behaviours with a textual candidate-
//! extraction reader: sentence relevance = entity match (with in-chunk
//! pronoun resolution) + content overlap; candidates are content n-grams
//! weighted by a language-prior IDF; answers are sampled with a
//! profile-dependent temperature. Everything is seeded per-call, so runs
//! are reproducible regardless of call order.
//!
//! [`profile::LlmProfile`] holds the proficiency/pricing/latency presets;
//! [`feedback`] implements the paper's Figure-6 self-feedback judge;
//! [`segmenter::LlmSegmenter`] prices GPT-4-as-segmenter for Figure 7.

pub mod feedback;
pub mod finetune;
pub mod profile;
pub mod prompt;
pub mod reader;
pub mod segmenter;

pub use feedback::FeedbackOutcome;
pub use finetune::fine_tune;
pub use profile::LlmProfile;
pub use prompt::{mc_prompt, open_prompt, PROMPT_OVERHEAD_TOKENS};
pub use reader::{Answer, SimLlm};
pub use segmenter::LlmSegmenter;
