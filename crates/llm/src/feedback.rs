//! The self-feedback judge (paper §VI, Figure 6) — SAGE's third
//! contribution (C3).
//!
//! After each QA round the LLM is asked to (1) score its own answer from
//! 1–10 and (2) emit a context adjustment: −1 ("redundant chunks present")
//! or +1 ("context insufficient"). Figure 6's prompt even hard-codes the
//! output prior — "less context (−1) with a probability of 60%, more
//! context (1) with 40%" — which we reproduce as the tie-break prior when
//! neither signal dominates.

use crate::prompt::prompt_tokens;
use crate::reader::{Answer, SimLlm};
use rand::Rng;
use sage_eval::Cost;
use sage_text::{is_stopword, split_sentences, stem, tokenize};
use std::collections::HashSet;
use std::time::Duration;

/// Result of one self-feedback call.
#[derive(Debug, Clone, Copy)]
pub struct FeedbackOutcome {
    /// Evaluation score 1–10; the pipeline accepts the answer when
    /// `score >= fs` (paper default `fs = 9`).
    pub score: u8,
    /// Context adjustment: −1 = drop a chunk (`min_k -= 1`),
    /// +1 = fetch more (`min_k += 1`).
    pub adjustment: i8,
    /// Token usage of the feedback call.
    pub cost: Cost,
    /// Simulated latency of the feedback call.
    pub latency: Duration,
}

/// The Figure-6 feedback prompt (for honest token accounting).
pub fn feedback_prompt(question: &str, context: &[String], answer: &str) -> String {
    let mut p = String::new();
    p.push_str("Original Prompt: ");
    p.push_str(question);
    p.push_str("\nContext:\n");
    for c in context {
        p.push_str(c);
        p.push('\n');
    }
    p.push_str("Original Answer: ");
    p.push_str(answer);
    p.push_str(
        "\nObjective (O): Evaluate the original answer on a scale of 1 to 10 based on its \
         accuracy and reasonability. Additionally, determine if the original prompt needs more \
         related context (1) or less context (-1).\nResponse (R): Evaluation Score: [1-10]. \
         Context Adjustment: [1, -1].",
    );
    p
}

impl SimLlm {
    /// Run the self-feedback evaluation of Figure 6. A batch of one
    /// through [`crate::LlmBatch`], so the single-call and cross-query
    /// coalesced paths are the same code.
    pub fn self_feedback(
        &self,
        question: &str,
        context: &[String],
        answer: &Answer,
    ) -> FeedbackOutcome {
        use crate::LlmBatch;
        // The batch surface returns exactly one outcome per input; the
        // fallback to the primitive is unreachable but keeps this panic-free.
        self.self_feedback_batch(&[(question, context, answer)])
            .pop()
            .unwrap_or_else(|| self.self_feedback_one(question, context, answer))
    }

    /// The per-item feedback primitive behind [`crate::LlmBatch`].
    pub(crate) fn self_feedback_one(
        &self,
        question: &str,
        context: &[String],
        answer: &Answer,
    ) -> FeedbackOutcome {
        let prompt = feedback_prompt(question, context, &answer.text);
        let input_tokens = prompt_tokens(&prompt);
        let output_tokens = 10;
        let mut cost = Cost::zero();
        cost.add_call(input_tokens, output_tokens);
        sage_telemetry::metrics::LLM_FEEDBACK_CALLS.inc();
        sage_telemetry::metrics::LLM_INPUT_TOKENS.add(input_tokens as u64);
        sage_telemetry::metrics::LLM_OUTPUT_TOKENS.add(output_tokens as u64);

        // Evidence support: does the answer text occur in a context
        // sentence that also touches the question's content words?
        let answer_stems: Vec<String> = tokenize(&answer.text)
            .iter()
            .filter(|t| !is_stopword(t))
            .map(|t| stem(t))
            .collect();
        // sage-lint: allow(deterministic-iteration) - membership probes only (contains); the set is never iterated, so RandomState order cannot reach any output
        let q_stems: HashSet<String> = tokenize(question)
            .iter()
            .filter(|t| !is_stopword(t))
            .map(|t| stem(t))
            .collect();
        let mut support = 0.0f32;
        let mut relevant_sentences = 0usize;
        let mut total_sentences = 0usize;
        for chunk in context {
            for sentence in split_sentences(chunk) {
                total_sentences += 1;
                // sage-lint: allow(deterministic-iteration) - intersection is counted (order-free commutative sum of usize), never enumerated into output
                let stems: HashSet<String> = tokenize(&sentence)
                    .iter()
                    .filter(|t| !is_stopword(t))
                    .map(|t| stem(t))
                    .collect();
                let q_overlap = q_stems.iter().filter(|s| stems.contains(*s)).count();
                if q_overlap > 0 {
                    relevant_sentences += 1;
                }
                if !answer_stems.is_empty()
                    && answer_stems.iter().all(|s| stems.contains(s))
                    && q_overlap > 0
                {
                    support = support.max(0.6 + 0.4 * (q_overlap as f32 / q_stems.len().max(1) as f32));
                }
            }
        }
        let unanswerable = answer.text == "unanswerable";
        // Elimination ("which was NOT…") answers are grounded *indirectly*:
        // the judge accepts them when the context covers the topic broadly
        // (the positives needed for elimination), not when the answer
        // itself appears near the question terms.
        let negation =
            tokenize(question).iter().any(|t| t == "not" || t.ends_with("n't"));
        if negation && support < 0.6 && relevant_sentences >= 4 && answer.confidence >= 0.4 {
            support = 0.7;
        }
        // Piecewise scoring: a fully grounded answer (every answer token in
        // one evidence sentence that also touches the question) is
        // acceptable — 9 or 10 — so the feedback loop terminates early on
        // good answers, exactly as a real judge accepts them. Partially or
        // un-grounded answers land below the fs = 9 acceptance bar.
        let score = if unanswerable {
            2.0
        } else if support >= 0.6 {
            if answer.confidence >= 0.2 {
                9.0 + f32::from(answer.confidence >= 0.45)
            } else {
                8.0
            }
        } else {
            (3.0 + 4.0 * answer.confidence).round()
        };
        let score = score.clamp(1.0, 10.0) as u8;

        // Context adjustment: insufficient evidence → more context; mostly
        // irrelevant sentences → less; otherwise Figure 6's 60/40 prior.
        let noise_ratio = if total_sentences == 0 {
            1.0
        } else {
            1.0 - relevant_sentences as f32 / total_sentences as f32
        };
        let mut rng = self.call_rng_pub(&format!("fb|{question}|{}", context.len()));
        let adjustment = if unanswerable || support < 0.3 {
            1
        } else if noise_ratio > 0.6 || rng.random_range(0.0..1.0) < 0.6 {
            // Redundant context, or Figure 6's 60/40 "less context" prior.
            -1
        } else {
            1
        };

        let latency = self.profile().call_latency(output_tokens);
        FeedbackOutcome { score, adjustment, cost, latency }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::LlmProfile;

    fn answered(llm: &SimLlm, question: &str, context: &[String]) -> (Answer, FeedbackOutcome) {
        let a = llm.answer_open(question, context);
        let f = llm.self_feedback(question, context, &a);
        (a, f)
    }

    #[test]
    fn good_answer_scores_high() {
        let llm = SimLlm::new(LlmProfile::gpt4());
        let context = vec!["Whiskers is a tabby cat. He has bright green eyes.".to_string()];
        let (a, f) = answered(&llm, "What is the color of Whiskers's eyes?", &context);
        assert!(a.text.contains("green"));
        assert!(f.score >= 7, "score {} too low for a supported answer", f.score);
        assert!(f.cost.input_tokens > 0);
    }

    #[test]
    fn unanswerable_requests_more_context() {
        let llm = SimLlm::new(LlmProfile::gpt4());
        let context = vec!["The fog settled over the valley, as usual.".to_string()];
        let (a, f) = answered(&llm, "Where does Dorinwick live?", &context);
        assert_eq!(a.text, "unanswerable");
        assert!(f.score <= 4, "score {}", f.score);
        assert_eq!(f.adjustment, 1, "missing evidence must request more context");
    }

    #[test]
    fn noisy_context_requests_less() {
        let llm = SimLlm::new(LlmProfile::gpt4());
        let mut context = vec!["Whiskers is a tabby cat. He has bright green eyes.".to_string()];
        for i in 0..8 {
            context.push(format!(
                "The market square was quiet that season, row {i}, while the town carried on."
            ));
        }
        let (a, f) = answered(&llm, "What is the color of Whiskers's eyes?", &context);
        assert!(a.text.contains("green"));
        assert_eq!(f.adjustment, -1, "noise-dominated context should shrink");
    }

    #[test]
    fn adjustment_is_plus_or_minus_one() {
        let llm = SimLlm::new(LlmProfile::gpt35_turbo());
        for q in ["Where does X live?", "What color is Y?", "Who plays the cello?"] {
            let context = vec!["Some vaguely related text about towns.".to_string()];
            let (_, f) = answered(&llm, q, &context);
            assert!(f.adjustment == 1 || f.adjustment == -1);
            assert!((1..=10).contains(&f.score));
        }
    }

    #[test]
    fn deterministic() {
        let llm = SimLlm::new(LlmProfile::gpt4o_mini());
        let context = vec!["Whiskers has green eyes.".to_string()];
        let a = llm.answer_open("What color are the eyes of Whiskers?", &context);
        let f1 = llm.self_feedback("What color are the eyes of Whiskers?", &context, &a);
        let f2 = llm.self_feedback("What color are the eyes of Whiskers?", &context, &a);
        assert_eq!(f1.score, f2.score);
        assert_eq!(f1.adjustment, f2.adjustment);
    }
}
