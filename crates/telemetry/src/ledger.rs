//! Token-cost ledger: tokens and calls attributed to pipeline stages.
//!
//! The paper's Table XI accounts for cost per configuration; this ledger
//! does the same per [`Stage`] so exporters can show where tokens (and
//! simulated dollars) go. Updates are lock-free relaxed adds.

// sage-lint: allow-file(panic-reachability) - stage.idx() is a dense enum index into fixed-size per-stage cells

use crate::Stage;
use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregated cost attributed to one stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCost {
    /// Calls recorded against the stage.
    pub calls: u64,
    /// Prompt tokens consumed.
    pub input_tokens: u64,
    /// Completion tokens produced.
    pub output_tokens: u64,
}

impl StageCost {
    /// Total tokens in both directions.
    pub fn total_tokens(&self) -> u64 {
        self.input_tokens + self.output_tokens
    }

    /// Simulated dollars at the given per-token prices.
    pub fn dollars(&self, input_per_token: f64, output_per_token: f64) -> f64 {
        self.input_tokens as f64 * input_per_token + self.output_tokens as f64 * output_per_token
    }
}

/// Per-stage `(calls, input_tokens, output_tokens)` cells.
pub struct CostLedger {
    cells: [[AtomicU64; 3]; Stage::COUNT],
}

impl Default for CostLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl CostLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self { cells: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))) }
    }

    /// Attribute one call with the given token counts to `stage`.
    pub fn record(&self, stage: Stage, input_tokens: u64, output_tokens: u64) {
        let cell = &self.cells[stage.idx()];
        cell[0].fetch_add(1, Ordering::Relaxed);
        cell[1].fetch_add(input_tokens, Ordering::Relaxed);
        cell[2].fetch_add(output_tokens, Ordering::Relaxed);
    }

    /// Cost recorded against one stage.
    pub fn get(&self, stage: Stage) -> StageCost {
        let cell = &self.cells[stage.idx()];
        StageCost {
            calls: cell[0].load(Ordering::Relaxed),
            input_tokens: cell[1].load(Ordering::Relaxed),
            output_tokens: cell[2].load(Ordering::Relaxed),
        }
    }

    /// Sum over all stages.
    pub fn total(&self) -> StageCost {
        let mut total = StageCost::default();
        for stage in Stage::ALL {
            let c = self.get(stage);
            total.calls += c.calls;
            total.input_tokens += c.input_tokens;
            total.output_tokens += c.output_tokens;
        }
        total
    }

    /// Stages with at least one recorded call, in pipeline order.
    pub fn active_stages(&self) -> Vec<(Stage, StageCost)> {
        Stage::ALL
            .iter()
            .map(|&s| (s, self.get(s)))
            .filter(|(_, c)| c.calls > 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals_per_stage() {
        let l = CostLedger::new();
        l.record(Stage::Read, 100, 20);
        l.record(Stage::Read, 50, 10);
        l.record(Stage::Feedback, 30, 5);
        assert_eq!(l.get(Stage::Read), StageCost { calls: 2, input_tokens: 150, output_tokens: 30 });
        assert_eq!(l.get(Stage::Rerank).calls, 0);
        let total = l.total();
        assert_eq!(total.calls, 3);
        assert_eq!(total.total_tokens(), 215);
        let active: Vec<Stage> = l.active_stages().into_iter().map(|(s, _)| s).collect();
        assert_eq!(active, vec![Stage::Read, Stage::Feedback]);
    }

    #[test]
    fn dollars_multiply_per_direction() {
        let c = StageCost { calls: 1, input_tokens: 1000, output_tokens: 100 };
        let d = c.dollars(0.001, 0.002);
        assert!((d - 1.2).abs() < 1e-9);
    }
}
