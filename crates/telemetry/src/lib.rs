//! Observability substrate for the SAGE serving path.
//!
//! The paper's evaluation is built on per-stage latency (Fig. 7, Tables
//! VIII–IX) and per-call token cost (Table XI); this crate makes those
//! quantities first-class and exportable without pulling in any external
//! dependency:
//!
//! - [`Trace`] — a per-query span/event recorder with monotonic timing,
//!   parent links, and key=value fields, serialisable as one JSON line.
//! - [`Histogram`] — log-bucketed latency histogram with mergeable
//!   snapshots and p50/p90/p99 readouts.
//! - [`metrics`] — process-global monotonic counters for the substrate
//!   crates (vector index probe counts, postings scanned, pairs scored,
//!   LLM calls and tokens), guarded by a single atomic flag.
//! - [`CostLedger`] — input/output tokens and call counts attributed to
//!   pipeline [`Stage`]s, convertible to simulated dollars.
//! - [`export`] — JSONL traces, Prometheus text exposition, and a
//!   human-readable summary table.
//!
//! # Zero cost when off
//!
//! All hot-path hooks are gated: the substrate counters check one relaxed
//! [`AtomicBool`] load and the per-query span recorder only exists when a
//! [`Telemetry`] hub is attached to the pipeline. With telemetry disabled
//! no allocation, formatting, or locking happens anywhere on the serving
//! path.

pub mod export;
pub mod hist;
pub mod ledger;
pub mod metrics;
pub mod span;

pub use hist::{Histogram, HistogramSnapshot};
pub use ledger::{CostLedger, StageCost};
pub use metrics::Counter;
pub use span::{FieldValue, SpanRec, Trace};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Pipeline stages that time and cost are attributed to.
///
/// `Segment` and `Index` are build-phase stages; the rest are query-phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Corpus segmentation (build phase).
    Segment,
    /// Query embedding.
    Embed,
    /// Vector/lexical index construction (build phase).
    Index,
    /// First-stage candidate retrieval.
    Retrieve,
    /// Cross-scorer reranking.
    Rerank,
    /// Answer generation (the paper's "reader").
    Read,
    /// Self-feedback rounds.
    Feedback,
}

impl Stage {
    /// Number of stages (array sizing).
    pub const COUNT: usize = 7;

    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Segment,
        Stage::Embed,
        Stage::Index,
        Stage::Retrieve,
        Stage::Rerank,
        Stage::Read,
        Stage::Feedback,
    ];

    /// Stable dense index for per-stage arrays.
    pub fn idx(self) -> usize {
        match self {
            Stage::Segment => 0,
            Stage::Embed => 1,
            Stage::Index => 2,
            Stage::Retrieve => 3,
            Stage::Rerank => 4,
            Stage::Read => 5,
            Stage::Feedback => 6,
        }
    }

    /// Lower-case label used in exporters and metric labels.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Segment => "segment",
            Stage::Embed => "embed",
            Stage::Index => "index",
            Stage::Retrieve => "retrieve",
            Stage::Rerank => "rerank",
            Stage::Read => "read",
            Stage::Feedback => "feedback",
        }
    }
}

/// Process-global switch for the substrate counters in [`metrics`].
///
/// The per-query recorder does not consult this flag — it is controlled by
/// attaching/detaching a [`Telemetry`] hub — but the static counters in
/// leaf crates (vecdb, retrieval, rerank, llm) have no hub reference, so
/// they gate on this single relaxed load instead.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is global metrics collection on?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn global metrics collection on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// One corpus build observed by the hub.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BuildRecord {
    /// Chunks produced by segmentation.
    pub chunk_count: u64,
    /// Whitespace tokens in the source corpus.
    pub corpus_tokens: u64,
    /// Bytes held by the retriever index.
    pub memory_bytes: u64,
    /// Wall-clock spent segmenting.
    pub segmentation_ns: u64,
    /// Wall-clock spent embedding + indexing.
    pub index_ns: u64,
}

/// Aggregation hub attached to a `RagSystem`.
///
/// Collects per-stage latency histograms, an end-to-end query histogram,
/// the token-cost ledger, finished query traces, and build records. All
/// methods take `&self`; histogram/ledger updates are lock-free and the
/// trace list takes a short mutex only when a query finishes.
pub struct Telemetry {
    stage_ns: [Histogram; Stage::COUNT],
    query_ns: Histogram,
    ledger: CostLedger,
    queries: AtomicU64,
    degrade_events: AtomicU64,
    traces: Mutex<Vec<Trace>>,
    builds: Mutex<Vec<BuildRecord>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Fresh hub with empty histograms and ledger.
    pub fn new() -> Self {
        Self {
            stage_ns: std::array::from_fn(|_| Histogram::new()),
            query_ns: Histogram::new(),
            ledger: CostLedger::new(),
            queries: AtomicU64::new(0),
            degrade_events: AtomicU64::new(0),
            traces: Mutex::new(Vec::new()),
            builds: Mutex::new(Vec::new()),
        }
    }

    /// Record one observation of `d` wall-clock in `stage`.
    pub fn record_stage(&self, stage: Stage, d: Duration) {
        // sage-lint: allow(panic-reachability) - stage.idx() is a dense enum index sized to the stage_ns array
        self.stage_ns[stage.idx()].record(d.as_nanos() as u64);
    }

    /// Record one end-to-end query latency.
    pub fn record_query(&self, d: Duration) {
        self.query_ns.record(d.as_nanos() as u64);
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Attribute one call's token cost to `stage`.
    pub fn record_cost(&self, stage: Stage, input_tokens: u64, output_tokens: u64) {
        self.ledger.record(stage, input_tokens, output_tokens);
    }

    /// Count degradation events folded into traces.
    pub fn record_degrades(&self, n: u64) {
        if n > 0 {
            self.degrade_events.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Remember a finished corpus build.
    pub fn record_build(&self, rec: BuildRecord) {
        self.builds.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(rec);
    }

    /// Store a finished query trace.
    pub fn push_trace(&self, t: Trace) {
        self.traces.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(t);
    }

    /// Snapshot of one stage's latency histogram (nanoseconds).
    pub fn stage_snapshot(&self, stage: Stage) -> HistogramSnapshot {
        self.stage_ns[stage.idx()].snapshot()
    }

    /// Snapshot of the end-to-end query latency histogram (nanoseconds).
    pub fn query_snapshot(&self) -> HistogramSnapshot {
        self.query_ns.snapshot()
    }

    /// The token-cost ledger.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Queries finished so far.
    pub fn query_count(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Degradation events observed so far.
    pub fn degrade_count(&self) -> u64 {
        self.degrade_events.load(Ordering::Relaxed)
    }

    /// Copy of the recorded build records.
    pub fn builds(&self) -> Vec<BuildRecord> {
        self.builds.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// All finished traces serialised as JSON lines (one trace per line).
    pub fn traces_jsonl(&self) -> String {
        let traces = self.traces.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = String::new();
        for t in traces.iter() {
            t.write_json(&mut out);
            out.push('\n');
        }
        out
    }

    /// Number of finished traces held.
    pub fn trace_count(&self) -> usize {
        self.traces.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Run `f` over each finished trace.
    pub fn with_traces<R>(&self, f: impl FnOnce(&[Trace]) -> R) -> R {
        f(&self.traces.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_are_dense_and_stable() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.idx(), i);
        }
        let labels: std::collections::HashSet<_> = Stage::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), Stage::COUNT);
    }

    #[test]
    fn hub_aggregates_stages_queries_and_costs() {
        let t = Telemetry::new();
        t.record_stage(Stage::Retrieve, Duration::from_micros(10));
        t.record_stage(Stage::Retrieve, Duration::from_micros(20));
        t.record_query(Duration::from_micros(50));
        t.record_cost(Stage::Read, 100, 20);
        t.record_cost(Stage::Feedback, 30, 5);
        assert_eq!(t.stage_snapshot(Stage::Retrieve).count(), 2);
        assert_eq!(t.query_snapshot().count(), 1);
        assert_eq!(t.query_count(), 1);
        let total = t.ledger().total();
        assert_eq!(total.input_tokens, 130);
        assert_eq!(total.output_tokens, 25);
        assert_eq!(total.calls, 2);
    }

    #[test]
    fn enabled_flag_round_trips() {
        let before = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(before);
    }
}
