//! Process-global monotonic counters for the substrate crates.
//!
//! Leaf crates (vecdb, retrieval, rerank, llm) have no reference to a
//! per-system [`Telemetry`](crate::Telemetry) hub, so their probe counts
//! go to these statics instead. Every counter gates on the single
//! [`enabled`](crate::enabled) flag: when telemetry is off, `add` is one
//! relaxed atomic load and a branch — no store, no allocation.
//!
//! Counters are process-wide and monotonic by design (Prometheus
//! `counter` semantics); tests must not assert exact values because
//! parallel test threads share them.

use std::sync::atomic::{AtomicU64, Ordering};

/// A named monotonic counter with Prometheus-style metadata.
pub struct Counter {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Define a counter (used for the statics below).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self { name, help, value: AtomicU64::new(0) }
    }

    /// Add `n`, if telemetry is globally enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one, if telemetry is globally enabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Metric name (Prometheus conventions: `sage_*_total`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line help string.
    pub fn help(&self) -> &'static str {
        self.help
    }
}

/// Full-scan similarity evaluations in the flat index.
pub static VECDB_FLAT_DISTANCE_EVALS: Counter = Counter::new(
    "sage_vecdb_flat_distance_evals_total",
    "Similarity evaluations performed by flat (exhaustive) index searches",
);
/// Flat index searches served.
pub static VECDB_FLAT_SEARCHES: Counter =
    Counter::new("sage_vecdb_flat_searches_total", "Searches served by the flat index");
/// Similarity evaluations during HNSW graph descent and beam search.
pub static VECDB_HNSW_DISTANCE_EVALS: Counter = Counter::new(
    "sage_vecdb_hnsw_distance_evals_total",
    "Similarity evaluations performed by HNSW searches (greedy descent + beam)",
);
/// HNSW index searches served.
pub static VECDB_HNSW_SEARCHES: Counter =
    Counter::new("sage_vecdb_hnsw_searches_total", "Searches served by the HNSW index");
/// Inverted-file cells probed by IVF searches.
pub static VECDB_IVF_CELLS_PROBED: Counter = Counter::new(
    "sage_vecdb_ivf_cells_probed_total",
    "Inverted-list cells probed by IVF searches",
);
/// Similarity evaluations inside probed IVF cells (plus centroid scoring).
pub static VECDB_IVF_DISTANCE_EVALS: Counter = Counter::new(
    "sage_vecdb_ivf_distance_evals_total",
    "Similarity evaluations performed by IVF searches (centroids + probed cells)",
);
/// IVF index searches served.
pub static VECDB_IVF_SEARCHES: Counter =
    Counter::new("sage_vecdb_ivf_searches_total", "Searches served by the IVF index");
/// BM25 retrievals served.
pub static BM25_SEARCHES: Counter =
    Counter::new("sage_bm25_searches_total", "Queries served by the BM25 retriever");
/// Posting-list entries scanned by BM25 retrievals.
pub static BM25_POSTINGS_SCANNED: Counter = Counter::new(
    "sage_bm25_postings_scanned_total",
    "Posting-list entries scanned by BM25 retrievals",
);
/// Query embeddings computed by dense retrievers.
pub static DENSE_QUERY_EMBEDS: Counter = Counter::new(
    "sage_dense_query_embeds_total",
    "Query embeddings computed by dense retrievers",
);
/// Cross-scorer rerank invocations.
pub static RERANK_CALLS: Counter =
    Counter::new("sage_rerank_calls_total", "Cross-scorer rerank invocations");
/// Question/chunk pairs scored by the cross-scorer.
pub static RERANK_PAIRS_SCORED: Counter = Counter::new(
    "sage_rerank_pairs_scored_total",
    "Question/chunk pairs scored by the cross-scorer",
);
/// Reader (answer-generation) LLM calls.
pub static LLM_READER_CALLS: Counter =
    Counter::new("sage_llm_reader_calls_total", "Reader (answer generation) LLM calls");
/// Self-feedback LLM calls.
pub static LLM_FEEDBACK_CALLS: Counter =
    Counter::new("sage_llm_feedback_calls_total", "Self-feedback assessment LLM calls");
/// Input (prompt) tokens consumed by all LLM calls.
pub static LLM_INPUT_TOKENS: Counter =
    Counter::new("sage_llm_input_tokens_total", "Prompt tokens consumed by LLM calls");
/// Output (completion) tokens produced by all LLM calls.
pub static LLM_OUTPUT_TOKENS: Counter =
    Counter::new("sage_llm_output_tokens_total", "Completion tokens produced by LLM calls");
/// Epochs committed by the live-corpus writer.
pub static LIVE_COMMITS: Counter =
    Counter::new("sage_live_commits_total", "Epochs committed by the live-corpus writer");
/// Documents upserted (added or updated) through the live writer.
pub static LIVE_DOCS_UPSERTED: Counter = Counter::new(
    "sage_live_docs_upserted_total",
    "Documents upserted (added or updated) through the live-corpus writer",
);
/// Documents deleted through the live writer.
pub static LIVE_DOCS_DELETED: Counter = Counter::new(
    "sage_live_docs_deleted_total",
    "Documents deleted through the live-corpus writer",
);
/// Chunks indexed by live upserts (dirty-document re-segmentation only).
pub static LIVE_CHUNKS_INDEXED: Counter = Counter::new(
    "sage_live_chunks_indexed_total",
    "Chunks indexed by live upserts (only dirty documents are re-segmented)",
);
/// Chunks tombstoned by live updates and deletes.
pub static LIVE_TOMBSTONES: Counter = Counter::new(
    "sage_live_tombstones_total",
    "Chunks tombstoned by live-corpus updates and deletes",
);
/// Tombstone-purging compactions run by the live writer.
pub static LIVE_COMPACTIONS: Counter = Counter::new(
    "sage_live_compactions_total",
    "Tombstone-purging index compactions run by the live-corpus writer",
);
/// Crashes injected at commit write barriers (recovery drills).
pub static LIVE_CRASHES_INJECTED: Counter = Counter::new(
    "sage_live_crashes_injected_total",
    "Crashes injected at live-commit write barriers by crash plans",
);
/// Successful recoveries of the live store to its last committed epoch.
pub static LIVE_RECOVERIES: Counter = Counter::new(
    "sage_live_recoveries_total",
    "Recoveries of the live-corpus store to its last committed epoch",
);
/// Torn or orphaned segment files discarded during recovery.
pub static LIVE_SEGMENTS_DISCARDED: Counter = Counter::new(
    "sage_live_segments_discarded_total",
    "Torn or orphaned segment files discarded by live-store recovery",
);
/// Per-shard probes issued by scatter-gather retrieval (N per fanned-out
/// query, plus one per hedged re-probe).
pub static SHARD_PROBES: Counter = Counter::new(
    "sage_shard_probes_total",
    "Per-shard probes issued by scatter-gather retrieval (including hedges)",
);
/// Hedged re-probes issued after a shard exceeded its virtual-clock slice
/// or failed its first probe.
pub static SHARD_HEDGES: Counter = Counter::new(
    "sage_shard_hedges_total",
    "Hedged shard re-probes issued after a slice overrun or probe failure",
);
/// Shards lost for a query after the hedged probe also failed.
pub static SHARD_LOST: Counter = Counter::new(
    "sage_shard_lost_total",
    "Shards lost to a query after both the probe and its hedge failed",
);
/// Queries served from a shard subset (the `shard-partial` degrade rung).
pub static SHARD_PARTIAL_SERVES: Counter = Counter::new(
    "sage_shard_partial_serves_total",
    "Queries served from surviving shards after losing part of the fan-out",
);
/// Queries whose surviving shards fell below quorum and fell back to the
/// BM25/flat chain.
pub static SHARD_QUORUM_FAILURES: Counter = Counter::new(
    "sage_shard_quorum_failures_total",
    "Queries that lost shard quorum and fell back to the BM25/flat chain",
);

/// A monotonic counter family with one fixed label dimension, for metrics
/// that split by a small closed set of values (brownout ladder steps,
/// admission priority classes). Kept out of [`all`] — the exporters emit
/// one `# TYPE` line per family and one labelled sample per entry.
pub struct LabeledCounter {
    name: &'static str,
    help: &'static str,
    key: &'static str,
    labels: &'static [&'static str],
    values: &'static [AtomicU64],
}

impl LabeledCounter {
    /// Add `n` to the entry at `idx`, if telemetry is globally enabled.
    /// Out-of-range indexes are ignored (counters must never panic).
    #[inline]
    pub fn add(&self, idx: usize, n: u64) {
        if crate::enabled() {
            if let Some(v) = self.values.get(idx) {
                v.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Increment the entry at `idx` by one, if telemetry is enabled.
    #[inline]
    pub fn inc(&self, idx: usize) {
        self.add(idx, 1);
    }

    /// Current value of the entry at `idx` (0 when out of range).
    pub fn get(&self, idx: usize) -> u64 {
        self.values.get(idx).map_or(0, |v| v.load(Ordering::Relaxed))
    }

    /// Sum over all entries.
    pub fn total(&self) -> u64 {
        self.values.iter().map(|v| v.load(Ordering::Relaxed)).sum()
    }

    /// Metric family name (Prometheus conventions: `sage_*_total`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line help string.
    pub fn help(&self) -> &'static str {
        self.help
    }

    /// The label key (`stage`, `class`, ...).
    pub fn key(&self) -> &'static str {
        self.key
    }

    /// `(label value, count)` pairs in declaration order.
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.labels.iter().zip(self.values).map(|(l, v)| (*l, v.load(Ordering::Relaxed)))
    }
}

static BROWNOUT_VALUES: [AtomicU64; 4] =
    [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
/// Brownout-ladder steps applied by budgeted queries, by ladder stage.
/// Indexed by `BrownoutLevel::idx() - 1` (the `None` level never fires).
pub static BROWNOUT_TOTAL: LabeledCounter = LabeledCounter {
    name: "sage_brownout_total",
    help: "Brownout ladder steps applied to budgeted queries",
    key: "stage",
    labels: &["drop-feedback", "shrink-rerank", "skip-rerank", "flat-topk"],
    values: &BROWNOUT_VALUES,
};

static SHED_VALUES: [AtomicU64; 3] = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
/// Queries refused by admission control, by priority class. Indexed by
/// `Priority::idx()`.
pub static SHED_TOTAL: LabeledCounter = LabeledCounter {
    name: "sage_shed_total",
    help: "Queries refused by admission control, by priority class",
    key: "class",
    labels: &["interactive", "batch", "background"],
    values: &SHED_VALUES,
};

/// Every registered labelled counter family, for the exporters.
pub fn labeled() -> [&'static LabeledCounter; 2] {
    [&BROWNOUT_TOTAL, &SHED_TOTAL]
}

/// Every registered counter, for the exporters.
pub fn all() -> [&'static Counter; 30] {
    [
        &VECDB_FLAT_DISTANCE_EVALS,
        &VECDB_FLAT_SEARCHES,
        &VECDB_HNSW_DISTANCE_EVALS,
        &VECDB_HNSW_SEARCHES,
        &VECDB_IVF_CELLS_PROBED,
        &VECDB_IVF_DISTANCE_EVALS,
        &VECDB_IVF_SEARCHES,
        &BM25_SEARCHES,
        &BM25_POSTINGS_SCANNED,
        &DENSE_QUERY_EMBEDS,
        &RERANK_CALLS,
        &RERANK_PAIRS_SCORED,
        &LLM_READER_CALLS,
        &LLM_FEEDBACK_CALLS,
        &LLM_INPUT_TOKENS,
        &LLM_OUTPUT_TOKENS,
        &LIVE_COMMITS,
        &LIVE_DOCS_UPSERTED,
        &LIVE_DOCS_DELETED,
        &LIVE_CHUNKS_INDEXED,
        &LIVE_TOMBSTONES,
        &LIVE_COMPACTIONS,
        &LIVE_CRASHES_INJECTED,
        &LIVE_RECOVERIES,
        &LIVE_SEGMENTS_DISCARDED,
        &SHARD_PROBES,
        &SHARD_HEDGES,
        &SHARD_LOST,
        &SHARD_PARTIAL_SERVES,
        &SHARD_QUORUM_FAILURES,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gates_on_global_flag() {
        static LOCAL: Counter = Counter::new("sage_test_local_total", "test only");
        let before = crate::enabled();
        crate::set_enabled(false);
        LOCAL.add(5);
        assert_eq!(LOCAL.get(), 0, "disabled counter must not move");
        crate::set_enabled(true);
        LOCAL.add(5);
        LOCAL.inc();
        assert_eq!(LOCAL.get(), 6);
        crate::set_enabled(before);
    }

    #[test]
    fn registry_names_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for c in all() {
            assert!(seen.insert(c.name()), "duplicate metric name {}", c.name());
            assert!(c.name().starts_with("sage_"), "{}", c.name());
            assert!(c.name().ends_with("_total"), "{}", c.name());
            assert!(!c.help().is_empty());
        }
        for f in labeled() {
            assert!(seen.insert(f.name()), "duplicate metric name {}", f.name());
            assert!(f.name().starts_with("sage_"), "{}", f.name());
            assert!(f.name().ends_with("_total"), "{}", f.name());
            assert!(!f.help().is_empty());
            assert!(!f.key().is_empty());
            let labels: Vec<_> = f.entries().map(|(l, _)| l).collect();
            let mut uniq = labels.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(labels.len(), uniq.len(), "duplicate label in {}", f.name());
        }
    }

    #[test]
    fn labeled_counters_gate_and_ignore_bad_indexes() {
        let before = crate::enabled();
        crate::set_enabled(true);
        let start = BROWNOUT_TOTAL.get(0);
        BROWNOUT_TOTAL.inc(0);
        BROWNOUT_TOTAL.add(0, 2);
        assert_eq!(BROWNOUT_TOTAL.get(0), start + 3);
        BROWNOUT_TOTAL.add(999, 5); // out of range: ignored, no panic
        assert_eq!(BROWNOUT_TOTAL.get(999), 0);
        assert!(BROWNOUT_TOTAL.total() >= start + 3);
        crate::set_enabled(before);
    }
}
