//! Per-query span and event recorder.
//!
//! A [`Trace`] is built single-threaded while one query runs: `enter`
//! opens a span (monotonic start offset, parent = innermost open span),
//! `exit` closes it, `event` records a zero-duration marker, and `field`
//! attaches key=value pairs. When the query finishes the trace is frozen
//! and can be serialised as one JSON line (see
//! [`Telemetry::traces_jsonl`](crate::Telemetry::traces_jsonl)).
//!
//! Wall-clock quantities are confined to the `start_ns` / `dur_ns` keys so
//! downstream consumers (and the determinism test) can strip exactly those
//! fields and compare the remaining structure across runs.

use std::time::Instant;

/// A span or event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values serialise as `null`).
    F64(f64),
    /// Owned string (JSON-escaped on output).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One recorded span (or zero-duration event).
#[derive(Debug, Clone)]
pub struct SpanRec {
    /// Static span name (`"retrieve"`, `"read"`, `"degrade"`, ...).
    pub name: &'static str,
    /// Index of the enclosing span within the trace, if any.
    pub parent: Option<usize>,
    /// Monotonic offset from the trace start, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for events and still-open spans).
    pub dur_ns: u64,
    /// Attached key=value fields, in insertion order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// A single query's span tree, recorded against one monotonic clock.
pub struct Trace {
    label: String,
    t0: Instant,
    spans: Vec<SpanRec>,
    stack: Vec<usize>,
}

impl Trace {
    /// Start a trace; `label` identifies the query in the JSONL output.
    pub fn start(label: impl Into<String>) -> Self {
        Self { label: label.into(), t0: Instant::now(), spans: Vec::new(), stack: Vec::new() }
    }

    /// The trace label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Nanoseconds elapsed since the trace started.
    pub fn elapsed_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// Open a span named `name`; returns its id for [`Trace::exit`].
    pub fn enter(&mut self, name: &'static str) -> usize {
        let id = self.spans.len();
        self.spans.push(SpanRec {
            name,
            parent: self.stack.last().copied(),
            start_ns: self.elapsed_ns(),
            dur_ns: 0,
            fields: Vec::new(),
        });
        self.stack.push(id);
        id
    }

    /// Close span `id`, fixing its duration. Also closes any spans opened
    /// inside it that were left open (crash-safe unwinding).
    pub fn exit(&mut self, id: usize) {
        let now = self.elapsed_ns();
        while let Some(top) = self.stack.pop() {
            // sage-lint: allow(panic-reachability) - stack entries are indices handed out by push onto self.spans
            let span = &mut self.spans[top];
            span.dur_ns = now.saturating_sub(span.start_ns);
            if top == id {
                break;
            }
        }
    }

    /// Attach a key=value field to span `id`.
    pub fn field(&mut self, id: usize, key: &'static str, value: impl Into<FieldValue>) {
        // sage-lint: allow(panic-reachability) - span ids are indices handed out by push onto self.spans
        self.spans[id].fields.push((key, value.into()));
    }

    /// Record a zero-duration event under the innermost open span.
    pub fn event(&mut self, name: &'static str) -> usize {
        let id = self.spans.len();
        self.spans.push(SpanRec {
            name,
            parent: self.stack.last().copied(),
            start_ns: self.elapsed_ns(),
            dur_ns: 0,
            fields: Vec::new(),
        });
        id
    }

    /// All recorded spans, in creation order.
    pub fn spans(&self) -> &[SpanRec] {
        &self.spans
    }

    /// First span with the given name, if any.
    pub fn find(&self, name: &str) -> Option<&SpanRec> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Serialise as a single JSON object (no trailing newline).
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"trace\":");
        write_json_str(&self.label, out);
        out.push_str(",\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_json_str(s.name, out);
            match s.parent {
                Some(p) => {
                    out.push_str(",\"parent\":");
                    out.push_str(&p.to_string());
                }
                None => out.push_str(",\"parent\":null"),
            }
            out.push_str(",\"start_ns\":");
            out.push_str(&s.start_ns.to_string());
            out.push_str(",\"dur_ns\":");
            out.push_str(&s.dur_ns.to_string());
            if !s.fields.is_empty() {
                out.push_str(",\"fields\":{");
                for (j, (k, v)) in s.fields.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    write_json_str(k, out);
                    out.push(':');
                    write_field(v, out);
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
    }
}

fn write_field(v: &FieldValue, out: &mut String) {
    match v {
        FieldValue::U64(n) => out.push_str(&n.to_string()),
        FieldValue::I64(n) => out.push_str(&n.to_string()),
        FieldValue::F64(x) if x.is_finite() => out.push_str(&format!("{x}")),
        FieldValue::F64(_) => out.push_str("null"),
        FieldValue::Str(s) => write_json_str(s, out),
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub fn write_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close() {
        let mut t = Trace::start("q1");
        let outer = t.enter("retrieve");
        let inner = t.enter("embed");
        t.exit(inner);
        t.exit(outer);
        let read = t.enter("read");
        t.field(read, "tokens", 42u64);
        t.exit(read);
        assert_eq!(t.spans().len(), 3);
        assert_eq!(t.spans()[0].parent, None);
        assert_eq!(t.spans()[1].parent, Some(0));
        assert_eq!(t.spans()[2].parent, None);
        assert_eq!(t.find("read").unwrap().fields[0].0, "tokens");
    }

    #[test]
    fn exit_unwinds_forgotten_children() {
        let mut t = Trace::start("q");
        let outer = t.enter("outer");
        let _leaked = t.enter("leaked");
        t.exit(outer);
        // Both closed; stack empty, so a new span is a root.
        let root = t.enter("next");
        assert_eq!(t.spans()[root].parent, None);
    }

    #[test]
    fn json_escapes_and_renders_fields() {
        let mut t = Trace::start("say \"hi\"\n");
        let s = t.enter("read");
        t.field(s, "text", "a\\b");
        t.field(s, "score", 0.5f64);
        t.field(s, "bad", f64::NAN);
        t.exit(s);
        let mut out = String::new();
        t.write_json(&mut out);
        assert!(out.contains("say \\\"hi\\\"\\n"), "{out}");
        assert!(out.contains("\"text\":\"a\\\\b\""), "{out}");
        assert!(out.contains("\"score\":0.5"), "{out}");
        assert!(out.contains("\"bad\":null"), "{out}");
        assert!(out.contains("\"parent\":null"), "{out}");
    }

    #[test]
    fn events_attach_to_open_span() {
        let mut t = Trace::start("q");
        let outer = t.enter("query");
        let e = t.event("degrade");
        t.field(e, "component", "reader");
        t.exit(outer);
        assert_eq!(t.spans()[e].parent, Some(outer));
        assert_eq!(t.spans()[e].dur_ns, 0);
    }
}
