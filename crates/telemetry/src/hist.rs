//! Log-bucketed latency histograms.
//!
//! Values (nanoseconds in practice) are bucketed by bit length: bucket 0
//! holds the value 0 and bucket `i` (1 ≤ i ≤ 64) holds values in
//! `[2^(i-1), 2^i)`. Recording is a single relaxed `fetch_add`, so the
//! histogram can be shared across threads without locking; quantile
//! estimates come from immutable [`HistogramSnapshot`]s, which merge
//! exactly (bucket-wise addition) and therefore associatively.
//!
//! A quantile estimate returns the upper bound of the bucket holding the
//! rank, so it is always within one bucket width (a factor of two) of the
//! true order statistic.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit length of a `u64`.
pub const BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, otherwise its bit length.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Largest value that lands in bucket `i` (inclusive upper bound).
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Smallest value that lands in bucket `i` (inclusive lower bound).
pub fn bucket_lower(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => 1u64 << 63,
        _ => 1u64 << (i - 1),
    }
}

/// Lock-free concurrent histogram with power-of-two buckets.
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self { counts: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        // sage-lint: allow(panic-reachability) - bucket_of yields at most 64 for a u64 and counts spans that range
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Immutable copy of the current bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (dst, src) in counts.iter_mut().zip(&self.counts) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot { counts, sum: self.sum.load(Ordering::Relaxed) }
    }
}

/// Frozen bucket counts; the unit of merging and quantile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observation count per bucket (see [`bucket_of`]).
    pub counts: [u64; BUCKETS],
    /// Sum of all recorded values (for means).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// Snapshot with no observations.
    pub fn empty() -> Self {
        Self { counts: [0; BUCKETS], sum: 0 }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fold another snapshot into this one (exact, associative).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.sum += other.sum;
    }

    /// Mean of recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Quantile estimate for `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the observation of rank `ceil(q * count)`.
    ///
    /// The true order statistic lies in the same bucket, so the estimate
    /// errs by less than one bucket width. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Convenience triple `(p50, p90, p99)`.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (self.quantile(0.50), self.quantile(0.90), self.quantile(0.99))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_lower(i)), i, "lower bound of bucket {i}");
            assert_eq!(bucket_of(bucket_upper(i)), i, "upper bound of bucket {i}");
        }
    }

    #[test]
    fn record_and_quantiles_on_known_distribution() {
        let h = Histogram::new();
        // 100 observations: 1..=100.
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum, 5050);
        // True p50 is 50 (bucket 6: 32..=63); estimate is the bucket cap.
        assert_eq!(s.quantile(0.50), 63);
        // True p99 is 99 (bucket 7: 64..=127).
        assert_eq!(s.quantile(0.99), 127);
        assert_eq!(bucket_of(s.quantile(0.50)), bucket_of(50));
        assert_eq!(bucket_of(s.quantile(0.99)), bucket_of(99));
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        a.record(9);
        b.record(5);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
        assert_eq!(m.sum, 19);
        assert_eq!(m.counts[bucket_of(5)], 2);
    }

    #[test]
    fn empty_snapshot_is_identity_for_merge() {
        let h = Histogram::new();
        h.record(7);
        let s = h.snapshot();
        let mut m = s.clone();
        m.merge(&HistogramSnapshot::empty());
        assert_eq!(m, s);
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), 0);
        assert_eq!(HistogramSnapshot::empty().mean(), 0.0);
    }
}
