//! Exporters: Prometheus text exposition and a human-readable summary.
//!
//! (The third export format, JSONL traces, lives on the hub itself as
//! [`Telemetry::traces_jsonl`](crate::Telemetry::traces_jsonl) because it
//! is a straight serialisation of the stored traces.)
//!
//! Both exporters here are pure string builders over a hub snapshot, so
//! they can run at any point without pausing collection.

use crate::hist::{bucket_upper, HistogramSnapshot, BUCKETS};
use crate::{metrics, Stage, Telemetry};

/// Per-token prices for converting the ledger to simulated dollars.
///
/// Kept as plain floats (rather than depending on `sage-eval`'s
/// `PriceTable`) so this crate stays dependency-free; callers copy the
/// two fields over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prices {
    /// Dollars per prompt token.
    pub input_per_token: f64,
    /// Dollars per completion token.
    pub output_per_token: f64,
}

/// Render the hub as Prometheus text exposition format.
///
/// Emits `# TYPE` metadata for every family, histogram families with
/// cumulative `_bucket{le=...}` series plus `_sum`/`_count`, the global
/// substrate counters, the per-stage cost ledger, and gauges for build
/// statistics. Zero-count buckets are skipped (cumulative counts stay
/// correct); every exported value is finite.
pub fn prometheus(t: &Telemetry, prices: Option<Prices>) -> String {
    let mut out = String::new();

    // Global substrate counters.
    for c in metrics::all() {
        push_meta(&mut out, c.name(), "counter", c.help());
        out.push_str(&format!("{} {}\n", c.name(), c.get()));
    }

    // Labelled counter families (brownout ladder steps, admission sheds):
    // one # TYPE line per family, one sample per label value.
    for f in metrics::labeled() {
        push_meta(&mut out, f.name(), "counter", f.help());
        for (label, value) in f.entries() {
            out.push_str(&format!(
                "{}{{{}=\"{}\"}} {}\n",
                f.name(),
                f.key(),
                escape_label_value(label),
                value
            ));
        }
    }

    // Query-level counters.
    push_meta(&mut out, "sage_queries_total", "counter", "Queries answered");
    out.push_str(&format!("sage_queries_total {}\n", t.query_count()));
    push_meta(
        &mut out,
        "sage_degrade_events_total",
        "counter",
        "Resilience degradation events folded into query traces",
    );
    out.push_str(&format!("sage_degrade_events_total {}\n", t.degrade_count()));

    // Latency histograms.
    push_meta(
        &mut out,
        "sage_stage_latency_ns",
        "histogram",
        "Per-stage wall-clock latency in nanoseconds",
    );
    for stage in Stage::ALL {
        let snap = t.stage_snapshot(stage);
        if snap.count() > 0 {
            push_histogram(&mut out, "sage_stage_latency_ns", &[("stage", stage.label())], &snap);
        }
    }
    push_meta(
        &mut out,
        "sage_query_latency_ns",
        "histogram",
        "End-to-end query latency in nanoseconds",
    );
    push_histogram(&mut out, "sage_query_latency_ns", &[], &t.query_snapshot());

    // Cost ledger.
    push_meta(
        &mut out,
        "sage_cost_calls_total",
        "counter",
        "LLM calls attributed to each pipeline stage",
    );
    push_meta(
        &mut out,
        "sage_cost_tokens_total",
        "counter",
        "Tokens attributed to each pipeline stage, by direction",
    );
    if prices.is_some() {
        push_meta(
            &mut out,
            "sage_cost_dollars",
            "gauge",
            "Simulated dollars attributed to each pipeline stage",
        );
    }
    for (stage, cost) in t.ledger().active_stages() {
        let stage_label = escape_label_value(stage.label());
        out.push_str(&format!(
            "sage_cost_calls_total{{stage=\"{stage_label}\"}} {}\n",
            cost.calls
        ));
        out.push_str(&format!(
            "sage_cost_tokens_total{{stage=\"{stage_label}\",direction=\"input\"}} {}\n",
            cost.input_tokens
        ));
        out.push_str(&format!(
            "sage_cost_tokens_total{{stage=\"{stage_label}\",direction=\"output\"}} {}\n",
            cost.output_tokens
        ));
        if let Some(p) = prices {
            out.push_str(&format!(
                "sage_cost_dollars{{stage=\"{stage_label}\"}} {:.9}\n",
                cost.dollars(p.input_per_token, p.output_per_token)
            ));
        }
    }

    // Build statistics (summed over recorded builds).
    let builds = t.builds();
    if !builds.is_empty() {
        let gauges: [(&str, &str, u64); 5] = [
            ("sage_build_chunks", "Chunks produced by segmentation", sum(&builds, |b| b.chunk_count)),
            ("sage_build_corpus_tokens", "Whitespace tokens in built corpora", sum(&builds, |b| b.corpus_tokens)),
            ("sage_build_memory_bytes", "Bytes held by retriever indexes", sum(&builds, |b| b.memory_bytes)),
            ("sage_build_segmentation_ns", "Wall-clock spent segmenting", sum(&builds, |b| b.segmentation_ns)),
            ("sage_build_index_ns", "Wall-clock spent embedding and indexing", sum(&builds, |b| b.index_ns)),
        ];
        for (name, help, value) in gauges {
            push_meta(&mut out, name, "gauge", help);
            out.push_str(&format!("{name} {value}\n"));
        }
    }

    out
}

fn sum(builds: &[crate::BuildRecord], f: impl Fn(&crate::BuildRecord) -> u64) -> u64 {
    builds.iter().map(f).sum()
}

fn push_meta(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double quote, and newline must be backslash-escaped inside
/// the quoted label value. Every label interpolation in this module (and
/// in downstream exporters building on it) must pass through here —
/// today's label values are static idents, but scenario names and other
/// user-controlled strings also travel this path.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render lint analysis phase timings as Prometheus gauges, one
/// `sage_lint_phase_ns{phase="..."}` sample per phase. The lint engine
/// keeps timings out of its own machine outputs so those stay
/// byte-stable; this is the sanctioned path for surfacing per-rule cost
/// to `--metrics-out` files and the `sage top` dashboard.
pub fn lint_phases(timings: &[(&str, u64)]) -> String {
    let mut out = String::new();
    push_meta(
        &mut out,
        "sage_lint_phase_ns",
        "gauge",
        "Nanoseconds spent per lint analysis phase in the last run",
    );
    for (phase, ns) in timings {
        out.push_str(&format!(
            "sage_lint_phase_ns{{phase=\"{}\"}} {ns}\n",
            escape_label_value(phase)
        ));
    }
    out
}

fn push_histogram(out: &mut String, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
    let extra = |more: &str| -> String {
        let mut parts: Vec<String> =
            labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))).collect();
        if !more.is_empty() {
            parts.push(more.to_string());
        }
        if parts.is_empty() { String::new() } else { format!("{{{}}}", parts.join(",")) }
    };
    let mut cumulative = 0u64;
    for i in 0..BUCKETS {
        let c = snap.counts[i];
        if c == 0 {
            continue;
        }
        cumulative += c;
        out.push_str(&format!(
            "{name}_bucket{} {cumulative}\n",
            extra(&format!("le=\"{}\"", bucket_upper(i)))
        ));
    }
    out.push_str(&format!("{name}_bucket{} {}\n", extra("le=\"+Inf\""), snap.count()));
    out.push_str(&format!("{name}_sum{} {}\n", extra(""), snap.sum));
    out.push_str(&format!("{name}_count{} {}\n", extra(""), snap.count()));
}

/// Render the hub as a human-readable per-run summary table.
///
/// Intended for stderr under the CLI's `--telemetry` flag: build
/// statistics (segmentation/index wall-clock), per-stage latency
/// percentiles, the token-cost ledger (with dollars when prices are
/// given), and the substrate counters that moved.
pub fn summary(t: &Telemetry, prices: Option<Prices>) -> String {
    let mut out = String::new();
    out.push_str("=== sage telemetry ===\n");

    for (i, b) in t.builds().iter().enumerate() {
        out.push_str(&format!(
            "build[{i}]   {} chunks | {} corpus tokens | {} index | segmentation {} | indexing {}\n",
            b.chunk_count,
            b.corpus_tokens,
            bytes(b.memory_bytes),
            ns(b.segmentation_ns),
            ns(b.index_ns),
        ));
    }

    out.push_str(&format!(
        "{:<10} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
        "stage", "count", "p50", "p90", "p99", "mean"
    ));
    let mut rows: Vec<(&str, HistogramSnapshot)> = Vec::new();
    for stage in Stage::ALL {
        let snap = t.stage_snapshot(stage);
        if snap.count() > 0 {
            rows.push((stage.label(), snap));
        }
    }
    rows.push(("query", t.query_snapshot()));
    for (label, snap) in rows {
        let (p50, p90, p99) = snap.percentiles();
        out.push_str(&format!(
            "{:<10} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
            label,
            snap.count(),
            ns(p50),
            ns(p90),
            ns(p99),
            ns(snap.mean() as u64),
        ));
    }

    let ledger = t.ledger();
    let total = ledger.total();
    if total.calls > 0 {
        out.push_str("cost ledger:\n");
        for (stage, cost) in ledger.active_stages() {
            out.push_str(&format!(
                "  {:<9} {} calls | {} in + {} out tokens",
                stage.label(),
                cost.calls,
                cost.input_tokens,
                cost.output_tokens
            ));
            if let Some(p) = prices {
                out.push_str(&format!(
                    " | ${:.6}",
                    cost.dollars(p.input_per_token, p.output_per_token)
                ));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "  {:<9} {} calls | {} tokens",
            "total", total.calls, total.total_tokens()
        ));
        if let Some(p) = prices {
            out.push_str(&format!(
                " | ${:.6}",
                total.dollars(p.input_per_token, p.output_per_token)
            ));
        }
        out.push('\n');
    }

    let mut moved: Vec<String> = metrics::all()
        .iter()
        .filter(|c| c.get() > 0)
        .map(|c| format!("{}={}", c.name(), c.get()))
        .collect();
    for f in metrics::labeled() {
        for (label, value) in f.entries() {
            if value > 0 {
                moved.push(format!("{}{{{}={}}}={}", f.name(), f.key(), label, value));
            }
        }
    }
    if !moved.is_empty() {
        out.push_str(&format!("counters: {}\n", moved.join(" ")));
    }
    out.push_str(&format!(
        "queries: {} | traces: {} | degrade events: {}\n",
        t.query_count(),
        t.trace_count(),
        t.degrade_count()
    ));
    out
}

/// Human formatting for a nanosecond quantity.
fn ns(v: u64) -> String {
    if v >= 1_000_000_000 {
        format!("{:.2}s", v as f64 / 1e9)
    } else if v >= 1_000_000 {
        format!("{:.2}ms", v as f64 / 1e6)
    } else if v >= 1_000 {
        format!("{:.2}us", v as f64 / 1e3)
    } else {
        format!("{v}ns")
    }
}

/// Human formatting for a byte quantity.
fn bytes(v: u64) -> String {
    if v >= 1 << 20 {
        format!("{:.1} MB", v as f64 / (1u64 << 20) as f64)
    } else if v >= 1 << 10 {
        format!("{:.1} KB", v as f64 / 1024.0)
    } else {
        format!("{v} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BuildRecord;
    use std::time::Duration;

    #[test]
    fn lint_phases_renders_one_gauge_per_phase() {
        let text = lint_phases(&[("scan", 1_500_000), ("callgraph", 250)]);
        assert!(text.contains("# TYPE sage_lint_phase_ns gauge"));
        assert!(text.contains("sage_lint_phase_ns{phase=\"scan\"} 1500000"));
        assert!(text.contains("sage_lint_phase_ns{phase=\"callgraph\"} 250"));
    }

    fn hub() -> Telemetry {
        let t = Telemetry::new();
        t.record_stage(Stage::Retrieve, Duration::from_micros(120));
        t.record_stage(Stage::Read, Duration::from_micros(800));
        t.record_query(Duration::from_millis(1));
        t.record_cost(Stage::Read, 200, 40);
        t.record_build(BuildRecord {
            chunk_count: 12,
            corpus_tokens: 900,
            memory_bytes: 4096,
            segmentation_ns: 1_000_000,
            index_ns: 2_000_000,
        });
        t
    }

    #[test]
    fn prometheus_dump_is_well_formed() {
        let t = hub();
        let text = prometheus(&t, Some(Prices { input_per_token: 1e-6, output_per_token: 2e-6 }));
        // Unique # TYPE names.
        let mut seen = std::collections::HashSet::new();
        let mut types = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split_whitespace().next().unwrap();
                assert!(seen.insert(name.to_string()), "duplicate # TYPE {name}");
                types += 1;
            } else if !line.starts_with('#') && !line.is_empty() {
                // Every sample's value parses as a finite number.
                let value = line.rsplit(' ').next().unwrap();
                let parsed: f64 = value.parse().unwrap_or_else(|_| panic!("bad value: {line}"));
                assert!(parsed.is_finite(), "non-finite sample: {line}");
            }
        }
        assert!(types > 5, "expected several families, got {types}");
        assert!(text.contains("sage_queries_total 1"));
        assert!(text.contains("sage_stage_latency_ns_bucket{stage=\"retrieve\",le=\""));
        assert!(text.contains("sage_cost_tokens_total{stage=\"read\",direction=\"input\"} 200"));
        assert!(text.contains("sage_cost_dollars{stage=\"read\"}"));
        assert!(text.contains("sage_build_segmentation_ns 1000000"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        // Hostile label through a histogram family: the output must stay
        // one sample per line with a parseable quoted value.
        let t = Telemetry::new();
        t.record_query(Duration::from_nanos(100));
        let mut out = String::new();
        push_histogram(&mut out, "m", &[("who", "ev\"il\\name\nx")], &t.query_snapshot());
        for line in out.lines() {
            assert!(line.contains("who=\"ev\\\"il\\\\name\\nx\""), "{line}");
            let value = line.rsplit(' ').next().unwrap();
            assert!(value.parse::<f64>().unwrap().is_finite(), "{line}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let t = Telemetry::new();
        t.record_query(Duration::from_nanos(10));
        t.record_query(Duration::from_nanos(1000));
        let text = prometheus(&t, None);
        let count_line = text
            .lines()
            .find(|l| l.starts_with("sage_query_latency_ns_count"))
            .unwrap();
        assert!(count_line.ends_with(" 2"), "{count_line}");
        let inf_line = text
            .lines()
            .find(|l| l.starts_with("sage_query_latency_ns_bucket{le=\"+Inf\"}"))
            .unwrap();
        assert!(inf_line.ends_with(" 2"), "{inf_line}");
    }

    #[test]
    fn summary_mentions_build_timings_and_ledger() {
        let t = hub();
        let text = summary(&t, Some(Prices { input_per_token: 1e-6, output_per_token: 2e-6 }));
        assert!(text.contains("segmentation 1.00ms"), "{text}");
        assert!(text.contains("indexing 2.00ms"), "{text}");
        assert!(text.contains("cost ledger:"), "{text}");
        assert!(text.contains("read"), "{text}");
        assert!(text.contains("queries: 1"), "{text}");
    }
}
