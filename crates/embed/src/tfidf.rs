//! A corpus-fitted TF-IDF encoder, hashed into a dense vector.
//!
//! Not one of the paper's four retrievers, but used as (a) a feature source
//! for the reranker and (b) a cheap corpus-aware baseline in ablation
//! benches. Fitting collects document frequencies; embedding weighs each
//! term's hashed contribution by `tf * idf`.

use crate::Embedder;
use sage_nn::matrix::l2_normalize;
use sage_text::{hash_token, stem, tokenize, Vocab};
use std::collections::BTreeMap;

/// TF-IDF weighted hashed encoder. Create via [`TfIdfEmbedder::fit`].
#[derive(Debug, Clone)]
pub struct TfIdfEmbedder {
    dim: usize,
    seed: u64,
    vocab: Vocab,
}

impl TfIdfEmbedder {
    /// Fit document frequencies on a corpus of text units (typically the
    /// chunks that will later be indexed).
    pub fn fit<S: AsRef<str>>(corpus: &[S], dim: usize, seed: u64) -> Self {
        assert!(dim > 0);
        let mut vocab = Vocab::new();
        for doc in corpus {
            let ids: Vec<u32> =
                tokenize(doc.as_ref()).iter().map(|t| vocab.intern(&stem(t))).collect();
            vocab.record_document(&ids);
        }
        Self { dim, seed, vocab }
    }

    /// Number of fitted documents.
    pub fn num_docs(&self) -> u32 {
        self.vocab.num_docs()
    }
}

impl Embedder for TfIdfEmbedder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, text: &str) -> Vec<f32> {
        // BTreeMap, not HashMap: terms hashing to the same bucket are
        // accumulated in iteration order, and float addition is not
        // associative — a RandomState-ordered walk would make embeddings
        // differ across processes at the last ulp.
        let mut counts: BTreeMap<String, f32> = BTreeMap::new();
        for tok in tokenize(text) {
            *counts.entry(stem(&tok)).or_insert(0.0) += 1.0;
        }
        let mut v = vec![0.0f32; self.dim];
        for (term, tf) in counts {
            // Unseen terms get the maximum IDF (df = 0 path of Vocab::idf
            // needs an id; approximate with the most informative weight).
            let idf = match self.vocab.get(&term) {
                Some(id) => self.vocab.idf(id),
                None => (1.0 + (self.vocab.num_docs() as f32 + 0.5) / 0.5).ln(),
            };
            let f = hash_token(&term, self.dim, self.seed);
            // sage-lint: allow(panic-reachability) - feature buckets were reduced modulo the vector dimension when featurised
            v[f.bucket as usize] += f.sign * (1.0 + tf.ln()) * idf;
        }
        l2_normalize(&mut v);
        v
    }

    fn name(&self) -> &'static str {
        "TF-IDF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_nn::matrix::cosine;

    fn corpus() -> Vec<&'static str> {
        vec![
            "the cat sat on the mat",
            "the dog chased the cat",
            "rockets fly to the moon",
            "the moon orbits the earth",
            "cats and dogs are pets",
        ]
    }

    #[test]
    fn fit_counts_docs() {
        let e = TfIdfEmbedder::fit(&corpus(), 128, 0);
        assert_eq!(e.num_docs(), 5);
    }

    #[test]
    fn rare_terms_dominate_common() {
        let e = TfIdfEmbedder::fit(&corpus(), 256, 0);
        // "moon" (rare) should make moon-docs more similar to each other
        // than "the" (ubiquitous) makes unrelated docs.
        let a = e.embed("rockets fly to the moon");
        let b = e.embed("the moon orbits the earth");
        let c = e.embed("the dog chased the cat");
        assert!(cosine(&a, &b) > cosine(&a, &c));
    }

    #[test]
    fn unit_norm() {
        let e = TfIdfEmbedder::fit(&corpus(), 64, 1);
        let v = e.embed("cats chase dogs");
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-5);
    }

    #[test]
    fn unseen_terms_still_embed() {
        let e = TfIdfEmbedder::fit(&corpus(), 64, 1);
        let v = e.embed("zyzzyva quux");
        assert!(v.iter().any(|x| *x != 0.0));
    }

    #[test]
    fn empty_corpus_and_text_are_safe() {
        let e = TfIdfEmbedder::fit(&Vec::<String>::new(), 32, 2);
        let v = e.embed("");
        assert!(v.iter().all(|x| *x == 0.0));
    }
}
