//! The trainable dual-tower encoder — our DPR analog.
//!
//! DPR trains separate question and passage encoders with a contrastive
//! objective over (question, positive passage, negative passage) triples.
//! Here each tower is a sparse embedding table over hashed features (with
//! decorrelated hash seeds), trained with a margin triplet loss:
//! `max(0, margin - cos(q, p⁺) + cos(q, p⁻))`.

use crate::features::sentence_features;
use crate::Embedder;
use sage_nn::matrix::{dot, l2_normalize, norm};
use sage_nn::EmbeddingTable;

/// One contrastive training example.
#[derive(Debug, Clone)]
pub struct TripletExample {
    /// The question.
    pub query: String,
    /// A passage that answers it.
    pub positive: String,
    /// A passage that does not.
    pub negative: String,
}

/// Dual-tower (question / passage) encoder.
#[derive(Debug, Clone)]
pub struct DualEncoder {
    query_tower: EmbeddingTable,
    passage_tower: EmbeddingTable,
    buckets: usize,
    seed: u64,
    margin: f32,
}

impl DualEncoder {
    /// New encoder with the given capacity. `margin` defaults to 0.3 via
    /// [`DualEncoder::default_model`].
    pub fn new(buckets: usize, dim: usize, margin: f32, seed: u64) -> Self {
        Self {
            query_tower: EmbeddingTable::new(buckets, dim, seed),
            passage_tower: EmbeddingTable::new(buckets, dim, seed.wrapping_add(0x9E3779B9)),
            buckets,
            seed,
            margin,
        }
    }

    /// The configuration used by experiment presets.
    pub fn default_model() -> Self {
        Self::new(4096, 64, 0.3, 0xD9A)
    }

    fn query_features(&self, text: &str) -> Vec<(u32, f32)> {
        sentence_features(text, self.buckets, self.seed)
    }

    fn passage_features(&self, text: &str) -> Vec<(u32, f32)> {
        // Same hash seed as the query side: both towers must address the
        // same lexical feature space for shared-vocabulary alignment, but
        // their *tables* are initialised differently.
        sentence_features(text, self.buckets, self.seed)
    }

    /// Train for `epochs` passes over the triples; returns mean loss per
    /// epoch.
    pub fn train(&mut self, triples: &[TripletExample], lr: f32, epochs: usize) -> Vec<f32> {
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut total = 0.0;
            let mut count = 0usize;
            for t in triples {
                if let Some(loss) = self.train_triplet(t, lr) {
                    total += loss;
                    count += 1;
                }
            }
            losses.push(if count == 0 { 0.0 } else { total / count as f32 });
        }
        losses
    }

    fn train_triplet(&mut self, t: &TripletExample, lr: f32) -> Option<f32> {
        let fq = self.query_features(&t.query);
        let fp = self.passage_features(&t.positive);
        let fn_ = self.passage_features(&t.negative);
        if fq.is_empty() || fp.is_empty() || fn_.is_empty() {
            return None;
        }
        let dim = self.query_tower.dim();
        let mut q = vec![0.0; dim];
        let mut p = vec![0.0; dim];
        let mut n = vec![0.0; dim];
        self.query_tower.pool(&fq, &mut q);
        self.passage_tower.pool(&fp, &mut p);
        self.passage_tower.pool(&fn_, &mut n);
        let (nq, np, nn) = (norm(&q), norm(&p), norm(&n));
        if nq < 1e-8 || np < 1e-8 || nn < 1e-8 {
            return None;
        }
        let cp = dot(&q, &p) / (nq * np);
        let cn = dot(&q, &n) / (nq * nn);
        let loss = (self.margin - cp + cn).max(0.0);
        if loss == 0.0 {
            return Some(0.0);
        }
        // d(loss)/d(cp) = -1, d(loss)/d(cn) = +1 inside the margin.
        // cos grads as in the siamese trainer.
        let mut gq = vec![0.0; dim];
        let mut gp = vec![0.0; dim];
        let mut gn = vec![0.0; dim];
        for i in 0..dim {
            let dcp_dq = p[i] / (nq * np) - cp * q[i] / (nq * nq);
            let dcn_dq = n[i] / (nq * nn) - cn * q[i] / (nq * nq);
            gq[i] = -dcp_dq + dcn_dq;
            gp[i] = -(q[i] / (nq * np) - cp * p[i] / (np * np));
            gn[i] = q[i] / (nq * nn) - cn * n[i] / (nn * nn);
        }
        self.query_tower.apply_pooled_grad(&fq, &gq, lr);
        self.passage_tower.apply_pooled_grad(&fp, &gp, lr);
        self.passage_tower.apply_pooled_grad(&fn_, &gn, lr);
        Some(loss)
    }
}

impl sage_nn::BytesSerialize for DualEncoder {
    fn write(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u32_le(self.buckets as u32);
        buf.put_u64_le(self.seed);
        buf.put_f32_le(self.margin);
        self.query_tower.write(buf);
        self.passage_tower.write(buf);
    }

    fn read(buf: &mut bytes::Bytes) -> Option<Self> {
        use bytes::Buf;
        use sage_nn::io::{get_u32, get_u64};
        let buckets = get_u32(buf)? as usize;
        let seed = get_u64(buf)?;
        if buf.remaining() < 4 {
            return None;
        }
        let margin = buf.get_f32_le();
        let query_tower = EmbeddingTable::read(buf)?;
        let passage_tower = EmbeddingTable::read(buf)?;
        if query_tower.buckets() != buckets || passage_tower.buckets() != buckets {
            return None;
        }
        Some(Self { query_tower, passage_tower, buckets, seed, margin })
    }
}

impl Embedder for DualEncoder {
    fn dim(&self) -> usize {
        self.passage_tower.dim()
    }

    fn embed(&self, text: &str) -> Vec<f32> {
        let feats = self.passage_features(text);
        let mut v = vec![0.0; self.passage_tower.dim()];
        self.passage_tower.pool(&feats, &mut v);
        l2_normalize(&mut v);
        v
    }

    fn embed_query(&self, text: &str) -> Vec<f32> {
        let feats = self.query_features(text);
        let mut v = vec![0.0; self.query_tower.dim()];
        self.query_tower.pool(&feats, &mut v);
        l2_normalize(&mut v);
        v
    }

    fn name(&self) -> &'static str {
        "DPR(sim)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_nn::matrix::cosine;

    fn triples() -> Vec<TripletExample> {
        vec![
            TripletExample {
                query: "what color are the cat's eyes".into(),
                positive: "the cat has bright green eyes".into(),
                negative: "the rocket reached the moon".into(),
            },
            TripletExample {
                query: "where did the rocket go".into(),
                positive: "the rocket reached the moon".into(),
                negative: "the chef cooked pasta".into(),
            },
            TripletExample {
                query: "who cooked the pasta".into(),
                positive: "the chef cooked pasta for dinner".into(),
                negative: "the cat has bright green eyes".into(),
            },
        ]
    }

    #[test]
    fn training_reduces_loss() {
        let mut enc = DualEncoder::new(512, 16, 0.3, 4);
        let losses = enc.train(&triples(), 0.5, 40);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "{:?}",
            (losses.first(), losses.last())
        );
    }

    #[test]
    fn trained_encoder_ranks_positive_first() {
        let mut enc = DualEncoder::new(512, 16, 0.3, 5);
        enc.train(&triples(), 0.5, 60);
        let q = enc.embed_query("what color are the cat's eyes");
        let pos = enc.embed("the cat has bright green eyes");
        let neg = enc.embed("the rocket reached the moon");
        assert!(
            cosine(&q, &pos) > cosine(&q, &neg),
            "pos {} vs neg {}",
            cosine(&q, &pos),
            cosine(&q, &neg)
        );
    }

    #[test]
    fn towers_are_distinct() {
        let enc = DualEncoder::default_model();
        let a = enc.embed("the same text");
        let b = enc.embed_query("the same text");
        assert_ne!(a, b, "query and passage towers must differ before training");
    }

    #[test]
    fn unit_norms() {
        let enc = DualEncoder::default_model();
        for v in [enc.embed("hello world"), enc.embed_query("hello world")] {
            let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn degenerate_triples_skipped() {
        let mut enc = DualEncoder::new(64, 8, 0.3, 6);
        let losses = enc.train(
            &[TripletExample { query: String::new(), positive: "x".into(), negative: "y".into() }],
            0.1,
            1,
        );
        assert_eq!(losses, vec![0.0]);
    }
}
