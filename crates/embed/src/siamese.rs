//! The trainable siamese encoder — our SBERT analog.
//!
//! SBERT fine-tunes a shared BERT tower with a siamese objective so that
//! semantically related sentences get high cosine similarity. Here the
//! shared tower is a sparse [`EmbeddingTable`] pooled over hashed sentence
//! features, trained with a cosine-regression objective
//! `(cos(e_a, e_b) - label)²` on (related, unrelated) sentence pairs.

use crate::features::sentence_features;
use crate::Embedder;
use sage_nn::matrix::{dot, l2_normalize, norm};
use sage_nn::EmbeddingTable;

/// A training pair for the siamese objective. `label` is the target cosine:
/// 1.0 for related sentences (same fact/paraphrase), 0.0 for unrelated.
#[derive(Debug, Clone)]
pub struct PairExample {
    /// First sentence.
    pub a: String,
    /// Second sentence.
    pub b: String,
    /// Target cosine in `[0, 1]`.
    pub label: f32,
}

/// Siamese sentence encoder with a shared embedding tower.
#[derive(Debug, Clone)]
pub struct SiameseEncoder {
    table: EmbeddingTable,
    buckets: usize,
    seed: u64,
}

impl SiameseEncoder {
    /// New encoder: `buckets` hash buckets, `dim`-dimensional embeddings.
    pub fn new(buckets: usize, dim: usize, seed: u64) -> Self {
        Self { table: EmbeddingTable::new(buckets, dim, seed), buckets, seed }
    }

    /// The configuration used by experiment presets (4096 buckets, 64 dims).
    pub fn default_model() -> Self {
        Self::new(4096, 64, 0x5BE7)
    }

    fn features(&self, text: &str) -> Vec<(u32, f32)> {
        sentence_features(text, self.buckets, self.seed)
    }

    fn pooled(&self, text: &str) -> Vec<f32> {
        let feats = self.features(text);
        let mut out = vec![0.0; self.table.dim()];
        self.table.pool(&feats, &mut out);
        out
    }

    /// Train on labelled pairs for `epochs` passes; returns the mean loss
    /// per epoch (useful for convergence tests and EXPERIMENTS.md).
    pub fn train(&mut self, pairs: &[PairExample], lr: f32, epochs: usize) -> Vec<f32> {
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut total = 0.0;
            let mut count = 0usize;
            for p in pairs {
                if let Some(loss) = self.train_pair(p, lr) {
                    total += loss;
                    count += 1;
                }
            }
            losses.push(if count == 0 { 0.0 } else { total / count as f32 });
        }
        losses
    }

    /// One SGD step on a single pair; `None` when either side has no
    /// features or a zero-norm embedding (nothing to learn from).
    fn train_pair(&mut self, pair: &PairExample, lr: f32) -> Option<f32> {
        let fa = self.features(&pair.a);
        let fb = self.features(&pair.b);
        if fa.is_empty() || fb.is_empty() {
            return None;
        }
        let dim = self.table.dim();
        let mut ea = vec![0.0; dim];
        let mut eb = vec![0.0; dim];
        self.table.pool(&fa, &mut ea);
        self.table.pool(&fb, &mut eb);
        let na = norm(&ea);
        let nb = norm(&eb);
        if na < 1e-8 || nb < 1e-8 {
            return None;
        }
        let c = dot(&ea, &eb) / (na * nb);
        let err = c - pair.label;
        let loss = err * err;
        // dL/dc = 2*err ; dc/dea = eb/(na*nb) - c*ea/na²  (and symmetric).
        let dldc = 2.0 * err;
        let mut ga = vec![0.0; dim];
        let mut gb = vec![0.0; dim];
        for i in 0..dim {
            ga[i] = dldc * (eb[i] / (na * nb) - c * ea[i] / (na * na));
            gb[i] = dldc * (ea[i] / (na * nb) - c * eb[i] / (nb * nb));
        }
        self.table.apply_pooled_grad(&fa, &ga, lr);
        self.table.apply_pooled_grad(&fb, &gb, lr);
        Some(loss)
    }
}

impl sage_nn::BytesSerialize for SiameseEncoder {
    fn write(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u32_le(self.buckets as u32);
        buf.put_u64_le(self.seed);
        self.table.write(buf);
    }

    fn read(buf: &mut bytes::Bytes) -> Option<Self> {
        use sage_nn::io::{get_u32, get_u64};
        let buckets = get_u32(buf)? as usize;
        let seed = get_u64(buf)?;
        let table = EmbeddingTable::read(buf)?;
        if table.buckets() != buckets {
            return None;
        }
        Some(Self { table, buckets, seed })
    }
}

impl Embedder for SiameseEncoder {
    fn dim(&self) -> usize {
        self.table.dim()
    }

    fn embed(&self, text: &str) -> Vec<f32> {
        let mut v = self.pooled(text);
        l2_normalize(&mut v);
        v
    }

    fn name(&self) -> &'static str {
        "SBERT(sim)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_nn::matrix::cosine;

    fn pairs() -> Vec<PairExample> {
        let related = [
            ("the cat has green eyes", "green eyes shine on the cat"),
            ("the rocket reached the moon", "the moon mission rocket arrived"),
            ("the chef cooked pasta", "pasta was cooked by the chef"),
        ];
        let unrelated = [
            ("the cat has green eyes", "the rocket reached the moon"),
            ("the chef cooked pasta", "the cat has green eyes"),
            ("the rocket reached the moon", "the chef cooked pasta"),
        ];
        let mut out = Vec::new();
        for (a, b) in related {
            out.push(PairExample { a: a.into(), b: b.into(), label: 1.0 });
        }
        for (a, b) in unrelated {
            out.push(PairExample { a: a.into(), b: b.into(), label: 0.0 });
        }
        out
    }

    #[test]
    fn training_reduces_loss() {
        let mut enc = SiameseEncoder::new(512, 16, 1);
        let losses = enc.train(&pairs(), 0.5, 30);
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "losses did not halve: {:?} -> {:?}",
            losses.first(),
            losses.last()
        );
    }

    #[test]
    fn trained_encoder_separates_pairs() {
        let mut enc = SiameseEncoder::new(512, 16, 2);
        enc.train(&pairs(), 0.5, 50);
        let cat1 = enc.embed("the cat has green eyes");
        let cat2 = enc.embed("green eyes shine on the cat");
        let moon = enc.embed("the rocket reached the moon");
        assert!(
            cosine(&cat1, &cat2) > cosine(&cat1, &moon) + 0.1,
            "related {} vs unrelated {}",
            cosine(&cat1, &cat2),
            cosine(&cat1, &moon)
        );
    }

    #[test]
    fn unit_norm_embeddings() {
        let enc = SiameseEncoder::default_model();
        let v = enc.embed("any text at all");
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_pairs_are_skipped() {
        let mut enc = SiameseEncoder::new(64, 8, 3);
        let losses = enc.train(
            &[PairExample { a: String::new(), b: "x".into(), label: 1.0 }],
            0.1,
            2,
        );
        assert_eq!(losses, vec![0.0, 0.0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SiameseEncoder::new(128, 8, 7);
        let b = SiameseEncoder::new(128, 8, 7);
        assert_eq!(a.embed("hello"), b.embed("hello"));
    }
}
