//! Shared feature extraction for hashed encoders: unigrams, stems, and
//! bigrams, each hashed into a bucket with a deterministic sign.

use sage_text::{bigrams, hash_token, stem, tokenize};

/// Extract `(bucket, sign * weight)` features for a sentence.
///
/// * content unigrams get weight 1.0, stopwords 0.25 (they still carry some
///   signal for short queries, but must not dominate);
/// * proper nouns (capitalised surface forms) get weight 2.0 — entity
///   identity dominates the semantics of short texts, and real sentence
///   encoders align named-entity mentions strongly;
/// * stems get weight 0.5 (merging morphological variants);
/// * bigrams get weight 0.75 (phrase identity — distinguishes
///   "cat chased dog" from "dog chased cat").
///
/// `seed` decorrelates hash functions between towers/models.
pub fn sentence_features(text: &str, buckets: usize, seed: u64) -> Vec<(u32, f32)> {
    // Capitalised surface forms (lowercased, possessive-stripped).
    // sage-lint: allow(deterministic-iteration) - membership probes only (contains); feature emission walks the token sequence, not this set
    let proper: std::collections::HashSet<String> = text
        .split_whitespace()
        .filter(|w| w.chars().next().is_some_and(char::is_uppercase))
        .map(|w| {
            let t = w.trim_matches(|c: char| !c.is_alphanumeric()).to_lowercase();
            t.strip_suffix("'s").unwrap_or(&t).to_string()
        })
        .filter(|w| !w.is_empty() && !sage_text::is_stopword(w))
        .collect();
    let tokens = tokenize(text);
    let mut feats = Vec::with_capacity(tokens.len() * 3);
    for tok in &tokens {
        let base = tok.strip_suffix("'s").unwrap_or(tok);
        let w = if sage_text::is_stopword(tok) {
            0.25
        } else if proper.contains(base) {
            2.0
        } else {
            1.0
        };
        let f = hash_token(base, buckets, seed);
        feats.push((f.bucket, f.sign * w));
        if w == 1.0 {
            let stemmed = stem(tok);
            if stemmed != *tok {
                let fs = hash_token(&stemmed, buckets, seed.wrapping_add(1));
                feats.push((fs.bucket, fs.sign * 0.5));
            }
        }
    }
    for bg in bigrams(&tokens) {
        let f = hash_token(&bg, buckets, seed.wrapping_add(2));
        feats.push((f.bucket, f.sign * 0.75));
    }
    feats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_deterministic() {
        let a = sentence_features("The cat sat on the mat.", 512, 7);
        let b = sentence_features("The cat sat on the mat.", 512, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn features_respect_buckets() {
        let feats = sentence_features("retrieval augmented generation works well", 64, 0);
        assert!(feats.iter().all(|(b, _)| (*b as usize) < 64));
        assert!(!feats.is_empty());
    }

    #[test]
    fn stopwords_downweighted() {
        let feats = sentence_features("the", 512, 0);
        assert_eq!(feats.len(), 1);
        assert!((feats[0].1.abs() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn different_seeds_differ() {
        let a = sentence_features("green eyes", 512, 1);
        let b = sentence_features("green eyes", 512, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn word_order_changes_features() {
        // Bigrams make the extraction order-sensitive.
        let a = sentence_features("cat chased dog", 512, 0);
        let b = sentence_features("dog chased cat", 512, 0);
        let sa: std::collections::BTreeSet<u32> = a.iter().map(|(b, _)| *b).collect();
        let sb: std::collections::BTreeSet<u32> = b.iter().map(|(b, _)| *b).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn empty_text_no_features() {
        assert!(sentence_features("", 64, 0).is_empty());
    }
}
