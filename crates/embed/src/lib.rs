//! # sage-embed
//!
//! Embedding models for the SAGE retrieval stack — the paper's four
//! retrievers (§VII-A) minus BM25 (which lives in `sage-retrieval`) are
//! embedding models paired with a vector database:
//!
//! | Paper | Here | Kind |
//! |---|---|---|
//! | OpenAI `text-embedding-3-small` | [`HashedEmbedder`] | untrained, feature-hashed |
//! | SBERT | [`SiameseEncoder`] | trainable siamese encoder |
//! | DPR | [`DualEncoder`] | trainable dual-tower encoder |
//! | (TF-IDF baseline) | [`TfIdfEmbedder`] | corpus-fitted sparse-to-dense |
//!
//! All models implement [`Embedder`]: text in, unit-L2 `f32` vector out.
//! Dual-tower models distinguish `embed` (passage tower) from
//! `embed_query` (question tower).
//!
//! Everything is deterministic given the construction seed; the trainable
//! encoders converge in a few seconds of CPU time on the synthetic corpora.

pub mod dual;
pub mod features;
pub mod hashed;
pub mod siamese;
pub mod tfidf;

pub use dual::{DualEncoder, TripletExample};
pub use features::sentence_features;
pub use hashed::HashedEmbedder;
pub use siamese::{PairExample, SiameseEncoder};
pub use tfidf::TfIdfEmbedder;

/// A sentence/passage embedding model. Outputs are L2-normalised so cosine
/// similarity reduces to a dot product in the vector database.
pub trait Embedder: Send + Sync {
    /// Embedding dimensionality.
    fn dim(&self) -> usize;

    /// Embed a passage (or, for single-tower models, any text).
    fn embed(&self, text: &str) -> Vec<f32>;

    /// Embed a query. Defaults to the passage tower; dual-tower models
    /// (DPR analog) override this.
    fn embed_query(&self, text: &str) -> Vec<f32> {
        self.embed(text)
    }

    /// Short identifier used in experiment tables ("SBERT", "BM25", ...).
    fn name(&self) -> &'static str;
}

/// Cross-query batched embedding: the surface the slot scheduler coalesces
/// same-stage embed work through. The contract is *element-wise identity*:
/// `embed_query_batch(&[a, b])` must equal
/// `[embed_query(a), embed_query(b)]` bit for bit, so batching never
/// changes a result — a real GPU backend would amortize the forward pass
/// under the same contract, while the deterministic models here amortize
/// only call overhead. The blanket impl guarantees the identity by
/// construction for every [`Embedder`].
pub trait EmbedBatch {
    /// Embed many passages; element `i` equals `embed(texts[i])` exactly.
    fn embed_batch(&self, texts: &[&str]) -> Vec<Vec<f32>>;

    /// Embed many queries; element `i` equals `embed_query(texts[i])`
    /// exactly.
    fn embed_query_batch(&self, texts: &[&str]) -> Vec<Vec<f32>>;
}

impl<E: Embedder + ?Sized> EmbedBatch for E {
    fn embed_batch(&self, texts: &[&str]) -> Vec<Vec<f32>> {
        texts.iter().map(|t| self.embed(t)).collect()
    }

    fn embed_query_batch(&self, texts: &[&str]) -> Vec<Vec<f32>> {
        texts.iter().map(|t| self.embed_query(t)).collect()
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;

    #[test]
    fn batch_is_elementwise_identical_to_singles() {
        let e = HashedEmbedder::new(32, 7);
        let texts = ["a cat sat", "the dog ran far", "quantum tea"];
        let batch = e.embed_query_batch(&texts);
        for (t, b) in texts.iter().zip(&batch) {
            assert_eq!(b, &e.embed_query(t), "batch diverged for {t:?}");
        }
        let batch = e.embed_batch(&texts);
        for (t, b) in texts.iter().zip(&batch) {
            assert_eq!(b, &e.embed(t), "passage batch diverged for {t:?}");
        }
    }
}
