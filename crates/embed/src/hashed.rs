//! The untrained feature-hashing encoder — our stand-in for OpenAI's
//! `text-embedding-3-small` (see DESIGN.md substitution table).
//!
//! Sign-alternating feature hashing (a hash kernel) approximately preserves
//! inner products of the underlying bag-of-features vectors, so texts that
//! share vocabulary and phrases land close in cosine space — the only
//! property the retrieval pipeline relies on.

use crate::features::sentence_features;
use crate::Embedder;
use sage_nn::matrix::l2_normalize;

/// Feature-hashed sentence encoder (unigrams + stems + bigrams).
#[derive(Debug, Clone)]
pub struct HashedEmbedder {
    dim: usize,
    seed: u64,
}

impl HashedEmbedder {
    /// Encoder with `dim` buckets (256 is plenty for the synthetic corpora).
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0);
        Self { dim, seed }
    }

    /// The paper-default configuration used by experiment presets.
    pub fn default_model() -> Self {
        Self::new(256, 0x0A1)
    }
}

impl sage_nn::BytesSerialize for HashedEmbedder {
    fn write(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u32_le(self.dim as u32);
        buf.put_u64_le(self.seed);
    }

    fn read(buf: &mut bytes::Bytes) -> Option<Self> {
        use sage_nn::io::{get_u32, get_u64};
        let dim = get_u32(buf)? as usize;
        let seed = get_u64(buf)?;
        (dim > 0).then_some(Self { dim, seed })
    }
}

impl Embedder for HashedEmbedder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, text: &str) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        for (bucket, signed_weight) in sentence_features(text, self.dim, self.seed) {
            // sage-lint: allow(panic-reachability) - sentence_features emits buckets reduced modulo self.dim
            v[bucket as usize] += signed_weight;
        }
        l2_normalize(&mut v);
        v
    }

    fn name(&self) -> &'static str {
        "OpenAI-Embedding(sim)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_nn::matrix::cosine;

    #[test]
    fn unit_norm_output() {
        let e = HashedEmbedder::new(128, 0);
        let v = e.embed("I have a cat with green eyes.");
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_text_zero_vector() {
        let e = HashedEmbedder::new(128, 0);
        let v = e.embed("");
        assert!(v.iter().all(|x| *x == 0.0));
    }

    #[test]
    fn similar_texts_closer_than_dissimilar() {
        let e = HashedEmbedder::default_model();
        let a = e.embed("The cat has bright green eyes.");
        let b = e.embed("My cat's eyes are green and bright.");
        let c = e.embed("The rocket launched toward the distant planet yesterday.");
        assert!(
            cosine(&a, &b) > cosine(&a, &c),
            "related {} vs unrelated {}",
            cosine(&a, &b),
            cosine(&a, &c)
        );
    }

    #[test]
    fn identical_texts_cosine_one() {
        let e = HashedEmbedder::default_model();
        let a = e.embed("Whiskers sleeps all day.");
        let b = e.embed("Whiskers sleeps all day.");
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn deterministic() {
        let e1 = HashedEmbedder::new(64, 5);
        let e2 = HashedEmbedder::new(64, 5);
        assert_eq!(e1.embed("hello world"), e2.embed("hello world"));
    }
}
