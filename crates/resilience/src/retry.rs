//! Bounded retries with exponential backoff over a virtual clock.
//!
//! Real serving stacks sleep between attempts; a test harness must not.
//! [`VirtualClock`] accumulates the *would-have-slept* durations on an
//! atomic counter, so the retry ladder (and the circuit breaker's cooldown
//! arithmetic) behaves exactly as in production while tests run at full
//! speed. Jitter comes from the fault plan's deterministic per-call RNG,
//! never from entropy.

// sage-lint: allow-file(relaxed-atomics-confined) - the virtual clock is a single-writer accumulator per query (no cross-thread handoff); counters are telemetry-style monotonic totals

use crate::rng::DetRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Retry configuration for one guarded call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try + retries). Must be ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Cap on any single backoff.
    pub max_delay: Duration,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a
    /// deterministic factor drawn from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Virtual deadline charged when a timeout fault fires.
    pub timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            jitter: 0.2,
            timeout: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// No retries: one attempt, no backoff.
    pub fn no_retry() -> Self {
        Self { max_attempts: 1, ..Self::default() }
    }

    /// The backoff to charge after failed attempt `attempt` (0-based):
    /// `base * 2^attempt`, capped at `max_delay`, scaled by deterministic
    /// jitter from `rng`.
    pub fn backoff(&self, attempt: u32, rng: &mut DetRng) -> Duration {
        let exp = self.base_delay.as_secs_f64() * 2f64.powi(attempt.min(16) as i32);
        let capped = exp.min(self.max_delay.as_secs_f64());
        let jitter = self.jitter.clamp(0.0, 1.0);
        let factor =
            if jitter > 0.0 { rng.range_f64(1.0 - jitter, 1.0 + jitter) } else { 1.0 };
        Duration::from_secs_f64(capped * factor)
    }
}

/// A monotonically advancing virtual clock (nanoseconds on an atomic).
///
/// Shared by the retry layer (which charges backoff and timeout penalties)
/// and the circuit breakers (whose cooldowns are measured against it).
/// Thread-safe; `advance` from any worker is visible to all.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    /// Advance the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos().min(u128::from(u64::MAX)) as u64, Ordering::Relaxed);
    }

    /// Reset to t = 0 (between test scenarios).
    pub fn reset(&self) {
        self.nanos.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(450),
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = DetRng::seed_from_u64(0);
        assert_eq!(p.backoff(0, &mut rng), Duration::from_millis(100));
        assert_eq!(p.backoff(1, &mut rng), Duration::from_millis(200));
        assert_eq!(p.backoff(2, &mut rng), Duration::from_millis(400));
        assert_eq!(p.backoff(3, &mut rng), Duration::from_millis(450), "capped");
        assert_eq!(p.backoff(40, &mut rng), Duration::from_millis(450), "huge attempt capped");
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = RetryPolicy { jitter: 0.5, ..RetryPolicy::default() };
        let base = p.base_delay.as_secs_f64();
        let mut a = DetRng::seed_from_u64(9);
        let mut b = DetRng::seed_from_u64(9);
        let da = p.backoff(0, &mut a);
        let db = p.backoff(0, &mut b);
        assert_eq!(da, db, "same rng seed, same jitter");
        assert!(da.as_secs_f64() >= base * 0.5 - 1e-9);
        assert!(da.as_secs_f64() <= base * 1.5 + 1e-9);
    }

    #[test]
    fn clock_advances_without_sleeping() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        let wall = std::time::Instant::now();
        clock.advance(Duration::from_secs(3600));
        assert_eq!(clock.now(), Duration::from_secs(3600));
        assert!(wall.elapsed() < Duration::from_secs(1), "no real sleep");
        clock.reset();
        assert_eq!(clock.now(), Duration::ZERO);
    }
}
