//! Degradation bookkeeping: per-query traces and system-wide counters.

// sage-lint: allow-file(relaxed-atomics-confined) - monotonic fallback counters in the telemetry style: single value per event, no other memory published under them, totals may be approximate under contention

use crate::error::SageError;
use crate::fault::Component;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The documented fallbacks of the degradation chain, in chain order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fallback {
    /// ANN (HNSW) search failed → exact flat-index scan.
    HnswToFlat,
    /// Dense retrieval (embedder or index) failed → BM25 sparse retrieval.
    DenseToBm25,
    /// Reranker failed → keep the first-stage retrieval order.
    RerankToRetrievalOrder,
    /// Reader failed on the primary context → retried on the second-best
    /// chunk set.
    ReaderSecondBest,
    /// Reader failed on both chunk sets → degraded "unanswerable" answer.
    ReaderUnanswerable,
    /// A panic was isolated at the batch layer; the question yielded a
    /// structured error instead of aborting its batch.
    PanicIsolated,
    /// Budget brownout: self-feedback rounds were dropped (ladder step 1).
    BrownoutDropFeedback,
    /// Budget brownout: the rerank candidate pool was halved (step 2).
    BrownoutShrinkRerank,
    /// Budget brownout: reranking was skipped entirely; the first-stage
    /// retrieval order was kept (step 3).
    BrownoutSkipRerank,
    /// Budget brownout: gradient selection was replaced by a flat top-k
    /// prefix of the retrieval order (step 4, the ladder's floor).
    BrownoutFlatTopK,
    /// The admission queue refused the query under load; it never entered
    /// the pipeline.
    Shed,
    /// Scatter-gather served from survivors after losing `lost` of `total`
    /// shards (renders as `shard-partial:<m>/<N>`); quorum still held.
    ShardPartial {
        /// Shards lost after the hedged probe.
        lost: u8,
        /// Shards fanned out to.
        total: u8,
    },
    /// Shard losses fell below quorum on a sparse primary: the query was
    /// served from the unsharded scan instead of the shard set. (Dense
    /// primaries record [`Fallback::DenseToBm25`] on quorum failure — the
    /// dense shard set is abandoned for the sparse tier.)
    ShardQuorumLost,
}

impl Fallback {
    /// All fallback kinds, in chain order (stable counter layout). The
    /// shard-partial slot uses the zero-valued canonical instance; every
    /// `ShardPartial { .. }` maps to that one counter regardless of fields.
    pub const ALL: [Fallback; 13] = [
        Fallback::HnswToFlat,
        Fallback::DenseToBm25,
        Fallback::RerankToRetrievalOrder,
        Fallback::ReaderSecondBest,
        Fallback::ReaderUnanswerable,
        Fallback::PanicIsolated,
        Fallback::BrownoutDropFeedback,
        Fallback::BrownoutShrinkRerank,
        Fallback::BrownoutSkipRerank,
        Fallback::BrownoutFlatTopK,
        Fallback::Shed,
        Fallback::ShardPartial { lost: 0, total: 0 },
        Fallback::ShardQuorumLost,
    ];

    fn idx(self) -> usize {
        match self {
            Fallback::HnswToFlat => 0,
            Fallback::DenseToBm25 => 1,
            Fallback::RerankToRetrievalOrder => 2,
            Fallback::ReaderSecondBest => 3,
            Fallback::ReaderUnanswerable => 4,
            Fallback::PanicIsolated => 5,
            Fallback::BrownoutDropFeedback => 6,
            Fallback::BrownoutShrinkRerank => 7,
            Fallback::BrownoutSkipRerank => 8,
            Fallback::BrownoutFlatTopK => 9,
            Fallback::Shed => 10,
            Fallback::ShardPartial { .. } => 11,
            Fallback::ShardQuorumLost => 12,
        }
    }

    /// Display label ("hnsw->flat", ...).
    pub fn label(self) -> &'static str {
        match self {
            Fallback::HnswToFlat => "hnsw->flat",
            Fallback::DenseToBm25 => "dense->bm25",
            Fallback::RerankToRetrievalOrder => "rerank->retrieval-order",
            Fallback::ReaderSecondBest => "reader->second-best",
            Fallback::ReaderUnanswerable => "reader->unanswerable",
            Fallback::PanicIsolated => "panic-isolated",
            Fallback::BrownoutDropFeedback => "brownout:drop-feedback",
            Fallback::BrownoutShrinkRerank => "brownout:shrink-rerank",
            Fallback::BrownoutSkipRerank => "brownout:skip-rerank",
            Fallback::BrownoutFlatTopK => "brownout:flat-topk",
            Fallback::Shed => "shed",
            Fallback::ShardPartial { .. } => "shard-partial",
            Fallback::ShardQuorumLost => "shard-quorum->unsharded",
        }
    }

    /// Whether this is the shard-partial rung (any loss ratio).
    pub fn is_shard_partial(self) -> bool {
        matches!(self, Fallback::ShardPartial { .. })
    }

    /// Position on the brownout ladder (`None` for the non-brownout
    /// fallbacks). Higher means more degraded.
    pub fn brownout_step(self) -> Option<u8> {
        match self {
            Fallback::BrownoutDropFeedback => Some(1),
            Fallback::BrownoutShrinkRerank => Some(2),
            Fallback::BrownoutSkipRerank => Some(3),
            Fallback::BrownoutFlatTopK => Some(4),
            _ => None,
        }
    }
}

impl std::fmt::Display for Fallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // The documented rung format carries the loss ratio.
            Fallback::ShardPartial { lost, total } => write!(f, "shard-partial:{lost}/{total}"),
            _ => f.write_str(self.label()),
        }
    }
}

/// One fired fallback: which component failed, how, and what replaced it.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradeEvent {
    /// The failing component.
    pub component: Component,
    /// The fallback that fired.
    pub fallback: Fallback,
    /// The structured error that triggered the fallback.
    pub error: SageError,
    /// Attempts spent on the primary before degrading.
    pub attempts: u32,
    /// Virtual time charged to retries/timeouts on this boundary.
    pub delay: Duration,
}

/// Per-query degradation record, carried in `QueryResult`. Empty means the
/// query ran entirely on the primary path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradeTrace {
    /// Fired fallbacks, in pipeline order.
    pub events: Vec<DegradeEvent>,
}

impl DegradeTrace {
    /// No degradation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the query ran fully on the primary path.
    pub fn is_clean(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether a particular fallback fired.
    pub fn fired(&self, fallback: Fallback) -> bool {
        self.events.iter().any(|e| e.fallback == fallback)
    }

    /// Total virtual retry/timeout delay across events.
    pub fn total_delay(&self) -> Duration {
        self.events.iter().map(|e| e.delay).sum()
    }
}

/// Thread-safe system-wide fallback counters (CLI "degraded mode" report).
#[derive(Debug, Default)]
pub struct FallbackCounters {
    counts: [AtomicU64; 13],
}

impl FallbackCounters {
    /// All-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record every event of `trace`.
    pub fn absorb(&self, trace: &DegradeTrace) {
        for e in &trace.events {
            // sage-lint: allow(panic-reachability) - fallback.idx() is a dense enum index into the fixed counts array
            self.counts[e.fallback.idx()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a single fired fallback (for degradations that produce no
    /// `DegradeTrace`, e.g. a panic isolated at the batch layer).
    pub fn record(&self, fallback: Fallback) {
        self.counts[fallback.idx()].fetch_add(1, Ordering::Relaxed);
    }

    /// Count for one fallback kind.
    pub fn get(&self, fallback: Fallback) -> u64 {
        self.counts[fallback.idx()].load(Ordering::Relaxed)
    }

    /// Snapshot as `(label, count)` pairs, nonzero entries only.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        Fallback::ALL
            .iter()
            .map(|f| (f.label(), self.get(*f)))
            .filter(|(_, n)| *n > 0)
            .collect()
    }

    /// Sum over all fallback kinds.
    pub fn total(&self) -> u64 {
        Fallback::ALL.iter().map(|f| self.get(*f)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Component;

    fn event(fallback: Fallback) -> DegradeEvent {
        DegradeEvent {
            component: Component::Reader,
            fallback,
            error: SageError::ComponentFailed { component: Component::Reader, attempts: 3 },
            attempts: 3,
            delay: Duration::from_millis(150),
        }
    }

    #[test]
    fn trace_queries() {
        let mut t = DegradeTrace::new();
        assert!(t.is_clean());
        t.events.push(event(Fallback::ReaderSecondBest));
        t.events.push(event(Fallback::RerankToRetrievalOrder));
        assert!(!t.is_clean());
        assert!(t.fired(Fallback::ReaderSecondBest));
        assert!(!t.fired(Fallback::DenseToBm25));
        assert_eq!(t.total_delay(), Duration::from_millis(300));
    }

    #[test]
    fn shard_partial_renders_the_loss_ratio_and_shares_one_counter() {
        let rung = Fallback::ShardPartial { lost: 1, total: 4 };
        assert_eq!(rung.to_string(), "shard-partial:1/4");
        assert_eq!(rung.label(), "shard-partial");
        assert!(rung.is_shard_partial());
        assert_eq!(rung.brownout_step(), None);
        let c = FallbackCounters::new();
        c.record(rung);
        c.record(Fallback::ShardPartial { lost: 2, total: 4 });
        assert_eq!(c.get(Fallback::ShardPartial { lost: 0, total: 0 }), 2);
        assert_eq!(c.snapshot(), vec![("shard-partial", 2)]);
        let mut t = DegradeTrace::new();
        t.events.push(event(rung));
        assert!(t.fired(rung));
        assert!(t.events.iter().any(|e| e.fallback.is_shard_partial()));
    }

    #[test]
    fn counters_absorb_and_snapshot() {
        let c = FallbackCounters::new();
        let mut t = DegradeTrace::new();
        t.events.push(event(Fallback::HnswToFlat));
        t.events.push(event(Fallback::HnswToFlat));
        t.events.push(event(Fallback::DenseToBm25));
        c.absorb(&t);
        assert_eq!(c.get(Fallback::HnswToFlat), 2);
        assert_eq!(c.get(Fallback::DenseToBm25), 1);
        assert_eq!(c.total(), 3);
        let snap = c.snapshot();
        assert_eq!(snap, vec![("hnsw->flat", 2), ("dense->bm25", 1)]);
    }
}
