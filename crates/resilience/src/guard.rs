//! The boundary wrapper: fault roll → breaker check → call → validate →
//! retry with backoff → structured failure.

use crate::breaker::CircuitBreaker;
use crate::error::SageError;
use crate::fault::{Component, FaultKind, FaultPlan};
use crate::retry::{RetryPolicy, VirtualClock};
use std::time::Duration;

/// Everything a failed guarded call can tell its caller (feeds a
/// `DegradeEvent`).
#[derive(Debug, Clone, PartialEq)]
pub struct Failure {
    /// The terminal error.
    pub error: SageError,
    /// Attempts actually made (0 when the breaker fast-failed).
    pub attempts: u32,
    /// Virtual backoff/timeout time charged.
    pub delay: Duration,
}

/// A guarded component boundary: shares one fault plan, retry policy,
/// clock, and per-component breaker.
pub struct Guard<'a> {
    /// The fault plan consulted per attempt.
    pub plan: &'a FaultPlan,
    /// Retry/backoff policy.
    pub policy: &'a RetryPolicy,
    /// The shared virtual clock.
    pub clock: &'a VirtualClock,
    /// This component's breaker.
    pub breaker: &'a CircuitBreaker,
}

impl Guard<'_> {
    /// Run `op` at the `component` boundary under the fault plan.
    ///
    /// * `key` identifies the call content (determinism handle).
    /// * `corrupt` mutates the result the way an injected corrupt response
    ///   would (truncation, NaN poisoning, ...).
    /// * `valid` is the caller's response validation; corrupt responses —
    ///   injected or organic — must fail it to be caught.
    ///
    /// Injected [`FaultKind::Panic`] faults panic out of this function by
    /// design: panic isolation is the *batch* layer's job (`catch_unwind`
    /// around each question), and the panic must travel through the whole
    /// stack to prove that layer works.
    pub fn run<T>(
        &self,
        component: Component,
        key: &str,
        mut op: impl FnMut() -> T,
        corrupt: impl Fn(&mut T),
        valid: impl Fn(&T) -> bool,
    ) -> Result<T, Failure> {
        let mut delay = Duration::ZERO;
        let max_attempts = self.policy.max_attempts.max(1);
        for attempt in 0..max_attempts {
            if self.breaker.is_open(self.clock) {
                return Err(Failure {
                    error: SageError::CircuitOpen { component },
                    attempts: attempt,
                    delay,
                });
            }
            let fault = self.plan.inject(component, key, attempt);
            let outcome: Result<T, SageError> = match fault {
                Some(FaultKind::Panic) => {
                    // sage-lint: allow(panic-reachability) - fault injection panics on purpose; serving callers catch it at the unwind boundary
                    panic!("injected panic at {component} for call {key:?}")
                }
                Some(FaultKind::Transient) => {
                    Err(SageError::ComponentFailed { component, attempts: attempt + 1 })
                }
                Some(FaultKind::Timeout) => {
                    self.clock.advance(self.policy.timeout);
                    delay += self.policy.timeout;
                    Err(SageError::ComponentFailed { component, attempts: attempt + 1 })
                }
                Some(FaultKind::Corrupt) => {
                    let mut value = op();
                    corrupt(&mut value);
                    if valid(&value) {
                        // Corruption the validator cannot see is
                        // indistinguishable from success; let it through
                        // (this mirrors reality — undetectable corruption
                        // is a validation gap, not a retry trigger).
                        Ok(value)
                    } else {
                        Err(SageError::Corrupted { component })
                    }
                }
                None => {
                    let value = op();
                    if valid(&value) {
                        Ok(value)
                    } else {
                        Err(SageError::Corrupted { component })
                    }
                }
            };
            match outcome {
                Ok(value) => {
                    self.breaker.record_success();
                    return Ok(value);
                }
                Err(error) => {
                    self.breaker.record_failure(self.clock.now());
                    if attempt + 1 < max_attempts {
                        let mut rng = self.plan.call_rng(component, key, attempt | 0x8000_0000);
                        let backoff = self.policy.backoff(attempt, &mut rng);
                        self.clock.advance(backoff);
                        delay += backoff;
                    } else {
                        return Err(Failure {
                            error: match error {
                                SageError::Corrupted { .. } => error,
                                _ => SageError::ComponentFailed {
                                    component,
                                    attempts: max_attempts,
                                },
                            },
                            attempts: max_attempts,
                            delay,
                        });
                    }
                }
            }
        }
        // sage-lint: allow(panic-reachability) - every loop arm returns a value or a Failure; this line only documents that
        unreachable!("loop always returns");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerConfig;
    use crate::fault::Rates;

    fn harness(plan: FaultPlan) -> (FaultPlan, RetryPolicy, VirtualClock, CircuitBreaker) {
        (plan, RetryPolicy::default(), VirtualClock::new(), CircuitBreaker::new(BreakerConfig::default()))
    }

    fn no_corrupt(_: &mut u32) {}
    fn always_valid(_: &u32) -> bool {
        true
    }

    #[test]
    fn clean_call_passes_through_once() {
        let (plan, policy, clock, breaker) = harness(FaultPlan::none());
        let guard = Guard { plan: &plan, policy: &policy, clock: &clock, breaker: &breaker };
        let mut calls = 0;
        let out = guard.run(
            Component::Embedder,
            "k",
            || {
                calls += 1;
                7u32
            },
            no_corrupt,
            always_valid,
        );
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls, 1);
        assert_eq!(clock.now(), Duration::ZERO, "no backoff charged");
    }

    #[test]
    fn permanent_fault_exhausts_retries_with_virtual_backoff() {
        let (plan, policy, clock, breaker) =
            harness(FaultPlan::failing(Component::Reader, FaultKind::Transient));
        let guard = Guard { plan: &plan, policy: &policy, clock: &clock, breaker: &breaker };
        let out = guard.run(Component::Reader, "k", || 1u32, no_corrupt, always_valid);
        let failure = out.unwrap_err();
        assert_eq!(
            failure.error,
            SageError::ComponentFailed { component: Component::Reader, attempts: 3 }
        );
        assert_eq!(failure.attempts, 3);
        assert!(failure.delay > Duration::ZERO, "backoff was charged");
        assert_eq!(clock.now(), failure.delay, "clock advanced by exactly the backoff");
    }

    #[test]
    fn transient_fault_clears_on_retry() {
        // Find a key where attempt 0 faults but attempt 1 does not.
        let plan = FaultPlan::seeded(3)
            .with(Component::Reader, Rates { transient: 0.5, ..Rates::default() });
        let key = (0..200)
            .map(|i| format!("q{i}"))
            .find(|k| {
                plan.inject(Component::Reader, k, 0).is_some()
                    && plan.inject(Component::Reader, k, 1).is_none()
            })
            .expect("some key recovers on retry");
        let policy = RetryPolicy::default();
        let clock = VirtualClock::new();
        let breaker = CircuitBreaker::new(BreakerConfig::default());
        let guard = Guard { plan: &plan, policy: &policy, clock: &clock, breaker: &breaker };
        let mut calls = 0;
        let out = guard.run(
            Component::Reader,
            &key,
            || {
                calls += 1;
                9u32
            },
            no_corrupt,
            always_valid,
        );
        assert_eq!(out.unwrap(), 9);
        assert_eq!(calls, 1, "faulted attempts never reach the op");
        assert!(clock.now() > Duration::ZERO, "one backoff charged");
    }

    #[test]
    fn corrupt_fault_is_caught_by_validation() {
        let (plan, policy, clock, breaker) =
            harness(FaultPlan::failing(Component::Embedder, FaultKind::Corrupt));
        let guard = Guard { plan: &plan, policy: &policy, clock: &clock, breaker: &breaker };
        let out = guard.run(
            Component::Embedder,
            "k",
            || 5u32,
            |v| *v = u32::MAX,
            |v| *v != u32::MAX,
        );
        assert_eq!(
            out.unwrap_err().error,
            SageError::Corrupted { component: Component::Embedder }
        );
    }

    #[test]
    fn undetectable_corruption_passes_validation() {
        let (plan, policy, clock, breaker) =
            harness(FaultPlan::failing(Component::Embedder, FaultKind::Corrupt));
        let guard = Guard { plan: &plan, policy: &policy, clock: &clock, breaker: &breaker };
        let out =
            guard.run(Component::Embedder, "k", || 5u32, |_| {}, always_valid);
        assert_eq!(out.unwrap(), 5, "no-op corruption is invisible");
    }

    #[test]
    #[should_panic(expected = "injected panic at reader")]
    fn panic_fault_propagates() {
        let (plan, policy, clock, breaker) =
            harness(FaultPlan::failing(Component::Reader, FaultKind::Panic));
        let guard = Guard { plan: &plan, policy: &policy, clock: &clock, breaker: &breaker };
        let _ = guard.run(Component::Reader, "k", || 1u32, no_corrupt, always_valid);
    }

    #[test]
    fn open_breaker_fast_fails_without_calling() {
        let (plan, policy, clock, breaker) = harness(FaultPlan::none());
        for _ in 0..BreakerConfig::default().failure_threshold {
            breaker.record_failure(clock.now());
        }
        let guard = Guard { plan: &plan, policy: &policy, clock: &clock, breaker: &breaker };
        let mut calls = 0;
        let out = guard.run(
            Component::IndexSearch,
            "k",
            || {
                calls += 1;
                1u32
            },
            no_corrupt,
            always_valid,
        );
        assert_eq!(
            out.unwrap_err().error,
            SageError::CircuitOpen { component: Component::IndexSearch }
        );
        assert_eq!(calls, 0, "primary skipped while open");
    }

    #[test]
    fn breaker_recovers_through_half_open() {
        let (plan, policy, clock, breaker) = harness(FaultPlan::none());
        for _ in 0..5 {
            breaker.record_failure(clock.now());
        }
        assert!(breaker.is_open(&clock));
        clock.advance(BreakerConfig::default().cooldown + Duration::from_secs(1));
        let guard = Guard { plan: &plan, policy: &policy, clock: &clock, breaker: &breaker };
        let out = guard.run(Component::IndexSearch, "k", || 2u32, no_corrupt, always_valid);
        assert_eq!(out.unwrap(), 2, "half-open probe succeeds and closes");
        assert!(!breaker.is_open(&clock));
    }

    #[test]
    fn timeout_fault_charges_the_deadline() {
        let plan = FaultPlan::failing(Component::Reranker, FaultKind::Timeout);
        let policy = RetryPolicy { max_attempts: 1, ..RetryPolicy::default() };
        let clock = VirtualClock::new();
        let breaker = CircuitBreaker::new(BreakerConfig::default());
        let guard = Guard { plan: &plan, policy: &policy, clock: &clock, breaker: &breaker };
        let out = guard.run(Component::Reranker, "k", || 1u32, no_corrupt, always_valid);
        assert!(out.is_err());
        assert_eq!(clock.now(), policy.timeout, "deadline charged on the virtual clock");
    }
}
