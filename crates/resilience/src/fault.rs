//! Deterministic, seeded fault plans.
//!
//! A [`FaultPlan`] decides, per component call, whether to inject a fault
//! and which kind. The decision is a pure function of the plan seed, the
//! component, a caller-supplied *call key* (typically the question or call
//! content), and the attempt number — never of wall-clock time, thread
//! scheduling, or global counters. Two runs of the same workload under the
//! same plan therefore fault identically, which is what makes degraded-mode
//! behaviour unit-testable.

use crate::fnv1a;
use crate::rng::DetRng;

/// The serving-path component boundaries where faults can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Query embedding (the dense retriever's encoder call).
    Embedder,
    /// Vector-index search (the ANN / flat lookup).
    IndexSearch,
    /// Second-stage reranking.
    Reranker,
    /// The (simulated) LLM generation call.
    Reader,
}

impl Component {
    /// All components, in injection order.
    pub const ALL: [Component; 4] =
        [Component::Embedder, Component::IndexSearch, Component::Reranker, Component::Reader];

    /// Stable index for per-component tables.
    pub fn idx(self) -> usize {
        match self {
            Component::Embedder => 0,
            Component::IndexSearch => 1,
            Component::Reranker => 2,
            Component::Reader => 3,
        }
    }

    /// Display label ("embedder", "index", ...).
    pub fn label(self) -> &'static str {
        match self {
            Component::Embedder => "embedder",
            Component::IndexSearch => "index",
            Component::Reranker => "reranker",
            Component::Reader => "reader",
        }
    }

    /// Parse a CLI token ("embedder" | "index" | "reranker" | "reader").
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "embedder" | "embed" => Some(Component::Embedder),
            "index" | "search" => Some(Component::IndexSearch),
            "reranker" | "rerank" => Some(Component::Reranker),
            "reader" | "llm" => Some(Component::Reader),
            _ => None,
        }
    }
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The kinds of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The call fails outright but may succeed on retry.
    Transient,
    /// The call exceeds its deadline (virtual time is charged).
    Timeout,
    /// The call returns a truncated/corrupt response that validation must
    /// catch.
    Corrupt,
    /// The call panics (exercises the panic-isolation layer).
    Panic,
}

impl FaultKind {
    /// Parse a CLI token ("transient" | "timeout" | "corrupt" | "panic").
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "transient" | "fail" => Some(FaultKind::Transient),
            "timeout" => Some(FaultKind::Timeout),
            "corrupt" => Some(FaultKind::Corrupt),
            "panic" => Some(FaultKind::Panic),
            _ => None,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Timeout => "timeout",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Panic => "panic",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-component fault probabilities in `[0, 1]`. Checked in order
/// panic → corrupt → timeout → transient against one uniform draw, so the
/// rates are cumulative mass, not independent coins.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Rates {
    /// Probability of an injected panic.
    pub panic: f64,
    /// Probability of a corrupt response.
    pub corrupt: f64,
    /// Probability of a (virtual) timeout.
    pub timeout: f64,
    /// Probability of a transient failure.
    pub transient: f64,
}

impl Rates {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// 100% of calls suffer `kind`.
    pub fn always(kind: FaultKind) -> Self {
        let mut r = Self::default();
        match kind {
            FaultKind::Transient => r.transient = 1.0,
            FaultKind::Timeout => r.timeout = 1.0,
            FaultKind::Corrupt => r.corrupt = 1.0,
            FaultKind::Panic => r.panic = 1.0,
        }
        r
    }

    fn total(&self) -> f64 {
        self.panic + self.corrupt + self.timeout + self.transient
    }
}

/// The maximum shard index a shard-scoped fault entry may target. High
/// enough for the throughput-scaling grid (1/2/4/8 shards) with headroom;
/// fixed so the plan stays a flat value type.
pub const MAX_FAULT_SHARDS: usize = 16;

/// A deterministic fault-injection plan over all four components, plus
/// optional *shard-scoped* rates: `shard:<idx>:<kind>[:<rate>]` entries
/// target one fault domain of the scatter-gather layer instead of a whole
/// component, so a drill can take down shard 2 while its siblings serve.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: [Rates; 4],
    shard_rates: [Rates; MAX_FAULT_SHARDS],
}

impl FaultPlan {
    /// A plan that injects nothing (the production default: the resilience
    /// machinery runs, but every call succeeds on the first attempt).
    pub fn none() -> Self {
        Self::seeded(0)
    }

    /// An empty plan with the given seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            rates: [Rates::default(); 4],
            shard_rates: [Rates::default(); MAX_FAULT_SHARDS],
        }
    }

    /// Builder: set the rates for one component.
    pub fn with(mut self, component: Component, rates: Rates) -> Self {
        self.rates[component.idx()] = rates;
        self
    }

    /// Convenience: a plan where 100% of `component` calls suffer `kind`.
    pub fn failing(component: Component, kind: FaultKind) -> Self {
        Self::seeded(0).with(component, Rates::always(kind))
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The rates configured for `component`.
    pub fn rates(&self, component: Component) -> Rates {
        self.rates[component.idx()]
    }

    /// Builder: set the shard-scoped rates for one fault domain.
    pub fn with_shard(mut self, shard: u32, rates: Rates) -> Self {
        if let Some(slot) = self.shard_rates.get_mut(shard as usize) {
            *slot = rates;
        }
        self
    }

    /// The rates configured for fault domain `shard` (zero for shards
    /// beyond [`MAX_FAULT_SHARDS`]).
    pub fn shard_rates(&self, shard: u32) -> Rates {
        self.shard_rates.get(shard as usize).copied().unwrap_or_default()
    }

    /// Whether any component or shard has a nonzero fault rate.
    pub fn is_active(&self) -> bool {
        self.rates.iter().any(|r| r.total() > 0.0) || self.has_shard_faults()
    }

    /// Whether any shard-scoped entry is configured.
    pub fn has_shard_faults(&self) -> bool {
        self.shard_rates.iter().any(|r| r.total() > 0.0)
    }

    /// Deterministic per-call RNG for `(component, key, attempt)` — also
    /// used by the retry layer for backoff jitter.
    pub fn call_rng(&self, component: Component, key: &str, attempt: u32) -> DetRng {
        let mut h = fnv1a(key.as_bytes(), self.seed);
        h = h
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(((component.idx() as u64) << 32) | u64::from(attempt));
        DetRng::seed_from_u64(h)
    }

    /// Parse a CLI fault spec: comma-separated `component=kind[:rate]`
    /// entries, e.g. `"reader=transient:1.0,embedder=timeout:0.5"`. The
    /// rate defaults to `1.0`; repeated entries for one component stack
    /// (cumulative mass, capped at 1 total by validation).
    pub fn parse_spec(spec: &str, seed: u64) -> Result<Self, String> {
        let mut plan = FaultPlan::seeded(seed);
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            // Shard-scoped grammar: `shard:<idx>:<kind>[:<rate>]`, e.g.
            // `shard:2:slow` or `shard:0:down:0.5`. Parsed before the
            // component split because these entries carry no `=`.
            if let Some(rest) = entry.strip_prefix("shard:") {
                plan = plan.parse_shard_entry(rest, entry)?;
                continue;
            }
            let (comp_s, rest) = entry
                .split_once('=')
                .ok_or_else(|| format!("bad fault entry {entry:?}: want component=kind[:rate]"))?;
            let component = Component::parse(comp_s.trim())
                .ok_or_else(|| format!("unknown component {:?} (embedder|index|reranker|reader)", comp_s.trim()))?;
            let (kind_s, rate_s) = match rest.split_once(':') {
                Some((k, r)) => (k.trim(), Some(r.trim())),
                None => (rest.trim(), None),
            };
            let kind = FaultKind::parse(kind_s)
                .ok_or_else(|| format!("unknown fault kind {kind_s:?} (transient|timeout|corrupt|panic)"))?;
            let rate: f64 = match rate_s {
                Some(r) => r.parse().map_err(|_| format!("bad fault rate {r:?}"))?,
                None => 1.0,
            };
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate {rate} out of [0, 1]"));
            }
            let mut rates = plan.rates(component);
            match kind {
                FaultKind::Transient => rates.transient += rate,
                FaultKind::Timeout => rates.timeout += rate,
                FaultKind::Corrupt => rates.corrupt += rate,
                FaultKind::Panic => rates.panic += rate,
            }
            if rates.total() > 1.0 + 1e-9 {
                return Err(format!("total fault mass for {component} exceeds 1"));
            }
            plan = plan.with(component, rates);
        }
        Ok(plan)
    }

    /// One `shard:`-stripped spec entry: `<idx>:<kind>[:<rate>]`. Shard
    /// kinds accept serving-oriented aliases on top of the component kinds:
    /// `slow` (timeout) and `down` (transient/unavailable).
    fn parse_shard_entry(self, rest: &str, entry: &str) -> Result<Self, String> {
        let mut parts = rest.splitn(3, ':').map(str::trim);
        let idx_s = parts.next().unwrap_or("");
        let shard: u32 = idx_s
            .parse()
            .map_err(|_| format!("bad shard index {idx_s:?} in {entry:?}"))?;
        if shard as usize >= MAX_FAULT_SHARDS {
            return Err(format!("shard index {shard} out of range (max {})", MAX_FAULT_SHARDS - 1));
        }
        let kind_s = parts
            .next()
            .ok_or_else(|| format!("bad shard entry {entry:?}: want shard:<idx>:<kind>[:<rate>]"))?;
        let kind = match kind_s {
            "slow" => FaultKind::Timeout,
            "down" => FaultKind::Transient,
            other => FaultKind::parse(other).ok_or_else(|| {
                format!("unknown shard fault kind {other:?} (slow|down|transient|timeout|corrupt|panic)")
            })?,
        };
        let rate: f64 = match parts.next() {
            Some(r) => r.parse().map_err(|_| format!("bad fault rate {r:?}"))?,
            None => 1.0,
        };
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("fault rate {rate} out of [0, 1]"));
        }
        let mut rates = self.shard_rates(shard);
        match kind {
            FaultKind::Transient => rates.transient += rate,
            FaultKind::Timeout => rates.timeout += rate,
            FaultKind::Corrupt => rates.corrupt += rate,
            FaultKind::Panic => rates.panic += rate,
        }
        if rates.total() > 1.0 + 1e-9 {
            return Err(format!("total fault mass for shard {shard} exceeds 1"));
        }
        Ok(self.with_shard(shard, rates))
    }

    /// Decide whether the call identified by `(component, key, attempt)`
    /// faults, and how.
    pub fn inject(&self, component: Component, key: &str, attempt: u32) -> Option<FaultKind> {
        // sage-lint: allow(panic-reachability) - component.idx() is a dense enum index into the fixed rates array
        let rates = self.rates[component.idx()];
        if rates.total() <= 0.0 {
            return None;
        }
        Self::draw(rates, self.call_rng(component, key, attempt))
    }

    /// Deterministic per-probe RNG for `(shard, key, attempt)`. Mixed with
    /// a shard-distinct constant so a shard-scoped stream never collides
    /// with a component stream for the same key.
    pub fn shard_rng(&self, shard: u32, key: &str, attempt: u32) -> DetRng {
        let mut h = fnv1a(key.as_bytes(), self.seed ^ 0x5348_4152_4400_0000); // "SHARD"
        h = h
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((u64::from(shard) << 32) | u64::from(attempt));
        DetRng::seed_from_u64(h)
    }

    /// Decide whether the probe of fault domain `shard` identified by
    /// `(key, attempt)` faults, and how. Attempt 1 is the hedged replica
    /// probe — an independent draw, so a transient shard fault can clear
    /// on the hedge exactly like a component retry.
    pub fn inject_shard(&self, shard: u32, key: &str, attempt: u32) -> Option<FaultKind> {
        let rates = self.shard_rates(shard);
        if rates.total() <= 0.0 {
            return None;
        }
        Self::draw(rates, self.shard_rng(shard, key, attempt))
    }

    /// One cumulative-mass draw in the documented order
    /// panic → corrupt → timeout → transient.
    fn draw(rates: Rates, mut rng: DetRng) -> Option<FaultKind> {
        let u: f64 = rng.next_f64();
        let mut acc = rates.panic;
        if u < acc {
            return Some(FaultKind::Panic);
        }
        acc += rates.corrupt;
        if u < acc {
            return Some(FaultKind::Corrupt);
        }
        acc += rates.timeout;
        if u < acc {
            return Some(FaultKind::Timeout);
        }
        acc += rates.transient;
        if u < acc {
            return Some(FaultKind::Transient);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_faults() {
        let plan = FaultPlan::none();
        for c in Component::ALL {
            for a in 0..4 {
                assert_eq!(plan.inject(c, "any key", a), None);
            }
        }
        assert!(!plan.is_active());
    }

    #[test]
    fn full_rate_always_faults_with_that_kind() {
        let plan = FaultPlan::failing(Component::Reader, FaultKind::Transient);
        for a in 0..4 {
            assert_eq!(plan.inject(Component::Reader, "q", a), Some(FaultKind::Transient));
        }
        // Other components are untouched.
        assert_eq!(plan.inject(Component::Embedder, "q", 0), None);
        assert!(plan.is_active());
    }

    #[test]
    fn decisions_are_deterministic_and_key_dependent() {
        let plan = FaultPlan::seeded(42)
            .with(Component::Embedder, Rates { transient: 0.5, ..Rates::default() });
        let a = plan.inject(Component::Embedder, "question one", 0);
        let b = plan.inject(Component::Embedder, "question one", 0);
        assert_eq!(a, b, "same key must fault identically");
        // Across many keys roughly half fault (loose bounds).
        let fired = (0..200)
            .filter(|i| plan.inject(Component::Embedder, &format!("k{i}"), 0).is_some())
            .count();
        assert!((40..160).contains(&fired), "rate 0.5 fired {fired}/200");
    }

    #[test]
    fn attempts_are_independent_draws() {
        let plan = FaultPlan::seeded(7)
            .with(Component::Reader, Rates { transient: 0.5, ..Rates::default() });
        // Some key must exist where attempt 0 faults but a later attempt
        // succeeds — that's what makes retries meaningful.
        let recovered = (0..100).any(|i| {
            let key = format!("q{i}");
            plan.inject(Component::Reader, &key, 0).is_some()
                && (1..4).any(|a| plan.inject(Component::Reader, &key, a).is_none())
        });
        assert!(recovered, "retries must be able to clear transient faults");
    }

    #[test]
    fn kinds_parse_and_display() {
        for kind in [FaultKind::Transient, FaultKind::Timeout, FaultKind::Corrupt, FaultKind::Panic]
        {
            assert_eq!(FaultKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(FaultKind::parse("nope"), None);
        assert_eq!(Component::Reader.to_string(), "reader");
    }

    #[test]
    fn specs_parse_and_reject() {
        let plan = FaultPlan::parse_spec("reader=transient:1.0,embedder=timeout:0.5", 7).unwrap();
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.rates(Component::Reader).transient, 1.0);
        assert_eq!(plan.rates(Component::Embedder).timeout, 0.5);
        // Default rate is 1.0; aliases accepted.
        let plan = FaultPlan::parse_spec("rerank=corrupt", 0).unwrap();
        assert_eq!(plan.rates(Component::Reranker).corrupt, 1.0);
        // Empty spec → inactive plan.
        assert!(!FaultPlan::parse_spec("", 0).unwrap().is_active());
        for bad in ["nope=transient", "reader=nope", "reader=transient:2.0", "reader",
                    "reader=transient:0.7,reader=timeout:0.7"] {
            assert!(FaultPlan::parse_spec(bad, 0).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn shard_specs_parse_and_reject() {
        let plan = FaultPlan::parse_spec("shard:2:slow,shard:0:down:0.5", 9).unwrap();
        assert_eq!(plan.shard_rates(2).timeout, 1.0, "slow aliases timeout");
        assert_eq!(plan.shard_rates(0).transient, 0.5, "down aliases transient");
        assert!(plan.is_active() && plan.has_shard_faults());
        // Shard entries compose with component entries in one spec.
        let mixed = FaultPlan::parse_spec("reader=transient:0.3,shard:1:corrupt", 0).unwrap();
        assert_eq!(mixed.rates(Component::Reader).transient, 0.3);
        assert_eq!(mixed.shard_rates(1).corrupt, 1.0);
        for bad in ["shard:x:slow", "shard:1:warp", "shard:1", "shard:99:slow",
                    "shard:1:slow:2.0", "shard:1:slow:0.7,shard:1:down:0.7"] {
            assert!(FaultPlan::parse_spec(bad, 0).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn shard_injection_is_deterministic_and_scoped() {
        let plan = FaultPlan::parse_spec("shard:1:down", 42).unwrap();
        assert_eq!(plan.inject_shard(1, "q", 0), Some(FaultKind::Transient));
        assert_eq!(plan.inject_shard(1, "q", 0), plan.inject_shard(1, "q", 0));
        assert_eq!(plan.inject_shard(0, "q", 0), None, "other shards untouched");
        assert_eq!(plan.inject(Component::IndexSearch, "q", 0), None, "components untouched");
        // A fractional rate must let the hedged probe (attempt 1) clear
        // faults for some keys — that's what makes hedging meaningful.
        let flaky = FaultPlan::parse_spec("shard:1:down:0.5", 7).unwrap();
        let recovered = (0..100).any(|i| {
            let key = format!("q{i}");
            flaky.inject_shard(1, &key, 0).is_some() && flaky.inject_shard(1, &key, 1).is_none()
        });
        assert!(recovered, "hedged probes must be independent draws");
    }

    #[test]
    fn seeds_change_decisions() {
        let r = Rates { transient: 0.5, ..Rates::default() };
        let a = FaultPlan::seeded(1).with(Component::Reranker, r);
        let b = FaultPlan::seeded(2).with(Component::Reranker, r);
        let differs = (0..100).any(|i| {
            let k = format!("k{i}");
            a.inject(Component::Reranker, &k, 0) != b.inject(Component::Reranker, &k, 0)
        });
        assert!(differs, "different seeds should differ somewhere");
    }
}
