//! Deterministic, seeded fault plans.
//!
//! A [`FaultPlan`] decides, per component call, whether to inject a fault
//! and which kind. The decision is a pure function of the plan seed, the
//! component, a caller-supplied *call key* (typically the question or call
//! content), and the attempt number — never of wall-clock time, thread
//! scheduling, or global counters. Two runs of the same workload under the
//! same plan therefore fault identically, which is what makes degraded-mode
//! behaviour unit-testable.

use crate::fnv1a;
use crate::rng::DetRng;

/// The serving-path component boundaries where faults can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Query embedding (the dense retriever's encoder call).
    Embedder,
    /// Vector-index search (the ANN / flat lookup).
    IndexSearch,
    /// Second-stage reranking.
    Reranker,
    /// The (simulated) LLM generation call.
    Reader,
}

impl Component {
    /// All components, in injection order.
    pub const ALL: [Component; 4] =
        [Component::Embedder, Component::IndexSearch, Component::Reranker, Component::Reader];

    /// Stable index for per-component tables.
    pub fn idx(self) -> usize {
        match self {
            Component::Embedder => 0,
            Component::IndexSearch => 1,
            Component::Reranker => 2,
            Component::Reader => 3,
        }
    }

    /// Display label ("embedder", "index", ...).
    pub fn label(self) -> &'static str {
        match self {
            Component::Embedder => "embedder",
            Component::IndexSearch => "index",
            Component::Reranker => "reranker",
            Component::Reader => "reader",
        }
    }

    /// Parse a CLI token ("embedder" | "index" | "reranker" | "reader").
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "embedder" | "embed" => Some(Component::Embedder),
            "index" | "search" => Some(Component::IndexSearch),
            "reranker" | "rerank" => Some(Component::Reranker),
            "reader" | "llm" => Some(Component::Reader),
            _ => None,
        }
    }
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The kinds of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The call fails outright but may succeed on retry.
    Transient,
    /// The call exceeds its deadline (virtual time is charged).
    Timeout,
    /// The call returns a truncated/corrupt response that validation must
    /// catch.
    Corrupt,
    /// The call panics (exercises the panic-isolation layer).
    Panic,
}

impl FaultKind {
    /// Parse a CLI token ("transient" | "timeout" | "corrupt" | "panic").
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "transient" | "fail" => Some(FaultKind::Transient),
            "timeout" => Some(FaultKind::Timeout),
            "corrupt" => Some(FaultKind::Corrupt),
            "panic" => Some(FaultKind::Panic),
            _ => None,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Timeout => "timeout",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Panic => "panic",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-component fault probabilities in `[0, 1]`. Checked in order
/// panic → corrupt → timeout → transient against one uniform draw, so the
/// rates are cumulative mass, not independent coins.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Rates {
    /// Probability of an injected panic.
    pub panic: f64,
    /// Probability of a corrupt response.
    pub corrupt: f64,
    /// Probability of a (virtual) timeout.
    pub timeout: f64,
    /// Probability of a transient failure.
    pub transient: f64,
}

impl Rates {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// 100% of calls suffer `kind`.
    pub fn always(kind: FaultKind) -> Self {
        let mut r = Self::default();
        match kind {
            FaultKind::Transient => r.transient = 1.0,
            FaultKind::Timeout => r.timeout = 1.0,
            FaultKind::Corrupt => r.corrupt = 1.0,
            FaultKind::Panic => r.panic = 1.0,
        }
        r
    }

    fn total(&self) -> f64 {
        self.panic + self.corrupt + self.timeout + self.transient
    }
}

/// A deterministic fault-injection plan over all four components.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: [Rates; 4],
}

impl FaultPlan {
    /// A plan that injects nothing (the production default: the resilience
    /// machinery runs, but every call succeeds on the first attempt).
    pub fn none() -> Self {
        Self { seed: 0, rates: [Rates::default(); 4] }
    }

    /// An empty plan with the given seed.
    pub fn seeded(seed: u64) -> Self {
        Self { seed, rates: [Rates::default(); 4] }
    }

    /// Builder: set the rates for one component.
    pub fn with(mut self, component: Component, rates: Rates) -> Self {
        self.rates[component.idx()] = rates;
        self
    }

    /// Convenience: a plan where 100% of `component` calls suffer `kind`.
    pub fn failing(component: Component, kind: FaultKind) -> Self {
        Self::seeded(0).with(component, Rates::always(kind))
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The rates configured for `component`.
    pub fn rates(&self, component: Component) -> Rates {
        self.rates[component.idx()]
    }

    /// Whether any component has a nonzero fault rate.
    pub fn is_active(&self) -> bool {
        self.rates.iter().any(|r| r.total() > 0.0)
    }

    /// Deterministic per-call RNG for `(component, key, attempt)` — also
    /// used by the retry layer for backoff jitter.
    pub fn call_rng(&self, component: Component, key: &str, attempt: u32) -> DetRng {
        let mut h = fnv1a(key.as_bytes(), self.seed);
        h = h
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(((component.idx() as u64) << 32) | u64::from(attempt));
        DetRng::seed_from_u64(h)
    }

    /// Parse a CLI fault spec: comma-separated `component=kind[:rate]`
    /// entries, e.g. `"reader=transient:1.0,embedder=timeout:0.5"`. The
    /// rate defaults to `1.0`; repeated entries for one component stack
    /// (cumulative mass, capped at 1 total by validation).
    pub fn parse_spec(spec: &str, seed: u64) -> Result<Self, String> {
        let mut plan = FaultPlan::seeded(seed);
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (comp_s, rest) = entry
                .split_once('=')
                .ok_or_else(|| format!("bad fault entry {entry:?}: want component=kind[:rate]"))?;
            let component = Component::parse(comp_s.trim())
                .ok_or_else(|| format!("unknown component {:?} (embedder|index|reranker|reader)", comp_s.trim()))?;
            let (kind_s, rate_s) = match rest.split_once(':') {
                Some((k, r)) => (k.trim(), Some(r.trim())),
                None => (rest.trim(), None),
            };
            let kind = FaultKind::parse(kind_s)
                .ok_or_else(|| format!("unknown fault kind {kind_s:?} (transient|timeout|corrupt|panic)"))?;
            let rate: f64 = match rate_s {
                Some(r) => r.parse().map_err(|_| format!("bad fault rate {r:?}"))?,
                None => 1.0,
            };
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate {rate} out of [0, 1]"));
            }
            let mut rates = plan.rates(component);
            match kind {
                FaultKind::Transient => rates.transient += rate,
                FaultKind::Timeout => rates.timeout += rate,
                FaultKind::Corrupt => rates.corrupt += rate,
                FaultKind::Panic => rates.panic += rate,
            }
            if rates.total() > 1.0 + 1e-9 {
                return Err(format!("total fault mass for {component} exceeds 1"));
            }
            plan = plan.with(component, rates);
        }
        Ok(plan)
    }

    /// Decide whether the call identified by `(component, key, attempt)`
    /// faults, and how.
    pub fn inject(&self, component: Component, key: &str, attempt: u32) -> Option<FaultKind> {
        // sage-lint: allow(panic-reachability) - component.idx() is a dense enum index into the fixed rates array
        let rates = self.rates[component.idx()];
        if rates.total() <= 0.0 {
            return None;
        }
        let mut rng = self.call_rng(component, key, attempt);
        let u: f64 = rng.next_f64();
        let mut acc = rates.panic;
        if u < acc {
            return Some(FaultKind::Panic);
        }
        acc += rates.corrupt;
        if u < acc {
            return Some(FaultKind::Corrupt);
        }
        acc += rates.timeout;
        if u < acc {
            return Some(FaultKind::Timeout);
        }
        acc += rates.transient;
        if u < acc {
            return Some(FaultKind::Transient);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_faults() {
        let plan = FaultPlan::none();
        for c in Component::ALL {
            for a in 0..4 {
                assert_eq!(plan.inject(c, "any key", a), None);
            }
        }
        assert!(!plan.is_active());
    }

    #[test]
    fn full_rate_always_faults_with_that_kind() {
        let plan = FaultPlan::failing(Component::Reader, FaultKind::Transient);
        for a in 0..4 {
            assert_eq!(plan.inject(Component::Reader, "q", a), Some(FaultKind::Transient));
        }
        // Other components are untouched.
        assert_eq!(plan.inject(Component::Embedder, "q", 0), None);
        assert!(plan.is_active());
    }

    #[test]
    fn decisions_are_deterministic_and_key_dependent() {
        let plan = FaultPlan::seeded(42)
            .with(Component::Embedder, Rates { transient: 0.5, ..Rates::default() });
        let a = plan.inject(Component::Embedder, "question one", 0);
        let b = plan.inject(Component::Embedder, "question one", 0);
        assert_eq!(a, b, "same key must fault identically");
        // Across many keys roughly half fault (loose bounds).
        let fired = (0..200)
            .filter(|i| plan.inject(Component::Embedder, &format!("k{i}"), 0).is_some())
            .count();
        assert!((40..160).contains(&fired), "rate 0.5 fired {fired}/200");
    }

    #[test]
    fn attempts_are_independent_draws() {
        let plan = FaultPlan::seeded(7)
            .with(Component::Reader, Rates { transient: 0.5, ..Rates::default() });
        // Some key must exist where attempt 0 faults but a later attempt
        // succeeds — that's what makes retries meaningful.
        let recovered = (0..100).any(|i| {
            let key = format!("q{i}");
            plan.inject(Component::Reader, &key, 0).is_some()
                && (1..4).any(|a| plan.inject(Component::Reader, &key, a).is_none())
        });
        assert!(recovered, "retries must be able to clear transient faults");
    }

    #[test]
    fn kinds_parse_and_display() {
        for kind in [FaultKind::Transient, FaultKind::Timeout, FaultKind::Corrupt, FaultKind::Panic]
        {
            assert_eq!(FaultKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(FaultKind::parse("nope"), None);
        assert_eq!(Component::Reader.to_string(), "reader");
    }

    #[test]
    fn specs_parse_and_reject() {
        let plan = FaultPlan::parse_spec("reader=transient:1.0,embedder=timeout:0.5", 7).unwrap();
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.rates(Component::Reader).transient, 1.0);
        assert_eq!(plan.rates(Component::Embedder).timeout, 0.5);
        // Default rate is 1.0; aliases accepted.
        let plan = FaultPlan::parse_spec("rerank=corrupt", 0).unwrap();
        assert_eq!(plan.rates(Component::Reranker).corrupt, 1.0);
        // Empty spec → inactive plan.
        assert!(!FaultPlan::parse_spec("", 0).unwrap().is_active());
        for bad in ["nope=transient", "reader=nope", "reader=transient:2.0", "reader",
                    "reader=transient:0.7,reader=timeout:0.7"] {
            assert!(FaultPlan::parse_spec(bad, 0).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn seeds_change_decisions() {
        let r = Rates { transient: 0.5, ..Rates::default() };
        let a = FaultPlan::seeded(1).with(Component::Reranker, r);
        let b = FaultPlan::seeded(2).with(Component::Reranker, r);
        let differs = (0..100).any(|i| {
            let k = format!("k{i}");
            a.inject(Component::Reranker, &k, 0) != b.inject(Component::Reranker, &k, 0)
        });
        assert!(differs, "different seeds should differ somewhere");
    }
}
