//! # sage-resilience
//!
//! Fault injection and graceful degradation for the SAGE serving path.
//!
//! The paper's evaluation studies behaviour under *degraded retrieval*
//! (Figure 8 noisy retrieval, Figure 9 missing retrieval); this crate makes
//! component failure a first-class, deterministic, testable input to the
//! pipeline instead of an accident:
//!
//! * [`FaultPlan`] — seeded, content-keyed fault injection at the
//!   component boundaries ([`Component`]: embedder, vector-index search,
//!   reranker, simulated-LLM reader). A decision is a pure function of
//!   `(seed, component, call key, attempt)`, so the same plan over the
//!   same corpus and question reproduces the same faults bit-for-bit,
//!   regardless of thread interleaving.
//! * [`CrashPlan`] — seeded crash injection at durable-write barriers
//!   ([`CrashPoint`]: pre-tmp through pre-manifest-commit), powering the
//!   live corpus store's recovery drills in `sage-core`.
//! * [`RetryPolicy`] + [`VirtualClock`] — bounded attempts with
//!   exponential backoff and deterministic jitter. Time is *virtual*:
//!   backoff and timeout penalties accumulate on a counter instead of
//!   sleeping, so tests of the full retry ladder run in microseconds.
//! * [`CircuitBreaker`] — per-component consecutive-failure breaker with
//!   a virtual-time cooldown and half-open probing.
//! * [`Guard`] — the boundary wrapper combining all three: consult the
//!   breaker, roll the fault plan, run/corrupt/validate the call, retry
//!   with backoff, and report a structured [`SageError`] when exhausted.
//! * [`DegradeTrace`] / [`Fallback`] — per-query record of which
//!   fallbacks fired, surfaced in `QueryResult` and aggregated by
//!   [`FallbackCounters`] for CLI reporting.
//!
//! The degradation chain itself (HNSW→flat, dense→BM25,
//! rerank→retrieval-order, reader→second-best chunks) lives in
//! `sage-core`, which owns the components; this crate is the dependency-
//! free substrate they all share.

pub mod breaker;
pub mod crash;
pub mod error;
pub mod fault;
pub mod guard;
pub mod retry;
pub mod rng;
pub mod trace;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use crash::{CrashPlan, CrashPoint};
pub use error::SageError;
pub use fault::{Component, FaultKind, FaultPlan, Rates};
pub use guard::{Failure, Guard};
pub use retry::{RetryPolicy, VirtualClock};
pub use rng::DetRng;
pub use trace::{DegradeEvent, DegradeTrace, Fallback, FallbackCounters};

/// FNV-1a over `bytes`, folded with `seed` — the deterministic hash behind
/// fault decisions and retry jitter (same construction the simulated LLM
/// uses for per-call RNGs).
pub(crate) fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
