//! Per-component circuit breakers over virtual time.
//!
//! Classic three-state breaker: `Closed` (normal), `Open` (fast-fail to the
//! fallback without attempting the primary), `HalfOpen` (after the cooldown
//! one trial call probes the primary; success closes, failure re-opens).
//! Time is the shared [`crate::VirtualClock`], so breaker behaviour is as
//! deterministic as the fault plan driving it.

use crate::retry::VirtualClock;
use std::sync::Mutex;
use std::time::Duration;

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Virtual-time cooldown before a half-open probe is allowed.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { failure_threshold: 5, cooldown: Duration::from_secs(10) }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow to the primary.
    Closed,
    /// Primary is skipped; callers go straight to the fallback.
    Open,
    /// Cooldown elapsed; the next call probes the primary.
    HalfOpen,
}

#[derive(Debug)]
struct Inner {
    consecutive_failures: u32,
    /// `Some(t)` while open: fast-fail until virtual time `t`.
    open_until: Option<Duration>,
    half_open: bool,
}

/// A thread-safe circuit breaker.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            inner: Mutex::new(Inner {
                consecutive_failures: 0,
                open_until: None,
                half_open: false,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding this short lock cannot leave the breaker
        // logically corrupt; recover the poisoned guard.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The current state at virtual time `now` (transitions Open→HalfOpen
    /// when the cooldown has elapsed).
    pub fn state(&self, now: Duration) -> BreakerState {
        let mut inner = self.lock();
        match inner.open_until {
            Some(t) if now < t => BreakerState::Open,
            Some(_) => {
                inner.open_until = None;
                inner.half_open = true;
                BreakerState::HalfOpen
            }
            None if inner.half_open => BreakerState::HalfOpen,
            None => BreakerState::Closed,
        }
    }

    /// Whether the primary should be skipped right now.
    pub fn is_open(&self, clock: &VirtualClock) -> bool {
        self.state(clock.now()) == BreakerState::Open
    }

    /// Record a successful primary call: close the breaker.
    pub fn record_success(&self) {
        let mut inner = self.lock();
        inner.consecutive_failures = 0;
        inner.open_until = None;
        inner.half_open = false;
    }

    /// Record a failed primary call at virtual time `now`. A failure in
    /// half-open re-opens immediately; otherwise the consecutive-failure
    /// count trips the breaker at the threshold.
    pub fn record_failure(&self, now: Duration) {
        let mut inner = self.lock();
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let trip = inner.half_open
            || inner.consecutive_failures >= self.config.failure_threshold;
        if trip {
            inner.open_until = Some(now + self.config.cooldown);
            inner.half_open = false;
        }
    }

    /// Reset to the pristine closed state.
    pub fn reset(&self) {
        self.record_success();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig { failure_threshold: 3, cooldown: Duration::from_secs(10) }
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let clock = VirtualClock::new();
        let b = CircuitBreaker::new(cfg());
        b.record_failure(clock.now());
        b.record_failure(clock.now());
        assert!(!b.is_open(&clock), "below threshold stays closed");
        b.record_failure(clock.now());
        assert!(b.is_open(&clock), "threshold trips the breaker");
    }

    #[test]
    fn success_resets_the_streak() {
        let clock = VirtualClock::new();
        let b = CircuitBreaker::new(cfg());
        b.record_failure(clock.now());
        b.record_failure(clock.now());
        b.record_success();
        b.record_failure(clock.now());
        b.record_failure(clock.now());
        assert!(!b.is_open(&clock), "streak was reset by the success");
    }

    #[test]
    fn cooldown_leads_to_half_open_then_close_or_reopen() {
        let clock = VirtualClock::new();
        let b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.record_failure(clock.now());
        }
        assert_eq!(b.state(clock.now()), BreakerState::Open);
        clock.advance(Duration::from_secs(11));
        assert_eq!(b.state(clock.now()), BreakerState::HalfOpen, "cooldown elapsed");
        // A half-open failure re-opens immediately (one strike).
        b.record_failure(clock.now());
        assert_eq!(b.state(clock.now()), BreakerState::Open);
        clock.advance(Duration::from_secs(11));
        assert_eq!(b.state(clock.now()), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(clock.now()), BreakerState::Closed);
    }
}
