//! A tiny deterministic RNG (SplitMix64) so fault decisions and retry
//! jitter need no external entropy source — and no external crate. The
//! generator only has to be well-mixed and reproducible, not
//! cryptographic: every stream is derived from a content hash, consumed
//! for a couple of draws, and discarded.

/// Deterministic SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// A generator whose whole stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)` (degenerates to `lo` when `hi <= lo`).
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            lo
        } else {
            lo + self.next_f64() * (hi - lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible_and_seed_sensitive() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        let mut c = DetRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys, "same seed, same stream");
        assert_ne!(xs, zs, "different seed, different stream");
    }

    #[test]
    fn f64_draws_are_in_unit_interval_and_spread() {
        let mut rng = DetRng::seed_from_u64(7);
        let draws: Vec<f64> = (0..1000).map(|_| rng.next_f64()).collect();
        assert!(draws.iter().all(|u| (0.0..1.0).contains(u)));
        let below_half = draws.iter().filter(|u| **u < 0.5).count();
        assert!((300..700).contains(&below_half), "roughly uniform: {below_half}/1000");
    }

    #[test]
    fn range_handles_bounds() {
        let mut rng = DetRng::seed_from_u64(1);
        for _ in 0..100 {
            let x = rng.range_f64(0.8, 1.2);
            assert!((0.8..1.2).contains(&x));
        }
        assert_eq!(rng.range_f64(3.0, 3.0), 3.0, "empty range collapses");
        assert_eq!(rng.range_f64(5.0, 2.0), 5.0, "inverted range collapses");
    }
}
