//! Deterministic crash-point injection for durable-write barriers.
//!
//! A [`CrashPlan`] decides, per write barrier, whether the process "crashes"
//! at that barrier. Like [`FaultPlan`](crate::FaultPlan), the decision is a
//! pure function of `(seed, crash point, commit key)` — never of wall-clock
//! time or global counters — so a soak run that crashes during epoch 17's
//! pre-rename barrier crashes there on every replay.
//!
//! A "crash" is cooperative: the storage layer consults the plan at each
//! barrier of its commit protocol and, when told to crash, abandons the
//! commit *leaving the filesystem exactly as a real crash at that barrier
//! would* (torn tmp file, renamed-but-unreferenced segment, ...). Recovery
//! drills then reopen the store and must find the last committed epoch.

use crate::fnv1a;
use crate::rng::DetRng;

/// The write barriers of the atomic commit protocol
/// (tmp write → fsync → rename → dir fsync → manifest commit) where a
/// crash can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Before the tmp file is created: nothing of this commit reaches disk.
    PreTmp,
    /// After the tmp file is written and fsynced, before the rename: a
    /// stray `*.tmp` file is left behind.
    PostTmp,
    /// Immediately before the rename (same disk state as [`Self::PostTmp`],
    /// but models a crash between the fsync and the rename syscall).
    PreRename,
    /// After the rename and directory fsync: the segment file exists but no
    /// manifest references it — an orphan that recovery must discard.
    PostRename,
    /// Before the manifest is committed: same orphaned-segment state, at
    /// the last instant before the commit becomes durable.
    PreManifest,
}

impl CrashPoint {
    /// All crash points, in barrier order.
    pub const ALL: [CrashPoint; 5] = [
        CrashPoint::PreTmp,
        CrashPoint::PostTmp,
        CrashPoint::PreRename,
        CrashPoint::PostRename,
        CrashPoint::PreManifest,
    ];

    /// Stable index for per-point tables.
    pub fn idx(self) -> usize {
        match self {
            CrashPoint::PreTmp => 0,
            CrashPoint::PostTmp => 1,
            CrashPoint::PreRename => 2,
            CrashPoint::PostRename => 3,
            CrashPoint::PreManifest => 4,
        }
    }

    /// Display label ("pre-tmp", "post-tmp", ...).
    pub fn label(self) -> &'static str {
        match self {
            CrashPoint::PreTmp => "pre-tmp",
            CrashPoint::PostTmp => "post-tmp",
            CrashPoint::PreRename => "pre-rename",
            CrashPoint::PostRename => "post-rename",
            CrashPoint::PreManifest => "pre-manifest",
        }
    }

    /// Parse a CLI token ("pre-tmp" | "post-tmp" | "pre-rename" |
    /// "post-rename" | "pre-manifest").
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "pre-tmp" => Some(CrashPoint::PreTmp),
            "post-tmp" => Some(CrashPoint::PostTmp),
            "pre-rename" => Some(CrashPoint::PreRename),
            "post-rename" => Some(CrashPoint::PostRename),
            "pre-manifest" | "pre-manifest-commit" => Some(CrashPoint::PreManifest),
            _ => None,
        }
    }
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A deterministic crash-injection plan over all five write barriers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashPlan {
    seed: u64,
    rates: [f64; 5],
}

impl CrashPlan {
    /// A plan that never crashes (the production default).
    pub fn none() -> Self {
        Self { seed: 0, rates: [0.0; 5] }
    }

    /// An empty plan with the given seed.
    pub fn seeded(seed: u64) -> Self {
        Self { seed, rates: [0.0; 5] }
    }

    /// Builder: set the crash probability for one barrier.
    pub fn with(mut self, point: CrashPoint, rate: f64) -> Self {
        self.rates[point.idx()] = rate;
        self
    }

    /// Convenience: a plan where 100% of commits crash at `point`.
    pub fn always(point: CrashPoint) -> Self {
        Self::seeded(0).with(point, 1.0)
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The crash rate configured for `point`.
    pub fn rate(&self, point: CrashPoint) -> f64 {
        self.rates[point.idx()]
    }

    /// Whether any barrier has a nonzero crash rate.
    pub fn is_active(&self) -> bool {
        self.rates.iter().any(|&r| r > 0.0)
    }

    /// Parse a CLI crash spec: comma-separated `point[:rate]` entries,
    /// e.g. `"pre-rename,post-tmp:0.5"`. The rate defaults to `1.0`.
    pub fn parse_spec(spec: &str, seed: u64) -> Result<Self, String> {
        let mut plan = CrashPlan::seeded(seed);
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (point_s, rate_s) = match entry.split_once(':') {
                Some((p, r)) => (p.trim(), Some(r.trim())),
                None => (entry, None),
            };
            let point = CrashPoint::parse(point_s).ok_or_else(|| {
                format!(
                    "unknown crash point {point_s:?} \
                     (pre-tmp|post-tmp|pre-rename|post-rename|pre-manifest)"
                )
            })?;
            let rate: f64 = match rate_s {
                Some(r) => r.parse().map_err(|_| format!("bad crash rate {r:?}"))?,
                None => 1.0,
            };
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("crash rate {rate} out of [0, 1]"));
            }
            plan = plan.with(point, rate);
        }
        Ok(plan)
    }

    /// Decide whether the commit identified by `key` (typically
    /// `"epoch:<n>"`) crashes at `point`. Pure in `(seed, point, key)`.
    pub fn crashes_at(&self, point: CrashPoint, key: &str) -> bool {
        // sage-lint: allow(panic-reachability) - point.idx() is a dense enum index into the fixed rates array
        let rate = self.rates[point.idx()];
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let mut h = fnv1a(key.as_bytes(), self.seed);
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add((point.idx() as u64) << 32);
        let mut rng = DetRng::seed_from_u64(h);
        rng.next_f64() < rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_crashes() {
        let plan = CrashPlan::none();
        for p in CrashPoint::ALL {
            assert!(!plan.crashes_at(p, "epoch:1"));
        }
        assert!(!plan.is_active());
    }

    #[test]
    fn always_crashes_only_at_that_point() {
        let plan = CrashPlan::always(CrashPoint::PreRename);
        assert!(plan.crashes_at(CrashPoint::PreRename, "epoch:3"));
        assert!(!plan.crashes_at(CrashPoint::PostRename, "epoch:3"));
        assert!(plan.is_active());
    }

    #[test]
    fn decisions_are_deterministic_and_key_dependent() {
        let plan = CrashPlan::seeded(42).with(CrashPoint::PostTmp, 0.5);
        let a = plan.crashes_at(CrashPoint::PostTmp, "epoch:9");
        let b = plan.crashes_at(CrashPoint::PostTmp, "epoch:9");
        assert_eq!(a, b, "same key must decide identically");
        let fired = (0..200)
            .filter(|i| plan.crashes_at(CrashPoint::PostTmp, &format!("epoch:{i}")))
            .count();
        assert!((40..160).contains(&fired), "rate 0.5 fired {fired}/200");
    }

    #[test]
    fn seeds_change_decisions() {
        let a = CrashPlan::seeded(1).with(CrashPoint::PreManifest, 0.5);
        let b = CrashPlan::seeded(2).with(CrashPoint::PreManifest, 0.5);
        let differs = (0..100).any(|i| {
            let k = format!("epoch:{i}");
            a.crashes_at(CrashPoint::PreManifest, &k) != b.crashes_at(CrashPoint::PreManifest, &k)
        });
        assert!(differs, "different seeds should differ somewhere");
    }

    #[test]
    fn points_parse_and_display() {
        for p in CrashPoint::ALL {
            assert_eq!(CrashPoint::parse(p.label()), Some(p));
        }
        assert_eq!(CrashPoint::parse("pre-manifest-commit"), Some(CrashPoint::PreManifest));
        assert_eq!(CrashPoint::parse("nope"), None);
        assert_eq!(CrashPoint::PostRename.to_string(), "post-rename");
    }

    #[test]
    fn specs_parse_and_reject() {
        let plan = CrashPlan::parse_spec("pre-rename,post-tmp:0.5", 7).unwrap();
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.rate(CrashPoint::PreRename), 1.0);
        assert_eq!(plan.rate(CrashPoint::PostTmp), 0.5);
        assert!(!CrashPlan::parse_spec("", 0).unwrap().is_active());
        for bad in ["nope", "pre-tmp:2.0", "pre-tmp:x"] {
            assert!(CrashPlan::parse_spec(bad, 0).is_err(), "{bad:?} should be rejected");
        }
    }
}
