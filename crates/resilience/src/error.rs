//! Structured serving-path errors.

use crate::fault::Component;

/// What went wrong on the serving path — the structured replacement for
/// `expect()`-driven aborts. Every variant names the component boundary it
/// came from, so batch callers can report per-question failures precisely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SageError {
    /// All retry attempts at one component failed.
    ComponentFailed {
        /// The failing component.
        component: Component,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The component's circuit breaker was open; the primary was skipped.
    CircuitOpen {
        /// The component whose breaker is open.
        component: Component,
    },
    /// A response failed validation (truncated / corrupt payload).
    Corrupted {
        /// The component that produced the corrupt response.
        component: Component,
    },
    /// A worker or component panicked; the payload (if any) is preserved.
    Panicked {
        /// Human-readable panic context.
        detail: String,
    },
    /// A deadline or token budget ran out at a pipeline stage; the query
    /// continued on a browned-out configuration instead of aborting.
    BudgetExhausted {
        /// The pipeline stage whose budget check fired.
        stage: &'static str,
    },
    /// The admission queue refused the query under load before it entered
    /// the pipeline.
    Shed {
        /// Priority-class label of the refused query.
        class: &'static str,
    },
}

impl SageError {
    /// The component involved, when the error is component-scoped.
    pub fn component(&self) -> Option<Component> {
        match self {
            SageError::ComponentFailed { component, .. }
            | SageError::CircuitOpen { component }
            | SageError::Corrupted { component } => Some(*component),
            SageError::Panicked { .. }
            | SageError::BudgetExhausted { .. }
            | SageError::Shed { .. } => None,
        }
    }

    /// Build a [`SageError::Panicked`] from a `catch_unwind` payload,
    /// extracting the `&str` / `String` message when present.
    pub fn from_panic(payload: Box<dyn std::any::Any + Send>) -> Self {
        let detail = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic with non-string payload".to_string()
        };
        SageError::Panicked { detail }
    }
}

impl std::fmt::Display for SageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SageError::ComponentFailed { component, attempts } => {
                write!(f, "{component} failed after {attempts} attempt(s)")
            }
            SageError::CircuitOpen { component } => {
                write!(f, "{component} circuit breaker is open")
            }
            SageError::Corrupted { component } => {
                write!(f, "{component} returned a corrupt response")
            }
            SageError::Panicked { detail } => write!(f, "panicked: {detail}"),
            SageError::BudgetExhausted { stage } => {
                write!(f, "budget exhausted at the {stage} stage")
            }
            SageError::Shed { class } => {
                write!(f, "shed by admission control (class {class})")
            }
        }
    }
}

impl std::error::Error for SageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_component() {
        let e = SageError::ComponentFailed { component: Component::Reader, attempts: 3 };
        assert_eq!(e.to_string(), "reader failed after 3 attempt(s)");
        assert_eq!(e.component(), Some(Component::Reader));
    }

    #[test]
    fn panic_payloads_are_extracted() {
        let e = SageError::from_panic(Box::new("boom"));
        assert_eq!(e, SageError::Panicked { detail: "boom".to_string() });
        let e = SageError::from_panic(Box::new("injected".to_string()));
        assert!(e.to_string().contains("injected"));
        let e = SageError::from_panic(Box::new(42usize));
        assert!(e.to_string().contains("non-string"));
        assert_eq!(e.component(), None);
    }
}
