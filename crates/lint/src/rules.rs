//! The nine workspace rules, expressed as token-pattern checks.
//!
//! Each check walks the lexed token stream of one file. Tokens inside
//! test-only regions (`in_test`) are exempt from every rule: tests may
//! print, panic, and measure wall-clock time freely. Tokens inside
//! strings and comments never reach the checks at all — the lexer has
//! already dropped them.

use crate::lexer::{Tok, TokKind};
use crate::Violation;

/// Determinism: no stdout/stderr writes from library crates.
pub const NO_PRINT: &str = "no-print";
/// Robustness: the serving path must not be able to abort the process.
pub const NO_PANIC_SERVING: &str = "no-panic-serving";
/// Determinism: no RandomState-ordered containers feeding ordered output.
pub const DETERMINISTIC_ITERATION: &str = "deterministic-iteration";
/// Reproducibility: no wall-clock reads outside the telemetry layer.
pub const NO_WALLCLOCK: &str = "no-wallclock";
/// Architecture: the inter-crate dependency DAG is enforced, not advisory.
pub const LAYERING: &str = "layering";
/// Memory-model hygiene: Relaxed atomics only in telemetry-style counters.
pub const RELAXED_ATOMICS: &str = "relaxed-atomics-confined";
/// Architecture: in the orchestrator crate, panic-recovery boundaries
/// (`catch_unwind`) live only in the execution engine (`core/src/exec/`)
/// — scattering them re-creates the per-entry-point stitching the engine
/// replaced and hides where panics are absorbed.
pub const UNWIND_BOUNDARY: &str = "unwind-boundary";
/// Architecture: corpus mutation stays behind the single writer. The
/// tombstone/delta surfaces (`MutableIndex`, BM25's `push_live_chunk` /
/// `tombstone_chunk`) are only sound under one mutator with epoch
/// snapshots; any other call site bypasses the commit protocol and can
/// serve half-applied state.
pub const MUTATION_BEHIND_WRITER: &str = "mutation-behind-writer";
/// Architecture: flight-recorder mutation stays behind the obs layer.
/// The recorder's capture/eviction surface (`capture_query`,
/// `capture_shed`, `roll_window`) encodes the tail-based retention
/// policy; call sites scattered elsewhere could double-count a query or
/// seal windows off-grid, silently skewing what `sage report` retains.
pub const RECORDER_BEHIND_OBS: &str = "recorder-behind-obs";
/// Architecture: shard routing state stays confined. The partition
/// surfaces (`ShardRouter`, `ShardedFlat`, `merge_hits`,
/// `retrieve_shard`) live in `sage-vecdb`/`sage-retrieval` and are only
/// consumed by the scatter-gather executor (`core/src/exec/`) and the
/// soak harness's per-shard server pools (`src/soak.rs`). Per-shard
/// handles held anywhere else could serve a stale partition after
/// `add_documents` rebuilds the shards, or merge with a different
/// tie-break than the executor — silently breaking the
/// sharded==unsharded equivalence the drills rely on.
pub const SHARD_STATE_CONFINED: &str = "shard-state-confined";
/// Architecture: cross-query scheduler state stays confined. The slot
/// scheduler's working surfaces (`QueryRun`, `BatchSpec`,
/// `run_interleaved`, `profile_interleaved`, `worker_of`) carry
/// mid-flight query positions and the deterministic worker assignment;
/// they are only consumed by the execution engine (`core/src/exec/`)
/// and the soak harness's dispatch waves (`src/soak.rs`). Held anywhere
/// else, a `QueryRun` could outlive its tick or re-enter a stage with a
/// different assignment seed — silently breaking the byte-identity the
/// interleaved==sequential proofs rely on. The read-only reporting
/// surfaces (`ScheduleStats`, `render_schedule`) stay public.
pub const SCHEDULER_STATE_CONFINED: &str = "scheduler-state-confined";
/// Whole-program rule: a serving entry point (executor stages, vecdb /
/// retriever search, the live apply path) must not *transitively* reach
/// a panic site — `panic!`-family macros, `.unwrap()`/`.expect()`, or a
/// slice index — except through a `catch_unwind` boundary fn. The
/// token-level `no-panic-serving` rule sees only direct occurrences;
/// this one walks the intra-workspace call graph.
pub const PANIC_REACHABILITY: &str = "panic-reachability";
/// Whole-program rule: values derived from wall-clock reads, `HashMap`/
/// `HashSet` iteration, or Relaxed atomics must not flow into
/// byte-comparable serialized outputs (soak event logs, BENCH_*.json,
/// segment/manifest bytes). Checked as call-graph reachability from the
/// declared sink fns to nondeterminism source tokens.
pub const DETERMINISM_TAINT: &str = "determinism-taint";
/// Engine-level rule: a valid `allow`/`allow-file` marker that no longer
/// suppresses any live violation (token or semantic) is itself an error,
/// keeping the suppression inventory honest across refactors. Not
/// suppressible and not a valid name inside a marker.
pub const STALE_SUPPRESSION: &str = "stale-suppression";
/// Engine-level rule for malformed or unjustified suppression markers.
/// Not suppressible and not a valid name inside a marker.
pub const BAD_ALLOW: &str = "bad-allow";

/// Every rule a suppression marker may name.
pub const ALL_RULES: &[&str] = &[
    NO_PRINT,
    NO_PANIC_SERVING,
    DETERMINISTIC_ITERATION,
    NO_WALLCLOCK,
    LAYERING,
    RELAXED_ATOMICS,
    UNWIND_BOUNDARY,
    MUTATION_BEHIND_WRITER,
    RECORDER_BEHIND_OBS,
    SHARD_STATE_CONFINED,
    SCHEDULER_STATE_CONFINED,
    PANIC_REACHABILITY,
    DETERMINISM_TAINT,
];

/// Every rule the engine can report, suppressible or not — the ratchet
/// file tracks all of them.
pub const REPORTABLE_RULES: &[&str] = &[
    NO_PRINT,
    NO_PANIC_SERVING,
    DETERMINISTIC_ITERATION,
    NO_WALLCLOCK,
    LAYERING,
    RELAXED_ATOMICS,
    UNWIND_BOUNDARY,
    MUTATION_BEHIND_WRITER,
    RECORDER_BEHIND_OBS,
    SHARD_STATE_CONFINED,
    SCHEDULER_STATE_CONFINED,
    PANIC_REACHABILITY,
    DETERMINISM_TAINT,
    STALE_SUPPRESSION,
    BAD_ALLOW,
];

/// Crates on the query serving path, where a panic is an outage.
pub const SERVING_CRATES: &[&str] = &["core", "llm", "retrieval", "vecdb", "rerank", "admission"];

/// Every workspace member, by key. The layering rule only fires on
/// `sage_<key>` idents for keys in this list, so local names that merely
/// start with `sage_` (e.g. a `sage_selected` counter) are not imports.
pub const WORKSPACE_CRATES: &[&str] = &[
    "text", "nn", "telemetry", "resilience", "lint", "embed", "vecdb", "retrieval",
    "corpus", "segment", "rerank", "eval", "llm", "core", "admission", "obs",
];

/// Crates exempt from library rules entirely: binaries own their stdout
/// and may stitch any crates together.
pub const BINARY_CRATES: &[&str] = &["cli", "bench"];

/// The allowed `sage_*` imports for each crate, i.e. the dependency DAG.
/// `None` means the crate is exempt from the layering rule (binaries and
/// the facade, which re-exports everything by design).
///
/// `telemetry` and `resilience` are leaf-importable: any non-leaf crate
/// may additionally depend on them (see [`layering_allows`]).
fn base_allowed(crate_key: &str) -> Option<&'static [&'static str]> {
    Some(match crate_key {
        // Leaves: no sage dependencies at all.
        "text" | "nn" | "telemetry" | "resilience" | "lint" => &[],
        "embed" => &["text", "nn"],
        "vecdb" => &["nn"],
        "retrieval" => &["text", "embed", "vecdb"],
        "corpus" => &["text"],
        "segment" => &["text", "nn", "embed"],
        "rerank" => &["text", "nn", "embed"],
        // eval may reach for core's pipeline types when scoring end-to-end.
        "eval" => &["text", "core"],
        "llm" => &["text", "eval", "corpus"],
        // Admission control sits on the resilience substrate only.
        "admission" => &["resilience"],
        // Observability sits on telemetry alone: it consumes observation
        // streams and scrapes, never the pipeline.
        "obs" => &["telemetry"],
        // The orchestrator composes everything below it — never lint.
        "core" => &[
            "text", "nn", "embed", "vecdb", "retrieval", "corpus", "segment", "rerank",
            "eval", "llm", "admission", "obs",
        ],
        // Binaries and the facade are exempt.
        "cli" | "bench" | "sage" => return None,
        // Unknown crate key: stay quiet rather than guess a policy.
        _ => return None,
    })
}

/// Whether `crate_key` may depend on `dep` (both without the `sage_`
/// prefix, e.g. `("retrieval", "vecdb")`).
pub fn layering_allows(crate_key: &str, dep: &str) -> Option<bool> {
    let base = base_allowed(crate_key)?;
    if base.contains(&dep) {
        return Some(true);
    }
    // Leaf-importable crates: telemetry and resilience may be pulled in
    // anywhere except by the leaves themselves (which must stay leaves).
    let is_leaf = base_allowed(crate_key).is_some_and(|a| a.is_empty());
    if !is_leaf && (dep == "telemetry" || dep == "resilience") {
        return Some(true);
    }
    Some(false)
}

/// Every crate `crate_key` may directly depend on, per the same DAG the
/// layering rule enforces. Symbol resolution uses this to bound which
/// crates a call can resolve into. Binaries and the facade may reach
/// everything.
pub fn allowed_deps(crate_key: &str) -> Vec<&'static str> {
    match base_allowed(crate_key) {
        Some(base) => {
            let mut out: Vec<&'static str> = base.to_vec();
            if !base.is_empty() {
                for leaf in ["telemetry", "resilience"] {
                    if !out.contains(&leaf) {
                        out.push(leaf);
                    }
                }
            }
            out
        }
        None => WORKSPACE_CRATES.to_vec(),
    }
}

fn punct(t: &Tok) -> Option<char> {
    if t.kind == TokKind::Punct {
        t.text.chars().next()
    } else {
        None
    }
}

/// Run every applicable rule over one file's token stream.
pub fn check_file(crate_key: &str, file: &str, tokens: &[Tok]) -> Vec<Violation> {
    let library = !BINARY_CRATES.contains(&crate_key);
    let serving = SERVING_CRATES.contains(&crate_key);
    let telemetry = crate_key == "telemetry";
    let mut out: Vec<Violation> = Vec::new();
    let mut in_use = false;

    for i in 0..tokens.len() {
        let t = &tokens[i];
        // Track `use …;` spans across test boundaries so the flag cannot
        // leak out of a skipped region.
        if t.kind == TokKind::Ident && t.text == "use" {
            in_use = true;
        }
        if in_use && punct(t) == Some(';') {
            in_use = false;
            continue;
        }
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        let next_punct = |c: char| tokens.get(i + 1).is_some_and(|n| punct(n) == Some(c));
        let prev_punct = |c: char| i > 0 && punct(&tokens[i - 1]) == Some(c);
        let word = t.text.as_str();

        if library {
            if matches!(word, "println" | "eprintln" | "print" | "eprint" | "dbg")
                && next_punct('!')
            {
                out.push(Violation::new(
                    NO_PRINT,
                    file,
                    t.line,
                    t.col,
                    format!(
                        "`{word}!` in library crate `{crate_key}`; return data and let \
                         the CLI or a telemetry exporter own the output stream"
                    ),
                ));
            }
            if !in_use && matches!(word, "HashMap" | "HashSet") {
                out.push(Violation::new(
                    DETERMINISTIC_ITERATION,
                    file,
                    t.line,
                    t.col,
                    format!(
                        "`{word}` in library code: iteration order depends on \
                         RandomState; use BTreeMap/BTreeSet, sort before emitting, \
                         or justify why ordering cannot escape"
                    ),
                ));
            }
            if !telemetry && !in_use && matches!(word, "Instant" | "SystemTime") {
                out.push(Violation::new(
                    NO_WALLCLOCK,
                    file,
                    t.line,
                    t.col,
                    format!(
                        "`{word}` outside the telemetry crate: wall-clock reads make \
                         runs non-reproducible; route timing through telemetry spans"
                    ),
                ));
            }
            if !telemetry && !in_use && word == "Relaxed" {
                out.push(Violation::new(
                    RELAXED_ATOMICS,
                    file,
                    t.line,
                    t.col,
                    "`Ordering::Relaxed` outside telemetry counters: prove the value \
                     carries no cross-thread ordering dependency or use Acquire/Release"
                        .to_string(),
                ));
            }
        }

        if serving {
            let method_panic = matches!(word, "unwrap" | "expect") && prev_punct('.');
            let macro_panic = matches!(
                word,
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) && next_punct('!');
            if method_panic || macro_panic {
                let shown = if method_panic {
                    format!(".{word}()")
                } else {
                    format!("{word}!")
                };
                out.push(Violation::new(
                    NO_PANIC_SERVING,
                    file,
                    t.line,
                    t.col,
                    format!(
                        "`{shown}` on the serving path (crate `{crate_key}`): \
                         propagate a Result or degrade via sage-resilience"
                    ),
                ));
            }
        }

        // The mutation surfaces' home crates (vecdb defines MutableIndex,
        // retrieval defines the BM25 delta methods) and sage-core's live
        // module (the single writer) are the only legal non-test users.
        // `use` lines are exempt so facades may re-export the types.
        let mutation_home =
            matches!(crate_key, "vecdb" | "retrieval") || file.contains("/live/");
        if library
            && !mutation_home
            && !in_use
            && matches!(word, "MutableIndex" | "push_live_chunk" | "tombstone_chunk")
        {
            out.push(Violation::new(
                MUTATION_BEHIND_WRITER,
                file,
                t.line,
                t.col,
                format!(
                    "`{word}` outside sage-core's live module: corpus mutation is \
                     only sound behind the single CorpusWriter (epoch snapshots, \
                     durable segments); route changes through live::CorpusWriter"
                ),
            ));
        }

        // The recorder's mutation surface lives in sage-obs; sage-core's
        // obs module (the bridge that owns the attached recorder) is the
        // only legal non-test caller elsewhere. `use` lines stay exempt
        // for re-exports.
        let recorder_home = crate_key == "obs" || file.contains("/obs");
        if library
            && !recorder_home
            && !in_use
            && matches!(word, "capture_query" | "capture_shed" | "roll_window")
        {
            out.push(Violation::new(
                RECORDER_BEHIND_OBS,
                file,
                t.line,
                t.col,
                format!(
                    "`{word}` outside the obs layer: flight-recorder capture and \
                     window sealing encode the retention policy; route observations \
                     through sage-core's obs bridge"
                ),
            ));
        }

        // Shard routing state stays with its owners: the partition's home
        // crates (vecdb defines the router and sharded index, retrieval
        // the per-shard BM25 filter), the scatter-gather executor, and
        // the soak harness's per-shard virtual server pools. `use` lines
        // stay exempt for facade re-exports.
        let shard_home = matches!(crate_key, "vecdb" | "retrieval")
            || file.contains("/exec/")
            || file.ends_with("/src/soak.rs");
        if library
            && !shard_home
            && !in_use
            && matches!(word, "ShardRouter" | "ShardedFlat" | "merge_hits" | "retrieve_shard")
        {
            out.push(Violation::new(
                SHARD_STATE_CONFINED,
                file,
                t.line,
                t.col,
                format!(
                    "`{word}` outside the shard layer (vecdb/retrieval, core/src/exec/, \
                     the soak pools): per-shard handles elsewhere can outlive a \
                     partition rebuild or merge with a different tie-break; route \
                     shard work through RagSystem::enable_sharding and the executor"
                ),
            ));
        }

        // Scheduler working state stays with its owners: the execution
        // engine defines the slot scheduler, and the soak harness's
        // dispatch waves are the one external consumer. `use` lines stay
        // exempt for facade re-exports; the reporting surfaces
        // (ScheduleStats, render_schedule) are deliberately not listed.
        let sched_home = file.contains("/exec/") || file.ends_with("/src/soak.rs");
        if library
            && !sched_home
            && !in_use
            && matches!(
                word,
                "QueryRun" | "BatchSpec" | "run_interleaved" | "profile_interleaved" | "worker_of"
            )
        {
            out.push(Violation::new(
                SCHEDULER_STATE_CONFINED,
                file,
                t.line,
                t.col,
                format!(
                    "`{word}` outside the scheduler layer (core/src/exec/, the soak \
                     dispatch waves): mid-flight scheduler state held elsewhere can \
                     re-enter a stage off-schedule and break the batched/sequential \
                     byte-identity; go through answer_batch/profile_batch"
                ),
            ));
        }

        if crate_key == "core" && word == "catch_unwind" && !file.contains("/exec/") {
            out.push(Violation::new(
                UNWIND_BOUNDARY,
                file,
                t.line,
                t.col,
                "`catch_unwind` in sage-core outside src/exec/: panic-recovery \
                 boundaries belong to the execution engine; route the call through \
                 exec::execute_caught"
                    .to_string(),
            ));
        }

        if let Some(dep) = word.strip_prefix("sage_") {
            if WORKSPACE_CRATES.contains(&dep) && layering_allows(crate_key, dep) == Some(false) {
                out.push(Violation::new(
                    LAYERING,
                    file,
                    t.line,
                    t.col,
                    format!(
                        "crate `{crate_key}` must not depend on `sage_{dep}`: the \
                         workspace DAG keeps layers acyclic and leaves leaf-importable"
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(key: &str, src: &str) -> Vec<Violation> {
        check_file(key, "x.rs", &lex(src).tokens)
    }

    fn rules_of(vs: &[Violation]) -> Vec<&'static str> {
        vs.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn print_macros_flagged_in_library_not_cli() {
        let src = "fn f() { println!(\"x\"); dbg!(1); }";
        assert_eq!(rules_of(&run("text", src)), vec![NO_PRINT, NO_PRINT]);
        assert!(run("cli", src).is_empty());
    }

    #[test]
    fn print_ident_without_bang_is_fine() {
        assert!(run("text", "fn f(p: &Printer) { p.print(); }").is_empty());
    }

    #[test]
    fn panics_flagged_only_on_serving_crates() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(rules_of(&run("core", src)), vec![NO_PANIC_SERVING]);
        assert!(run("text", src).is_empty());
        let src2 = "fn g() { unreachable!() }";
        assert_eq!(rules_of(&run("vecdb", src2)), vec![NO_PANIC_SERVING]);
    }

    #[test]
    fn unwrap_or_variants_are_not_panics() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or_default() }";
        assert!(run("core", src).is_empty());
        let src2 = "fn f(x: Result<u32, ()>) -> bool { x.expect_err(\"e\"); true }";
        assert!(rules_of(&run("core", src2)).is_empty());
    }

    #[test]
    fn hash_containers_flagged_but_not_in_use_statements() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }";
        let vs = run("embed", src);
        assert_eq!(rules_of(&vs), vec![DETERMINISTIC_ITERATION, DETERMINISTIC_ITERATION]);
        assert!(vs.iter().all(|v| v.line == 2));
    }

    #[test]
    fn wallclock_flagged_except_in_telemetry() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(rules_of(&run("segment", src)), vec![NO_WALLCLOCK]);
        assert!(run("telemetry", src).is_empty());
    }

    #[test]
    fn relaxed_flagged_except_in_telemetry() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        assert_eq!(rules_of(&run("resilience", src)), vec![RELAXED_ATOMICS]);
        assert!(run("telemetry", src).is_empty());
    }

    #[test]
    fn layering_dag_enforced() {
        // text is a leaf: importing anything sage_* is a violation.
        assert_eq!(rules_of(&run("text", "use sage_core::pipeline::Sage;")), vec![LAYERING]);
        // retrieval may import vecdb and telemetry, never core.
        assert!(run("retrieval", "use sage_vecdb::FlatIndex;").is_empty());
        assert!(run("retrieval", "use sage_telemetry::span;").is_empty());
        assert_eq!(rules_of(&run("retrieval", "use sage_core::x;")), vec![LAYERING]);
        // leaves must stay leaves: telemetry cannot import resilience.
        assert_eq!(rules_of(&run("telemetry", "use sage_resilience::x;")), vec![LAYERING]);
        // binaries and the facade are exempt.
        assert!(run("cli", "use sage_core::pipeline::Sage;").is_empty());
        assert!(run("sage", "pub use sage_core as core;").is_empty());
        // local names that merely start with sage_ are not imports.
        assert!(run("text", "let sage_selected = 3; let sage_cfg = 4;").is_empty());
    }

    #[test]
    fn catch_unwind_confined_to_core_exec() {
        let src = "fn f() { let _ = std::panic::catch_unwind(|| 1); }";
        // Anywhere in core outside src/exec/ is a violation…
        let vs = check_file("core", "crates/core/src/pipeline.rs", &lex(src).tokens);
        assert_eq!(rules_of(&vs), vec![UNWIND_BOUNDARY]);
        // …inside the execution engine it is the designed boundary…
        assert!(check_file("core", "crates/core/src/exec/mod.rs", &lex(src).tokens).is_empty());
        // …and other crates own their local isolation policy (vecdb's
        // batch search isolates poisoned queries itself).
        assert!(check_file("vecdb", "crates/vecdb/src/flat.rs", &lex(src).tokens).is_empty());
    }

    #[test]
    fn mutation_surfaces_confined_to_live_writer() {
        let src = "fn f(m: &mut MutableIndex) { m.tombstone(0); }";
        // Library code outside the live module may not touch the type…
        let vs = check_file("core", "crates/core/src/pipeline.rs", &lex(src).tokens);
        assert_eq!(rules_of(&vs), vec![MUTATION_BEHIND_WRITER]);
        // …the live module is the single writer…
        assert!(check_file("core", "crates/core/src/live/mod.rs", &lex(src).tokens).is_empty());
        // …the defining crates are exempt (they implement the surface)…
        assert!(check_file("vecdb", "crates/vecdb/src/mutable.rs", &lex(src).tokens).is_empty());
        let delta = "fn g(r: &mut Bm25Retriever) { r.push_live_chunk(\"x\"); }";
        assert!(check_file("retrieval", "crates/retrieval/src/bm25.rs", &lex(delta).tokens)
            .is_empty());
        assert_eq!(
            rules_of(&check_file("llm", "crates/llm/src/lib.rs", &lex(delta).tokens)),
            vec![MUTATION_BEHIND_WRITER]
        );
        // …re-exports and binaries stay legal.
        assert!(run("sage", "pub use sage_vecdb::{MutableIndex, VectorIndex};").is_empty());
        assert!(run("cli", "fn f(m: &mut MutableIndex) { m.tombstone(0); }").is_empty());
    }

    #[test]
    fn recorder_surface_confined_to_obs_layer() {
        let src = "fn f(r: &mut FlightRecorder, o: &QueryObs) { r.capture_query(o); r.roll_window(4); }";
        // Library code outside the obs layer may not capture…
        let vs = check_file("llm", "crates/llm/src/reader.rs", &lex(src).tokens);
        assert_eq!(rules_of(&vs), vec![RECORDER_BEHIND_OBS, RECORDER_BEHIND_OBS]);
        // …the defining crate implements the surface…
        assert!(check_file("obs", "crates/obs/src/recorder.rs", &lex(src).tokens).is_empty());
        // …core's obs bridge owns the attached recorder…
        assert!(check_file("core", "crates/core/src/obs.rs", &lex(src).tokens).is_empty());
        // …but the rest of core is fenced out.
        let shed = "fn g(r: &mut FlightRecorder) { r.capture_shed(0, \"batch\", 1, false, \"full\"); }";
        assert_eq!(
            rules_of(&check_file("core", "crates/core/src/soak.rs", &lex(shed).tokens)),
            vec![RECORDER_BEHIND_OBS]
        );
        // Re-exports and binaries stay legal.
        assert!(run("sage", "pub use sage_obs::{FlightRecorder, RecorderConfig};").is_empty());
        assert!(run("cli", src).is_empty());
    }

    #[test]
    fn shard_state_confined_to_its_layer() {
        let src = "fn f(r: ShardRouter, s: &ShardedFlat) -> Vec<Hit> \
                   { merge_hits(&[s.search_shard(r.route_id(0), &[0.0], 4)], 4) }";
        // Library code outside the shard layer may not hold routing state…
        let vs = check_file("core", "crates/core/src/pipeline.rs", &lex(src).tokens);
        assert_eq!(rules_of(&vs), vec![SHARD_STATE_CONFINED; 3]);
        assert_eq!(
            rules_of(&check_file("llm", "crates/llm/src/reader.rs", &lex(src).tokens)),
            vec![SHARD_STATE_CONFINED; 3]
        );
        // …the defining crates implement the surface…
        assert!(check_file("vecdb", "crates/vecdb/src/shard.rs", &lex(src).tokens).is_empty());
        let delta = "fn g(r: &Bm25Retriever) { r.retrieve_shard(\"q\", 4, 0, &[]); }";
        assert!(check_file("retrieval", "crates/retrieval/src/bm25.rs", &lex(delta).tokens)
            .is_empty());
        // …the scatter-gather executor and the soak pools consume it…
        assert!(check_file("core", "crates/core/src/exec/scatter.rs", &lex(src).tokens).is_empty());
        assert!(check_file("core", "crates/core/src/soak.rs", &lex(src).tokens).is_empty());
        // …re-exports and binaries stay legal.
        assert!(run("sage", "pub use sage_vecdb::{merge_hits, ShardRouter, ShardedFlat};")
            .is_empty());
        assert!(run("cli", src).is_empty());
    }

    #[test]
    fn scheduler_state_confined_to_its_layer() {
        let src = "fn f(r: &mut QueryRun, specs: &[BatchSpec]) \
                   { let w = worker_of(1, 0, 2, 4); run_interleaved(sys, specs, w, 7); }";
        // Library code outside the scheduler layer may not hold run state…
        let vs = check_file("core", "crates/core/src/pipeline.rs", &lex(src).tokens);
        assert_eq!(rules_of(&vs), vec![SCHEDULER_STATE_CONFINED; 4]);
        assert_eq!(
            rules_of(&check_file("llm", "crates/llm/src/reader.rs", &lex(src).tokens)),
            vec![SCHEDULER_STATE_CONFINED; 4]
        );
        // …the execution engine defines the surface…
        assert!(check_file("core", "crates/core/src/exec/sched.rs", &lex(src).tokens).is_empty());
        assert!(check_file("core", "crates/core/src/exec/batch.rs", &lex(src).tokens).is_empty());
        // …the soak dispatch waves are the one external consumer…
        assert!(check_file("core", "crates/core/src/soak.rs", &lex(src).tokens).is_empty());
        // …the reporting surfaces stay unconfined everywhere…
        let report = "fn g(s: &ScheduleStats) -> String { render_schedule(p, 2, 4, 7) }";
        assert!(check_file("core", "crates/core/src/pipeline.rs", &lex(report).tokens).is_empty());
        // …re-exports and binaries stay legal.
        assert!(run("core", "use sched::{self, BatchSpec};").is_empty());
        assert!(run("cli", src).is_empty());
    }

    #[test]
    fn obs_layering_sits_on_telemetry_alone() {
        assert!(run("obs", "use sage_telemetry::export::escape_label_value;").is_empty());
        assert_eq!(rules_of(&run("obs", "use sage_core::soak::SoakReport;")), vec![LAYERING]);
        assert!(run("core", "use sage_obs::QueryObs;").is_empty());
        // Leaves must stay leaves: telemetry cannot grow an obs dependency.
        assert_eq!(rules_of(&run("telemetry", "use sage_obs::QueryObs;")), vec![LAYERING]);
    }

    #[test]
    fn test_regions_are_exempt_from_all_rules() {
        let src = "
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() { let m = HashMap::new(); println!(\"{:?}\", m.get(&1).unwrap()); }
            }
        ";
        assert!(run("core", src).is_empty());
    }
}
