//! A minimal, dependency-free JSON reader.
//!
//! Exists so the lint crate can parse its own machine outputs back —
//! the SARIF well-formedness smoke in `scripts/check.sh` and the
//! `lint-baseline.json` ratchet both need a reader, and the workspace
//! bans external deps in `crates/lint`. Supports the full JSON value
//! grammar with a recursion cap; numbers are kept as `f64`, which is
//! exact for every count the lint engine writes.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Key order is normalized; duplicate keys keep the last value.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Path lookup: `v.path(&["runs", "0", "tool"])` — numeric segments
    /// index arrays.
    pub fn path(&self, segs: &[&str]) -> Option<&Value> {
        let mut cur = self;
        for s in segs {
            cur = match cur {
                Value::Obj(m) => m.get(*s)?,
                Value::Arr(a) => a.get(s.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }
}

const MAX_DEPTH: usize = 64;

/// Parse a JSON document. Errors carry a byte offset and a short cause.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut p = Parser { chars: bytes, i: 0 };
    p.ws();
    let v = p.value(0)?;
    p.ws();
    if p.i != p.chars.len() {
        return Err(format!("trailing content at offset {}", p.i));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    i: usize,
}

impl Parser {
    fn err(&self, what: &str) -> String {
        format!("{what} at offset {}", self.i)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{c}`")))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        for c in word.chars() {
            self.eat(c)?;
        }
        Ok(v)
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some('n') => self.lit("null", Value::Null),
            Some('t') => self.lit("true", Value::Bool(true)),
            Some('f') => self.lit("false", Value::Bool(false)),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('[') => self.array(depth),
            Some('{') => self.object(depth),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.eat('[')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(']') {
            self.i += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value(depth + 1)?);
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some(']') => {
                    self.i += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.eat('{')?;
        let mut out = BTreeMap::new();
        self.ws();
        if self.peek() == Some('}') {
            self.i += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(':')?;
            self.ws();
            out.insert(key, self.value(depth + 1)?);
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some('}') => {
                    self.i += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else { return Err(self.err("unterminated string")) };
            self.i += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let Some(e) = self.peek() else { return Err(self.err("bad escape")) };
                    self.i += 1;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let Some(h) = self.peek().and_then(|c| c.to_digit(16)) else {
                                    return Err(self.err("bad \\u escape"));
                                };
                                code = code * 16 + h;
                                self.i += 1;
                            }
                            // Surrogate pairs are folded to the
                            // replacement char: the lint engine never
                            // emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                c if (c as u32) < 0x20 => return Err(self.err("raw control char in string")),
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some('-') {
            self.i += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some('.') {
            self.i += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            self.i += 1;
            if matches!(self.peek(), Some('+' | '-')) {
                self.i += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        text.parse::<f64>().map(Value::Num).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_engines_own_output() {
        let v = parse(r#"{"files_scanned":3,"clean":true,"violations":[{"rule":"no-print","line":7}]}"#)
            .unwrap();
        assert_eq!(v.get("files_scanned").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.path(&["violations", "0", "rule"]).and_then(Value::as_str), Some("no-print"));
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#"{"s":"a\n\"b\"é"}"#).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("a\n\"b\"é"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"open", "{\"a\":1}x", "01a"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_cap_stops_recursion() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn numbers_parse() {
        let v = parse("[0, -3, 2.5, 1e3]").unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[1].as_f64(), Some(-3.0));
        assert_eq!(a[3].as_f64(), Some(1000.0));
    }
}
