//! The intra-workspace call graph and its reachability queries.
//!
//! Nodes are the fn symbols of [`crate::resolve::Workspace`]; edges are
//! the over-approximate resolutions of every call site. Construction is
//! deterministic: files are scanned in sorted order, symbols are listed
//! in source order, and adjacency lists come out of a `BTreeSet` —
//! `to_json` on the same tree is byte-identical across runs, which the
//! property tests assert.

use crate::resolve::Workspace;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;

/// The call graph: `edges[i]` are the candidate callees of fn `i`,
/// sorted and deduplicated.
#[derive(Debug, Default)]
pub struct Graph {
    pub edges: Vec<Vec<usize>>,
}

/// The result of a breadth-first reachability sweep.
#[derive(Debug, Default)]
pub struct Reach {
    /// Every fn reachable from the start set (including the starts).
    pub set: BTreeSet<usize>,
    /// First-discovery parent of each reached fn (starts map to None),
    /// for shortest-path reconstruction in diagnostics.
    pub parent: BTreeMap<usize, Option<usize>>,
}

impl Graph {
    /// Build the graph by resolving every fn body in the workspace.
    pub fn build(ws: &Workspace) -> Graph {
        Graph { edges: (0..ws.fns.len()).map(|id| ws.callees(id)).collect() }
    }

    /// BFS from `starts`, never expanding the successors of fns in
    /// `blocked` (unwind boundaries): a blocked fn is recorded as
    /// reached but absorbs the walk.
    pub fn reach(&self, starts: &[usize], blocked: &BTreeSet<usize>) -> Reach {
        let mut r = Reach::default();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &s in starts {
            if r.set.insert(s) {
                r.parent.insert(s, None);
                queue.push_back(s);
            }
        }
        while let Some(n) = queue.pop_front() {
            if blocked.contains(&n) {
                continue;
            }
            for &m in self.edges.get(n).map(Vec::as_slice).unwrap_or(&[]) {
                if r.set.insert(m) {
                    r.parent.insert(m, Some(n));
                    queue.push_back(m);
                }
            }
        }
        r
    }

    /// The discovery path from a start fn to `target`, as display names:
    /// `entry → a → b → target`. Truncated in the middle past 8 hops.
    pub fn path_to(&self, ws: &Workspace, reach: &Reach, target: usize) -> String {
        let mut rev = vec![target];
        let mut cur = target;
        while let Some(Some(p)) = reach.parent.get(&cur) {
            rev.push(*p);
            cur = *p;
        }
        rev.reverse();
        let names: Vec<String> = rev.iter().map(|&id| ws.display(id)).collect();
        if names.len() > 8 {
            let head = &names[..4];
            let tail = &names[names.len() - 3..];
            format!("{} -> ... -> {}", head.join(" -> "), tail.join(" -> "))
        } else {
            names.join(" -> ")
        }
    }

    /// Serialize the graph deterministically: one node object per fn in
    /// symbol order, edges as index arrays.
    pub fn to_json(&self, ws: &Workspace) -> String {
        let mut s = String::from("{\"version\":1,\"fns\":[");
        for (id, f) in ws.fns.iter().enumerate() {
            if id > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"id\":{id},\"name\":\"{}\",\"file\":\"{}\",\"line\":{},\"in_test\":{},\"calls\":[",
                crate::json_escape(&ws.display(id)),
                crate::json_escape(&ws.files[f.file].rel),
                f.line,
                f.in_test,
            );
            for (k, m) in self.edges[id].iter().enumerate() {
                if k > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{m}");
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_items;
    use crate::resolve::FileUnit;

    fn ws(src: &str) -> Workspace {
        let tokens = lex(src).tokens;
        let items = parse_items(&tokens);
        Workspace::build(vec![FileUnit {
            rel: "crates/core/src/lib.rs".into(),
            key: "core".into(),
            tokens,
            items,
        }])
    }

    #[test]
    fn reach_follows_edges_and_stops_at_blocked() {
        let w = ws("fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn d() {}\n");
        let g = Graph::build(&w);
        let all = g.reach(&[0], &BTreeSet::new());
        assert!(all.set.contains(&2));
        assert!(!all.set.contains(&3));
        // Blocking b records it but absorbs the walk before c.
        let blocked: BTreeSet<usize> = [1].into_iter().collect();
        let cut = g.reach(&[0], &blocked);
        assert!(cut.set.contains(&1));
        assert!(!cut.set.contains(&2));
    }

    #[test]
    fn paths_reconstruct_from_parents() {
        let w = ws("fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n");
        let g = Graph::build(&w);
        let r = g.reach(&[0], &BTreeSet::new());
        assert_eq!(g.path_to(&w, &r, 2), "core::a -> core::b -> core::c");
    }

    #[test]
    fn json_is_deterministic() {
        let src = "fn a() { b(); c(); }\nfn b() {}\nfn c() { b(); }\n";
        let j1 = {
            let w = ws(src);
            Graph::build(&w).to_json(&w)
        };
        let j2 = {
            let w = ws(src);
            Graph::build(&w).to_json(&w)
        };
        assert_eq!(j1, j2);
        assert!(j1.contains("\"name\":\"core::a\""));
    }
}
