//! SARIF 2.1.0 output and a well-formedness validator.
//!
//! The renderer emits the minimal static-analysis interchange shape CI
//! viewers consume: one run, one driver, a rule table, and one result
//! per violation with a physical location. The validator parses a SARIF
//! document back (via [`crate::jsonv`]) and checks the invariants the
//! renderer promises — `scripts/check.sh` round-trips every lint run
//! through it so a malformed emit fails the gate rather than silently
//! uploading garbage.

use crate::jsonv::{self, Value};
use crate::{json_escape, Report};
use std::fmt::Write as _;

/// Render a workspace report as a SARIF 2.1.0 document.
pub fn render(report: &Report) -> String {
    // The rule table lists every reportable rule, indexed so results can
    // reference them by id; descriptions double as the help text.
    let mut s = String::from(
        "{\"version\":\"2.1.0\",\
         \"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"runs\":[{\"tool\":{\"driver\":{\"name\":\"sage-lint\",\
         \"informationUri\":\"DESIGN.md\",\"rules\":[",
    );
    for (i, rule) in crate::rules::REPORTABLE_RULES.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{{\"id\":\"{}\"}}", json_escape(rule));
    }
    s.push_str("]}},\"results\":[");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"ruleId\":\"{}\",\"level\":\"error\",\
             \"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\
             \"artifactLocation\":{{\"uri\":\"{}\"}},\
             \"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]}}",
            json_escape(v.rule),
            json_escape(&v.message),
            json_escape(&v.file),
            v.line.max(1),
            v.col.max(1),
        );
    }
    s.push_str("]}]}");
    s
}

/// Validate that `text` is a well-formed SARIF 2.1.0 document with the
/// shape [`render`] promises. Returns the number of results on success.
pub fn validate(text: &str) -> Result<usize, String> {
    let doc = jsonv::parse(text).map_err(|e| format!("not JSON: {e}"))?;
    if doc.get("version").and_then(Value::as_str) != Some("2.1.0") {
        return Err("missing or wrong `version` (want \"2.1.0\")".to_string());
    }
    let runs = doc.get("runs").and_then(Value::as_arr).ok_or("`runs` missing or not an array")?;
    if runs.is_empty() {
        return Err("`runs` is empty".to_string());
    }
    let run = &runs[0];
    run.path(&["tool", "driver", "name"])
        .and_then(Value::as_str)
        .filter(|n| !n.is_empty())
        .ok_or("`runs[0].tool.driver.name` missing")?;
    let results = run
        .get("results")
        .and_then(Value::as_arr)
        .ok_or("`runs[0].results` missing or not an array")?;
    for (i, r) in results.iter().enumerate() {
        r.get("ruleId")
            .and_then(Value::as_str)
            .filter(|id| !id.is_empty())
            .ok_or_else(|| format!("result {i}: `ruleId` missing"))?;
        r.path(&["message", "text"])
            .and_then(Value::as_str)
            .ok_or_else(|| format!("result {i}: `message.text` missing"))?;
        let loc = r
            .path(&["locations", "0", "physicalLocation"])
            .ok_or_else(|| format!("result {i}: no physical location"))?;
        loc.path(&["artifactLocation", "uri"])
            .and_then(Value::as_str)
            .filter(|u| !u.is_empty())
            .ok_or_else(|| format!("result {i}: `artifactLocation.uri` missing"))?;
        let line = loc
            .path(&["region", "startLine"])
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("result {i}: `region.startLine` missing"))?;
        if line < 1.0 {
            return Err(format!("result {i}: `startLine` must be >= 1"));
        }
    }
    Ok(results.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Violation;

    fn report_with(violations: Vec<Violation>) -> Report {
        Report { violations, files_scanned: 2, suppressed: 1, ..Report::default() }
    }

    #[test]
    fn clean_report_round_trips() {
        let text = render(&report_with(Vec::new()));
        assert_eq!(validate(&text), Ok(0));
    }

    #[test]
    fn violations_round_trip_with_locations() {
        let v = Violation::new(
            crate::rules::NO_PRINT,
            "crates/text/src/lib.rs",
            7,
            13,
            "a \"quoted\" message\nwith a newline".to_string(),
        );
        let text = render(&report_with(vec![v]));
        assert_eq!(validate(&text), Ok(1));
        let doc = crate::jsonv::parse(&text).unwrap();
        assert_eq!(
            doc.path(&["runs", "0", "results", "0", "locations", "0", "physicalLocation", "region", "startLine"])
                .and_then(crate::jsonv::Value::as_f64),
            Some(7.0)
        );
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate("{}").is_err());
        assert!(validate("{\"version\":\"2.1.0\",\"runs\":[]}").is_err());
        assert!(validate("{\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"x\"}},\"results\":[{\"ruleId\":\"r\"}]}]}").is_err());
        assert!(validate("not json").is_err());
    }
}
