//! A minimal Rust lexer for static analysis.
//!
//! Produces a stream of identifier/punctuation tokens with line and
//! column numbers, *skipping* the contents of line comments, (nested)
//! block comments, string literals, raw strings (`r"…"`, `r#"…"#`, any
//! hash count), byte strings, char literals, and lifetimes — so rules
//! never fire on text content. Comments are not discarded entirely: each
//! one is checked for a suppression marker (see [`AllowMarker`]), and a
//! second pass marks the tokens that belong to test-only code
//! (`cfg`-test modules and test functions), which most rules exempt.
//!
//! Line/column bookkeeping counts `char` boundaries, not bytes, so
//! diagnostics in files carrying multibyte characters (em-dashes and
//! typographic quotes in doc comments, for instance) still point at the
//! column an editor shows.
//!
//! The lexer is intentionally not a full Rust frontend: it understands
//! exactly enough lexical structure to never confuse program text with
//! literal text. Numeric literals are consumed as opaque blobs; generic
//! angle brackets, pattern syntax, and macro bodies all flow through as
//! plain punctuation, which is sufficient for the token-pattern rules,
//! and the item parser ([`crate::parser`]) recovers fn/impl/mod/use
//! structure from the same stream for the whole-program analyses.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`foo`, `use`, `HashMap`).
    Ident,
    /// A single punctuation character (`.`, `!`, `{`, …).
    Punct,
}

/// One lexical token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Identifier or punctuation.
    pub kind: TokKind,
    /// The token text (single character for punctuation).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column in `char`s (not bytes).
    pub col: u32,
    /// Whether the token sits inside test-only code (a module or item
    /// carrying a test attribute). Most rules skip these tokens.
    pub in_test: bool,
}

/// A suppression marker parsed from a comment. The marker grammar is
/// documented in DESIGN.md; a marker names one or more rules and must end
/// with a free-text justification. Markers with no parseable rule list or
/// no justification are reported by the engine instead of honoured.
#[derive(Debug, Clone)]
pub struct AllowMarker {
    /// Line the comment starts on.
    pub line: u32,
    /// 1-based column (in `char`s) of the comment start.
    pub col: u32,
    /// Rule names listed inside the parentheses (empty when malformed).
    pub rules: Vec<String>,
    /// Whether this suppresses for the whole file rather than one line.
    pub file_level: bool,
    /// The free text following the rule list.
    pub justification: String,
}

impl AllowMarker {
    /// A justification is real prose, not a placeholder: at least ten
    /// characters once separators are stripped.
    pub fn justified(&self) -> bool {
        self.justification.chars().count() >= 10
    }
}

/// Lexer output: the token stream plus every suppression marker found.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens outside comments/strings, in source order.
    pub tokens: Vec<Tok>,
    /// Markers parsed from comments, in source order.
    pub markers: Vec<AllowMarker>,
}

const MARKER_PREFIX: &str = "sage-lint:";

fn parse_marker(comment: &str, line: u32, col: u32, markers: &mut Vec<AllowMarker>) {
    // The marker must lead the comment (after whitespace); prose that
    // merely *mentions* the marker syntax mid-sentence is not a marker.
    let t = comment.trim_start();
    let Some(rest) = t.strip_prefix(MARKER_PREFIX) else { return };
    let rest = rest.trim_start();
    let (file_level, body) = if let Some(r) = rest.strip_prefix("allow-file(") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("allow(") {
        (false, r)
    } else {
        markers.push(AllowMarker {
            line,
            col,
            rules: Vec::new(),
            file_level: false,
            justification: String::new(),
        });
        return;
    };
    let Some(close) = body.find(')') else {
        markers.push(AllowMarker {
            line,
            col,
            rules: Vec::new(),
            file_level,
            justification: String::new(),
        });
        return;
    };
    let rules: Vec<String> = body[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let justification = body[close + 1..]
        .trim_matches(|c: char| c.is_whitespace() || c == '-' || c == '\u{2014}' || c == ':')
        .to_string();
    markers.push(AllowMarker { line, col, rules, file_level, justification });
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Line/column cursor shared with the literal-skipping helpers: `line` is
/// 1-based; `line_start` is the char index where the current line begins,
/// so `col(i) = i - line_start + 1` counts chars, not bytes.
struct Pos {
    line: u32,
    line_start: usize,
}

impl Pos {
    fn col(&self, i: usize) -> u32 {
        (i - self.line_start + 1) as u32
    }
    fn newline_at(&mut self, i: usize) {
        self.line += 1;
        self.line_start = i + 1;
    }
}

/// Lex `source` into tokens and markers. Never panics on malformed input:
/// unterminated literals simply consume to end of file.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let len = chars.len();
    let mut tokens: Vec<Tok> = Vec::new();
    let mut markers: Vec<AllowMarker> = Vec::new();
    let mut i = 0usize;
    let mut pos = Pos { line: 1, line_start: 0 };

    let peek = |j: usize| -> Option<char> { chars.get(j).copied() };

    while i < len {
        let c = chars[i];
        if c == '\n' {
            pos.newline_at(i);
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && peek(i + 1) == Some('/') {
            let comment_col = pos.col(i);
            let start = i + 2;
            while i < len && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start.min(i)..i].iter().collect();
            parse_marker(&text, pos.line, comment_col, &mut markers);
            continue;
        }
        // Block comment (nested).
        if c == '/' && peek(i + 1) == Some('*') {
            let start_line = pos.line;
            let start_col = pos.col(i);
            let mut depth = 1u32;
            i += 2;
            let text_start = i;
            let mut text_end = i;
            while i < len && depth > 0 {
                if chars[i] == '/' && peek(i + 1) == Some('*') {
                    depth += 1;
                    i += 2;
                    continue;
                }
                if chars[i] == '*' && peek(i + 1) == Some('/') {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        text_end = i - 2;
                    }
                    continue;
                }
                if chars[i] == '\n' {
                    pos.newline_at(i);
                }
                i += 1;
            }
            if depth > 0 {
                text_end = i;
            }
            let text: String = chars[text_start..text_end.max(text_start)].iter().collect();
            parse_marker(&text, start_line, start_col, &mut markers);
            continue;
        }
        // String literal.
        if c == '"' {
            i = skip_string(&chars, i, &mut pos);
            continue;
        }
        // Raw strings, raw identifiers, byte strings/chars.
        if c == 'r' || c == 'b' {
            if let Some(ni) = lex_prefixed(&chars, i, &mut pos, &mut tokens) {
                i = ni;
                continue;
            }
        }
        // Char literal or lifetime.
        if c == '\'' {
            i = skip_char_or_lifetime(&chars, i, &mut pos);
            continue;
        }
        // Numeric literal: consumed as an opaque blob (suffixes, hex
        // digits). Dots and exponent signs fall out as punctuation, which
        // no rule pattern cares about.
        if c.is_ascii_digit() {
            i += 1;
            while i < len && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            i += 1;
            while i < len && is_ident_continue(chars[i]) {
                i += 1;
            }
            tokens.push(Tok {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line: pos.line,
                col: pos.col(start),
                in_test: false,
            });
            continue;
        }
        tokens.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: pos.line,
            col: pos.col(i),
            in_test: false,
        });
        i += 1;
    }

    mark_test_regions(&mut tokens);
    Lexed { tokens, markers }
}

/// Skip a normal (escaped) string literal starting at the opening quote.
fn skip_string(chars: &[char], mut i: usize, pos: &mut Pos) -> usize {
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                // A line-continuation escape still ends a source line.
                if chars.get(i + 1) == Some(&'\n') {
                    pos.newline_at(i + 1);
                }
                i += 2;
            }
            '"' => return i + 1,
            '\n' => {
                pos.newline_at(i);
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw string body starting at the opening quote, terminated by a
/// quote followed by `hashes` hash signs.
fn skip_raw_string(chars: &[char], mut i: usize, hashes: usize, pos: &mut Pos) -> usize {
    i += 1; // opening quote
    while i < chars.len() {
        if chars[i] == '\n' {
            pos.newline_at(i);
        }
        if chars[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Handle tokens starting with `r` or `b` that are *not* plain
/// identifiers: raw strings, raw identifiers, byte strings, byte chars,
/// raw byte strings. Returns the index after the construct, or `None`
/// when the `r`/`b` begins an ordinary identifier.
fn lex_prefixed(
    chars: &[char],
    i: usize,
    pos: &mut Pos,
    tokens: &mut Vec<Tok>,
) -> Option<usize> {
    let c = chars[i];
    let peek = |j: usize| -> Option<char> { chars.get(j).copied() };
    if c == 'r' {
        // r"..."  |  r#"..."#  |  r#ident
        if peek(i + 1) == Some('"') {
            return Some(skip_raw_string(chars, i + 1, 0, pos));
        }
        let mut h = 0usize;
        while peek(i + 1 + h) == Some('#') {
            h += 1;
        }
        if h > 0 {
            if peek(i + 1 + h) == Some('"') {
                return Some(skip_raw_string(chars, i + 1 + h, h, pos));
            }
            if h == 1 && peek(i + 2).is_some_and(is_ident_start) {
                // Raw identifier r#name: emit the bare name.
                let start = i + 2;
                let mut j = start + 1;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[start..j].iter().collect(),
                    line: pos.line,
                    col: pos.col(start),
                    in_test: false,
                });
                return Some(j);
            }
        }
        return None;
    }
    // c == 'b'
    match peek(i + 1) {
        Some('"') => Some(skip_string(chars, i + 1, pos)),
        Some('\'') => Some(skip_char_or_lifetime(chars, i + 1, pos)),
        Some('r') => {
            let mut h = 0usize;
            while peek(i + 2 + h) == Some('#') {
                h += 1;
            }
            if peek(i + 2 + h) == Some('"') {
                Some(skip_raw_string(chars, i + 2 + h, h, pos))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Skip a char literal or a lifetime starting at the quote. `'a'` and
/// `'\n'` are char literals; `'a` (no closing quote) is a lifetime and
/// produces no token — no rule matches on lifetimes.
fn skip_char_or_lifetime(chars: &[char], i: usize, pos: &mut Pos) -> usize {
    let len = chars.len();
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char literal: scan to the closing quote.
            let mut j = i + 2;
            while j < len {
                match chars[j] {
                    '\\' => {
                        if chars.get(j + 1) == Some(&'\n') {
                            pos.newline_at(j + 1);
                        }
                        j += 2;
                    }
                    '\'' => return j + 1,
                    '\n' => {
                        pos.newline_at(j);
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            j
        }
        Some(ch) if is_ident_start(*ch) => {
            let mut j = i + 2;
            while j < len && is_ident_continue(chars[j]) {
                j += 1;
            }
            if chars.get(j) == Some(&'\'') {
                j + 1 // char literal like 'a'
            } else {
                j // lifetime: the quote and name are simply dropped
            }
        }
        Some(_) => {
            // Char literal over punctuation, e.g. '(' or ' '.
            if chars.get(i + 2) == Some(&'\'') {
                i + 3
            } else {
                i + 1
            }
        }
        None => i + 1,
    }
}

/// Mark tokens belonging to test-only items. An attribute whose content
/// mentions `test` (and not `not`, so a negative `cfg` stays live code)
/// taints the item that follows it: either a braced body (`mod`/`fn`) up
/// to the matching close brace, or a declaration up to its semicolon.
fn mark_test_regions(tokens: &mut [Tok]) {
    let punct_at =
        |toks: &[Tok], j: usize| -> Option<char> {
            toks.get(j).and_then(|t| {
                if t.kind == TokKind::Punct {
                    t.text.chars().next()
                } else {
                    None
                }
            })
        };
    let mut j = 0usize;
    while j < tokens.len() {
        if punct_at(tokens, j) != Some('#') {
            j += 1;
            continue;
        }
        // Inner attribute `#![…]`: scan past it without test semantics.
        let inner = punct_at(tokens, j + 1) == Some('!');
        let open = if inner { j + 2 } else { j + 1 };
        if punct_at(tokens, open) != Some('[') {
            j += 1;
            continue;
        }
        let (attr_end, is_test) = scan_attr(tokens, open + 1);
        if inner || !is_test {
            j = attr_end;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut k = attr_end;
        loop {
            if punct_at(tokens, k) == Some('#') && punct_at(tokens, k + 1) == Some('[') {
                let (e, _) = scan_attr(tokens, k + 2);
                k = e;
                continue;
            }
            break;
        }
        // Find the item extent: first top-level `{…}` or a `;`.
        let mut nest = 0i64;
        let mut m = k;
        let mut advanced_to = k.max(j + 1);
        while m < tokens.len() {
            match punct_at(tokens, m) {
                Some('(') | Some('[') => nest += 1,
                Some(')') | Some(']') => nest -= 1,
                Some('{') if nest <= 0 => {
                    let mut depth = 1i64;
                    let mut p = m + 1;
                    while p < tokens.len() && depth > 0 {
                        match punct_at(tokens, p) {
                            Some('{') => depth += 1,
                            Some('}') => depth -= 1,
                            _ => {}
                        }
                        p += 1;
                    }
                    for t in tokens[j..p].iter_mut() {
                        t.in_test = true;
                    }
                    advanced_to = p;
                    break;
                }
                Some(';') if nest <= 0 => {
                    for t in tokens[j..=m].iter_mut() {
                        t.in_test = true;
                    }
                    advanced_to = m + 1;
                    break;
                }
                _ => {}
            }
            m += 1;
            advanced_to = m;
        }
        j = advanced_to.max(j + 1);
    }
}

/// Scan an attribute body from just inside its `[`. Returns the index
/// after the matching `]` and whether the attribute marks test code.
fn scan_attr(tokens: &[Tok], start: usize) -> (usize, bool) {
    let mut depth = 1i64;
    let mut j = start;
    let mut has_test = false;
    let mut has_not = false;
    while j < tokens.len() && depth > 0 {
        let t = &tokens[j];
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "[" | "(" => depth += 1,
                "]" | ")" => depth -= 1,
                _ => {}
            },
            TokKind::Ident => {
                if t.text == "test" {
                    has_test = true;
                }
                if t.text == "not" {
                    has_not = true;
                }
            }
        }
        j += 1;
    }
    (j, has_test && !has_not)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_skipped() {
        let src = r###"
            // println! in a comment
            /* panic! inside /* nested */ block */
            let a = "println!(\"x\")";
            let b = r#"unwrap() and "quotes" inside"#;
            let c = b"expect bytes";
            let d = 'x';
            real_ident();
        "###;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.iter().any(|t| t == "println" || t == "panic" || t == "unwrap"));
        assert!(!ids.iter().any(|t| t == "expect" || t == "quotes"));
    }

    #[test]
    fn raw_string_with_backslash_quote_terminates_correctly() {
        // In a raw string a backslash does not escape the closing quote.
        let src = "let a = r\"tail\\\"; trailing_ident();";
        let ids = idents(src);
        assert!(ids.contains(&"trailing_ident".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } after();";
        let ids = idents(src);
        assert!(ids.contains(&"after".to_string()));
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn char_literals_are_skipped() {
        let src = "let q = '\"'; let n = '\\n'; let p = '('; tail();";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "q", "let", "n", "let", "p", "tail"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nb\n  c";
        let toks = lex(src).tokens;
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn columns_are_one_based_chars() {
        let src = "ab cd\n  ef(gh)";
        let toks = lex(src).tokens;
        let find = |name: &str| toks.iter().find(|t| t.text == name).map(|t| (t.line, t.col));
        assert_eq!(find("ab"), Some((1, 1)));
        assert_eq!(find("cd"), Some((1, 4)));
        assert_eq!(find("ef"), Some((2, 3)));
        assert_eq!(find("gh"), Some((2, 6)));
    }

    #[test]
    fn columns_count_chars_not_bytes() {
        // The em-dash and the curly quotes are multibyte; a byte counter
        // would overshoot the columns of everything after them.
        let src = "let a = 1; // “mixed — prose”\nlet b = 2;\nlet émile = après(3);";
        let toks = lex(src).tokens;
        let find = |name: &str| toks.iter().find(|t| t.text == name).map(|t| (t.line, t.col));
        assert_eq!(find("b"), Some((2, 5)));
        assert_eq!(find("émile"), Some((3, 5)));
        assert_eq!(find("après"), Some((3, 13)));
    }

    #[test]
    fn columns_survive_multiline_strings() {
        let src = "let s = \"line one\nline two\"; after();";
        let toks = lex(src).tokens;
        let after = toks.iter().find(|t| t.text == "after");
        assert_eq!(after.map(|t| (t.line, t.col)), Some((2, 12)));
    }

    #[test]
    fn line_continuation_in_string_counts_its_newline() {
        let src = "let s = \"first \\\n   second\";\nafter();\n";
        let toks = lex(src).tokens;
        let after = toks.iter().find(|t| t.text == "after").map(|t| t.line);
        assert_eq!(after, Some(3));
    }

    #[test]
    fn test_attribute_taints_following_item() {
        let src = "
            fn live() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn helper() { y.unwrap(); }
            }
            fn live2() {}
        ";
        let toks = lex(src).tokens;
        let unwraps: Vec<bool> =
            toks.iter().filter(|t| t.text == "unwrap").map(|t| t.in_test).collect();
        assert_eq!(unwraps, vec![false, true]);
        let live2 = toks.iter().find(|t| t.text == "live2").map(|t| t.in_test);
        assert_eq!(live2, Some(false));
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let src = "#[cfg(not(test))] fn shipping() { x.unwrap(); }";
        let toks = lex(src).tokens;
        let u = toks.iter().find(|t| t.text == "unwrap").map(|t| t.in_test);
        assert_eq!(u, Some(false));
    }

    #[test]
    fn test_attr_on_declaration_ends_at_semicolon() {
        let src = "#[cfg(test)] use helper_mod::thing; fn live() {}";
        let toks = lex(src).tokens;
        let thing = toks.iter().find(|t| t.text == "thing").map(|t| t.in_test);
        assert_eq!(thing, Some(true));
        let live = toks.iter().find(|t| t.text == "live").map(|t| t.in_test);
        assert_eq!(live, Some(false));
    }

    #[test]
    fn markers_parse_rules_and_justification() {
        let marker = "sage-lint: allow(no-print, layering) - the CLI owns stdout here";
        let src = format!("let x = 1; // {marker}\n");
        let lexed = lex(&src);
        assert_eq!(lexed.markers.len(), 1);
        let m = &lexed.markers[0];
        assert_eq!(m.rules, vec!["no-print", "layering"]);
        assert!(!m.file_level);
        assert!(m.justified());
        assert_eq!(m.line, 1);
        assert_eq!(m.col, 12);
    }

    #[test]
    fn file_marker_and_unjustified_marker() {
        let a = "sage-lint: allow-file(no-wallclock) - latency measurement layer by design";
        let b = "sage-lint: allow(no-print)";
        let src = format!("// {a}\nfn f() {{}}\n// {b}\n");
        let lexed = lex(&src);
        assert_eq!(lexed.markers.len(), 2);
        assert!(lexed.markers[0].file_level);
        assert!(lexed.markers[0].justified());
        assert!(!lexed.markers[1].justified());
    }

    #[test]
    fn mid_sentence_mentions_are_not_markers() {
        let src = "// suppressions use the sage-lint: allow(rule) marker\nfn f() {}\n";
        assert!(lex(src).markers.is_empty());
    }
}
