//! An item-level Rust parser over the lexed token stream.
//!
//! Recovers just enough structure for whole-program analysis: `fn`
//! definitions (with their body token ranges), `mod`/`impl`/`trait`
//! nesting (so a method knows its `self` type), and `use` declarations
//! (so resolution can honour cross-crate imports). Everything else —
//! struct fields, expressions, generics, macro bodies — is skipped as
//! opaque token runs.
//!
//! The parser never fails: unrecognized constructs advance one token and
//! continue, so a file the parser half-understands still contributes the
//! items it did understand. Item spans are exact token index ranges into
//! the file's token stream (`[start, end)`), which the property tests
//! round-trip against generated sources.

use crate::lexer::{Tok, TokKind};

/// What kind of item this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A function with (maybe) a body.
    Fn,
    /// An inline module (`mod m { … }`); out-of-line `mod m;` is skipped.
    Mod,
    /// An `impl` block (inherent or trait).
    Impl,
    /// A `trait` definition (default method bodies are parsed like impls).
    Trait,
    /// A `use` declaration; `name` holds the joined path text.
    Use,
}

/// One parsed item.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// Fn/mod/trait name, impl self-type, or the flattened use path
    /// (e.g. `std::collections::{HashMap,HashSet}` becomes
    /// `std::collections::{HashMap,HashSet}` with spaces removed).
    pub name: String,
    /// For `impl`: the trait name when this is a trait impl.
    pub trait_name: Option<String>,
    /// 1-based line/column of the introducing keyword token.
    pub line: u32,
    pub col: u32,
    /// Token index of the introducing keyword (`fn`/`mod`/`impl`/…).
    pub tok_start: usize,
    /// One past the item's final token (`}` or `;`).
    pub tok_end: usize,
    /// For fns with a body: the interior token range of `{ … }`
    /// (excluding the braces). `None` for bodyless trait-method
    /// declarations.
    pub body: Option<(usize, usize)>,
    /// Whether the item sits in test-only code.
    pub in_test: bool,
    /// Nested items (mod/impl/trait children).
    pub children: Vec<Item>,
}

/// Keywords that introduce items the parser handles or skips explicitly.
fn punct(t: &Tok) -> Option<char> {
    if t.kind == TokKind::Punct { t.text.chars().next() } else { None }
}

fn is_kw(t: &Tok, kw: &str) -> bool {
    t.kind == TokKind::Ident && t.text == kw
}

/// Parse a whole file's token stream into a flat list of top-level items
/// (with nesting inside).
pub fn parse_items(tokens: &[Tok]) -> Vec<Item> {
    let mut i = 0usize;
    parse_block(tokens, &mut i, tokens.len(), None)
}

/// Parse items until `end` (exclusive). `_self_ty` is the enclosing
/// impl/trait type for fn items (reserved; method names are currently
/// resolved without it).
fn parse_block(tokens: &[Tok], i: &mut usize, end: usize, _self_ty: Option<&str>) -> Vec<Item> {
    let mut items = Vec::new();
    while *i < end {
        let start = *i;
        let t = &tokens[start];
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "fn" => {
                    if let Some(item) = parse_fn(tokens, i, end) {
                        items.push(item);
                        continue;
                    }
                }
                "mod" => {
                    if let Some(item) = parse_mod(tokens, i, end) {
                        items.push(item);
                        continue;
                    }
                }
                "impl" => {
                    if let Some(item) = parse_impl(tokens, i, end) {
                        items.push(item);
                        continue;
                    }
                }
                "trait" => {
                    if let Some(item) = parse_trait(tokens, i, end) {
                        items.push(item);
                        continue;
                    }
                }
                "use" => {
                    if let Some(item) = parse_use(tokens, i, end) {
                        items.push(item);
                        continue;
                    }
                }
                // Items whose bodies can contain braces but never nested
                // fns we need: skip to their extent so stray `fn` tokens
                // inside (e.g. `Fn` bounds don't lex as `fn`, but a
                // `macro_rules!` body can hold anything).
                "struct" | "enum" | "union" | "macro_rules" => {
                    skip_to_item_end(tokens, i, end);
                    continue;
                }
                _ => {}
            }
        }
        // `{ … }` blocks we didn't claim (extern blocks, const bodies):
        // descend is unnecessary; skip them wholesale so a brace-matched
        // region never desynchronizes the item walk.
        if punct(t) == Some('{') {
            *i = skip_braced(tokens, start, end);
            continue;
        }
        *i += 1;
    }
    items
}

/// From a `{` token index, return the index one past its matching `}`.
fn skip_braced(tokens: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < end {
        match punct(&tokens[j]) {
            Some('{') => depth += 1,
            Some('}') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    end
}

/// Skip an item that ends at a top-level `;` or a braced body, whichever
/// comes first (struct/enum/const/static/type/macro_rules).
fn skip_to_item_end(tokens: &[Tok], i: &mut usize, end: usize) {
    let mut j = *i + 1;
    let mut nest = 0i64;
    while j < end {
        match punct(&tokens[j]) {
            Some('(') | Some('[') => nest += 1,
            Some(')') | Some(']') => nest -= 1,
            Some(';') if nest <= 0 => {
                *i = j + 1;
                return;
            }
            Some('{') if nest <= 0 => {
                *i = skip_braced(tokens, j, end);
                return;
            }
            _ => {}
        }
        j += 1;
    }
    *i = end;
}

/// Parse `fn name … { body }` or `fn name …;` starting at the `fn` token.
fn parse_fn(tokens: &[Tok], i: &mut usize, end: usize) -> Option<Item> {
    let start = *i;
    let name_tok = tokens.get(start + 1)?;
    if name_tok.kind != TokKind::Ident {
        *i += 1;
        return None;
    }
    // Find the body `{` or terminating `;` at paren/bracket depth 0.
    // (Const generics in signatures would need brace awareness; the
    // workspace carries none, and a miss only widens one span.)
    let mut j = start + 2;
    let mut nest = 0i64;
    while j < end {
        match punct(&tokens[j]) {
            Some('(') | Some('[') => nest += 1,
            Some(')') | Some(']') => nest -= 1,
            Some(';') if nest <= 0 => {
                let item = Item {
                    kind: ItemKind::Fn,
                    name: name_tok.text.clone(),
                    trait_name: None,
                    line: tokens[start].line,
                    col: tokens[start].col,
                    tok_start: start,
                    tok_end: j + 1,
                    body: None,
                    in_test: tokens[start].in_test,
                    children: Vec::new(),
                };
                *i = j + 1;
                return Some(item);
            }
            Some('{') if nest <= 0 => {
                let after = skip_braced(tokens, j, end);
                let item = Item {
                    kind: ItemKind::Fn,
                    name: name_tok.text.clone(),
                    trait_name: None,
                    line: tokens[start].line,
                    col: tokens[start].col,
                    tok_start: start,
                    tok_end: after,
                    body: Some((j + 1, after.saturating_sub(1))),
                    in_test: tokens[start].in_test,
                    children: Vec::new(),
                };
                *i = after;
                return Some(item);
            }
            _ => {}
        }
        j += 1;
    }
    *i = end;
    None
}

/// Parse `mod name { … }` (inline) or `mod name;` (skipped — the walker
/// visits the out-of-line file itself).
fn parse_mod(tokens: &[Tok], i: &mut usize, end: usize) -> Option<Item> {
    let start = *i;
    let name_tok = tokens.get(start + 1)?;
    if name_tok.kind != TokKind::Ident {
        *i += 1;
        return None;
    }
    match punct(tokens.get(start + 2)?) {
        Some(';') => {
            *i = start + 3;
            None
        }
        Some('{') => {
            let after = skip_braced(tokens, start + 2, end);
            let mut inner = start + 3;
            let children = parse_block(tokens, &mut inner, after.saturating_sub(1), None);
            let item = Item {
                kind: ItemKind::Mod,
                name: name_tok.text.clone(),
                trait_name: None,
                line: tokens[start].line,
                col: tokens[start].col,
                tok_start: start,
                tok_end: after,
                body: None,
                in_test: tokens[start].in_test,
                children,
            };
            *i = after;
            Some(item)
        }
        _ => {
            *i += 1;
            None
        }
    }
}

/// Extract the self-type (and trait name, if any) from an impl header:
/// the tokens between `impl` and its `{`. Handles `impl<T> Type<T>`,
/// `impl Trait for Type`, and `where` clauses.
fn impl_header(tokens: &[Tok], after_impl: usize, open: usize) -> (String, Option<String>) {
    // Skip leading generics `<…>`; a `->` inside bounds must not close
    // the angle count.
    let mut j = after_impl;
    if j < open && punct(&tokens[j]) == Some('<') {
        let mut depth = 0i64;
        while j < open {
            match punct(&tokens[j]) {
                Some('<') => depth += 1,
                Some('>') => {
                    if j > 0 && punct(&tokens[j - 1]) == Some('-') {
                        // `->` arrow: not a closing angle.
                    } else {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Split on a top-level `for`; the self type follows it. Without
    // `for`, the first ident after the generics is the self type.
    let mut for_at: Option<usize> = None;
    let mut where_at = open;
    let mut depth = 0i64;
    for k in j..open {
        let t = &tokens[k];
        match punct(t) {
            Some('<') => depth += 1,
            Some('>') if k > 0 && punct(&tokens[k - 1]) != Some('-') => depth -= 1,
            _ => {}
        }
        if depth == 0 && is_kw(t, "for") && for_at.is_none() {
            for_at = Some(k);
        }
        if depth == 0 && is_kw(t, "where") {
            where_at = k;
            break;
        }
    }
    let first_ident = |from: usize, to: usize| -> String {
        tokens[from..to]
            .iter()
            .find(|t| {
                t.kind == TokKind::Ident && !matches!(t.text.as_str(), "dyn" | "mut" | "const")
            })
            .map(|t| t.text.clone())
            .unwrap_or_default()
    };
    match for_at {
        // `impl Trait for Type`: the *last* path segment of the type is
        // its name (`live::CorpusWriter` → `CorpusWriter`), so walk idents
        // and keep the final one before any generic args.
        Some(f) => {
            let ty = last_path_segment(tokens, f + 1, where_at);
            let tr = first_ident(j, f);
            (ty, if tr.is_empty() { None } else { Some(tr) })
        }
        None => (last_path_segment(tokens, j, where_at), None),
    }
}

/// The last `::`-path segment head in `tokens[from..to]`, ignoring
/// generic arguments: `exec::QueryCtx<'_>` → `QueryCtx`.
fn last_path_segment(tokens: &[Tok], from: usize, to: usize) -> String {
    let mut name = String::new();
    let mut depth = 0i64;
    for k in from..to {
        let t = &tokens[k];
        match punct(t) {
            Some('<') => depth += 1,
            Some('>') if k > 0 && punct(&tokens[k - 1]) != Some('-') => depth -= 1,
            _ => {}
        }
        if depth == 0
            && t.kind == TokKind::Ident
            && !matches!(t.text.as_str(), "dyn" | "mut" | "const" | "crate" | "super" | "self")
        {
            name = t.text.clone();
        }
    }
    name
}

/// Parse `impl … { items }` starting at the `impl` token.
fn parse_impl(tokens: &[Tok], i: &mut usize, end: usize) -> Option<Item> {
    let start = *i;
    // Find the body `{` at angle-aware depth 0 (a `where` clause carries
    // no braces).
    let mut j = start + 1;
    let mut open = None;
    let mut nest = 0i64;
    while j < end {
        match punct(&tokens[j]) {
            Some('(') | Some('[') => nest += 1,
            Some(')') | Some(']') => nest -= 1,
            Some('{') if nest <= 0 => {
                open = Some(j);
                break;
            }
            Some(';') if nest <= 0 => {
                // `impl Trait for Type;` (rare, nightly) — skip.
                *i = j + 1;
                return None;
            }
            _ => {}
        }
        j += 1;
    }
    let open = open?;
    let after = skip_braced(tokens, open, end);
    let (self_ty, trait_name) = impl_header(tokens, start + 1, open);
    let mut inner = open + 1;
    let children = parse_block(tokens, &mut inner, after.saturating_sub(1), Some(&self_ty));
    let item = Item {
        kind: ItemKind::Impl,
        name: self_ty,
        trait_name,
        line: tokens[start].line,
        col: tokens[start].col,
        tok_start: start,
        tok_end: after,
        body: None,
        in_test: tokens[start].in_test,
        children,
    };
    *i = after;
    Some(item)
}

/// Parse `trait Name … { items }`; default method bodies become Fn
/// children exactly like impl methods.
fn parse_trait(tokens: &[Tok], i: &mut usize, end: usize) -> Option<Item> {
    let start = *i;
    let name_tok = tokens.get(start + 1)?;
    if name_tok.kind != TokKind::Ident {
        *i += 1;
        return None;
    }
    let mut j = start + 2;
    let mut open = None;
    let mut nest = 0i64;
    while j < end {
        match punct(&tokens[j]) {
            Some('(') | Some('[') => nest += 1,
            Some(')') | Some(']') => nest -= 1,
            Some('{') if nest <= 0 => {
                open = Some(j);
                break;
            }
            Some(';') if nest <= 0 => {
                *i = j + 1;
                return None;
            }
            _ => {}
        }
        j += 1;
    }
    let open = open?;
    let after = skip_braced(tokens, open, end);
    let mut inner = open + 1;
    let children = parse_block(tokens, &mut inner, after.saturating_sub(1), Some(&name_tok.text));
    let item = Item {
        kind: ItemKind::Trait,
        name: name_tok.text.clone(),
        trait_name: None,
        line: tokens[start].line,
        col: tokens[start].col,
        tok_start: start,
        tok_end: after,
        body: None,
        in_test: tokens[start].in_test,
        children,
    };
    *i = after;
    Some(item)
}

/// Parse `use path::to::{A, B};` into one item whose name is the joined
/// path text.
fn parse_use(tokens: &[Tok], i: &mut usize, end: usize) -> Option<Item> {
    let start = *i;
    let mut j = start + 1;
    let mut text = String::new();
    while j < end {
        let t = &tokens[j];
        if punct(t) == Some(';') {
            let item = Item {
                kind: ItemKind::Use,
                name: text,
                trait_name: None,
                line: tokens[start].line,
                col: tokens[start].col,
                tok_start: start,
                tok_end: j + 1,
                body: None,
                in_test: tokens[start].in_test,
                children: Vec::new(),
            };
            *i = j + 1;
            return Some(item);
        }
        text.push_str(&t.text);
        j += 1;
    }
    *i = end;
    None
}

/// Visit every item (and nested children) depth-first, with the enclosing
/// impl/trait self-type threaded down to fn items.
pub fn walk<'a, F: FnMut(&'a Item, Option<&'a str>)>(items: &'a [Item], f: &mut F) {
    fn go<'a, F: FnMut(&'a Item, Option<&'a str>)>(
        items: &'a [Item],
        self_ty: Option<&'a str>,
        f: &mut F,
    ) {
        for it in items {
            f(it, self_ty);
            let inner_ty = match it.kind {
                ItemKind::Impl | ItemKind::Trait => Some(it.name.as_str()),
                _ => None,
            };
            go(&it.children, inner_ty.or(self_ty), f);
        }
    }
    go(items, None, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Item> {
        parse_items(&lex(src).tokens)
    }

    #[test]
    fn free_fn_with_body() {
        let items = parse("pub fn alpha(x: u32) -> u32 { x + 1 }\nfn beta() {}\n");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "alpha");
        assert_eq!(items[0].kind, ItemKind::Fn);
        assert!(items[0].body.is_some());
        assert_eq!(items[1].name, "beta");
    }

    #[test]
    fn impl_methods_carry_self_type() {
        let src = "
            struct Engine;
            impl Engine { fn start(&self) {} fn stop(&self) {} }
            impl Drop for Engine { fn drop(&mut self) {} }
        ";
        let items = parse(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].kind, ItemKind::Impl);
        assert_eq!(items[0].name, "Engine");
        assert_eq!(items[0].trait_name, None);
        let names: Vec<&str> = items[0].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["start", "stop"]);
        assert_eq!(items[1].name, "Engine");
        assert_eq!(items[1].trait_name.as_deref(), Some("Drop"));
    }

    #[test]
    fn generic_impl_headers_resolve_the_self_type() {
        let src = "impl<'a, T: Iterator<Item = u8>> Holder<'a, T> where T: Clone { fn get(&self) {} }";
        let items = parse(src);
        assert_eq!(items[0].name, "Holder");
        let src2 = "impl<E: Fn() -> u8> Stage for Wrapper<E> { fn run(&self) {} }";
        let items2 = parse(src2);
        assert_eq!(items2[0].name, "Wrapper");
        assert_eq!(items2[0].trait_name.as_deref(), Some("Stage"));
    }

    #[test]
    fn qualified_self_types_take_the_last_segment() {
        let items = parse("impl exec::QueryCtx<'_> { fn reset(&mut self) {} }");
        assert_eq!(items[0].name, "QueryCtx");
    }

    #[test]
    fn mods_nest() {
        let src = "mod outer { mod inner { fn deep() {} } fn shallow() {} }";
        let items = parse(src);
        assert_eq!(items[0].kind, ItemKind::Mod);
        assert_eq!(items[0].name, "outer");
        assert_eq!(items[0].children.len(), 2);
        assert_eq!(items[0].children[0].name, "inner");
        assert_eq!(items[0].children[0].children[0].name, "deep");
        assert_eq!(items[0].children[1].name, "shallow");
    }

    #[test]
    fn use_paths_flatten() {
        let items = parse("use std::collections::{BTreeMap, BTreeSet};\nuse sage_vecdb::FlatIndex;\n");
        assert_eq!(items[0].kind, ItemKind::Use);
        assert_eq!(items[0].name, "std::collections::{BTreeMap,BTreeSet}");
        assert_eq!(items[1].name, "sage_vecdb::FlatIndex");
    }

    #[test]
    fn trait_default_methods_are_children() {
        let src = "trait Greet { fn hello(&self) { wave(); } fn name(&self) -> String; }";
        let items = parse(src);
        assert_eq!(items[0].kind, ItemKind::Trait);
        assert_eq!(items[0].children.len(), 2);
        assert!(items[0].children[0].body.is_some());
        assert!(items[0].children[1].body.is_none());
    }

    #[test]
    fn spans_cover_their_items_exactly() {
        let src = "fn a() { inner(1); }\nfn b() {}\n";
        let toks = lex(src).tokens;
        let items = parse_items(&toks);
        let a = &items[0];
        assert_eq!(toks[a.tok_start].text, "fn");
        assert_eq!(toks[a.tok_end - 1].text, "}");
        let (bs, be) = a.body.unwrap();
        let body_text: Vec<&str> = toks[bs..be].iter().map(|t| t.text.as_str()).collect();
        assert_eq!(body_text, vec!["inner", "(", ")", ";"]);
        assert_eq!(items[1].tok_start, a.tok_end);
    }

    #[test]
    fn struct_bodies_do_not_confuse_the_walk() {
        let src = "struct S { f: u8 }\nenum E { A { x: u8 }, B }\nfn after() {}\n";
        let items = parse(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "after");
    }

    #[test]
    fn test_items_are_marked() {
        let src = "#[cfg(test)] mod tests { fn helper() {} }\nfn live() {}\n";
        let items = parse(src);
        assert_eq!(items.len(), 2);
        assert!(items[0].in_test);
        assert!(items[0].children[0].in_test);
        assert!(!items[1].in_test);
    }

    #[test]
    fn malformed_input_never_panics() {
        for src in ["fn", "impl {", "mod m {", "use a::b", "fn f( {", "trait T", "}}}{{{"] {
            let _ = parse(src);
        }
    }
}
