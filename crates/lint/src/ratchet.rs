//! The `lint-baseline.json` ratchet.
//!
//! The committed baseline records, per rule, how many violations
//! survive and how many are suppressed by allow markers. CI compares
//! the current run against it with exact-match-or-justify semantics:
//!
//! * current **above** baseline → regression, fail;
//! * current **below** baseline → the baseline is loose (it would hide
//!   a future regression) — fail unless that rule's entry carries a
//!   `justification` string explaining why slack is intentional;
//! * equal → pass.
//!
//! `sage lint --update-baseline` rewrites the file to the exact current
//! counts, which is the normal way to ratchet down after a cleanup.
//!
//! File grammar (version 1):
//!
//! ```json
//! {
//!   "version": 1,
//!   "rules": {
//!     "no-panic-serving": { "violations": 0, "suppressions": 12 },
//!     "no-wallclock": { "violations": 0, "suppressions": 3,
//!                        "justification": "slack while PR 9 lands" }
//!   }
//! }
//! ```
//!
//! Rules absent from `rules` are implicitly `{0, 0}` — a new rule with
//! findings therefore fails until the baseline acknowledges it.

use crate::jsonv::{self, Value};
use crate::{json_escape, Report};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-rule baseline entry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleCounts {
    pub violations: u64,
    pub suppressions: u64,
    /// When present, permits the current counts to sit *below* these.
    pub justification: Option<String>,
}

/// The parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    pub rules: BTreeMap<String, RuleCounts>,
}

/// Parse a baseline document.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let doc = jsonv::parse(text).map_err(|e| format!("baseline is not JSON: {e}"))?;
    if doc.get("version").and_then(Value::as_f64) != Some(1.0) {
        return Err("baseline `version` must be 1".to_string());
    }
    let rules = doc
        .get("rules")
        .and_then(Value::as_obj)
        .ok_or("baseline `rules` missing or not an object")?;
    let mut out = Baseline::default();
    for (name, entry) in rules {
        let count = |key: &str| -> Result<u64, String> {
            match entry.get(key) {
                None => Ok(0),
                Some(v) => v
                    .as_f64()
                    .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                    .map(|n| n as u64)
                    .ok_or_else(|| format!("rule `{name}`: `{key}` must be a non-negative integer")),
            }
        };
        out.rules.insert(
            name.clone(),
            RuleCounts {
                violations: count("violations")?,
                suppressions: count("suppressions")?,
                justification: entry
                    .get("justification")
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .filter(|s| !s.trim().is_empty()),
            },
        );
    }
    Ok(out)
}

/// The current per-rule counts of a report, covering every rule that
/// has any violations or suppressions.
pub fn current_counts(report: &Report) -> BTreeMap<String, RuleCounts> {
    let mut out: BTreeMap<String, RuleCounts> = BTreeMap::new();
    for v in &report.violations {
        out.entry(v.rule.to_string()).or_default().violations += 1;
    }
    for (rule, n) in &report.suppressed_by_rule {
        if *n > 0 {
            out.entry(rule.clone()).or_default().suppressions += *n as u64;
        }
    }
    out
}

/// Compare the current run against the baseline. Returns one error line
/// per deviation; empty means the gate passes.
pub fn compare(baseline: &Baseline, report: &Report) -> Vec<String> {
    let current = current_counts(report);
    let mut errors = Vec::new();
    let zero = RuleCounts::default();
    let mut names: Vec<&String> = baseline.rules.keys().chain(current.keys()).collect();
    names.sort();
    names.dedup();
    for name in names {
        let base = baseline.rules.get(name).unwrap_or(&zero);
        let cur = current.get(name).cloned().unwrap_or_default();
        for (what, b, c) in [
            ("violations", base.violations, cur.violations),
            ("suppressions", base.suppressions, cur.suppressions),
        ] {
            if c > b {
                errors.push(format!(
                    "{name}: {what} regressed {b} -> {c}; fix the findings or \
                     consciously ratchet up with --update-baseline"
                ));
            } else if c < b && base.justification.is_none() {
                errors.push(format!(
                    "{name}: baseline allows {b} {what} but only {c} exist — loose \
                     slack hides future regressions; run --update-baseline or add a \
                     `justification` to the rule's entry"
                ));
            }
        }
    }
    errors
}

/// Render the exact current counts as a fresh baseline document.
pub fn render(report: &Report) -> String {
    let current = current_counts(report);
    let mut s = String::from("{\n  \"version\": 1,\n  \"rules\": {\n");
    let mut first = true;
    for (name, c) in &current {
        if !first {
            s.push_str(",\n");
        }
        first = false;
        let _ = write!(
            s,
            "    \"{}\": {{ \"violations\": {}, \"suppressions\": {} }}",
            json_escape(name),
            c.violations,
            c.suppressions
        );
    }
    s.push_str("\n  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules;

    fn report(suppressed: &[(&'static str, usize)], violated: &[&'static str]) -> Report {
        let mut r = Report::default();
        for (rule, n) in suppressed {
            r.suppressed_by_rule.insert(rule.to_string(), *n);
            r.suppressed += n;
        }
        for rule in violated {
            r.violations.push(crate::Violation::new(rule, "x.rs", 1, 1, "m".to_string()));
        }
        r
    }

    #[test]
    fn equal_counts_pass() {
        let r = report(&[(rules::NO_WALLCLOCK, 2)], &[]);
        let b = parse(&render(&r)).unwrap();
        assert!(compare(&b, &r).is_empty());
    }

    #[test]
    fn regressions_fail() {
        let r = report(&[(rules::NO_WALLCLOCK, 2)], &[]);
        let b = parse(&render(&r)).unwrap();
        let worse = report(&[(rules::NO_WALLCLOCK, 3)], &[rules::NO_PRINT]);
        let errors = compare(&b, &worse);
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("no-wallclock") && e.contains("2 -> 3")));
        assert!(errors.iter().any(|e| e.contains("no-print")));
    }

    #[test]
    fn loose_baselines_fail_without_justification() {
        let r = report(&[(rules::NO_WALLCLOCK, 2)], &[]);
        let b = parse(&render(&r)).unwrap();
        let better = report(&[(rules::NO_WALLCLOCK, 1)], &[]);
        let errors = compare(&b, &better);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].contains("loose"));
    }

    #[test]
    fn justified_slack_passes() {
        let text = r#"{"version":1,"rules":{"no-wallclock":{"violations":0,"suppressions":5,"justification":"mid-cleanup slack, tracked in ISSUE 9"}}}"#;
        let b = parse(text).unwrap();
        let better = report(&[(rules::NO_WALLCLOCK, 1)], &[]);
        assert!(compare(&b, &better).is_empty());
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(parse("{}").is_err());
        assert!(parse(r#"{"version":2,"rules":{}}"#).is_err());
        assert!(parse(r#"{"version":1,"rules":{"r":{"violations":-1}}}"#).is_err());
        assert!(parse(r#"{"version":1,"rules":{"r":{"violations":1.5}}}"#).is_err());
    }

    #[test]
    fn render_is_deterministic_and_sorted() {
        let r = report(&[(rules::NO_WALLCLOCK, 1), (rules::LAYERING, 2)], &[]);
        let a = render(&r);
        assert_eq!(a, render(&r));
        let lay = a.find("layering").unwrap();
        let wall = a.find("no-wallclock").unwrap();
        assert!(lay < wall);
    }
}
