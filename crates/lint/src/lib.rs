//! `sage-lint` — dependency-free static analysis for the SAGE workspace.
//!
//! The analyzer lexes every `.rs` file in the workspace with its own
//! minimal Rust lexer ([`lexer`]) — comments, strings, raw strings, and
//! char literals are skipped, so rules can never fire on text content —
//! and runs eight token-pattern rules ([`rules`]) that enforce the
//! invariants SAGE's evaluation rests on: determinism, panic-freedom on
//! the serving path, the inter-crate layering DAG, and the single-writer
//! confinement of live-corpus mutation.
//!
//! A violation can be suppressed with an inline comment marker naming
//! the rule and carrying a justification (the exact grammar is
//! documented in DESIGN.md §Static analysis). A marker with an unknown
//! rule name or a missing/too-short justification is itself reported as
//! a `bad-allow` violation, which cannot be suppressed.
//!
//! Three consumers share this crate: the `sage-cli lint` subcommand,
//! the tier-1 test in `tests/static_analysis.rs`, and the
//! `scripts/check.sh` gate.

pub mod lexer;
pub mod rules;

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One rule violation at a specific source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule name, e.g. `no-print`.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-oriented explanation including the remediation.
    pub message: String,
}

impl Violation {
    pub(crate) fn new(rule: &'static str, file: &str, line: u32, message: String) -> Self {
        Violation { rule, file: file.to_string(), line, message }
    }
}

/// The outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations that survived suppression, in source order.
    pub violations: Vec<Violation>,
    /// How many violations were suppressed by valid allow markers.
    pub suppressed: usize,
}

/// The outcome of linting the whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// All surviving violations, grouped by file in walk order.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Total violations suppressed by valid allow markers.
    pub suppressed: usize,
}

impl Report {
    /// True when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Lint a single file's source text. `crate_key` is the workspace crate
/// the file belongs to (`"core"`, `"text"`, …, or `"sage"` for the
/// facade); `file` is the path used in diagnostics.
pub fn lint_source(crate_key: &str, file: &str, source: &str) -> FileReport {
    let lexed = lexer::lex(source);
    let raw = rules::check_file(crate_key, file, &lexed.tokens);

    // Validate markers first: malformed ones become bad-allow violations
    // and never suppress anything.
    let mut valid = Vec::new();
    let mut out: Vec<Violation> = Vec::new();
    for m in &lexed.markers {
        let unknown: Vec<&str> = m
            .rules
            .iter()
            .map(|r| r.as_str())
            .filter(|r| !rules::ALL_RULES.contains(r))
            .collect();
        if m.rules.is_empty() {
            out.push(Violation::new(
                rules::BAD_ALLOW,
                file,
                m.line,
                "malformed suppression marker: expected `allow(<rules>)` or \
                 `allow-file(<rules>)` with at least one rule name"
                    .to_string(),
            ));
        } else if !unknown.is_empty() {
            out.push(Violation::new(
                rules::BAD_ALLOW,
                file,
                m.line,
                format!("suppression marker names unknown rule(s): {}", unknown.join(", ")),
            ));
        } else if !m.justified() {
            out.push(Violation::new(
                rules::BAD_ALLOW,
                file,
                m.line,
                "suppression marker lacks a justification: explain why the \
                 invariant holds here"
                    .to_string(),
            ));
        } else {
            valid.push(m);
        }
    }

    let mut suppressed = 0usize;
    for v in raw {
        let hit = valid.iter().any(|m| {
            m.rules.iter().any(|r| r == v.rule)
                && (m.file_level || m.line == v.line || m.line + 1 == v.line)
        });
        if hit {
            suppressed += 1;
        } else {
            out.push(v);
        }
    }
    out.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));
    FileReport { violations: out, suppressed }
}

/// Map a workspace-relative path to its crate key: `crates/<key>/src/…`
/// for member crates, `src/…` for the facade (key `"sage"`).
fn crate_key_of(rel: &str) -> Option<&str> {
    let rel = rel.strip_prefix("./").unwrap_or(rel);
    if let Some(rest) = rel.strip_prefix("crates/") {
        let key = rest.split('/').next().unwrap_or("");
        if rest[key.len()..].starts_with("/src/") {
            return Some(&rest[..key.len()]);
        }
        return None;
    }
    if rel.starts_with("src/") {
        return Some("sage");
    }
    None
}

/// Collect every `.rs` file under `dir`, recursively, in sorted order so
/// reports are stable across filesystems.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint every workspace crate under `root`: `src/` (the facade) and each
/// `crates/<name>/src/`. Integration tests under `tests/` are not
/// scanned — they are test code, which the rules exempt anyway.
pub fn workspace_report(root: &Path) -> std::io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        collect_rs(&facade, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for m in members {
            let src = m.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }

    let mut report = Report::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(key) = crate_key_of(&rel) else { continue };
        let key = key.to_string();
        let source = std::fs::read_to_string(&path)?;
        let fr = lint_source(&key, &rel, &source);
        report.files_scanned += 1;
        report.suppressed += fr.suppressed;
        report.violations.extend(fr.violations);
    }
    Ok(report)
}

/// Render a report for terminals: one `file:line: [rule] message` per
/// violation plus a summary line.
pub fn render_human(report: &Report) -> String {
    let mut s = String::new();
    for v in &report.violations {
        let _ = writeln!(s, "{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
    }
    if report.is_clean() {
        let _ = writeln!(
            s,
            "lint clean: {} files scanned, {} violation(s) suppressed by allow markers",
            report.files_scanned, report.suppressed
        );
    } else {
        let _ = writeln!(
            s,
            "{} violation(s) in {} files scanned ({} suppressed)",
            report.violations.len(),
            report.files_scanned,
            report.suppressed
        );
    }
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a report as a single JSON object (machine consumers: CI and
/// the check.sh gate).
pub fn render_json(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\"files_scanned\":");
    let _ = write!(s, "{}", report.files_scanned);
    let _ = write!(s, ",\"suppressed\":{}", report.suppressed);
    let _ = write!(s, ",\"clean\":{}", report.is_clean());
    s.push_str(",\"violations\":[");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(v.rule),
            json_escape(&v.file),
            v.line,
            json_escape(&v.message)
        );
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &str = "core"; // strictest crate: serving + library rules

    #[test]
    fn violations_survive_without_marker() {
        let fr = lint_source(KEY, "x.rs", "fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        assert_eq!(fr.violations.len(), 1);
        assert_eq!(fr.violations[0].rule, rules::NO_PANIC_SERVING);
        assert_eq!(fr.suppressed, 0);
    }

    #[test]
    fn same_line_marker_suppresses() {
        let m = "sage-lint: allow(no-panic-serving) - input validated three lines up";
        let src = format!("fn f(x: Option<u8>) -> u8 {{ x.unwrap() }} // {m}\n");
        let fr = lint_source(KEY, "x.rs", &src);
        assert!(fr.violations.is_empty(), "{:?}", fr.violations);
        assert_eq!(fr.suppressed, 1);
    }

    #[test]
    fn line_above_marker_suppresses() {
        let m = "sage-lint: allow(no-wallclock) - latency probe feeding QueryResult";
        let src = format!("// {m}\nlet t = Instant::now();\n");
        let fr = lint_source(KEY, "x.rs", &src);
        assert!(fr.violations.is_empty(), "{:?}", fr.violations);
        assert_eq!(fr.suppressed, 1);
    }

    #[test]
    fn file_level_marker_suppresses_everywhere() {
        let m = "sage-lint: allow-file(deterministic-iteration) - sets used for membership only";
        let src = format!(
            "// {m}\nfn f() {{ let a = HashSet::new(); }}\nfn g() {{ let b = HashSet::new(); }}\n"
        );
        let fr = lint_source(KEY, "x.rs", &src);
        assert!(fr.violations.is_empty(), "{:?}", fr.violations);
        assert_eq!(fr.suppressed, 2);
    }

    #[test]
    fn marker_for_other_rule_does_not_suppress() {
        let m = "sage-lint: allow(no-print) - wrong rule named on purpose here";
        let src = format!("fn f(x: Option<u8>) -> u8 {{ x.unwrap() }} // {m}\n");
        let fr = lint_source(KEY, "x.rs", &src);
        assert_eq!(fr.violations.len(), 1);
        assert_eq!(fr.violations[0].rule, rules::NO_PANIC_SERVING);
    }

    #[test]
    fn unjustified_marker_is_bad_allow_and_does_not_suppress() {
        let m = "sage-lint: allow(no-panic-serving)";
        let src = format!("fn f(x: Option<u8>) -> u8 {{ x.unwrap() }} // {m}\n");
        let fr = lint_source(KEY, "x.rs", &src);
        let rules_seen: Vec<&str> = fr.violations.iter().map(|v| v.rule).collect();
        assert!(rules_seen.contains(&rules::BAD_ALLOW));
        assert!(rules_seen.contains(&rules::NO_PANIC_SERVING));
    }

    #[test]
    fn unknown_rule_in_marker_is_bad_allow() {
        let m = "sage-lint: allow(no-such-rule) - a perfectly sincere justification";
        let src = format!("fn f() {{}} // {m}\n");
        let fr = lint_source(KEY, "x.rs", &src);
        assert_eq!(fr.violations.len(), 1);
        assert_eq!(fr.violations[0].rule, rules::BAD_ALLOW);
        assert!(fr.violations[0].message.contains("no-such-rule"));
    }

    #[test]
    fn triggers_inside_strings_and_comments_are_invisible() {
        let src = r##"
            // x.unwrap() and println!("boom") and HashMap::new()
            fn f() -> String {
                let a = "Instant::now() panic! Ordering::Relaxed";
                let b = r#"use sage_core::pipeline; HashSet"#;
                format!("{a}{b}")
            }
        "##;
        let fr = lint_source(KEY, "x.rs", src);
        assert!(fr.violations.is_empty(), "{:?}", fr.violations);
    }

    #[test]
    fn crate_key_mapping() {
        assert_eq!(crate_key_of("crates/core/src/pipeline.rs"), Some("core"));
        assert_eq!(crate_key_of("crates/lint/src/lexer.rs"), Some("lint"));
        assert_eq!(crate_key_of("src/lib.rs"), Some("sage"));
        assert_eq!(crate_key_of("crates/core/benches/x.rs"), None);
        assert_eq!(crate_key_of("tests/end_to_end.rs"), None);
    }

    #[test]
    fn json_rendering_is_wellformed_enough() {
        let fr = lint_source(KEY, "a\"b.rs", "fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        let report = Report {
            violations: fr.violations,
            files_scanned: 1,
            suppressed: 0,
        };
        let j = render_json(&report);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"clean\":false"));
        assert!(j.contains("a\\\"b.rs"));
    }
}
