//! `sage-lint` — dependency-free static analysis for the SAGE workspace.
//!
//! Two layers share one engine:
//!
//! * **Token rules.** The analyzer lexes every `.rs` file with its own
//!   minimal Rust lexer ([`lexer`]) — comments, strings, raw strings,
//!   and char literals are skipped, so rules can never fire on text
//!   content — and runs nine token-pattern rules ([`rules`]) enforcing
//!   the invariants SAGE's evaluation rests on: determinism,
//!   panic-freedom on the serving path, the inter-crate layering DAG,
//!   and the confinement of mutation/recorder/unwind surfaces.
//! * **Whole-program rules.** An item-level parser ([`parser`]) lifts
//!   the token stream into fn/impl/mod/use trees, symbol resolution
//!   ([`resolve`]) honours the same crate DAG the layering rule
//!   enforces, and a call graph ([`callgraph`]) feeds two reachability
//!   analyses ([`semantic`]): panic-reachability (serving entry points
//!   never transitively reach a panic site outside an unwind boundary)
//!   and determinism-taint (wall-clock / RandomState / Relaxed values
//!   never flow into byte-compared serialized outputs).
//!
//! A violation can be suppressed with an inline comment marker naming
//! the rule and carrying a justification (the exact grammar is
//! documented in DESIGN.md §Static analysis). A marker with an unknown
//! rule name or a missing/too-short justification is itself reported as
//! a `bad-allow` violation, and a valid marker that no longer
//! suppresses anything is reported as `stale-suppression` — neither can
//! be suppressed, which keeps the marker inventory honest.
//!
//! Machine consumers get JSON ([`render_json`]), SARIF 2.1.0
//! ([`sarif`]), and a committed per-rule ratchet ([`ratchet`]) that CI
//! asserts non-increasing. Four consumers share this crate: the
//! `sage-cli lint` subcommand, the tier-1 tests in
//! `tests/static_analysis.rs`, the `scripts/check.sh` gate, and the
//! `lint_overhead` bench.

// sage-lint: allow-file(no-wallclock) - phase-cost metering surfaced to `sage top`; analysis results never depend on elapsed time

pub mod callgraph;
pub mod jsonv;
pub mod lexer;
pub mod parser;
pub mod ratchet;
pub mod resolve;
pub mod rules;
pub mod sarif;
pub mod semantic;

use lexer::AllowMarker;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One rule violation at a specific source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule name, e.g. `no-print`.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column, counted in `char`s.
    pub col: u32,
    /// Human-oriented explanation including the remediation.
    pub message: String,
}

impl Violation {
    pub(crate) fn new(rule: &'static str, file: &str, line: u32, col: u32, message: String) -> Self {
        Violation { rule, file: file.to_string(), line, col, message }
    }
}

/// The outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations that survived suppression, in source order.
    pub violations: Vec<Violation>,
    /// How many violations were suppressed by valid allow markers.
    pub suppressed: usize,
}

/// The outcome of linting the whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// All surviving violations, ordered by (file, line, col, rule).
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Total violations suppressed by valid allow markers.
    pub suppressed: usize,
    /// Suppressions broken down by rule — the ratchet's raw material.
    pub suppressed_by_rule: BTreeMap<String, usize>,
    /// Wall-clock cost of each analysis phase in nanoseconds, in run
    /// order. Reported out-of-band (CLI `--timings`, telemetry gauges);
    /// never part of the JSON/SARIF documents, which must be
    /// byte-stable for identical inputs.
    pub timings: Vec<(&'static str, u64)>,
}

impl Report {
    /// True when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Surviving violations broken down by rule.
    pub fn violations_by_rule(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for v in &self.violations {
            *out.entry(v.rule.to_string()).or_insert(0) += 1;
        }
        out
    }
}

/// Split raw markers into valid ones and `bad-allow` violations.
fn validate_markers(file: &str, markers: &[AllowMarker]) -> (Vec<AllowMarker>, Vec<Violation>) {
    let mut valid = Vec::new();
    let mut bad = Vec::new();
    for m in markers {
        let unknown: Vec<&str> = m
            .rules
            .iter()
            .map(|r| r.as_str())
            .filter(|r| !rules::ALL_RULES.contains(r))
            .collect();
        if m.rules.is_empty() {
            bad.push(Violation::new(
                rules::BAD_ALLOW,
                file,
                m.line,
                m.col,
                "malformed suppression marker: expected `allow(<rules>)` or \
                 `allow-file(<rules>)` with at least one rule name"
                    .to_string(),
            ));
        } else if !unknown.is_empty() {
            bad.push(Violation::new(
                rules::BAD_ALLOW,
                file,
                m.line,
                m.col,
                format!("suppression marker names unknown rule(s): {}", unknown.join(", ")),
            ));
        } else if !m.justified() {
            bad.push(Violation::new(
                rules::BAD_ALLOW,
                file,
                m.line,
                m.col,
                "suppression marker lacks a justification: explain why the \
                 invariant holds here"
                    .to_string(),
            ));
        } else {
            valid.push(m.clone());
        }
    }
    (valid, bad)
}

/// Whether marker `m` suppresses a violation of `rule` at `line`.
fn marker_hits(m: &AllowMarker, rule: &str, line: u32) -> bool {
    m.rules.iter().any(|r| r == rule) && (m.file_level || m.line == line || m.line + 1 == line)
}

/// Lint a single file's source text with the token rules only — the
/// whole-program rules need the full workspace. `crate_key` is the
/// workspace crate the file belongs to (`"core"`, `"text"`, …, or
/// `"sage"` for the facade); `file` is the path used in diagnostics.
pub fn lint_source(crate_key: &str, file: &str, source: &str) -> FileReport {
    let lexed = lexer::lex(source);
    let raw = rules::check_file(crate_key, file, &lexed.tokens);
    let (valid, mut out) = validate_markers(file, &lexed.markers);

    let mut suppressed = 0usize;
    for v in raw {
        if valid.iter().any(|m| marker_hits(m, v.rule, v.line)) {
            suppressed += 1;
        } else {
            out.push(v);
        }
    }
    out.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));
    FileReport { violations: out, suppressed }
}

/// Map a workspace-relative path to its crate key: `crates/<key>/src/…`
/// for member crates, `src/…` for the facade (key `"sage"`).
fn crate_key_of(rel: &str) -> Option<&str> {
    let rel = rel.strip_prefix("./").unwrap_or(rel);
    if let Some(rest) = rel.strip_prefix("crates/") {
        let key = rest.split('/').next().unwrap_or("");
        if rest[key.len()..].starts_with("/src/") {
            return Some(&rest[..key.len()]);
        }
        return None;
    }
    if rel.starts_with("src/") {
        return Some("sage");
    }
    None
}

/// Collect every `.rs` file under `dir`, recursively, in sorted order so
/// reports are stable across filesystems.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// The full result of a workspace analysis: the report plus the symbol
/// table and call graph it was derived from (for `--callgraph` and the
/// tier-1 spec-drift tests).
pub struct Analysis {
    pub report: Report,
    pub workspace: resolve::Workspace,
    pub graph: callgraph::Graph,
}

/// Lint every workspace crate under `root` with both layers: `src/`
/// (the facade) and each `crates/<name>/src/`. Integration tests under
/// `tests/` are not scanned — they are test code, which the rules
/// exempt anyway.
pub fn workspace_report(root: &Path) -> std::io::Result<Report> {
    workspace_analysis(root).map(|a| a.report)
}

/// [`workspace_report`], keeping the symbol table and call graph.
pub fn workspace_analysis(root: &Path) -> std::io::Result<Analysis> {
    let mut files: Vec<PathBuf> = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        collect_rs(&facade, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for m in members {
            let src = m.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }

    let mut timings: Vec<(&'static str, u64)> = Vec::new();
    let t_scan = Instant::now();

    // Phase 1: lex, parse, validate markers, run token rules.
    let mut units: Vec<resolve::FileUnit> = Vec::new();
    let mut file_markers: Vec<Vec<AllowMarker>> = Vec::new();
    let mut raw: Vec<Violation> = Vec::new();
    let mut unsuppressible: Vec<Violation> = Vec::new();
    let mut files_scanned = 0usize;
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(key) = crate_key_of(&rel) else { continue };
        let key = key.to_string();
        let source = std::fs::read_to_string(&path)?;
        let lexed = lexer::lex(&source);
        let (valid, bad) = validate_markers(&rel, &lexed.markers);
        unsuppressible.extend(bad);
        raw.extend(rules::check_file(&key, &rel, &lexed.tokens));
        let items = parser::parse_items(&lexed.tokens);
        units.push(resolve::FileUnit { rel, key, tokens: lexed.tokens, items });
        file_markers.push(valid);
        files_scanned += 1;
    }
    timings.push(("scan", t_scan.elapsed().as_nanos() as u64));

    // Phase 2: symbol table and call graph.
    let t_graph = Instant::now();
    let workspace = resolve::Workspace::build(units);
    let graph = callgraph::Graph::build(&workspace);
    timings.push(("callgraph", t_graph.elapsed().as_nanos() as u64));

    // Phase 3: the whole-program rules.
    let t_pr = Instant::now();
    raw.extend(semantic::panic_reachability(&workspace, &graph, &file_markers));
    timings.push(("panic-reachability", t_pr.elapsed().as_nanos() as u64));
    let t_dt = Instant::now();
    raw.extend(semantic::determinism_taint(&workspace, &graph));
    timings.push(("determinism-taint", t_dt.elapsed().as_nanos() as u64));

    // Phase 4: suppression with per-marker usage accounting, then the
    // stale-suppression sweep over markers that earned nothing.
    let t_stale = Instant::now();
    let file_idx: BTreeMap<&str, usize> = workspace
        .files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.rel.as_str(), i))
        .collect();
    let mut usage: Vec<Vec<u32>> = file_markers.iter().map(|ms| vec![0; ms.len()]).collect();
    let mut report = Report { files_scanned, ..Report::default() };
    for v in raw {
        let hit = file_idx.get(v.file.as_str()).and_then(|&fi| {
            file_markers[fi]
                .iter()
                .position(|m| marker_hits(m, v.rule, v.line))
                .map(|mi| (fi, mi))
        });
        match hit {
            Some((fi, mi)) => {
                usage[fi][mi] += 1;
                report.suppressed += 1;
                *report.suppressed_by_rule.entry(v.rule.to_string()).or_insert(0) += 1;
            }
            None => report.violations.push(v),
        }
    }
    report.violations.append(&mut unsuppressible);
    for (fi, ms) in file_markers.iter().enumerate() {
        for (mi, m) in ms.iter().enumerate() {
            if usage[fi][mi] == 0 {
                report.violations.push(Violation::new(
                    rules::STALE_SUPPRESSION,
                    &workspace.files[fi].rel,
                    m.line,
                    m.col,
                    format!(
                        "suppression marker for `{}` no longer suppresses anything; \
                         the code it justified moved or was fixed — delete the marker \
                         or re-justify it where the violation lives now",
                        m.rules.join(", ")
                    ),
                ));
            }
        }
    }
    timings.push(("stale-suppression", t_stale.elapsed().as_nanos() as u64));

    report.violations.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then_with(|| a.line.cmp(&b.line))
            .then_with(|| a.col.cmp(&b.col))
            .then_with(|| a.rule.cmp(b.rule))
    });
    report.timings = timings;
    Ok(Analysis { report, workspace, graph })
}

/// Render a report for terminals: one `file:line:col: [rule] message`
/// per violation plus a summary line.
pub fn render_human(report: &Report) -> String {
    let mut s = String::new();
    for v in &report.violations {
        let _ = writeln!(s, "{}:{}:{}: [{}] {}", v.file, v.line, v.col, v.rule, v.message);
    }
    if report.is_clean() {
        let _ = writeln!(
            s,
            "lint clean: {} files scanned, {} violation(s) suppressed by allow markers",
            report.files_scanned, report.suppressed
        );
    } else {
        let _ = writeln!(
            s,
            "{} violation(s) in {} files scanned ({} suppressed)",
            report.violations.len(),
            report.files_scanned,
            report.suppressed
        );
    }
    s
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a report as a single JSON object (machine consumers: CI and
/// the check.sh gate). Timings are deliberately excluded — the document
/// is byte-stable for identical inputs.
pub fn render_json(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\"files_scanned\":");
    let _ = write!(s, "{}", report.files_scanned);
    let _ = write!(s, ",\"suppressed\":{}", report.suppressed);
    let _ = write!(s, ",\"clean\":{}", report.is_clean());
    s.push_str(",\"suppressed_by_rule\":{");
    for (i, (rule, n)) in report.suppressed_by_rule.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\":{}", json_escape(rule), n);
    }
    s.push_str("},\"violations\":[");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            json_escape(v.rule),
            json_escape(&v.file),
            v.line,
            v.col,
            json_escape(&v.message)
        );
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &str = "core"; // strictest crate: serving + library rules

    #[test]
    fn violations_survive_without_marker() {
        let fr = lint_source(KEY, "x.rs", "fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        assert_eq!(fr.violations.len(), 1);
        assert_eq!(fr.violations[0].rule, rules::NO_PANIC_SERVING);
        assert_eq!(fr.suppressed, 0);
    }

    #[test]
    fn same_line_marker_suppresses() {
        let m = "sage-lint: allow(no-panic-serving) - input validated three lines up";
        let src = format!("fn f(x: Option<u8>) -> u8 {{ x.unwrap() }} // {m}\n");
        let fr = lint_source(KEY, "x.rs", &src);
        assert!(fr.violations.is_empty(), "{:?}", fr.violations);
        assert_eq!(fr.suppressed, 1);
    }

    #[test]
    fn line_above_marker_suppresses() {
        let m = "sage-lint: allow(no-wallclock) - latency probe feeding QueryResult";
        let src = format!("// {m}\nlet t = Instant::now();\n");
        let fr = lint_source(KEY, "x.rs", &src);
        assert!(fr.violations.is_empty(), "{:?}", fr.violations);
        assert_eq!(fr.suppressed, 1);
    }

    #[test]
    fn file_level_marker_suppresses_everywhere() {
        let m = "sage-lint: allow-file(deterministic-iteration) - sets used for membership only";
        let src = format!(
            "// {m}\nfn f() {{ let a = HashSet::new(); }}\nfn g() {{ let b = HashSet::new(); }}\n"
        );
        let fr = lint_source(KEY, "x.rs", &src);
        assert!(fr.violations.is_empty(), "{:?}", fr.violations);
        assert_eq!(fr.suppressed, 2);
    }

    #[test]
    fn marker_for_other_rule_does_not_suppress() {
        let m = "sage-lint: allow(no-print) - wrong rule named on purpose here";
        let src = format!("fn f(x: Option<u8>) -> u8 {{ x.unwrap() }} // {m}\n");
        let fr = lint_source(KEY, "x.rs", &src);
        assert_eq!(fr.violations.len(), 1);
        assert_eq!(fr.violations[0].rule, rules::NO_PANIC_SERVING);
    }

    #[test]
    fn unjustified_marker_is_bad_allow_and_does_not_suppress() {
        let m = "sage-lint: allow(no-panic-serving)";
        let src = format!("fn f(x: Option<u8>) -> u8 {{ x.unwrap() }} // {m}\n");
        let fr = lint_source(KEY, "x.rs", &src);
        let rules_seen: Vec<&str> = fr.violations.iter().map(|v| v.rule).collect();
        assert!(rules_seen.contains(&rules::BAD_ALLOW));
        assert!(rules_seen.contains(&rules::NO_PANIC_SERVING));
    }

    #[test]
    fn unknown_rule_in_marker_is_bad_allow() {
        let m = "sage-lint: allow(no-such-rule) - a perfectly sincere justification";
        let src = format!("fn f() {{}} // {m}\n");
        let fr = lint_source(KEY, "x.rs", &src);
        assert_eq!(fr.violations.len(), 1);
        assert_eq!(fr.violations[0].rule, rules::BAD_ALLOW);
        assert!(fr.violations[0].message.contains("no-such-rule"));
    }

    #[test]
    fn new_whole_program_rules_are_marker_nameable() {
        for rule in ["panic-reachability", "determinism-taint"] {
            let m = format!("sage-lint: allow({rule}) - a perfectly sincere justification");
            let src = format!("fn f() {{}} // {m}\n");
            let fr = lint_source(KEY, "x.rs", &src);
            // Valid marker, nothing to suppress at token level — but no
            // bad-allow either (staleness is a workspace-level concern).
            assert!(fr.violations.is_empty(), "{:?}", fr.violations);
        }
        // stale-suppression and bad-allow are engine rules, not nameable.
        let m = "sage-lint: allow(stale-suppression) - trying to suppress the meta rule";
        let fr = lint_source(KEY, "x.rs", &format!("fn f() {{}} // {m}\n"));
        assert_eq!(fr.violations.len(), 1);
        assert_eq!(fr.violations[0].rule, rules::BAD_ALLOW);
    }

    #[test]
    fn triggers_inside_strings_and_comments_are_invisible() {
        let src = r##"
            // x.unwrap() and println!("boom") and HashMap::new()
            fn f() -> String {
                let a = "Instant::now() panic! Ordering::Relaxed";
                let b = r#"use sage_core::pipeline; HashSet"#;
                format!("{a}{b}")
            }
        "##;
        let fr = lint_source(KEY, "x.rs", src);
        assert!(fr.violations.is_empty(), "{:?}", fr.violations);
    }

    #[test]
    fn crate_key_mapping() {
        assert_eq!(crate_key_of("crates/core/src/pipeline.rs"), Some("core"));
        assert_eq!(crate_key_of("crates/lint/src/lexer.rs"), Some("lint"));
        assert_eq!(crate_key_of("src/lib.rs"), Some("sage"));
        assert_eq!(crate_key_of("crates/core/benches/x.rs"), None);
        assert_eq!(crate_key_of("tests/end_to_end.rs"), None);
    }

    #[test]
    fn json_rendering_is_wellformed_enough() {
        let fr = lint_source(KEY, "a\"b.rs", "fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        let report = Report {
            violations: fr.violations,
            files_scanned: 1,
            ..Report::default()
        };
        let j = render_json(&report);
        assert!(jsonv::parse(&j).is_ok(), "{j}");
        assert!(j.contains("\"clean\":false"));
        assert!(j.contains("a\\\"b.rs"));
    }

    /// End-to-end over a synthetic workspace on disk: all three
    /// whole-program rules fire through `workspace_report`.
    #[test]
    fn workspace_pipeline_runs_semantic_rules_and_staleness() {
        let dir = std::env::temp_dir().join(format!("sage_lint_ws_{}", std::process::id()));
        let src_dir = dir.join("crates/vecdb/src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(
            src_dir.join("lib.rs"),
            "struct Flat;\n\
             impl Flat {\n\
             pub fn search(&self, q: &[f32]) -> f32 { helper(q) }\n\
             }\n\
             fn helper(q: &[f32]) -> f32 { q[0] }\n\
             // sage-lint: allow(no-print) - nothing here prints; marker is dead on purpose\n\
             fn quiet() {}\n",
        )
        .unwrap();
        let report = workspace_report(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let rules_seen: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
        assert!(rules_seen.contains(&rules::PANIC_REACHABILITY), "{rules_seen:?}");
        assert!(rules_seen.contains(&rules::STALE_SUPPRESSION), "{rules_seen:?}");
        assert_eq!(report.files_scanned, 1);
        assert_eq!(report.timings.len(), 5, "{:?}", report.timings);
    }
}
