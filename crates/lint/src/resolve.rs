//! Workspace symbol table and call-site resolution.
//!
//! Builds one [`Workspace`] from every scanned file's tokens and parsed
//! items, then resolves the calls inside each fn body to candidate
//! workspace fns. Resolution is deliberately *over-approximate* — a
//! method call `.run(…)` resolves to every method named `run` any
//! allowed crate defines (which is exactly what dynamic dispatch
//! through `dyn Stage` needs) — and bounded two ways:
//!
//! 1. the crate DAG: a call in crate `C` can only resolve into `C`
//!    itself or crates `C` may depend on ([`crate::rules::allowed_deps`]);
//! 2. an ambient-method blocklist: ubiquitous std names (`len`, `iter`,
//!    `map`, …) are assumed panic-free and deterministic rather than
//!    resolved against every workspace fn that happens to share the
//!    name, which would connect everything to everything.
//!
//! Both bounds are documented limitations of the whole-program rules:
//! the first is sound (the DAG is machine-enforced by the layering
//! rule), the second trades a small amount of soundness for a call
//! graph precise enough to act on.

use crate::lexer::{Tok, TokKind};
use crate::parser::{Item, ItemKind};
use crate::rules;
use std::collections::{BTreeMap, BTreeSet};

/// One scanned source file with everything the semantic layer needs.
#[derive(Debug)]
pub struct FileUnit {
    /// Workspace-relative path.
    pub rel: String,
    /// Crate key (`"core"`, `"text"`, …, `"sage"`).
    pub key: String,
    /// The full token stream.
    pub tokens: Vec<Tok>,
    /// Parsed item tree.
    pub items: Vec<Item>,
}

/// One fn the workspace defines.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Enclosing impl/trait self type, `None` for free fns.
    pub self_ty: Option<String>,
    /// The trait an enclosing `impl Trait for Type` implements (or the
    /// trait itself for default methods).
    pub trait_name: Option<String>,
    pub name: String,
    pub line: u32,
    pub col: u32,
    /// Interior token range of the body, `None` for bodyless decls.
    pub body: Option<(usize, usize)>,
    pub in_test: bool,
}

/// The whole-workspace symbol table.
#[derive(Debug, Default)]
pub struct Workspace {
    pub files: Vec<FileUnit>,
    pub fns: Vec<FnSym>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Method names so ubiquitous in std that resolving them against
/// workspace fns would connect everything to everything. Calls to these
/// are assumed panic-free and deterministic (a documented limitation;
/// slice indexing and `.unwrap()`/`.expect()` are caught as direct
/// sources instead, wherever they occur).
const AMBIENT_METHODS: &[&str] = &[
    // conversion / borrowing
    "clone", "to_string", "to_owned", "to_vec", "into", "as_ref", "as_mut", "as_str",
    "as_bytes", "as_slice", "borrow", "borrow_mut", "to_le_bytes", "to_be_bytes", "copied",
    "cloned", "into_owned",
    // str / slices
    "chars", "bytes", "split", "split_whitespace", "splitn", "lines", "trim", "trim_start",
    "trim_end", "starts_with", "ends_with", "contains", "find", "rfind", "parse", "repeat",
    "to_lowercase", "to_uppercase", "to_ascii_lowercase", "char_indices", "strip_prefix",
    "strip_suffix", "windows", "chunks", "concat", "join", "fill", "split_at", "split_first",
    "split_last",
    // collections
    "len", "is_empty", "iter", "iter_mut", "into_iter", "push", "push_str", "pop", "insert",
    "remove", "clear", "extend", "extend_from_slice", "append", "truncate", "resize",
    "retain", "drain", "reserve", "shrink_to_fit", "swap", "swap_remove", "dedup", "get",
    "get_mut", "first", "last", "entry", "or_insert", "or_insert_with", "or_default",
    "keys", "values", "values_mut", "contains_key", "range", "capacity",
    // ordering / sorting
    "sort", "sort_by", "sort_by_key", "sort_unstable", "sort_unstable_by",
    "sort_unstable_by_key", "binary_search", "binary_search_by", "reverse", "cmp",
    "partial_cmp", "then", "then_with", "eq", "ne", "lt", "le", "gt", "ge", "hash",
    // Option / Result / Iterator combinators
    "map", "map_err", "map_or", "and_then", "or_else", "unwrap_or", "unwrap_or_else",
    "unwrap_or_default", "ok", "err", "ok_or", "ok_or_else", "is_some", "is_none", "is_ok",
    "is_err", "take", "filter", "filter_map", "flat_map", "fold", "sum", "product", "count",
    "enumerate", "zip", "rev", "skip", "take_while", "skip_while", "chain", "collect",
    "any", "all", "position", "min", "max", "min_by", "max_by", "min_by_key", "max_by_key",
    "next", "peekable", "peek", "step_by", "flatten", "inspect", "by_ref", "unzip",
    "partition", "reduce", "nth", "last", "copied", "scan",
    // numerics
    "abs", "sqrt", "ln", "log2", "log10", "exp", "powi", "powf", "floor", "ceil", "round",
    "clamp", "is_nan", "is_finite", "to_bits", "from_bits", "saturating_add",
    "saturating_sub", "saturating_mul", "wrapping_add", "wrapping_sub", "wrapping_mul",
    "checked_add", "checked_sub", "checked_mul", "checked_div", "pow", "rem_euclid",
    "div_euclid", "signum", "leading_zeros", "trailing_zeros", "count_ones", "max_element",
    "min_element", "is_sign_negative", "is_sign_positive", "mul_add", "recip", "hypot",
    // fmt / io plumbing
    "fmt", "flush", "write_all", "write_fmt", "read_to_string", "read_to_end", "read_exact",
    "sync_all", "sync_data", "seek", "metadata", "set_len", "rewind",
    // sync
    "lock", "read", "load", "store", "fetch_add", "fetch_sub", "compare_exchange",
    "swap", "fence", "unwrap", "expect",
];

/// Keywords and constructor-like idents that look like free calls but
/// never resolve to workspace fns.
const FREE_CALL_EXCLUDED: &[&str] = &[
    "if", "match", "while", "for", "loop", "return", "fn", "move", "unsafe", "as", "in",
    "else", "let", "ref", "mut", "await", "yield", "where", "impl", "dyn",
];

fn punct(t: &Tok) -> Option<char> {
    if t.kind == TokKind::Punct { t.text.chars().next() } else { None }
}

fn lower_start(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
}

impl Workspace {
    /// Build the symbol table from pre-lexed, pre-parsed files.
    pub fn build(files: Vec<FileUnit>) -> Workspace {
        let mut ws = Workspace { files, fns: Vec::new(), by_name: BTreeMap::new() };
        for fi in 0..ws.files.len() {
            // Move the items out briefly to appease the borrow checker;
            // collection only reads them.
            let items = std::mem::take(&mut ws.files[fi].items);
            collect_fns(&items, fi, None, None, &mut ws.fns);
            ws.files[fi].items = items;
        }
        // Deterministic symbol ids: files are walked in sorted order and
        // items in source order, so the vec order is already stable.
        for (id, f) in ws.fns.iter().enumerate() {
            ws.by_name.entry(f.name.clone()).or_default().push(id);
        }
        ws
    }

    /// Fully-qualified display name for diagnostics:
    /// `core::EmbedStage::run` or `text::normalize`.
    pub fn display(&self, id: usize) -> String {
        let f = &self.fns[id];
        let key = &self.files[f.file].key;
        match &f.self_ty {
            Some(ty) => format!("{key}::{ty}::{}", f.name),
            None => format!("{key}::{}", f.name),
        }
    }

    /// All fn ids named `name`.
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Resolve every call site in `fn_id`'s body to candidate callees,
    /// deduplicated and sorted. Returns an empty list for bodyless fns.
    pub fn callees(&self, fn_id: usize) -> Vec<usize> {
        let f = &self.fns[fn_id];
        let Some((b0, b1)) = f.body else { return Vec::new() };
        let file = &self.files[f.file];
        let toks = &file.tokens;
        let mut allowed: BTreeSet<&str> = rules::allowed_deps(&file.key).into_iter().collect();
        allowed.insert(file.key.as_str());

        let crate_ok = |id: &usize| allowed.contains(self.files[self.fns[*id].file].key.as_str());
        let mut out: BTreeSet<usize> = BTreeSet::new();

        for j in b0..b1.min(toks.len()) {
            let t = &toks[j];
            if t.kind != TokKind::Ident {
                continue;
            }
            if toks.get(j + 1).is_none_or(|n| punct(n) != Some('(')) {
                continue;
            }
            let name = t.text.as_str();
            let prev = j.checked_sub(1).map(|p| &toks[p]);
            let prev_char = prev.and_then(punct);

            if prev_char == Some('.') {
                // Method call. Ambient std names are assumed benign.
                if AMBIENT_METHODS.contains(&name) {
                    continue;
                }
                // `self.helper()` pins the receiver type when we know it.
                let via_self = j >= 2
                    && toks[j - 2].kind == TokKind::Ident
                    && toks[j - 2].text == "self"
                    && !(j >= 3 && punct(&toks[j - 3]) == Some('.'));
                let mut ids: Vec<usize> = self
                    .named(name)
                    .iter()
                    .filter(|id| self.fns[**id].self_ty.is_some() && crate_ok(id))
                    .copied()
                    .collect();
                if via_self {
                    if let Some(own_ty) = &f.self_ty {
                        let pinned: Vec<usize> = ids
                            .iter()
                            .filter(|id| self.fns[**id].self_ty.as_deref() == Some(own_ty))
                            .copied()
                            .collect();
                        if !pinned.is_empty() {
                            ids = pinned;
                        }
                    }
                }
                out.extend(ids);
                continue;
            }

            let qualified = j >= 2
                && punct(&toks[j - 1]) == Some(':')
                && punct(&toks[j - 2]) == Some(':');
            if qualified {
                // Walk the `a::b::Name::call(` path backwards for the
                // qualifier segment and any `sage_<crate>` hint.
                let mut segs: Vec<&str> = Vec::new();
                let mut k = j;
                while k >= 3
                    && punct(&toks[k - 1]) == Some(':')
                    && punct(&toks[k - 2]) == Some(':')
                    && toks[k - 3].kind == TokKind::Ident
                {
                    segs.push(toks[k - 3].text.as_str());
                    k -= 3;
                }
                let qual = segs.first().copied().unwrap_or("");
                let crate_hint = segs
                    .iter()
                    .find_map(|s| s.strip_prefix("sage_"))
                    .filter(|c| rules::WORKSPACE_CRATES.contains(c));
                let hint_ok = |id: &usize| {
                    crate_hint
                        .is_none_or(|c| self.files[self.fns[*id].file].key == c)
                };
                let qual_ty: Option<&str> = match qual {
                    "Self" => f.self_ty.as_deref(),
                    q if !q.is_empty() && !lower_start(q) => Some(q),
                    _ => None,
                };
                match qual_ty {
                    Some(ty) => {
                        // `Type::assoc(…)`: exact (self_ty, name) match.
                        out.extend(self.named(name).iter().filter(|id| {
                            self.fns[**id].self_ty.as_deref() == Some(ty)
                                && crate_ok(id)
                                && hint_ok(id)
                        }));
                    }
                    None => {
                        // `module::free_fn(…)`.
                        out.extend(self.named(name).iter().filter(|id| {
                            self.fns[**id].self_ty.is_none() && crate_ok(id) && hint_ok(id)
                        }));
                    }
                }
                continue;
            }

            // Free call: `helper(…)`. Definitions (`fn helper(`), keywords,
            // and TitleCase tuple-struct constructors are excluded.
            if prev.is_some_and(|p| p.kind == TokKind::Ident && p.text == "fn") {
                continue;
            }
            if !lower_start(name) || FREE_CALL_EXCLUDED.contains(&name) {
                continue;
            }
            out.extend(
                self.named(name)
                    .iter()
                    .filter(|id| self.fns[**id].self_ty.is_none() && crate_ok(id)),
            );
        }
        out.into_iter().collect()
    }
}

/// Depth-first fn collection threading the enclosing impl/trait context.
fn collect_fns(
    items: &[Item],
    file: usize,
    self_ty: Option<&str>,
    trait_name: Option<&str>,
    out: &mut Vec<FnSym>,
) {
    for it in items {
        match it.kind {
            ItemKind::Fn => out.push(FnSym {
                file,
                self_ty: self_ty.map(str::to_string),
                trait_name: trait_name.map(str::to_string),
                name: it.name.clone(),
                line: it.line,
                col: it.col,
                body: it.body,
                in_test: it.in_test,
            }),
            ItemKind::Mod => collect_fns(&it.children, file, None, None, out),
            ItemKind::Impl => collect_fns(
                &it.children,
                file,
                Some(&it.name),
                it.trait_name.as_deref(),
                out,
            ),
            ItemKind::Trait => {
                collect_fns(&it.children, file, Some(&it.name), Some(&it.name), out)
            }
            ItemKind::Use => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_items;

    fn ws(files: &[(&str, &str, &str)]) -> Workspace {
        let units = files
            .iter()
            .map(|(rel, key, src)| {
                let tokens = lex(src).tokens;
                let items = parse_items(&tokens);
                FileUnit {
                    rel: rel.to_string(),
                    key: key.to_string(),
                    tokens,
                    items,
                }
            })
            .collect();
        Workspace::build(units)
    }

    fn id_of(w: &Workspace, disp: &str) -> usize {
        (0..w.fns.len())
            .find(|&i| w.display(i) == disp)
            .unwrap_or_else(|| panic!("no fn {disp}"))
    }

    #[test]
    fn free_calls_resolve_within_crate() {
        let w = ws(&[(
            "crates/text/src/lib.rs",
            "text",
            "fn outer() { helper(1); }\nfn helper(x: u32) {}\n",
        )]);
        let outer = id_of(&w, "text::outer");
        let helper = id_of(&w, "text::helper");
        assert_eq!(w.callees(outer), vec![helper]);
    }

    #[test]
    fn method_calls_resolve_across_allowed_crates_only() {
        let w = ws(&[
            (
                "crates/retrieval/src/lib.rs",
                "retrieval",
                "struct R; impl R { fn go(&self, ix: &dyn Ix) { ix.search(3); } }",
            ),
            (
                "crates/vecdb/src/lib.rs",
                "vecdb",
                "struct Flat; impl Flat { fn search(&self, k: usize) {} }",
            ),
            (
                "crates/core/src/lib.rs",
                "core",
                "struct Snap; impl Snap { fn search(&self, k: usize) {} }",
            ),
        ]);
        let go = id_of(&w, "retrieval::R::go");
        // retrieval may reach vecdb's search but never core's.
        assert_eq!(w.callees(go), vec![id_of(&w, "vecdb::Flat::search")]);
    }

    #[test]
    fn ambient_methods_do_not_resolve() {
        let w = ws(&[
            (
                "crates/core/src/a.rs",
                "core",
                "fn f(v: &[u8]) { let _ = v.len(); v.iter().count(); }",
            ),
            (
                "crates/embed/src/b.rs",
                "embed",
                "struct E; impl E { fn len(&self) -> usize { 0 } }",
            ),
        ]);
        assert!(w.callees(id_of(&w, "core::f")).is_empty());
    }

    #[test]
    fn qualified_calls_pin_the_type() {
        let w = ws(&[(
            "crates/core/src/live/mod.rs",
            "core",
            "struct W; impl W { fn open() -> W { W } fn go(&self) {} }\n\
             struct V; impl V { fn open() -> V { V } }\n\
             fn boot() { let w = W::open(); }",
        )]);
        assert_eq!(w.callees(id_of(&w, "core::boot")), vec![id_of(&w, "core::W::open")]);
    }

    #[test]
    fn self_calls_use_the_enclosing_impl_type() {
        let w = ws(&[(
            "crates/core/src/x.rs",
            "core",
            "struct A; impl A { fn top(&self) { self.step(); Self::boot(); } \
             fn step(&self) {} fn boot() {} }\n\
             struct B; impl B { fn step(&self) {} }",
        )]);
        let callees = w.callees(id_of(&w, "core::A::top"));
        assert_eq!(callees, vec![id_of(&w, "core::A::step"), id_of(&w, "core::A::boot")]);
    }

    #[test]
    fn crate_hinted_paths_restrict_resolution() {
        let w = ws(&[
            (
                "crates/core/src/a.rs",
                "core",
                "fn f() { sage_text::normalize(\"x\"); }\nfn normalize(s: &str) {}\n",
            ),
            ("crates/text/src/lib.rs", "text", "pub fn normalize(s: &str) {}"),
        ]);
        assert_eq!(w.callees(id_of(&w, "core::f")), vec![id_of(&w, "text::normalize")]);
    }

    #[test]
    fn trait_default_methods_are_symbols() {
        let w = ws(&[(
            "crates/retrieval/src/lib.rs",
            "retrieval",
            "trait Retriever { fn retrieve(&self) { self.prep(); } fn prep(&self); }",
        )]);
        let r = id_of(&w, "retrieval::Retriever::retrieve");
        assert_eq!(w.callees(r), vec![id_of(&w, "retrieval::Retriever::prep")]);
    }
}
