//! The whole-program rules: panic-reachability and determinism-taint.
//!
//! Both are reachability sweeps over the intra-workspace call graph.
//! Panic-reachability walks *forward* from the serving entry points
//! (executor stages, vecdb/retriever search, the live apply path) and
//! reports every panic site the walk can reach, stopping at unwind
//! boundaries (any fn whose body contains `catch_unwind`).
//! Determinism-taint walks forward from the declared serialization
//! sinks (soak event logs, BENCH_*.json renderers, segment/manifest
//! encoders) and reports every nondeterminism source the walk reaches.
//!
//! Violations are anchored at the *source site* (the unwrap, the
//! `Instant`, the slice index), not the entry point: that is where the
//! fix or the justification goes, and it lets the ordinary suppression
//! machinery (a `panic-reachability` / `determinism-taint` marker on the
//! offending line or file) handle them like any other rule.
//!
//! Honest limitations, also documented in DESIGN.md: resolution is
//! name-based and over-approximate (see [`crate::resolve`]); ambient
//! std methods are assumed benign; and taint tracks *call* reachability,
//! not data flow — a value laundered through a struct field between two
//! unconnected fns is invisible. The rules are a ratchet against
//! regressions on the paths that matter, not a proof engine.

use crate::callgraph::Graph;
use crate::lexer::{AllowMarker, Tok, TokKind};
use crate::resolve::Workspace;
use crate::rules;
use crate::Violation;
use std::collections::BTreeSet;

/// A pattern selecting workspace fns as analysis roots.
#[derive(Debug, Clone, Copy)]
pub struct Spec {
    pub crate_key: &'static str,
    pub name: &'static str,
    /// Require this exact impl/trait self type.
    pub self_ty: Option<&'static str>,
    /// Require the enclosing impl to implement this trait.
    pub trait_name: Option<&'static str>,
    /// Require the file path to contain this fragment.
    pub file_contains: Option<&'static str>,
    /// Require a free fn (no self type).
    pub free: bool,
}

impl Spec {
    const fn method(crate_key: &'static str, name: &'static str) -> Spec {
        Spec { crate_key, name, self_ty: None, trait_name: None, file_contains: None, free: false }
    }

    /// Human-oriented description for drift diagnostics.
    pub fn describe(&self) -> String {
        let mut s = format!("{}::", self.crate_key);
        if let Some(ty) = self.self_ty {
            s.push_str(ty);
            s.push_str("::");
        } else if let Some(tr) = self.trait_name {
            s.push('<');
            s.push_str(tr);
            s.push_str(">::");
        }
        s.push_str(self.name);
        if let Some(f) = self.file_contains {
            s.push_str(" (in ");
            s.push_str(f);
            s.push(')');
        }
        s
    }

    fn matches(&self, ws: &Workspace, id: usize) -> bool {
        let f = &ws.fns[id];
        let file = &ws.files[f.file];
        file.key == self.crate_key
            && f.name == self.name
            && !f.in_test
            && self.self_ty.is_none_or(|t| f.self_ty.as_deref() == Some(t))
            && self.trait_name.is_none_or(|t| f.trait_name.as_deref() == Some(t))
            && self.file_contains.is_none_or(|s| file.rel.contains(s))
            && (!self.free || f.self_ty.is_none())
    }
}

/// The serving entry points: the fns an external caller (CLI, soak
/// harness, live drill) drives directly on the query path. A panic
/// reachable from any of these without an intervening unwind boundary
/// can abort serving.
pub const SERVING_ENTRIES: &[Spec] = &[
    // Every executor stage, via the Stage trait impls.
    Spec { trait_name: Some("Stage"), file_contains: Some("/exec/"), ..Spec::method("core", "run") },
    // The executor itself (execute_caught is the unwind boundary and is
    // discovered as such, not listed).
    Spec { free: true, file_contains: Some("/exec/"), ..Spec::method("core", "execute") },
    Spec { free: true, file_contains: Some("/exec/"), ..Spec::method("core", "execute_fixed") },
    Spec { free: true, file_contains: Some("/exec/"), ..Spec::method("core", "run_prelude") },
    // Vector search, all index impls.
    Spec::method("vecdb", "search"),
    Spec::method("vecdb", "search_batch"),
    // Retrieval surface.
    Spec::method("retrieval", "retrieve"),
    Spec::method("retrieval", "search_with"),
    Spec::method("retrieval", "embed_query"),
    // The live-corpus apply/read/recover path.
    Spec { self_ty: Some("CorpusWriter"), file_contains: Some("/live/"), ..Spec::method("core", "commit") },
    Spec { self_ty: Some("CorpusWriter"), file_contains: Some("/live/"), ..Spec::method("core", "open") },
    Spec { self_ty: Some("LiveSnapshot"), file_contains: Some("/live/"), ..Spec::method("core", "search") },
    Spec { free: true, file_contains: Some("/live/"), ..Spec::method("core", "recover") },
];

/// The serialization sinks whose output is byte-compared across runs:
/// soak event logs, the committed BENCH_*.json artifacts, and the live
/// store's segment/manifest encoders.
pub const DETERMINISM_SINKS: &[Spec] = &[
    Spec { file_contains: Some("src/soak.rs"), ..Spec::method("core", "json_summary") },
    Spec { file_contains: Some("live/soak.rs"), ..Spec::method("core", "json_summary") },
    Spec { free: true, file_contains: Some("/live/"), ..Spec::method("core", "encode_segment") },
    Spec { free: true, file_contains: Some("/live/"), ..Spec::method("core", "encode_manifest") },
    Spec { file_contains: Some("scenario.rs"), ..Spec::method("obs", "to_json") },
    Spec { free: true, file_contains: Some("scenario.rs"), ..Spec::method("obs", "render_rows") },
    Spec { file_contains: Some("bundle.rs"), ..Spec::method("obs", "render") },
    Spec { file_contains: Some("bundle.rs"), ..Spec::method("obs", "to_json") },
    Spec { file_contains: Some("slo.rs"), ..Spec::method("obs", "gauges") },
];

/// Resolve a spec list against the workspace. Returns matching fn ids.
fn resolve_specs(ws: &Workspace, specs: &[Spec]) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::new();
    for spec in specs {
        out.extend((0..ws.fns.len()).filter(|&id| spec.matches(ws, id)));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Entry specs that matched no fn — config drift after a refactor. The
/// tier-1 test asserts this is empty against the real workspace (a
/// synthetic test workspace legitimately matches only a subset).
pub fn unmatched_specs(ws: &Workspace, specs: &[Spec]) -> Vec<String> {
    specs
        .iter()
        .filter(|s| !(0..ws.fns.len()).any(|id| s.matches(ws, id)))
        .map(Spec::describe)
        .collect()
}

/// Fns whose bodies contain `catch_unwind`: unwind boundaries. The walk
/// records but never crosses them, and their own panic sites are
/// absorbed by definition.
pub fn boundaries(ws: &Workspace) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    for (id, f) in ws.fns.iter().enumerate() {
        let Some((b0, b1)) = f.body else { continue };
        let toks = &ws.files[f.file].tokens;
        if toks[b0..b1.min(toks.len())]
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "catch_unwind")
        {
            out.insert(id);
        }
    }
    out
}

fn punct(t: &Tok) -> Option<char> {
    if t.kind == TokKind::Punct { t.text.chars().next() } else { None }
}

/// Idents that legitimately precede `[` without forming an index
/// expression (array literals, array types after keywords).
const NON_INDEX_PREV: &[&str] = &[
    "in", "return", "break", "continue", "else", "match", "let", "mut", "ref", "unsafe",
    "dyn", "where", "use", "pub", "fn", "impl", "struct", "enum", "trait", "type", "const",
    "static", "for", "while", "loop", "if", "as", "move", "async", "await",
];

/// One panic or nondeterminism source token site.
struct Source {
    line: u32,
    col: u32,
    what: String,
}

/// Scan a fn body for panic sites: panic-family macros, `.unwrap()` /
/// `.expect()`, and slice-index expressions.
fn panic_sources(toks: &[Tok], b0: usize, b1: usize) -> Vec<Source> {
    let mut out = Vec::new();
    for j in b0..b1.min(toks.len()) {
        let t = &toks[j];
        if t.in_test {
            continue;
        }
        let next = toks.get(j + 1);
        let prev = j.checked_sub(1).map(|p| &toks[p]);
        if t.kind == TokKind::Ident {
            if matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
                && next.is_some_and(|n| punct(n) == Some('!'))
            {
                out.push(Source { line: t.line, col: t.col, what: format!("{}!", t.text) });
            }
            if matches!(t.text.as_str(), "unwrap" | "expect")
                && prev.is_some_and(|p| punct(p) == Some('.'))
                && next.is_some_and(|n| punct(n) == Some('('))
            {
                out.push(Source { line: t.line, col: t.col, what: format!(".{}()", t.text) });
            }
        } else if punct(t) == Some('[') {
            let indexish = prev.is_some_and(|p| match p.kind {
                TokKind::Ident => !NON_INDEX_PREV.contains(&p.text.as_str()),
                TokKind::Punct => matches!(punct(p), Some(')') | Some(']')),
            });
            if indexish {
                out.push(Source { line: t.line, col: t.col, what: "slice index".to_string() });
            }
        }
    }
    out
}

/// Scan a fn body for nondeterminism sources: wall-clock reads,
/// RandomState-ordered containers, and Relaxed atomics. `use` spans are
/// exempt (imports are not reads).
fn determinism_sources(toks: &[Tok], b0: usize, b1: usize) -> Vec<Source> {
    let mut out = Vec::new();
    let mut in_use = false;
    for t in toks.iter().take(b1.min(toks.len())).skip(b0) {
        if t.kind == TokKind::Ident && t.text == "use" {
            in_use = true;
        }
        if in_use {
            if punct(t) == Some(';') {
                in_use = false;
            }
            continue;
        }
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        let what = match t.text.as_str() {
            "Instant" | "SystemTime" => format!("wall-clock `{}`", t.text),
            "HashMap" | "HashSet" => format!("RandomState-ordered `{}`", t.text),
            "Relaxed" => "Relaxed atomic read".to_string(),
            _ => continue,
        };
        out.push(Source { line: t.line, col: t.col, what });
    }
    out
}

/// Whether a valid marker naming `rule` covers `(file_idx, line)` —
/// mirrors the engine's suppression matching.
fn marker_covers(markers: &[Vec<AllowMarker>], file_idx: usize, line: u32, rule: &str) -> bool {
    markers.get(file_idx).is_some_and(|ms| {
        ms.iter().any(|m| {
            m.rules.iter().any(|r| r == rule)
                && (m.file_level || m.line == line || m.line + 1 == line)
        })
    })
}

/// The panic-reachability rule. `markers` holds each file's *valid*
/// suppression markers (parallel to `ws.files`): panic sites already
/// justified under `no-panic-serving` are not re-reported — that
/// marker's justification covers the panic itself, whoever reaches it.
pub fn panic_reachability(
    ws: &Workspace,
    graph: &Graph,
    markers: &[Vec<AllowMarker>],
) -> Vec<Violation> {
    let entries = resolve_specs(ws, SERVING_ENTRIES);
    let blocked = boundaries(ws);
    let reach = graph.reach(&entries, &blocked);
    let mut seen: BTreeSet<(usize, u32, u32)> = BTreeSet::new();
    let mut out = Vec::new();
    for &id in &reach.set {
        let f = &ws.fns[id];
        if f.in_test || blocked.contains(&id) {
            continue;
        }
        let Some((b0, b1)) = f.body else { continue };
        let toks = &ws.files[f.file].tokens;
        for s in panic_sources(toks, b0, b1) {
            if marker_covers(markers, f.file, s.line, rules::NO_PANIC_SERVING) {
                continue;
            }
            if !seen.insert((f.file, s.line, s.col)) {
                continue;
            }
            out.push(Violation::new(
                rules::PANIC_REACHABILITY,
                &ws.files[f.file].rel,
                s.line,
                s.col,
                format!(
                    "{} can abort serving: {}; return a Result, degrade via \
                     sage-resilience, or justify with a panic-reachability marker",
                    s.what,
                    graph.path_to(ws, &reach, id),
                ),
            ));
        }
    }
    out
}

/// The determinism-taint rule: no nondeterminism source may be
/// call-reachable from a byte-compared serialization sink.
pub fn determinism_taint(ws: &Workspace, graph: &Graph) -> Vec<Violation> {
    let sinks = resolve_specs(ws, DETERMINISM_SINKS);
    let reach = graph.reach(&sinks, &BTreeSet::new());
    let mut seen: BTreeSet<(usize, u32, u32)> = BTreeSet::new();
    let mut out = Vec::new();
    for &id in &reach.set {
        let f = &ws.fns[id];
        if f.in_test {
            continue;
        }
        let Some((b0, b1)) = f.body else { continue };
        let toks = &ws.files[f.file].tokens;
        for s in determinism_sources(toks, b0, b1) {
            if !seen.insert((f.file, s.line, s.col)) {
                continue;
            }
            out.push(Violation::new(
                rules::DETERMINISM_TAINT,
                &ws.files[f.file].rel,
                s.line,
                s.col,
                format!(
                    "{} can flow into byte-compared output: {}; thread the value \
                     from outside, sort before emitting, or justify with a \
                     determinism-taint marker",
                    s.what,
                    graph.path_to(ws, &reach, id),
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_items;
    use crate::resolve::FileUnit;

    fn build(files: &[(&str, &str, &str)]) -> (Workspace, Graph, Vec<Vec<AllowMarker>>) {
        let mut units = Vec::new();
        let mut markers = Vec::new();
        for (rel, key, src) in files {
            let lexed = lex(src);
            let items = parse_items(&lexed.tokens);
            markers.push(lexed.markers.into_iter().filter(|m| m.justified()).collect());
            units.push(FileUnit {
                rel: rel.to_string(),
                key: key.to_string(),
                tokens: lexed.tokens,
                items,
            });
        }
        let ws = Workspace::build(units);
        let graph = Graph::build(&ws);
        (ws, graph, markers)
    }

    #[test]
    fn transitive_panics_are_reported_at_the_source() {
        let (ws, g, m) = build(&[
            (
                "crates/vecdb/src/flat.rs",
                "vecdb",
                "struct Flat; impl Flat { fn search(&self, q: &[f32]) { score(q); } }\n\
                 fn score(q: &[f32]) -> f32 { q.first().unwrap(); q[0] }",
            ),
        ]);
        let vs = panic_reachability(&ws, &g, &m);
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert!(vs.iter().all(|v| v.rule == rules::PANIC_REACHABILITY));
        assert!(vs.iter().all(|v| v.line == 2));
        assert!(vs[0].message.contains("vecdb::Flat::search -> vecdb::score"));
    }

    #[test]
    fn unwind_boundaries_absorb_the_walk() {
        let (ws, g, m) = build(&[(
            "crates/vecdb/src/flat.rs",
            "vecdb",
            "struct F; impl F { fn search(&self) { guarded(); } }\n\
             fn guarded() { let _ = std::panic::catch_unwind(|| risky()); }\n\
             fn risky() { panic!(\"boom\"); }",
        )]);
        assert!(panic_reachability(&ws, &g, &m).is_empty());
    }

    #[test]
    fn test_only_panics_do_not_fire() {
        let (ws, g, m) = build(&[(
            "crates/vecdb/src/flat.rs",
            "vecdb",
            "struct F; impl F { fn search(&self) {} }\n\
             #[cfg(test)]\nmod tests { fn t() { panic!(\"x\"); } }",
        )]);
        assert!(panic_reachability(&ws, &g, &m).is_empty());
    }

    #[test]
    fn no_panic_serving_markers_cover_reachability_sources() {
        let (ws, g, m) = build(&[(
            "crates/vecdb/src/flat.rs",
            "vecdb",
            "struct F; impl F { fn search(&self) { helper(); } }\n\
             fn helper() {\n\
             // sage-lint: allow(no-panic-serving) - checked non-empty by caller\n\
             x.unwrap();\n}",
        )]);
        assert!(panic_reachability(&ws, &g, &m).is_empty());
    }

    #[test]
    fn unreachable_panics_do_not_fire() {
        let (ws, g, m) = build(&[(
            "crates/vecdb/src/flat.rs",
            "vecdb",
            "struct F; impl F { fn search(&self) {} }\nfn orphan() { panic!(\"x\"); }",
        )]);
        assert!(panic_reachability(&ws, &g, &m).is_empty());
    }

    #[test]
    fn taint_reaches_sources_through_calls() {
        let (ws, g, _) = build(&[(
            "crates/obs/src/bundle.rs",
            "obs",
            "struct B; impl B { fn render(&self) -> String { stamp() } }\n\
             fn stamp() -> String { let t = Instant::now(); format!(\"{t:?}\") }",
        )]);
        let vs = determinism_taint(&ws, &g);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, rules::DETERMINISM_TAINT);
        assert!(vs[0].message.contains("wall-clock"));
        assert!(vs[0].message.contains("obs::B::render -> obs::stamp"));
    }

    #[test]
    fn taint_ignores_unreachable_sources_and_use_lines() {
        let (ws, g, _) = build(&[(
            "crates/obs/src/bundle.rs",
            "obs",
            "struct B; impl B { fn render(&self) -> String { String::new() } }\n\
             fn elsewhere() { let t = Instant::now(); let _ = t; }",
        )]);
        assert!(determinism_taint(&ws, &g).is_empty());
    }

    #[test]
    fn spec_drift_is_detectable() {
        let (ws, _, _) = build(&[("crates/text/src/lib.rs", "text", "fn f() {}")]);
        // A workspace with none of the serving surface leaves every spec
        // unmatched; the tier-1 test asserts the real repo leaves none.
        assert_eq!(unmatched_specs(&ws, SERVING_ENTRIES).len(), SERVING_ENTRIES.len());
    }
}
