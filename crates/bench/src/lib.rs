//! Shared plumbing for the experiment bench harness.
//!
//! Every table and figure in the paper's evaluation has one bench target in
//! `benches/` (registered with `harness = false`), so
//! `cargo bench --workspace` regenerates the entire evaluation. Each target
//! prints rows in the paper's layout; EXPERIMENTS.md records the
//! paper-vs-measured comparison.
//!
//! Sizes here are chosen so the full sweep runs in minutes on a laptop
//! while keeping enough questions per cell (≥ 40) for stable percentages.

use sage::prelude::*;
use std::sync::OnceLock;

/// The default-budget trained models, shared across benches in one process.
pub fn models() -> &'static TrainedModels {
    static M: OnceLock<TrainedModels> = OnceLock::new();
    M.get_or_init(|| {
        eprintln!("[bench] training models (default budget)...");
        TrainedModels::train(TrainBudget::default())
    })
}

/// Standard dataset sizes per analog.
pub mod sizes {
    use sage::prelude::SizeConfig;

    /// NarrativeQA analog: 12 long narratives x 4 questions.
    pub fn narrativeqa() -> SizeConfig {
        SizeConfig { num_docs: 12, questions_per_doc: 4, seed: 0x2A01 }
    }

    /// QuALITY analog: 12 stories x 4 MC questions (+1 hard each).
    pub fn quality() -> SizeConfig {
        SizeConfig { num_docs: 12, questions_per_doc: 4, seed: 0x2A02 }
    }

    /// QASPER analog: 12 papers x 4 questions.
    pub fn qasper() -> SizeConfig {
        SizeConfig { num_docs: 12, questions_per_doc: 4, seed: 0x2A03 }
    }

    /// TriviaQA analog: one shared corpus of 150 short docs.
    pub fn triviaqa() -> SizeConfig {
        SizeConfig { num_docs: 150, questions_per_doc: 1, seed: 0x2A04 }
    }
}

/// Format a ratio as a percentage with two decimals (paper style).
pub fn pct(x: f32) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Print a table header with a rule.
pub fn header(title: &str, columns: &str) {
    println!("\n=== {title} ===");
    println!("{columns}");
    println!("{}", "-".repeat(columns.len().max(20)));
}

/// Megabytes with two decimals.
pub fn mb(bytes: usize) -> String {
    format!("{:.2} MB", bytes as f64 / (1024.0 * 1024.0))
}

/// Seconds with three decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}
