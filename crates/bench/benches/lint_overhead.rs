//! Lint engine cost: what the whole-program analysis adds over the old
//! token-only scan, and whether a full workspace run fits in a commit
//! hook.
//!
//! Two cells run against the real repository checkout:
//! - `token_scan` — lex + token rules only, per file, via
//!   [`sage::lint::lint_source`];
//! - `full_analysis` — the complete pipeline via
//!   [`sage::lint::workspace_analysis`]: lex, item parse, symbol
//!   resolution, call-graph construction, panic-reachability,
//!   determinism-taint, and the stale-suppression sweep.
//!
//! Acceptance target, asserted after the Criterion cells: one full
//! workspace analysis must finish in under 2 seconds, so the lint gate
//! stays cheap enough to run on every `scripts/check.sh` invocation.
//! The per-phase split printed alongside comes from the engine's own
//! timing hooks (the same numbers `sage lint --metrics-out` exports).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The workspace root: benches run from the repo checkout, but fall back
/// to CARGO_MANIFEST_DIR's grandparent when invoked elsewhere (the env
/// var is absent under the offline bare-rustc harness, hence option_env).
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    if cwd.join("crates").is_dir() {
        return cwd;
    }
    option_env!("CARGO_MANIFEST_DIR")
        .and_then(|m| Path::new(m).ancestors().nth(2).map(Path::to_path_buf))
        .unwrap_or(cwd)
}

fn bench_lint(c: &mut Criterion) {
    let root = workspace_root();
    // Gather sources once so the token_scan cell measures analysis, not IO.
    let analysis = sage::lint::workspace_analysis(&root).expect("workspace scan");
    assert!(analysis.report.files_scanned > 0, "no sources under {}", root.display());
    let sources: Vec<(String, String, String)> = {
        let mut out = Vec::new();
        for f in &analysis.workspace.files {
            let text = std::fs::read_to_string(root.join(&f.rel)).expect("read source");
            out.push((f.key.clone(), f.rel.clone(), text));
        }
        out
    };

    let mut group = c.benchmark_group("lint_overhead");
    group.bench_function("token_scan", |b| {
        b.iter(|| {
            for (key, rel, text) in &sources {
                black_box(sage::lint::lint_source(key, rel, text));
            }
        })
    });
    group.bench_function("full_analysis", |b| {
        b.iter(|| black_box(sage::lint::workspace_analysis(&root).expect("workspace scan")))
    });
    group.finish();

    // Direct readout for the acceptance target.
    let start = Instant::now();
    let analysis = black_box(sage::lint::workspace_analysis(&root).expect("workspace scan"));
    let full = start.elapsed();
    println!("\n=== lint overhead ===");
    for (phase, ns) in &analysis.report.timings {
        println!("phase {phase:<22} {:8.1} ms", *ns as f64 / 1e6);
    }
    println!(
        "full analysis {:.1} ms over {} files (target < 2000 ms)",
        1e3 * full.as_secs_f64(),
        analysis.report.files_scanned
    );
    assert!(
        full.as_secs_f64() < 2.0,
        "full workspace analysis took {:.2}s (target < 2s)",
        full.as_secs_f64()
    );
}

criterion_group! {
    name = lint_overhead;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_lint
}
criterion_main!(lint_overhead);
