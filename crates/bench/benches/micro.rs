//! Criterion micro-benchmarks for the performance-critical substrates:
//! segmentation throughput (the paper's tokens/s column), vector-index
//! query latency (flat vs HNSW), BM25 query throughput, reranker scoring,
//! sentence embedding, and metric computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sage::corpus::datasets::{wiki, SizeConfig};
use sage::prelude::*;
use std::hint::black_box;

fn corpus_chunks(n_docs: usize) -> Vec<String> {
    let ds = wiki::generate(SizeConfig { num_docs: n_docs, questions_per_doc: 0, seed: 0xBE7C });
    let seg = SentenceSegmenter { max_tokens: 60 };
    ds.documents.iter().flat_map(|d| seg.segment(&d.text())).collect()
}

fn bench_segmentation(c: &mut Criterion) {
    let models = sage_bench::models();
    let ds = wiki::generate(SizeConfig { num_docs: 2, questions_per_doc: 0, seed: 1 });
    let text = ds.documents[0].text();
    let tokens = sage::text::count_tokens(&text) as u64;
    let segmenter = SemanticSegmenter::new(models.segmentation.clone());
    let mut group = c.benchmark_group("segmentation");
    group.throughput(criterion::Throughput::Elements(tokens));
    group.bench_function("semantic_segment_document", |b| {
        b.iter(|| black_box(segmenter.segment(black_box(&text))))
    });
    group.bench_function("sentence_segment_document", |b| {
        let seg = SentenceSegmenter::naive_rag();
        b.iter(|| black_box(seg.segment(black_box(&text))))
    });
    group.finish();
}

fn bench_vecdb(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let dim = 64;
    let mut group = c.benchmark_group("vecdb_query");
    for &n in &[1_000usize, 10_000] {
        let vectors: Vec<Vec<f32>> = (0..n)
            .map(|_| {
                let mut v: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0..1.0)).collect();
                sage::nn::matrix::l2_normalize(&mut v);
                v
            })
            .collect();
        let mut flat = FlatIndex::cosine();
        let mut hnsw = HnswIndex::cosine();
        let mut ivf = IvfIndex::cosine();
        for v in &vectors {
            flat.add(v.clone());
            hnsw.add(v.clone());
            ivf.add(v.clone());
        }
        let query = vectors[n / 2].clone();
        group.bench_with_input(BenchmarkId::new("flat_top10", n), &n, |b, _| {
            b.iter(|| black_box(flat.search(black_box(&query), 10)))
        });
        group.bench_with_input(BenchmarkId::new("hnsw_top10", n), &n, |b, _| {
            b.iter(|| black_box(hnsw.search(black_box(&query), 10)))
        });
        group.bench_with_input(BenchmarkId::new("ivf_top10", n), &n, |b, _| {
            b.iter(|| black_box(ivf.search(black_box(&query), 10)))
        });
    }
    group.finish();
}

fn bench_bm25(c: &mut Criterion) {
    let chunks = corpus_chunks(20);
    let mut retriever = Bm25Retriever::new();
    retriever.index(&chunks);
    let mut group = c.benchmark_group("bm25");
    group.bench_function(format!("query_{}_chunks", chunks.len()), |b| {
        b.iter(|| {
            black_box(retriever.retrieve(black_box("where does the baker live in town"), 20))
        })
    });
    group.finish();
}

fn bench_rerank(c: &mut Criterion) {
    let models = sage_bench::models();
    let chunks = corpus_chunks(4);
    let refs: Vec<&str> = chunks.iter().map(String::as_str).collect();
    let mut group = c.benchmark_group("rerank");
    group.throughput(criterion::Throughput::Elements(refs.len() as u64));
    group.bench_function(format!("score_{}_chunks", refs.len()), |b| {
        b.iter(|| {
            black_box(
                models.scorer.rerank(black_box("What is the color of the cat's eyes?"), &refs),
            )
        })
    });
    group.finish();
}

fn bench_embed(c: &mut Criterion) {
    use sage::embed::{Embedder, HashedEmbedder};
    let models = sage_bench::models();
    let hashed = HashedEmbedder::default_model();
    let sentence = "The quick brown fox jumped over the lazy dog near the harbor town.";
    let mut group = c.benchmark_group("embed_sentence");
    group.bench_function("hashed_256d", |b| b.iter(|| black_box(hashed.embed(black_box(sentence)))));
    group.bench_function("siamese_48d", |b| {
        b.iter(|| black_box(models.siamese.embed(black_box(sentence))))
    });
    group.bench_function("dual_query_48d", |b| {
        b.iter(|| black_box(models.dual.embed_query(black_box(sentence))))
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let candidate = "the cat has bright green eyes and sleeps all day in the sun";
    let refs = vec!["a bright green eyed cat that sleeps in the sunshine all day".to_string()];
    let mut group = c.benchmark_group("metrics");
    group.bench_function("rouge_l", |b| b.iter(|| black_box(rouge_l(candidate, &refs))));
    group.bench_function("bleu4", |b| b.iter(|| black_box(bleu(candidate, &refs, 4))));
    group.bench_function("meteor", |b| b.iter(|| black_box(meteor(candidate, &refs))));
    group.bench_function("f1_match", |b| b.iter(|| black_box(f1_match(candidate, &refs))));
    group.finish();
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_segmentation, bench_vecdb, bench_bm25, bench_rerank, bench_embed, bench_metrics
}
criterion_main!(micro);
