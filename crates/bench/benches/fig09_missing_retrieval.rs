//! **Figure 9** — the missing-retrieval case study: an elimination
//! question that needs *all* the positive facts in context. Small fixed K
//! misses evidence and fails; large K succeeds; SAGE's smooth score curve
//! keeps gradient selection extending, so it selects enough chunks.

use sage::core::case_studies::missing_retrieval_sweep;
use sage::prelude::*;
use sage_bench::{header, models};

fn main() {
    let models = models();
    let cs = missing_retrieval_sweep(models, LlmProfile::gpt4());

    header("Figure 9: a case of missing retrieval", "");
    println!("Question: {}", cs.question);
    println!("Options:  {:?} (correct: {})\n", cs.options, cs.options[cs.correct_option]);
    println!("{:<5} {:<14} {}", "K", "picked", "outcome");
    for p in &cs.sweep {
        println!(
            "{:<5} {:<14} {}",
            p.k,
            cs.options[p.picked],
            if p.correct { "correct" } else { "WRONG (missing evidence)" }
        );
    }
    println!(
        "\nReranker scores (smooth, no early cliff): {:?}",
        cs.score_curve.iter().take(12).map(|s| (s * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    println!(
        "SAGE (gradient selection): selected {} chunks → {}",
        cs.sage_selected,
        if cs.sage_correct { "correct" } else { "wrong" }
    );
    println!("\nExpected shape: wrong at small K, correct at large K; SAGE selects many");
    println!("chunks on the smooth curve and answers correctly.");
}
