//! **Table II** — effectiveness on NarrativeQA (GPT-4o-mini analog): every
//! retriever with and without SAGE, graded by ROUGE / BLEU-1 / BLEU-4 /
//! METEOR.
//!
//! Paper shape to reproduce: each retriever scores higher *with* SAGE on
//! every metric (average gains: +8.15% ROUGE, +17.27% BLEU-1, +81.51%
//! BLEU-4, +11.89% METEOR relative).

use sage::corpus::datasets::narrativeqa;
use sage::prelude::*;
use sage_bench::{header, models, pct, sizes};

fn main() {
    let models = models();
    let dataset = narrativeqa::generate(sizes::narrativeqa());
    let profile = LlmProfile::gpt4o_mini();

    header(
        "Table II: NarrativeQA, retrievers with/without SAGE (GPT-4o-mini sim)",
        &format!("{:<34} {:>8} {:>8} {:>8} {:>8}", "Model", "ROUGE", "BLEU-1", "BLEU-4", "METEOR"),
    );
    for kind in RetrieverKind::all() {
        for (method, label) in [
            (Method::Sage(kind), format!("{} with SAGE", kind.label())),
            (Method::NaiveRag(kind), format!("{} without SAGE", kind.label())),
        ] {
            let s = evaluate(method, models, profile, &dataset);
            println!(
                "{label:<34} {:>8} {:>8} {:>8} {:>8}",
                pct(s.rouge),
                pct(s.bleu1),
                pct(s.bleu4),
                pct(s.meteor)
            );
        }
    }
    println!("\nExpected shape: every retriever improves with SAGE on every metric.");
}
