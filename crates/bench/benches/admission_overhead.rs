//! Admission-layer benchmarks: what budget tracking costs when nothing
//! is under pressure.
//!
//! Two cells over the same corpus and question mix:
//! - `budget_off` — baseline `answer_open`, no budget meter threaded
//!   through the pipeline.
//! - `budget_on` — `answer_open_budgeted` with a generous budget: every
//!   checkpoint runs (replan, charge, ladder check) but no rung is ever
//!   taken. The acceptance target is < 5% overhead over `budget_off`.
//!
//! A summary line after the Criterion runs prints the measured overhead
//! directly, plus a micro readout of the admission queue's admit/release
//! fast path, so the targets are visible without digging through
//! Criterion's report.

use criterion::{criterion_group, criterion_main, Criterion};
use sage::corpus::datasets::{wiki, SizeConfig};
use sage::prelude::*;
use std::hint::black_box;
use std::time::Instant;

fn corpus() -> Vec<String> {
    let ds = wiki::generate(SizeConfig { num_docs: 6, questions_per_doc: 0, seed: 0xFA17 });
    ds.documents.iter().map(|d| d.text()).collect()
}

fn questions() -> Vec<&'static str> {
    vec![
        "where does the baker live in town",
        "what color are the cat's eyes",
        "who works at the harbor",
        "what is the name of the valley",
    ]
}

fn build_system() -> RagSystem {
    RagSystem::build(
        sage_bench::models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &corpus(),
    )
}

fn bench_admission(c: &mut Criterion) {
    let system = build_system();
    let qs = questions();
    let generous = QueryBudget::generous();

    let mut group = c.benchmark_group("admission_overhead");
    group.throughput(criterion::Throughput::Elements(qs.len() as u64));
    group.bench_function("budget_off", |b| {
        b.iter(|| {
            for q in &qs {
                black_box(system.answer_open(black_box(q)));
            }
        })
    });
    group.bench_function("budget_on", |b| {
        b.iter(|| {
            for q in &qs {
                black_box(system.answer_open_budgeted(black_box(q), generous));
            }
        })
    });
    group.finish();

    // Direct overhead readout for the acceptance target. A generous
    // budget must change nothing about the answers, only add checkpoint
    // bookkeeping.
    let time = |budgeted: bool| {
        let rounds = 10;
        let start = Instant::now();
        for _ in 0..rounds {
            for q in &qs {
                if budgeted {
                    black_box(system.answer_open_budgeted(black_box(q), generous));
                } else {
                    black_box(system.answer_open(black_box(q)));
                }
            }
        }
        start.elapsed().as_secs_f64() / rounds as f64
    };
    // Warm both paths once, then measure.
    time(false);
    time(true);
    let base = time(false);
    let with_budget = time(true);
    let overhead = 100.0 * (with_budget - base) / base;
    println!(
        "\n=== admission overhead ===\nbudget off  {:.3} ms/batch\nbudget on   {:.3} ms/batch\noverhead    {overhead:+.2}% (target < 5%)",
        1e3 * base,
        1e3 * with_budget,
    );

    // Sanity: a generous budget never touches the brownout ladder.
    for q in &qs {
        let r = system.answer_open_budgeted(q, generous);
        assert_eq!(r.brownout, BrownoutLevel::None, "generous budget must not brown out");
        assert_eq!(r.answer.text, system.answer_open(q).answer.text);
    }

    // Micro readout: the admission queue's admit/release pair under zero
    // pressure (depth far below every ramp) — target well under a µs.
    let mut queue = AdmissionQueue::new(AdmissionConfig::default());
    let n = 1_000_000u64;
    let start = Instant::now();
    for i in 0..n {
        let class = Priority::ALL[(i % 3) as usize];
        black_box(queue.admit(black_box(class)));
        queue.release();
    }
    let ns = start.elapsed().as_secs_f64() * 1e9 / n as f64;
    println!("queue admit+release: {ns:.2} ns/pair at zero pressure");
}

criterion_group! {
    name = admission_overhead;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_admission
}
criterion_main!(admission_overhead);
