//! Flight-recorder overhead: what always-on capture costs the soak path.
//!
//! Two cells replay the identical seeded soak against the same built
//! system:
//! - `recorder_off` — no recorder attached; the per-query observation
//!   stream still goes to the report, but the capture call short-circuits
//!   on a `None` check.
//! - `recorder_on` — a bounded [`FlightRecorder`] attached; every
//!   terminal event is copied into the recycling ring with tail-based
//!   retention tiers.
//!
//! Acceptance targets, asserted directly after the Criterion cells:
//! the attached run's event log must be byte-identical to the detached
//! run (the recorder observes, never perturbs), and the measured
//! overhead must stay under 5%.

use criterion::{criterion_group, criterion_main, Criterion};
use sage::corpus::datasets::{quality, SizeConfig};
use sage::prelude::*;
use std::hint::black_box;
use std::time::Instant;

fn soak_cfg() -> SoakConfig {
    SoakConfig {
        seed: 0xF117,
        duration: std::time::Duration::from_secs(20),
        qps: 3.0,
        capacity: 6,
        concurrency: 2,
        ..SoakConfig::default()
    }
}

fn build_inputs() -> (RagSystem, Vec<String>) {
    let ds = quality::generate(SizeConfig { num_docs: 2, questions_per_doc: 4, seed: 0xF117 });
    let corpus: Vec<String> = ds.documents.iter().map(|d| d.text()).collect();
    let questions: Vec<String> = ds.tasks.iter().map(|t| t.item.question.clone()).collect();
    let system = RagSystem::build(
        sage_bench::models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &corpus,
    );
    (system, questions)
}

fn bench_recorder(c: &mut Criterion) {
    let (plain, questions) = build_inputs();
    let (mut recorded, _) = build_inputs();
    recorded.enable_recorder(RecorderConfig::default());
    let cfg = soak_cfg();

    let mut group = c.benchmark_group("recorder_overhead");
    group.bench_function("recorder_off", |b| {
        b.iter(|| black_box(run_soak(&plain, &questions, &cfg)))
    });
    group.bench_function("recorder_on", |b| {
        b.iter(|| black_box(run_soak(&recorded, &questions, &cfg)))
    });
    group.finish();

    // The recorder observes, never perturbs: byte-identical logs.
    let detached = run_soak(&plain, &questions, &cfg);
    let attached = run_soak(&recorded, &questions, &cfg);
    assert_eq!(
        detached.log, attached.log,
        "attaching the flight recorder changed the soak event log"
    );
    assert_eq!(detached.obs, attached.obs, "observation stream diverged under the recorder");

    // Direct overhead readout for the acceptance target.
    let time = |system: &RagSystem| {
        let rounds = 6;
        let start = Instant::now();
        for _ in 0..rounds {
            black_box(run_soak(system, &questions, &cfg));
        }
        start.elapsed().as_secs_f64() / rounds as f64
    };
    time(&plain);
    time(&recorded);
    let base = time(&plain);
    let with_rec = time(&recorded);
    let overhead = 100.0 * (with_rec - base) / base;
    let stats = recorded.recorder_stats().expect("recorder attached");
    println!(
        "\n=== recorder overhead ===\nrecorder off  {:.3} ms/soak\nrecorder on   {:.3} ms/soak\noverhead      {overhead:+.2}% (target < 5%)",
        1e3 * base,
        1e3 * with_rec,
    );
    println!(
        "captured {} | evicted {} | recycled {} | windows sealed {}",
        stats.captured, stats.evicted, stats.recycled, stats.windows_sealed
    );
    assert!(
        overhead < 5.0,
        "flight recorder costs {overhead:.2}% on the soak path (target < 5%)"
    );
}

criterion_group! {
    name = recorder_overhead;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_recorder
}
criterion_main!(recorder_overhead);
