//! **Table X** — feature-augmentation ablation for the segmentation model:
//! train on QASPER-analog articles (8:2 split) with each feature
//! combination and report validation accuracy.
//!
//! Paper shape: `(x1, x2)` = 84.5% < `+diff` = 85.6% < `+prod` = 88.4% <
//! full = 91.8% — every augmented feature helps, the product most.

use sage::corpus::datasets::qasper;
use sage::corpus::training::segmentation_pairs;
use sage::prelude::SizeConfig;
use sage::segment::{FeatureConfig, SegmentationModel};
use sage_bench::{header, pct};

fn main() {
    // Articles from the QASPER analog, like the paper's Exp-8.
    let ds = qasper::generate(SizeConfig { num_docs: 24, questions_per_doc: 0, seed: 0x10A });
    let pairs = segmentation_pairs(&ds.documents, 2400, 0x10B);
    let split = pairs.len() * 4 / 5;
    let (train, val) = pairs.split_at(split);
    println!("[bench] {} train / {} val pairs", train.len(), val.len());

    let configs = [
        FeatureConfig { use_diff: false, use_prod: false },
        FeatureConfig { use_diff: true, use_prod: false },
        FeatureConfig { use_diff: false, use_prod: true },
        FeatureConfig { use_diff: true, use_prod: true },
    ];

    header(
        "Table X: feature augmentation ablation (segmentation accuracy)",
        &format!("{:<40} {:>10}", "Features", "Accuracy"),
    );
    // Mean over several initialisation seeds: single-seed accuracy on a
    // ~2k-pair task is noisy enough to scramble the feature ordering.
    let seeds = [0x5E61u64, 0x1111, 0x2222, 0x3333, 0x4444];
    for feat in configs {
        let mut total = 0.0f32;
        for &seed in &seeds {
            let mut model = SegmentationModel::new(2048, 24, 24, feat, seed);
            model.train(train, 0.05, 10);
            total += model.evaluate(val);
        }
        println!("{:<40} {:>10}", feat.label(), pct(total / seeds.len() as f32));
    }
    println!("\nExpected shape: accuracy rises as features are added; full set best.");
}
