//! **Extension (paper §X future work 3)** — flexible chunk selection: a
//! trained keep/drop classifier vs Algorithm 2's gradient selection vs
//! fixed top-K, on the QuALITY-analog multiple-choice set.
//!
//! The paper conjectures a learned selector "might help" because gradient
//! selection can only take a prefix of the ranked list. This bench
//! quantifies the conjecture in our testbed: accuracy and mean context
//! size per strategy.

use sage::corpus::datasets::quality;
use sage::prelude::*;
use sage::rerank::RankedChunk;
use sage_bench::{header, models, pct, sizes};

fn main() {
    let models = models();
    let dataset = quality::generate(sizes::quality());
    let profile = LlmProfile::gpt4o_mini();
    println!("[bench] training flexible selector...");
    let mut flexible = models.train_flexible_selector(16, 0xF1EC);
    // Recall-leaning operating point: dropping true evidence costs far
    // more than keeping a borderline chunk.
    flexible.threshold = 0.3;

    // Strategy: name + closure from ranked list to kept positions.
    type Strategy<'a> = (&'a str, Box<dyn Fn(&[RankedChunk]) -> Vec<usize>>);
    let strategies: Vec<Strategy> = vec![
        ("Fixed top-5", Box::new(|r: &[RankedChunk]| r.iter().take(5).map(|c| c.index).collect())),
        ("Fixed top-7", Box::new(|r: &[RankedChunk]| r.iter().take(7).map(|c| c.index).collect())),
        (
            "Gradient (Algorithm 2)",
            Box::new(|r: &[RankedChunk]| {
                gradient_select(r, SelectionConfig::default()).iter().map(|c| c.index).collect()
            }),
        ),
        (
            "Flexible (trained)",
            Box::new(move |r: &[RankedChunk]| {
                flexible.select(r, 20).iter().map(|c| c.index).collect()
            }),
        ),
    ];

    header(
        "Extension: chunk-selection strategies on QuALITY (GPT-4o-mini sim)",
        &format!("{:<24} {:>10} {:>18} {:>16}", "Strategy", "Accuracy", "Avg chunks kept", "Avg ctx tokens"),
    );
    for (name, select) in strategies {
        let mut correct = 0usize;
        let mut total = 0usize;
        let mut kept_sum = 0usize;
        let mut token_sum = 0usize;
        let mut built: Option<(usize, RagSystem)> = None;
        for task in &dataset.tasks {
            if built.as_ref().map(|(d, _)| *d) != Some(task.doc) {
                let corpus = vec![dataset.documents[task.doc].text()];
                built = Some((
                    task.doc,
                    RagSystem::build(
                        models,
                        RetrieverKind::OpenAiSim,
                        SageConfig { use_feedback: false, ..SageConfig::sage() },
                        profile,
                        &corpus,
                    ),
                ));
            }
            let (_, system) = built.as_ref().unwrap();
            let (cand_ids, ranked) = system.candidates(&task.item.question);
            let positions = select(&ranked);
            let chunk_ids: Vec<usize> = positions.iter().map(|&p| cand_ids[p]).collect();
            let r = system.answer_with_chunks(
                &task.item.question,
                &chunk_ids,
                Some(&task.item.options),
            );
            total += 1;
            correct += usize::from(r.picked_option == Some(task.item.correct_option));
            kept_sum += chunk_ids.len();
            token_sum += chunk_ids
                .iter()
                .map(|&id| sage::text::count_tokens(&system.chunks()[id]))
                .sum::<usize>();
        }
        println!(
            "{name:<24} {:>10} {:>18.1} {:>16.0}",
            pct(correct as f32 / total.max(1) as f32),
            kept_sum as f32 / total.max(1) as f32,
            token_sum as f32 / total.max(1) as f32,
        );
    }
    println!("\nFinding: the learned selector trades a little accuracy for a much smaller");
    println!("context (it is free to drop the min_k junk the prefix rule must keep), so it");
    println!("wins on cost-efficiency; Algorithm 2 remains the accuracy-safe default. The");
    println!("paper's §X(3) 'might help' conjecture holds for the cost axis in this testbed.");
}
