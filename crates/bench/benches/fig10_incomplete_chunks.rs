//! **Figure 10** — the ineffective-segmentation case study: fixed-length
//! chunking separates a pronoun-form fact ("He sang a tribal song for the
//! moderator.") from its antecedent ("Gavir is a quiet shepherd."), making
//! the fact unusable; semantic segmentation keeps them together.

use sage::core::case_studies::incomplete_chunks_case;
use sage::prelude::*;
use sage_bench::{header, models};

fn main() {
    let models = models();
    let cs = incomplete_chunks_case(models, LlmProfile::gpt4o_mini());

    header("Figure 10: a case of ineffective corpus segmentation", "");
    println!("Question: {}", cs.question);
    println!("Gold:     {}", cs.gold);
    println!(
        "\nFixed-length chunking split the evidence from its antecedent: {}",
        cs.fixed_split_evidence
    );
    println!("Answer over fixed-length chunks:  {:?}", cs.fixed_answer);
    println!("Answer over semantic chunks:      {:?}", cs.semantic_answer);
    println!("\nExpected shape: the semantic answer contains the gold fact; the");
    println!("fixed-length answer fails (wrong or unanswerable) because the pronoun");
    println!("sentence lost its antecedent.");
}
