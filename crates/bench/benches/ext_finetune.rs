//! **Extension (paper §X future work 2)** — fine-tuning the inexpensive
//! LLM: "we can generate several batches of question-answer pairs to
//! fine-tune GPT-3.5-turbo. Then, we might achieve the same QA performance
//! based on the inexpensive LLM."
//!
//! This bench runs SAGE on QuALITY with the GPT-3.5 analog fine-tuned on
//! increasing amounts of generated QA data and compares accuracy and total
//! dollars against GPT-4o-mini and GPT-4.

use sage::corpus::datasets::quality;
use sage::llm::fine_tune;
use sage::prelude::*;
use sage_bench::{header, models, pct, sizes};

fn main() {
    let models = models();
    let dataset = quality::generate(sizes::quality());

    let rows: Vec<(String, LlmProfile)> = vec![
        ("GPT-3.5-turbo".into(), LlmProfile::gpt35_turbo()),
        ("GPT-3.5 + FT (200 pairs)".into(), fine_tune(LlmProfile::gpt35_turbo(), 200)),
        ("GPT-3.5 + FT (2000 pairs)".into(), fine_tune(LlmProfile::gpt35_turbo(), 2000)),
        ("GPT-4o-mini".into(), LlmProfile::gpt4o_mini()),
        ("GPT-4".into(), LlmProfile::gpt4()),
    ];

    header(
        "Extension: fine-tuning the cheap LLM (SAGE on QuALITY)",
        &format!("{:<28} {:>10} {:>14} {:>22}", "Reader", "Accuracy", "Total cost", "Accuracy per dollar"),
    );
    for (label, profile) in rows {
        let s = evaluate(Method::Sage(RetrieverKind::OpenAiSim), models, profile, &dataset);
        let dollars = s.dollars;
        println!(
            "{label:<28} {:>10} {:>14} {:>22.1}",
            pct(s.accuracy),
            format!("${dollars:.6}"),
            if dollars > 0.0 { s.accuracy as f64 / dollars } else { f64::INFINITY },
        );
    }
    println!("\nExpected shape: fine-tuning closes most of the gap to GPT-4o-mini/GPT-4 while");
    println!("staying far cheaper than GPT-4 — the paper's §X(2) conjecture.");
}
