//! **Retrieval-quality decomposition** — the paper attributes SAGE's gains
//! to *precise retrieval*; this bench measures that claim directly,
//! reader-free, against exact evidence ground truth: for each QASPER-analog
//! question, a retrieved chunk is relevant iff it contains a gold evidence
//! sentence. Compares 200-token chunking vs semantic chunking, first-stage
//! vs reranked ordering.

use sage::corpus::datasets::qasper;
use sage::prelude::*;
use sage_bench::{header, models, sizes};

struct Tally {
    mrr: f32,
    recall5: f32,
    hit1: f32,
    ndcg10: f32,
    n: usize,
}

impl Tally {
    fn new() -> Self {
        Self { mrr: 0.0, recall5: 0.0, hit1: 0.0, ndcg10: 0.0, n: 0 }
    }

    fn add(&mut self, relevant: &[bool]) {
        self.mrr += sage::eval::reciprocal_rank(relevant);
        self.recall5 += sage::eval::recall_at_k(relevant, 5);
        self.hit1 += sage::eval::hit_rate_at_k(relevant, 1);
        self.ndcg10 += sage::eval::ndcg_at_k(relevant, 10);
        self.n += 1;
    }

    fn row(&self, label: &str) {
        let n = self.n.max(1) as f32;
        println!(
            "{label:<36} {:>8.3} {:>9.3} {:>12.3} {:>9.3}",
            self.mrr / n,
            self.recall5 / n,
            self.hit1 / n,
            self.ndcg10 / n
        );
    }
}

fn main() {
    let models = models();
    let dataset = qasper::generate(sizes::qasper());

    header(
        "Retrieval quality vs gold evidence (QASPER analog)",
        &format!(
            "{:<36} {:>8} {:>9} {:>12} {:>9}",
            "Configuration", "MRR", "Recall@5", "Hit@1", "nDCG@10"
        ),
    );

    for (label, config) in [
        ("200-token chunks, first stage", SageConfig::naive_rag()),
        ("200-token chunks, reranked", SageConfig::rerank_fixed_k()),
        (
            "semantic chunks, first stage",
            SageConfig { use_rerank: false, use_selection: false, use_feedback: false, ..SageConfig::sage() },
        ),
        (
            "semantic chunks, reranked",
            SageConfig { use_selection: false, use_feedback: false, ..SageConfig::sage() },
        ),
    ] {
        let mut tally = Tally::new();
        let mut built: Option<(usize, RagSystem)> = None;
        for task in &dataset.tasks {
            if task.item.evidence.is_empty() {
                continue; // unanswerable questions have no gold evidence
            }
            if built.as_ref().map(|(d, _)| *d) != Some(task.doc) {
                let corpus = vec![dataset.documents[task.doc].text()];
                built = Some((
                    task.doc,
                    RagSystem::build(
                        models,
                        RetrieverKind::OpenAiSim,
                        config,
                        LlmProfile::gpt4o_mini(),
                        &corpus,
                    ),
                ));
            }
            let (_, system) = built.as_ref().unwrap();
            let (cand_ids, ranked) = system.candidates(&task.item.question);
            let relevant: Vec<bool> = ranked
                .iter()
                .map(|r| {
                    let chunk = &system.chunks()[cand_ids[r.index]];
                    task.item.evidence.iter().any(|e| chunk.contains(e))
                })
                .collect();
            tally.add(&relevant);
        }
        tally.row(label);
    }

    println!("\nExpected shape: reranking and semantic chunking each lift MRR / Hit@1 /");
    println!("nDCG toward 1.0 — the retrieval-side mechanism behind the end-to-end QA");
    println!("gains. (With semantic chunks the first stage is already near-perfect, so");
    println!("reranking has little left to fix.)");
}
