//! **Table XI** — cost efficiency on QuALITY (GPT-4o-mini analog): total
//! tokens consumed, accuracy, and relative cost efficiency (Eq. 2,
//! normalised so the best method is 1.0).
//!
//! Paper shape: SAGE uses the fewest tokens (104,939 vs ≈ 140k for the
//! baselines) at the highest accuracy (75% vs 65-70%), so its relative
//! cost efficiency is 1.0 and the baselines land at 0.65-0.69.

use sage::corpus::datasets::quality;
use sage::prelude::*;
use sage_bench::{header, models, pct, sizes};

fn main() {
    let models = models();
    let dataset = quality::generate(sizes::quality());
    let profile = LlmProfile::gpt4o_mini();

    let rows: [(&str, Method); 4] = [
        ("BM25", Method::NaiveRag(RetrieverKind::Bm25)),
        ("DPR", Method::NaiveRag(RetrieverKind::Dpr)),
        ("SBERT", Method::NaiveRag(RetrieverKind::Sbert)),
        ("SAGE", Method::Sage(RetrieverKind::OpenAiSim)),
    ];

    let mut results = Vec::new();
    for (label, method) in rows {
        let s = evaluate(method, models, profile, &dataset);
        results.push((label, s.cost.total_tokens(), s.accuracy, s.efficiency()));
    }
    let best = results.iter().map(|r| r.3).fold(0.0f64, f64::max);

    header(
        "Table XI: cost efficiency on QuALITY (GPT-4o-mini sim)",
        &format!(
            "{:<8} {:>16} {:>10} {:>26}",
            "Model", "Number of tokens", "Accuracy", "Relative Cost Efficiency"
        ),
    );
    for (label, tokens, acc, eff) in results {
        println!(
            "{label:<8} {tokens:>16} {:>10} {:>26.3}",
            pct(acc),
            if best > 0.0 { eff / best } else { 0.0 }
        );
    }
    println!("\nExpected shape: SAGE fewest tokens + best accuracy ⇒ relative efficiency 1.0.");
}
