//! Telemetry-layer benchmarks: the cost of observing the serving path.
//!
//! Two cells over the same corpus and question mix:
//! - `telemetry_off` — baseline `answer_open`, no telemetry hub attached
//!   and the global flag left off; counters short-circuit on one relaxed
//!   atomic load, so this must match an uninstrumented build.
//! - `telemetry_on` — a `Telemetry` hub attached; every query records
//!   spans, stage histograms, the cost ledger, and a JSONL trace. The
//!   acceptance target is < 5% overhead over `telemetry_off`.
//!
//! A summary line after the Criterion runs prints the measured overhead
//! directly, plus a micro readout of the disabled-counter fast path, so
//! the targets are visible without digging through Criterion's report.

use criterion::{criterion_group, criterion_main, Criterion};
use sage::corpus::datasets::{wiki, SizeConfig};
use sage::prelude::*;
use std::hint::black_box;
use std::time::Instant;

fn corpus() -> Vec<String> {
    let ds = wiki::generate(SizeConfig { num_docs: 6, questions_per_doc: 0, seed: 0xFA17 });
    ds.documents.iter().map(|d| d.text()).collect()
}

fn questions() -> Vec<&'static str> {
    vec![
        "where does the baker live in town",
        "what color are the cat's eyes",
        "who works at the harbor",
        "what is the name of the valley",
    ]
}

fn build_system() -> RagSystem {
    RagSystem::build(
        sage_bench::models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &corpus(),
    )
}

fn bench_serving(c: &mut Criterion) {
    // enable_telemetry() flips the process-global flag, so each cell
    // sets the flag explicitly rather than relying on build order.
    let plain = build_system();
    let mut instrumented = build_system();
    let hub = instrumented.enable_telemetry();

    let qs = questions();
    let mut group = c.benchmark_group("telemetry_overhead");
    group.throughput(criterion::Throughput::Elements(qs.len() as u64));
    group.bench_function("telemetry_off", |b| {
        sage::telemetry::set_enabled(false);
        b.iter(|| {
            for q in &qs {
                black_box(plain.answer_open(black_box(q)));
            }
        })
    });
    group.bench_function("telemetry_on", |b| {
        sage::telemetry::set_enabled(true);
        b.iter(|| {
            for q in &qs {
                black_box(instrumented.answer_open(black_box(q)));
            }
        })
    });
    group.finish();

    // Direct overhead readout for the acceptance target.
    let time = |system: &RagSystem, on: bool| {
        sage::telemetry::set_enabled(on);
        let rounds = 10;
        let start = Instant::now();
        for _ in 0..rounds {
            for q in &qs {
                black_box(system.answer_open(black_box(q)));
            }
        }
        start.elapsed().as_secs_f64() / rounds as f64
    };
    // Warm both paths once, then measure.
    time(&plain, false);
    time(&instrumented, true);
    let base = time(&plain, false);
    let with_tel = time(&instrumented, true);
    let overhead = 100.0 * (with_tel - base) / base;
    println!(
        "\n=== telemetry overhead ===\ntelemetry off  {:.3} ms/batch\ntelemetry on   {:.3} ms/batch\noverhead       {overhead:+.2}% (target < 5%)",
        1e3 * base,
        1e3 * with_tel,
    );
    println!(
        "queries observed: {} | traces retained: {}",
        hub.query_count(),
        hub.trace_count()
    );

    // Micro readout: the disabled-counter fast path must be ~free (one
    // relaxed load and a branch — target low single-digit ns per call).
    sage::telemetry::set_enabled(false);
    let n = 10_000_000u64;
    let start = Instant::now();
    for i in 0..n {
        sage::telemetry::metrics::VECDB_FLAT_DISTANCE_EVALS.add(black_box(i));
    }
    let off_ns = start.elapsed().as_secs_f64() * 1e9 / n as f64;
    sage::telemetry::set_enabled(true);
    let start = Instant::now();
    for i in 0..n {
        sage::telemetry::metrics::VECDB_FLAT_DISTANCE_EVALS.add(black_box(i));
    }
    let on_ns = start.elapsed().as_secs_f64() * 1e9 / n as f64;
    println!("counter.add: disabled {off_ns:.2} ns/call | enabled {on_ns:.2} ns/call");
}

criterion_group! {
    name = telemetry_overhead;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_serving
}
criterion_main!(telemetry_overhead);
