//! **Table VI** — NarrativeQA comparison with the UnifiedQA-3B analog:
//! BiDAF, BM25+BERT, Recursively Summarizing Books, and SAGE.
//!
//! Paper shape: BiDAF (truncated window) far behind; BM25+BERT middling;
//! recursive summarization close behind SAGE; SAGE on top (paper: 22.22%
//! ROUGE / 12.05% METEOR vs 21.06/10.06 for summarization).

use sage::corpus::datasets::narrativeqa;
use sage::prelude::*;
use sage_bench::{header, models, pct, sizes};

fn main() {
    let models = models();
    let dataset = narrativeqa::generate(sizes::narrativeqa());
    let profile = LlmProfile::unifiedqa_3b();

    let rows: [(&str, Method); 4] = [
        ("BiDAF", Method::BiDaf),
        ("BM25+BERT", Method::Bm25Bert),
        ("Recursively Summarizing Books", Method::RecursiveSummary),
        ("SAGE +UnifiedQA", Method::Sage(RetrieverKind::OpenAiSim)),
    ];

    header(
        "Table VI: NarrativeQA vs baselines (UnifiedQA-3B sim)",
        &format!("{:<32} {:>8} {:>8}", "Model", "ROUGE", "METEOR"),
    );
    for (label, method) in rows {
        let s = evaluate(method, models, profile, &dataset);
        println!("{label:<32} {:>8} {:>8}", pct(s.rouge), pct(s.meteor));
    }
    println!("\nExpected shape: SAGE > Recursive Summarization > BM25+BERT > BiDAF.");
}
