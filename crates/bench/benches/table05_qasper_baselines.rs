//! **Table V** — QASPER F1-Match comparison against Title+Abstract, BM25,
//! and DPR, for both the GPT-3.5-turbo and GPT-4o-mini analogs.
//!
//! Paper shape: Title+Abstract is far behind; SAGE beats BM25 and DPR by
//! 10-16% relative on both readers.

use sage::corpus::datasets::qasper;
use sage::prelude::*;
use sage_bench::{header, models, pct, sizes};

fn main() {
    let models = models();
    let dataset = qasper::generate(sizes::qasper());

    let rows: [(&str, Method); 4] = [
        ("Title+Abstract", Method::TitleAbstract),
        ("BM25", Method::NaiveRag(RetrieverKind::Bm25)),
        ("DPR", Method::NaiveRag(RetrieverKind::Dpr)),
        ("SAGE", Method::Sage(RetrieverKind::OpenAiSim)),
    ];

    header(
        "Table V: QASPER F1-Match vs baselines",
        &format!("{:<18} {:>18} {:>22}", "Model", "GPT-3.5 F1-Match", "GPT-4o-mini F1-Match"),
    );
    for (label, method) in rows {
        let g35 = evaluate(method, models, LlmProfile::gpt35_turbo(), &dataset);
        let mini = evaluate(method, models, LlmProfile::gpt4o_mini(), &dataset);
        println!("{label:<18} {:>18} {:>22}", pct(g35.f1), pct(mini.f1));
    }
    println!("\nExpected shape: SAGE > DPR ≈ BM25 >> Title+Abstract, on both readers.");
}
