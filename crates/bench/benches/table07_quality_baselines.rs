//! **Table VII** — QuALITY test-set and hard-set accuracy vs the reader
//! baselines: Longformer-base, DPR+DeBERTaV3-large, CoLISA, RAPTOR+GPT-4,
//! and SAGE+GPT-4.
//!
//! Paper shape: Longformer-base weakest; SAGE+GPT-4 on top (90.10% test /
//! 76.3% hard), with RAPTOR+GPT-4 close on the hard set — hard
//! (elimination) questions are the hardest for retrieval methods.

use sage::corpus::datasets::quality;
use sage::prelude::*;
use sage_bench::{header, models, pct, sizes};

fn main() {
    let models = models();
    let dataset = quality::generate(sizes::quality());

    // Reader strength per baseline mirrors the paper's backbone models:
    // Longformer-base is a small LM; DeBERTaV3-large sits between; RAPTOR
    // and SAGE ride GPT-4.
    let rows: [(&str, Method, LlmProfile); 5] = [
        ("Longformer-base", Method::Longformer, LlmProfile::unifiedqa_3b()),
        ("DPR+DeBERTaV3-large", Method::DprReader, LlmProfile::gpt35_turbo()),
        ("CoLISA (DeBERTaV3-large)", Method::Colisa, LlmProfile::gpt35_turbo()),
        ("RAPTOR+GPT-4", Method::Raptor, LlmProfile::gpt4()),
        ("SAGE +GPT-4", Method::Sage(RetrieverKind::OpenAiSim), LlmProfile::gpt4()),
    ];

    header(
        "Table VII: QuALITY accuracy vs baselines",
        &format!("{:<28} {:>18} {:>18}", "Model", "Accuracy (Test)", "Accuracy (Hard)"),
    );
    for (label, method, profile) in rows {
        let s = evaluate(method, models, profile, &dataset);
        println!("{label:<28} {:>18} {:>18}", pct(s.normal_accuracy), pct(s.hard_accuracy));
    }
    println!("\nExpected shape: SAGE+GPT-4 highest on the test set; hard-set margins tighter.");
}
