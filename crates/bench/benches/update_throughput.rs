//! Live-corpus update throughput: what a commit costs as the corpus grows.
//!
//! The live writer's contract is that commit cost scales with the batch,
//! not the corpus — only dirty documents are re-segmented and re-embedded,
//! and index inserts are appends. This bench measures a fixed-size update
//! batch against stores of increasing size and checks the sublinearity
//! directly: per-commit time at the largest corpus must stay within a
//! small factor of the smallest, nowhere near the corpus-size ratio.
//!
//! Besides the Criterion cells, the run emits `BENCH_live_corpus.json`
//! (one object per corpus size) so the perf trajectory ROADMAP item 5
//! expects has a machine-readable series to track across commits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sage::core::live::{CorpusWriter, LiveConfig, LiveOp};
use std::hint::black_box;
use std::time::Instant;

/// Corpus sizes (documents) the fixed batch is measured against.
const SIZES: [usize; 3] = [64, 256, 1024];
/// Upserts per measured commit.
const BATCH: usize = 8;

fn doc_text(doc: usize, rev: usize) -> String {
    format!(
        "Ledger entry {doc} revision {rev}. The registry lists holding {} \
         under section {}. A clerk appended note {} about the transfer.",
        doc * 17 + rev,
        doc % 12,
        rev + 1
    )
}

fn seeded_store(dir: &std::path::Path, docs: usize) -> CorpusWriter {
    std::fs::remove_dir_all(dir).ok();
    // Compaction off (threshold unreachable) so cells measure the pure
    // delta path, not amortized rebuilds.
    let cfg = LiveConfig {
        compact_dead_fraction: 1.1,
        compact_min_dead: usize::MAX,
        ..LiveConfig::default()
    };
    let (mut w, _) = CorpusWriter::open(dir, cfg).expect("open store");
    let ops: Vec<LiveOp> = (0..docs)
        .map(|d| LiveOp::Upsert { doc_id: format!("doc-{d:05}"), text: doc_text(d, 0) })
        .collect();
    for batch in ops.chunks(128) {
        w.commit(batch).expect("seed commit");
    }
    w
}

fn update_batch(docs: usize, rev: usize) -> Vec<LiveOp> {
    // Update a deterministic spread of existing documents.
    (0..BATCH)
        .map(|i| {
            let d = (i * docs) / BATCH;
            LiveOp::Upsert { doc_id: format!("doc-{d:05}"), text: doc_text(d, rev) }
        })
        .collect()
}

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("live_update_throughput");
    group.throughput(criterion::Throughput::Elements(BATCH as u64));
    for &docs in &SIZES {
        let dir = std::env::temp_dir().join(format!("sage_bench_live_{docs}"));
        let mut w = seeded_store(&dir, docs);
        let mut rev = 0usize;
        group.bench_with_input(BenchmarkId::new("docs", docs), &docs, |b, &docs| {
            b.iter(|| {
                rev += 1;
                black_box(w.commit(&update_batch(docs, rev)).expect("commit"));
            })
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();

    // Direct sublinearity readout + the JSON series.
    let mut rows = Vec::new();
    let mut per_commit_us = Vec::new();
    for &docs in &SIZES {
        let dir = std::env::temp_dir().join(format!("sage_bench_live_json_{docs}"));
        let mut w = seeded_store(&dir, docs);
        let rounds = 40usize;
        let start = Instant::now();
        for rev in 1..=rounds {
            black_box(w.commit(&update_batch(docs, rev)).expect("commit"));
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / rounds as f64;
        let chunks = w.snapshot().live_chunks();
        std::fs::remove_dir_all(&dir).ok();
        println!(
            "live update: {docs:5} docs ({chunks:5} live chunks) -> \
             {us:9.1} us/commit ({:.1} us/updated doc)",
            us / BATCH as f64
        );
        per_commit_us.push(us);
        rows.push(format!(
            "{{\"corpus_docs\": {docs}, \"live_chunks\": {chunks}, \
             \"batch\": {BATCH}, \"us_per_commit\": {us:.1}, \
             \"us_per_update\": {:.2}}}",
            us / BATCH as f64
        ));
    }
    let json = format!("[\n  {}\n]\n", rows.join(",\n  "));
    std::fs::write("BENCH_live_corpus.json", &json).expect("write BENCH_live_corpus.json");
    println!("wrote BENCH_live_corpus.json");

    // The acceptance check: 16x the corpus must not cost anywhere near
    // 16x per commit. Allow 4x for cache effects and index depth.
    let (small, large) = (per_commit_us[0], per_commit_us[SIZES.len() - 1]);
    let ratio = large / small.max(1e-9);
    println!(
        "sublinearity: {large:.1} us @ {} docs vs {small:.1} us @ {} docs = {ratio:.2}x \
         (corpus grew {}x)",
        SIZES[SIZES.len() - 1],
        SIZES[0],
        SIZES[SIZES.len() - 1] / SIZES[0]
    );
    assert!(
        ratio < 4.0,
        "update cost is not sublinear in corpus size: {ratio:.2}x per-commit growth"
    );
}

criterion_group! {
    name = update_throughput;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_updates
}
criterion_main!(update_throughput);
