//! Execution-engine benchmarks: what the stage-graph executor costs over
//! a hand-inlined call path.
//!
//! Two cells over the same fixed context and question mix:
//! - `inline_read` — the reader invoked directly (`SimLlm::answer_open`
//!   over a preassembled context): the work with zero engine machinery.
//! - `engine_read` — the same single-read work routed through the
//!   executor (`answer_with_chunks`: plan build, context setup, slot
//!   dispatch, middleware hooks, fuse, finalize).
//!
//! The delta between the cells is pure engine overhead — plan
//! construction plus per-slot dispatch — and the acceptance target is
//! < 5% over `inline_read`. A summary line after the Criterion runs
//! prints the measured overhead directly, plus a micro readout of
//! `QueryPlan::resolve` itself, so the targets are visible without
//! digging through Criterion's report.

use criterion::{criterion_group, criterion_main, Criterion};
use sage::corpus::datasets::{wiki, SizeConfig};
use sage::prelude::*;
use std::hint::black_box;
use std::time::Instant;

fn corpus() -> Vec<String> {
    let ds = wiki::generate(SizeConfig { num_docs: 6, questions_per_doc: 0, seed: 0xFA17 });
    ds.documents.iter().map(|d| d.text()).collect()
}

fn questions() -> Vec<&'static str> {
    vec![
        "where does the baker live in town",
        "what color are the cat's eyes",
        "who works at the harbor",
        "what is the name of the valley",
    ]
}

fn build_system() -> RagSystem {
    RagSystem::build(
        sage_bench::models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &corpus(),
    )
}

fn bench_executor(c: &mut Criterion) {
    let system = build_system();
    let qs = questions();
    // A small fixed context, as `answer_with_chunks` callers use: the
    // engine and inline cells read exactly the same chunks.
    let chunk_ids: Vec<usize> = (0..system.chunks().len().min(4)).collect();
    let context: Vec<String> = chunk_ids.iter().map(|&id| system.chunks()[id].clone()).collect();

    let mut group = c.benchmark_group("executor_overhead");
    group.throughput(criterion::Throughput::Elements(qs.len() as u64));
    group.bench_function("inline_read", |b| {
        b.iter(|| {
            for q in &qs {
                black_box(system.llm().answer_open(black_box(q), &context));
            }
        })
    });
    group.bench_function("engine_read", |b| {
        b.iter(|| {
            for q in &qs {
                black_box(system.answer_with_chunks(black_box(q), &chunk_ids, None));
            }
        })
    });
    group.finish();

    // Direct overhead readout for the acceptance target: the engine wraps
    // the identical read in plan build + dispatch + middleware + fuse.
    let time = |engine: bool| {
        let rounds = 50;
        let start = Instant::now();
        for _ in 0..rounds {
            for q in &qs {
                if engine {
                    black_box(system.answer_with_chunks(black_box(q), &chunk_ids, None));
                } else {
                    black_box(system.llm().answer_open(black_box(q), &context));
                }
            }
        }
        start.elapsed().as_secs_f64() / rounds as f64
    };
    // Warm both paths once, then measure.
    time(false);
    time(true);
    let inline = time(false);
    let engine = time(true);
    let overhead = 100.0 * (engine - inline) / inline;
    println!(
        "\n=== executor overhead ===\ninline read  {:.3} ms/batch\nengine read  {:.3} ms/batch\noverhead     {overhead:+.2}% (target < 5%)",
        1e3 * inline,
        1e3 * engine,
    );

    // Sanity: the engine's fixed plan returns the very answer the inline
    // read produced — the overhead buys bookkeeping, not different work.
    for q in &qs {
        let direct = system.llm().answer_open(q, &context);
        let routed = system.answer_with_chunks(q, &chunk_ids, None);
        assert_eq!(direct.text, routed.answer.text, "engine changed the answer for {q:?}");
        assert_eq!(routed.selected, chunk_ids);
    }

    // Micro readout: resolving the full SAGE plan from the configuration
    // (the extra work `answer_open` does per query vs the old inlined
    // control flow) — target well under a µs.
    let cfg = SageConfig::sage();
    let n = 1_000_000u64;
    let start = Instant::now();
    for _ in 0..n {
        black_box(QueryPlan::resolve(black_box(&cfg), true, true));
    }
    let ns = start.elapsed().as_secs_f64() * 1e9 / n as f64;
    println!("plan resolve: {ns:.2} ns/query");
}

criterion_group! {
    name = executor_overhead;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_executor
}
criterion_main!(executor_overhead);
