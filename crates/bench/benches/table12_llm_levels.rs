//! **Table XII** — LLM proficiency comparison on QuALITY: BM25, DPR, and
//! SAGE accuracy with the GPT-3.5-turbo analog vs the GPT-4o-mini analog
//! (§VIII Exp-14 / insight 3).
//!
//! Paper shape: the GPT-4o-mini column dominates the GPT-3.5 column for
//! every method (~+17-21% relative), and SAGE leads within each column —
//! LLM strength matters more than the retriever.

use sage::corpus::datasets::quality;
use sage::prelude::*;
use sage_bench::{header, models, pct, sizes};

fn main() {
    let models = models();
    let dataset = quality::generate(sizes::quality());

    let rows: [(&str, Method); 3] = [
        ("BM25", Method::NaiveRag(RetrieverKind::Bm25)),
        ("DPR", Method::NaiveRag(RetrieverKind::Dpr)),
        ("SAGE", Method::Sage(RetrieverKind::OpenAiSim)),
    ];

    header(
        "Table XII: accuracy by LLM proficiency on QuALITY",
        &format!("{:<8} {:>20} {:>24}", "Model", "GPT-3.5 Accuracy", "GPT-4o-mini Accuracy"),
    );
    for (label, method) in rows {
        let g35 = evaluate(method, models, LlmProfile::gpt35_turbo(), &dataset);
        let mini = evaluate(method, models, LlmProfile::gpt4o_mini(), &dataset);
        println!("{label:<8} {:>20} {:>24}", pct(g35.accuracy), pct(mini.accuracy));
    }
    println!("\nExpected shape: GPT-4o-mini column > GPT-3.5 column for every method;");
    println!("SAGE best within each column.");
}
