//! Resilience-layer benchmarks: the cost of guarding the serving path.
//!
//! Three cells over the same corpus and question mix:
//! - `unguarded` — baseline `answer_open`, no resilience state.
//! - `guarded_no_faults` — resilience enabled with an empty fault plan; the
//!   target is < 5% overhead over `unguarded` (the guard adds one plan
//!   lookup, one validity check, and per-query breaker/clock setup).
//! - `guarded_fault_storm` — every component faulting transiently at 30%;
//!   measures the degraded-serving cost (retries + fallback tiers),
//!   reported for context rather than gated.
//!
//! A summary line after the Criterion runs prints the measured overhead of
//! the no-fault guard directly, so the < 5% acceptance target is visible
//! without digging through Criterion's report.

use criterion::{criterion_group, criterion_main, Criterion};
use sage::corpus::datasets::{wiki, SizeConfig};
use sage::prelude::*;
use std::hint::black_box;
use std::time::Instant;

fn corpus() -> Vec<String> {
    let ds = wiki::generate(SizeConfig { num_docs: 6, questions_per_doc: 0, seed: 0xFA17 });
    ds.documents.iter().map(|d| d.text()).collect()
}

fn questions() -> Vec<&'static str> {
    vec![
        "where does the baker live in town",
        "what color are the cat's eyes",
        "who works at the harbor",
        "what is the name of the valley",
    ]
}

fn build_system() -> RagSystem {
    RagSystem::build(
        sage_bench::models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &corpus(),
    )
}

fn storm_plan() -> FaultPlan {
    let transient = Rates { transient: 0.3, ..Rates::default() };
    FaultPlan::seeded(0xBAD5EED)
        .with(Component::Embedder, transient)
        .with(Component::IndexSearch, transient)
        .with(Component::Reranker, transient)
        .with(Component::Reader, transient)
}

fn bench_serving(c: &mut Criterion) {
    let unguarded = build_system();

    let mut guarded = build_system();
    guarded.enable_resilience(ResilienceConfig::default());

    let mut storm = build_system();
    storm.enable_resilience(ResilienceConfig::with_plan(storm_plan()));

    let qs = questions();
    let mut group = c.benchmark_group("fault_resilience");
    group.throughput(criterion::Throughput::Elements(qs.len() as u64));
    group.bench_function("unguarded", |b| {
        b.iter(|| {
            for q in &qs {
                black_box(unguarded.answer_open(black_box(q)));
            }
        })
    });
    group.bench_function("guarded_no_faults", |b| {
        b.iter(|| {
            for q in &qs {
                black_box(guarded.answer_open(black_box(q)));
            }
        })
    });
    group.bench_function("guarded_fault_storm", |b| {
        b.iter(|| {
            for q in &qs {
                black_box(storm.answer_open(black_box(q)));
            }
        })
    });
    group.finish();

    // Direct overhead readout for the acceptance target.
    let time = |system: &RagSystem| {
        let rounds = 10;
        let start = Instant::now();
        for _ in 0..rounds {
            for q in &qs {
                black_box(system.answer_open(black_box(q)));
            }
        }
        start.elapsed().as_secs_f64() / rounds as f64
    };
    // Warm both paths once, then measure.
    time(&unguarded);
    time(&guarded);
    let base = time(&unguarded);
    let with_guards = time(&guarded);
    let overhead = 100.0 * (with_guards - base) / base;
    println!(
        "\n=== resilience overhead ===\nunguarded        {:.3} ms/batch\nguarded (clean)  {:.3} ms/batch\noverhead         {overhead:+.2}% (target < 5%)",
        1e3 * base,
        1e3 * with_guards,
    );
    if let Some(counters) = storm.fallback_counters() {
        let parts: Vec<String> = counters.iter().map(|(l, n)| format!("{l}={n}")).collect();
        if parts.is_empty() {
            println!("storm fallbacks  none (all faults absorbed by retries)");
        } else {
            println!("storm fallbacks  {}", parts.join(" "));
        }
    }
}

criterion_group! {
    name = fault_resilience;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_serving
}
criterion_main!(fault_resilience);
