//! **Tables VIII & IX** — scalability on the TriviaQA-analog corpus under
//! 1x / 5x / 10x concurrency, for the GPT-4o-mini analog (Table VIII) and
//! the UnifiedQA-3B analog (Table IX).
//!
//! Paper shape to reproduce: memory grows mildly with concurrency (≈27% at
//! 10x); vector-database build and segmentation are one-time costs
//! independent of concurrency; retrieval latency rises slightly under
//! load; feedback/answer latency stays flat (model-bound); SAGE keeps the
//! best F1 at every concurrency level.

use sage::core::scalability::{run_cell, ScalMethod};
use sage::corpus::datasets::triviaqa;
use sage::prelude::*;
use sage_bench::{header, mb, models, secs, sizes};

fn main() {
    let models = models();
    let dataset = triviaqa::generate(sizes::triviaqa());
    println!(
        "[bench] TriviaQA-analog corpus: {} docs, {} questions, {} tokens",
        dataset.documents.len(),
        dataset.tasks.len(),
        dataset.corpus_tokens()
    );

    for (table, profile) in
        [("Table VIII (GPT-4o-mini sim)", LlmProfile::gpt4o_mini()), ("Table IX (UnifiedQA-3B sim)", LlmProfile::unifiedqa_3b())]
    {
        header(
            &format!("{table}: scalability on TriviaQA"),
            &format!(
                "{:<22} {:>10} {:>10} {:>9} {:>20} {:>10} {:>9} {:>9} {:>7}",
                "Method", "Host mem", "GPU mem", "Build DB", "Segmentation", "Retrieval",
                "Feedback", "Answer", "F1"
            ),
        );
        let cells: [(ScalMethod, usize); 6] = [
            (ScalMethod::NaiveRag, 1),
            (ScalMethod::Bm25NaiveRag, 1),
            (ScalMethod::Bm25Sage, 1),
            (ScalMethod::Sage, 1),
            (ScalMethod::Sage, 5),
            (ScalMethod::Sage, 10),
        ];
        for (method, concurrency) in cells {
            let row = run_cell(method, models, profile, &dataset, concurrency);
            let label = if concurrency == 1 {
                row.method.to_string()
            } else {
                format!("{} ({}x)", row.method, concurrency)
            };
            println!(
                "{label:<22} {:>10} {:>10} {:>9} {:>9} ({:>6.0} tok/s) {:>10} {:>9} {:>9} {:>6.3}",
                mb(row.host_memory_bytes),
                mb(row.gpu_memory_bytes),
                secs(row.build_db_latency),
                secs(row.segmentation_latency),
                row.segmentation_tokens_per_s,
                secs(row.retrieval_latency),
                secs(row.feedback_latency),
                secs(row.answer_latency),
                row.f1
            );
        }
    }
    println!("\nExpected shape: SAGE best F1; offline phases constant; memory grows mildly.");
}
