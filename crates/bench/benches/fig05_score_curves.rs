//! **Figure 5** — the reranker's sorted relevance-score curves for two
//! question types: a focused factoid question (sharp drop after the
//! relevant chunks) and a broad elimination question (flat high region,
//! then the drop). These are the curves gradient selection (Algorithm 2)
//! cuts at.

use sage::core::case_studies::{missing_retrieval_sweep, noisy_retrieval_sweep};
use sage::prelude::*;
use sage_bench::{header, models};

fn ascii_curve(scores: &[f32]) -> String {
    scores
        .iter()
        .map(|s| match (s * 10.0) as u32 {
            0 => '_',
            1..=3 => '.',
            4..=6 => 'o',
            _ => '#',
        })
        .collect()
}

fn main() {
    let models = models();
    let profile = LlmProfile::gpt4o_mini();

    header("Figure 5: relevance-score curves of retrieved chunks", "rank: 1 → N");

    let focused = noisy_retrieval_sweep(models, profile);
    println!("\nArticle-1 (focused question): {}", focused.question);
    println!("  scores: {:?}", focused.score_curve.iter().map(|s| (s * 1000.0).round() / 1000.0).collect::<Vec<_>>());
    println!("  curve:  [{}]  (sharp drop — select the head)", ascii_curve(&focused.score_curve));
    println!("  SAGE selected {} chunks, correct: {}", focused.sage_selected, focused.sage_correct);

    let broad = missing_retrieval_sweep(models, LlmProfile::gpt4());
    println!("\nArticle-2 (elimination question): {}", broad.question);
    println!("  scores: {:?}", broad.score_curve.iter().map(|s| (s * 1000.0).round() / 1000.0).collect::<Vec<_>>());
    println!("  curve:  [{}]  (flat high region — select many)", ascii_curve(&broad.score_curve));
    println!("  SAGE selected {} chunks, correct: {}", broad.sage_selected, broad.sage_correct);

    println!("\nExpected shape: focused question cliff-then-noise; broad question wide plateau.");
}
