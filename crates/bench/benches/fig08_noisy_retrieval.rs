//! **Figure 8** — the noisy-retrieval case study: sweep a fixed K from 1
//! to 15 on a question whose document contains many conflicting
//! same-relation distractors, and watch the reader drift from the correct
//! answer to the distractor-supported one; SAGE's gradient selection stays
//! on the target.

use sage::core::case_studies::noisy_retrieval_sweep;
use sage::prelude::*;
use sage_bench::{header, models};

fn main() {
    let models = models();
    // The weaker reader makes the noise effect visible, as in the paper's
    // case study.
    let cs = noisy_retrieval_sweep(models, LlmProfile::gpt35_turbo());

    header("Figure 8: a case of noisy retrieval", "");
    println!("Question: {}", cs.question);
    println!("Options:  {:?} (correct: {})\n", cs.options, cs.options[cs.correct_option]);
    println!("{:<5} {:<14} {}", "K", "picked", "outcome");
    for p in &cs.sweep {
        println!(
            "{:<5} {:<14} {}",
            p.k,
            cs.options[p.picked],
            if p.correct { "correct" } else { "WRONG (noise)" }
        );
    }
    println!(
        "\nSAGE (gradient selection): selected {} chunks → {}",
        cs.sage_selected,
        if cs.sage_correct { "correct" } else { "wrong" }
    );
    println!("\nExpected shape: correct at small K, wrong answers appearing at large K;");
    println!("SAGE selects few chunks and stays correct.");
}
