//! **Table IV** — module ablation on NarrativeQA (GPT-4o-mini analog):
//! Naive RAG, Naive + each SAGE module alone, and full SAGE.
//!
//! Paper shape: every single module improves over Naive RAG, and full SAGE
//! beats each single-module variant ("the three modules do not negatively
//! affect each other").

use sage::corpus::datasets::narrativeqa;
use sage::prelude::*;
use sage_bench::{header, models, pct, sizes};

fn main() {
    let models = models();
    let dataset = narrativeqa::generate(sizes::narrativeqa());
    let profile = LlmProfile::gpt4o_mini();
    let kind = RetrieverKind::OpenAiSim;

    let rows: [(&str, Method); 5] = [
        ("Naive RAG", Method::NaiveRag(kind)),
        ("Naive RAG with Segmentation", Method::Custom(kind, SageConfig::naive_with_segmentation())),
        ("Naive RAG with Selection", Method::Custom(kind, SageConfig::naive_with_selection())),
        ("Naive RAG with Feedback", Method::Custom(kind, SageConfig::naive_with_feedback())),
        ("SAGE", Method::Sage(kind)),
    ];

    header(
        "Table IV: ablation on NarrativeQA (GPT-4o-mini sim)",
        &format!("{:<30} {:>8} {:>8} {:>8} {:>8}", "Model", "ROUGE", "BLEU-1", "BLEU-4", "METEOR"),
    );
    for (label, method) in rows {
        let s = evaluate(method, models, profile, &dataset);
        println!(
            "{label:<30} {:>8} {:>8} {:>8} {:>8}",
            pct(s.rouge),
            pct(s.bleu1),
            pct(s.bleu4),
            pct(s.meteor)
        );
    }
    println!("\nExpected shape: each module ≥ Naive RAG; full SAGE at the top.");
}
