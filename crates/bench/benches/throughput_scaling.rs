//! Scatter-gather serving throughput across shard counts.
//!
//! The shard layer's perf contract is that fan-out is cheap: each shard
//! holds a 1/N slice of the corpus, every probe scans only its slice, and
//! the deterministic merge is O(total hits) — so serving a query through
//! N shards on one core costs about what the unsharded scan costs, plus a
//! small per-shard dispatch overhead. This bench measures the retrieval
//! prelude (embed → scatter/dense search → rerank pool) end to end at
//! 1/2/4/8 shards on the same corpus and asserts the overhead bound
//! directly; the per-shard scan times it records are also the numbers a
//! real multi-machine deployment would overlap, so the JSON series doubles
//! as the scaling trajectory for ROADMAP perf tracking.
//!
//! The second series measures the cross-query slot scheduler: a batch of
//! questions runs through `profile_batch`, which executes every slot
//! sequentially (results unchanged on any host) while attributing each
//! measured slot duration to the worker the deterministic policy assigned.
//! Modeled throughput is `batch / critical_path` — the makespan the same
//! schedule would have on a real N-worker host — so single-core CI can
//! still assert the scheduler's scaling contract: ≥2x the single-worker
//! QPS at 4 workers, with byte-identical answers at every worker count.
//!
//! Besides the Criterion cells, the run emits `BENCH_throughput.json`
//! (one object per shard count: measured QPS, µs/query, and the shard
//! fan-out it resolved; then one object per worker count: modeled QPS and
//! speedup over one worker) for machine-readable regression tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sage::corpus::datasets::{quality, SizeConfig};
use sage::prelude::*;
use std::hint::black_box;
use std::time::Instant;

/// Shard counts the same corpus and question mix are measured against.
const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];
/// Virtual worker counts the slot scheduler's schedule is profiled at.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Queries per timed JSON-series measurement.
const ROUNDS: usize = 160;
/// In-flight queries per scheduled batch in the worker series.
const BATCH: usize = 16;

fn build_inputs() -> (RagSystem, Vec<String>) {
    let ds = quality::generate(SizeConfig { num_docs: 4, questions_per_doc: 4, seed: 0x5CA7 });
    let corpus: Vec<String> = ds.documents.iter().map(|d| d.text()).collect();
    let questions: Vec<String> = ds.tasks.iter().map(|t| t.item.question.clone()).collect();
    let system = RagSystem::build(
        sage_bench::models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &corpus,
    );
    (system, questions)
}

fn bench_shard_throughput(c: &mut Criterion) {
    let (mut system, questions) = build_inputs();
    let mut group = c.benchmark_group("shard_throughput");
    for &n in &SHARD_COUNTS {
        if n == 1 {
            system.disable_sharding();
        } else {
            system.enable_sharding(n, None);
        }
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new("shards", n), &n, |b, _| {
            b.iter(|| {
                let q = &questions[i % questions.len()];
                i += 1;
                black_box(system.candidates(q));
            })
        });
    }
    group.finish();

    // Direct QPS readout + the JSON series.
    let mut rows = Vec::new();
    let mut qps_series = Vec::new();
    for &n in &SHARD_COUNTS {
        if n == 1 {
            system.disable_sharding();
        } else {
            system.enable_sharding(n, None);
        }
        let quorum = system.shard_fanout().map_or(1, |f| f.quorum);
        // Warm up once so the first timed query pays no cold caches.
        black_box(system.candidates(&questions[0]));
        let start = Instant::now();
        for i in 0..ROUNDS {
            black_box(system.candidates(&questions[i % questions.len()]));
        }
        let secs = start.elapsed().as_secs_f64();
        let qps = ROUNDS as f64 / secs.max(1e-9);
        let us = secs * 1e6 / ROUNDS as f64;
        println!("shard throughput: {n} shard(s) (quorum {quorum}) -> {qps:9.1} qps ({us:8.1} us/query)");
        qps_series.push(qps);
        rows.push(format!(
            "{{\"shards\": {n}, \"quorum\": {quorum}, \"qps\": {qps:.1}, \"us_per_query\": {us:.1}}}"
        ));
    }
    // Cross-query scheduler series: profile the same batch at each worker
    // count. Results must be byte-identical (the schedule is invisible in
    // the outputs); only the modeled makespan may move.
    system.disable_sharding();
    let batch: Vec<String> =
        (0..BATCH).map(|i| questions[i % questions.len()].clone()).collect();
    let mut baseline_answers: Option<Vec<String>> = None;
    let mut worker_qps = Vec::new();
    for &workers in &WORKER_COUNTS {
        // Warm up one profiled batch, then accumulate critical-path time
        // over enough batches to cover ROUNDS queries.
        black_box(system.profile_batch(&batch, workers));
        let reps = ROUNDS.div_ceil(BATCH);
        let mut critical = std::time::Duration::ZERO;
        let mut answers = Vec::new();
        for _ in 0..reps {
            let (results, stats) = system.profile_batch(&batch, workers);
            critical += stats.critical_path();
            answers = results
                .into_iter()
                .map(|r| match r {
                    Ok(q) => q.answer.text,
                    Err(e) => format!("err|{e:?}"),
                })
                .collect();
        }
        match &baseline_answers {
            None => baseline_answers = Some(answers),
            Some(base) => assert_eq!(
                base, &answers,
                "scheduler results diverged between 1 and {workers} workers"
            ),
        }
        let secs = critical.as_secs_f64();
        let queries = (reps * BATCH) as f64;
        let qps = queries / secs.max(1e-9);
        worker_qps.push(qps);
        let speedup = qps / worker_qps[0].max(1e-9);
        println!(
            "scheduler throughput: {workers} worker(s) -> {qps:9.1} modeled qps ({speedup:.2}x)"
        );
        rows.push(format!(
            "{{\"workers\": {workers}, \"qps\": {qps:.1}, \"speedup\": {speedup:.2}}}"
        ));
    }

    let json = format!("[\n  {}\n]\n", rows.join(",\n  "));
    std::fs::write("BENCH_throughput.json", &json).expect("write BENCH_throughput.json");
    println!("wrote BENCH_throughput.json");

    // Acceptance: the deterministic schedule must overlap same-stage work
    // well enough that 4 modeled workers at least double the single-worker
    // throughput on the same batch.
    let speedup_at_4 = worker_qps[2] / worker_qps[0].max(1e-9);
    println!("scheduler scaling: {speedup_at_4:.2}x modeled speedup at 4 workers");
    assert!(
        speedup_at_4 >= 2.0,
        "scheduler does not scale: {speedup_at_4:.2}x modeled speedup at 4 workers (need >= 2.0)"
    );

    // Acceptance: fanning the exact partition out across 8 shards on one
    // core must cost little more than the unsharded scan — each shard
    // scans 1/N of the vectors, so only dispatch overhead can grow.
    let (unsharded, widest) = (qps_series[0], qps_series[SHARD_COUNTS.len() - 1]);
    let slowdown = unsharded / widest.max(1e-9);
    println!(
        "fan-out overhead: {unsharded:.1} qps @ 1 shard vs {widest:.1} qps @ {} shards = {slowdown:.2}x",
        SHARD_COUNTS[SHARD_COUNTS.len() - 1]
    );
    assert!(
        slowdown < 3.0,
        "shard fan-out is not cheap: {slowdown:.2}x slowdown at {} shards",
        SHARD_COUNTS[SHARD_COUNTS.len() - 1]
    );
}

criterion_group! {
    name = throughput_scaling;
    config = Criterion::default().sample_size(10);
    targets = bench_shard_throughput
}
criterion_main!(throughput_scaling);
