//! Scatter-gather serving throughput across shard counts.
//!
//! The shard layer's perf contract is that fan-out is cheap: each shard
//! holds a 1/N slice of the corpus, every probe scans only its slice, and
//! the deterministic merge is O(total hits) — so serving a query through
//! N shards on one core costs about what the unsharded scan costs, plus a
//! small per-shard dispatch overhead. This bench measures the retrieval
//! prelude (embed → scatter/dense search → rerank pool) end to end at
//! 1/2/4/8 shards on the same corpus and asserts the overhead bound
//! directly; the per-shard scan times it records are also the numbers a
//! real multi-machine deployment would overlap, so the JSON series doubles
//! as the scaling trajectory for ROADMAP perf tracking.
//!
//! Besides the Criterion cells, the run emits `BENCH_throughput.json`
//! (one object per shard count: measured QPS, µs/query, and the shard
//! fan-out it resolved) for machine-readable regression tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sage::corpus::datasets::{quality, SizeConfig};
use sage::prelude::*;
use std::hint::black_box;
use std::time::Instant;

/// Shard counts the same corpus and question mix are measured against.
const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];
/// Queries per timed JSON-series measurement.
const ROUNDS: usize = 160;

fn build_inputs() -> (RagSystem, Vec<String>) {
    let ds = quality::generate(SizeConfig { num_docs: 4, questions_per_doc: 4, seed: 0x5CA7 });
    let corpus: Vec<String> = ds.documents.iter().map(|d| d.text()).collect();
    let questions: Vec<String> = ds.tasks.iter().map(|t| t.item.question.clone()).collect();
    let system = RagSystem::build(
        sage_bench::models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &corpus,
    );
    (system, questions)
}

fn bench_shard_throughput(c: &mut Criterion) {
    let (mut system, questions) = build_inputs();
    let mut group = c.benchmark_group("shard_throughput");
    for &n in &SHARD_COUNTS {
        if n == 1 {
            system.disable_sharding();
        } else {
            system.enable_sharding(n, None);
        }
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new("shards", n), &n, |b, _| {
            b.iter(|| {
                let q = &questions[i % questions.len()];
                i += 1;
                black_box(system.candidates(q));
            })
        });
    }
    group.finish();

    // Direct QPS readout + the JSON series.
    let mut rows = Vec::new();
    let mut qps_series = Vec::new();
    for &n in &SHARD_COUNTS {
        if n == 1 {
            system.disable_sharding();
        } else {
            system.enable_sharding(n, None);
        }
        let quorum = system.shard_fanout().map_or(1, |f| f.quorum);
        // Warm up once so the first timed query pays no cold caches.
        black_box(system.candidates(&questions[0]));
        let start = Instant::now();
        for i in 0..ROUNDS {
            black_box(system.candidates(&questions[i % questions.len()]));
        }
        let secs = start.elapsed().as_secs_f64();
        let qps = ROUNDS as f64 / secs.max(1e-9);
        let us = secs * 1e6 / ROUNDS as f64;
        println!("shard throughput: {n} shard(s) (quorum {quorum}) -> {qps:9.1} qps ({us:8.1} us/query)");
        qps_series.push(qps);
        rows.push(format!(
            "{{\"shards\": {n}, \"quorum\": {quorum}, \"qps\": {qps:.1}, \"us_per_query\": {us:.1}}}"
        ));
    }
    let json = format!("[\n  {}\n]\n", rows.join(",\n  "));
    std::fs::write("BENCH_throughput.json", &json).expect("write BENCH_throughput.json");
    println!("wrote BENCH_throughput.json");

    // Acceptance: fanning the exact partition out across 8 shards on one
    // core must cost little more than the unsharded scan — each shard
    // scans 1/N of the vectors, so only dispatch overhead can grow.
    let (unsharded, widest) = (qps_series[0], qps_series[SHARD_COUNTS.len() - 1]);
    let slowdown = unsharded / widest.max(1e-9);
    println!(
        "fan-out overhead: {unsharded:.1} qps @ 1 shard vs {widest:.1} qps @ {} shards = {slowdown:.2}x",
        SHARD_COUNTS[SHARD_COUNTS.len() - 1]
    );
    assert!(
        slowdown < 3.0,
        "shard fan-out is not cheap: {slowdown:.2}x slowdown at {} shards",
        SHARD_COUNTS[SHARD_COUNTS.len() - 1]
    );
}

criterion_group! {
    name = throughput_scaling;
    config = Criterion::default().sample_size(10);
    targets = bench_shard_throughput
}
criterion_main!(throughput_scaling);
