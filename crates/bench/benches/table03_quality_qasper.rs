//! **Table III** — effectiveness on QuALITY (accuracy) and QASPER
//! (F1-Match) with the GPT-4o-mini analog: every retriever with and
//! without SAGE.
//!
//! Paper shape: +2.88% average accuracy on QuALITY, +6.79% average F1 on
//! QASPER — SAGE helps on both, with the larger relative gain on the
//! open-ended dataset.

use sage::corpus::datasets::{qasper, quality};
use sage::prelude::*;
use sage_bench::{header, models, pct, sizes};

fn main() {
    let models = models();
    let quality_ds = quality::generate(sizes::quality());
    let qasper_ds = qasper::generate(sizes::qasper());
    let profile = LlmProfile::gpt4o_mini();

    header(
        "Table III: QuALITY accuracy & QASPER F1-Match (GPT-4o-mini sim)",
        &format!(
            "{:<34} {:>18} {:>18}",
            "Model", "Accuracy (QuALITY)", "F1-Match (QASPER)"
        ),
    );
    for kind in RetrieverKind::all() {
        for (with_sage, label) in [
            (true, format!("{} with SAGE", kind.label())),
            (false, format!("{} without SAGE", kind.label())),
        ] {
            let method = if with_sage { Method::Sage(kind) } else { Method::NaiveRag(kind) };
            let q = evaluate(method, models, profile, &quality_ds);
            let p = evaluate(method, models, profile, &qasper_ds);
            println!("{label:<34} {:>18} {:>18}", pct(q.accuracy), pct(p.f1));
        }
    }
    println!("\nExpected shape: SAGE lifts every retriever on both datasets.");
}
