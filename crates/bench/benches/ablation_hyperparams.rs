//! **Hyper-parameter sensitivity** — the design choices DESIGN.md calls
//! out: segmentation threshold `ss`, gradient threshold `g`, and initial
//! `min_k`, each swept around the paper's defaults (0.55 / 0.3 / 7) on the
//! QuALITY analog. Reports accuracy and mean generation-input tokens so
//! both sides of the precision/recall trade-off are visible.

use sage::corpus::datasets::quality;
use sage::prelude::*;
use sage_bench::{header, models, pct};

fn run(models: &TrainedModels, dataset: &sage::prelude::Dataset, cfg: SageConfig) -> (f32, u64) {
    let s = evaluate(
        Method::Custom(RetrieverKind::OpenAiSim, cfg),
        models,
        LlmProfile::gpt4o_mini(),
        dataset,
    );
    (s.accuracy, s.cost.total_tokens() / s.n.max(1) as u64)
}

fn main() {
    let models = models();
    // Smaller than the table benches: this sweep runs 13 full evaluations.
    let dataset = quality::generate(SizeConfig { num_docs: 8, questions_per_doc: 4, seed: 0xAB1 });
    let base = SageConfig { use_feedback: false, ..SageConfig::sage() };

    header(
        "Sensitivity: segmentation threshold ss (paper default 0.55)",
        &format!("{:<10} {:>10} {:>16}", "ss", "Accuracy", "tokens/question"),
    );
    for ss in [0.2f32, 0.4, 0.55, 0.7, 0.9] {
        let (acc, tok) = run(models, &dataset, SageConfig { segmentation_threshold: ss, ..base });
        println!("{ss:<10} {:>10} {tok:>16}", pct(acc));
    }

    header(
        "Sensitivity: gradient threshold g (paper default 0.3)",
        &format!("{:<10} {:>10} {:>16}", "g", "Accuracy", "tokens/question"),
    );
    for g in [0.05f32, 0.3, 0.6, 0.9] {
        let (acc, tok) = run(models, &dataset, SageConfig { gradient: g, ..base });
        println!("{g:<10} {:>10} {tok:>16}", pct(acc));
    }

    header(
        "Sensitivity: initial min_k (paper default 7)",
        &format!("{:<10} {:>10} {:>16}", "min_k", "Accuracy", "tokens/question"),
    );
    for min_k in [1usize, 3, 7, 12] {
        let (acc, tok) = run(models, &dataset, SageConfig { min_k, ..base });
        println!("{min_k:<10} {:>10} {tok:>16}", pct(acc));
    }

    println!("\nExpected shape: accuracy is flat near the paper defaults (the gradient rule");
    println!("makes selection robust to min_k), token cost grows with min_k and with");
    println!("looser thresholds; extreme ss under- or over-segments and loses accuracy.");
}
