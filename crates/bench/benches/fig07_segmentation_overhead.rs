//! **Figure 7** — segmentation overhead and cost: our segmentation model
//! vs GPT-4-as-segmenter on one article each from the QuALITY,
//! NarrativeQA, and QASPER analogs.
//!
//! The SAGE side is *measured* on this machine and priced at the paper's
//! rented-RTX3090 rate ($5.30/day); the GPT-4 side is priced with Eq. 1 at
//! $10/M input + $30/M output and timed at GPT-4 generation speed.
//!
//! Paper shape: the model saves ≈90% time and ≈99.7% money on every
//! dataset.

use sage::corpus::datasets::{narrativeqa, qasper, quality};
use sage::llm::LlmSegmenter;
use sage::prelude::*;
use sage::segment::SemanticSegmenter;
use sage_bench::{header, models, sizes};
use std::time::Instant;

fn main() {
    let models = models();
    let gpt4_prices = PriceTable::gpt4();
    let rtx3090_per_second = 5.3 / (24.0 * 3600.0);

    let articles = [
        ("QuALITY", quality::generate(sizes::quality()).documents[0].text()),
        ("NarrativeQA", narrativeqa::generate(sizes::narrativeqa()).documents[0].text()),
        ("QASPER", qasper::generate(sizes::qasper()).documents[0].text()),
    ];

    header(
        "Figure 7: segmentation overhead — SAGE model vs GPT-4",
        &format!(
            "{:<12} {:>9} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10}",
            "Article", "tokens", "SAGE time", "GPT-4 time", "SAGE cost", "GPT-4 cost",
            "time -", "money -"
        ),
    );
    for (name, text) in articles {
        let tokens = sage::text::count_tokens(&text);
        // SAGE: measured wall time (averaged over repeats for stability).
        let segmenter = SemanticSegmenter::new(models.segmentation.clone());
        let reps = 20;
        let start = Instant::now();
        for _ in 0..reps {
            let _ = segmenter.segment(&text);
        }
        let sage_time = start.elapsed() / reps;
        let sage_cost = sage_time.as_secs_f64() * rtx3090_per_second;

        // GPT-4: simulated latency + Eq.1 cost.
        let llm_seg = LlmSegmenter::new(LlmProfile::gpt4());
        let (_, cost, gpt4_time) = llm_seg.segment(&text);
        let gpt4_cost = cost.dollars(gpt4_prices);

        let time_saved = 1.0 - sage_time.as_secs_f64() / gpt4_time.as_secs_f64();
        let money_saved = 1.0 - sage_cost / gpt4_cost;
        println!(
            "{name:<12} {tokens:>9} {:>11.4}s {:>11.1}s {:>12} {:>12} {:>9.2}% {:>9.2}%",
            sage_time.as_secs_f64(),
            gpt4_time.as_secs_f64(),
            format!("${sage_cost:.7}"),
            format!("${gpt4_cost:.4}"),
            100.0 * time_saved,
            100.0 * money_saved,
        );
    }
    println!("\nExpected shape: ≥90% time saved and ≥99% money saved on every article.");
}
