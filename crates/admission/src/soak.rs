//! Seeded open-loop arrival process for the soak harness.
//!
//! The plan is generated up front as plain data: exponential
//! inter-arrival gaps at a target rate, each arrival tagged with a
//! priority class drawn from configurable weights. The event-driven
//! replay (which needs a built `RagSystem`) lives in `sage-core`; this
//! module owns the part that is pure arithmetic so it can be tested — and
//! reused — without a corpus.

use crate::queue::Priority;
use crate::QueryBudget;
use sage_resilience::DetRng;
use std::time::Duration;

/// Configuration of one soak run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoakConfig {
    /// Seed for arrivals, classes, and the admission queue's drop coin.
    pub seed: u64,
    /// Virtual length of the arrival window.
    pub duration: Duration,
    /// Mean arrival rate (queries per virtual second).
    pub qps: f64,
    /// Admission queue capacity (waiting room).
    pub capacity: usize,
    /// Virtual servers draining the queue — per shard pool when `shards`
    /// is above 1.
    pub concurrency: usize,
    /// Shard fault domains: each shard gets its own pool of `concurrency`
    /// virtual servers, and jobs route to a pool by a stable hash of their
    /// sequence number — so a slow shard queues its own jobs instead of
    /// borrowing capacity from healthy shards. `1` (the default) is the
    /// single-pool model and replays historical logs byte-for-byte.
    pub shards: u32,
    /// Real executor threads driving each virtual-time dispatch wave
    /// through the cross-query slot scheduler. Purely a *how fast does the
    /// harness run* knob: virtual timestamps, logs, and reports are
    /// byte-identical at every value. `0` and `1` both mean the
    /// historical sequential execution path.
    pub exec_workers: usize,
    /// Per-class early-drop ramp starts (see `AdmissionConfig`).
    pub ramp_start: [f64; Priority::COUNT],
    /// Relative class weights `[interactive, batch, background]`.
    pub class_weights: [f64; Priority::COUNT],
    /// Per-query budget; `None` serves every query at full fidelity.
    pub budget: Option<QueryBudget>,
}

impl Default for SoakConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            duration: Duration::from_secs(60),
            qps: 4.0,
            capacity: 8,
            concurrency: 2,
            shards: 1,
            exec_workers: 1,
            ramp_start: [1.0, 0.85, 0.70],
            class_weights: [0.5, 0.3, 0.2],
            budget: Some(QueryBudget::new(Duration::from_secs(8), 4_000)),
        }
    }
}

/// One planned arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual offset from the start of the run.
    pub at: Duration,
    /// Priority class of the query.
    pub class: Priority,
}

/// Generate the deterministic arrival plan for `cfg`: exponential
/// inter-arrival gaps at `cfg.qps`, classes drawn from
/// `cfg.class_weights`, until `cfg.duration` is exhausted. The plan is a
/// pure function of the config.
pub fn arrival_plan(cfg: &SoakConfig) -> Vec<Arrival> {
    let mut rng = DetRng::seed_from_u64(cfg.seed ^ 0x5041_4745_u64);
    let mut plan = Vec::new();
    if cfg.qps <= 0.0 || !cfg.qps.is_finite() {
        return plan;
    }
    let total: f64 = cfg.class_weights.iter().copied().filter(|w| *w > 0.0).sum();
    let mut t = Duration::ZERO;
    loop {
        // Exponential gap via inverse transform; clamp the uniform draw
        // away from 1.0 so ln() stays finite.
        let u = rng.next_f64().min(0.999_999_999);
        let gap = -(1.0 - u).ln() / cfg.qps;
        t += Duration::from_secs_f64(gap);
        if t >= cfg.duration {
            return plan;
        }
        let class = if total > 0.0 {
            let mut roll = rng.next_f64() * total;
            let mut picked = Priority::Interactive;
            for c in Priority::ALL {
                let w = cfg.class_weights[c.idx()].max(0.0);
                picked = c;
                if roll < w {
                    break;
                }
                roll -= w;
            }
            picked
        } else {
            Priority::Interactive
        };
        plan.push(Arrival { at: t, class });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_seed_sensitive() {
        let cfg = SoakConfig::default();
        assert_eq!(arrival_plan(&cfg), arrival_plan(&cfg));
        let other = SoakConfig { seed: 43, ..cfg };
        assert_ne!(arrival_plan(&cfg), arrival_plan(&other));
    }

    #[test]
    fn plan_is_ordered_and_bounded() {
        let cfg = SoakConfig { duration: Duration::from_secs(30), qps: 10.0, ..Default::default() };
        let plan = arrival_plan(&cfg);
        assert!(plan.windows(2).all(|w| w[0].at <= w[1].at), "arrivals must be time-ordered");
        assert!(plan.iter().all(|a| a.at < cfg.duration));
        // 30s at 10 qps: expect ~300 arrivals; allow a wide band.
        assert!(plan.len() > 150 && plan.len() < 600, "got {}", plan.len());
    }

    #[test]
    fn class_weights_are_respected() {
        let cfg = SoakConfig {
            duration: Duration::from_secs(200),
            qps: 10.0,
            class_weights: [0.0, 1.0, 0.0],
            ..Default::default()
        };
        let plan = arrival_plan(&cfg);
        assert!(!plan.is_empty());
        assert!(plan.iter().all(|a| a.class == Priority::Batch));
    }

    #[test]
    fn degenerate_rates_yield_empty_plans() {
        for qps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let cfg = SoakConfig { qps, ..Default::default() };
            assert!(arrival_plan(&cfg).is_empty(), "qps={qps}");
        }
    }
}
