//! # sage-admission
//!
//! Overload robustness for the SAGE serving path: admission control,
//! per-query deadline/token budgets, and the brownout ladder.
//!
//! The ROADMAP's north star is serving heavy traffic; PR 1's resilience
//! layer covers *component failure*, but an overloaded system that accepts
//! unbounded work still falls over instead of degrading. This crate makes
//! overload a first-class, deterministic, testable input:
//!
//! * [`AdmissionQueue`] — a bounded queue with [`Priority`] classes and
//!   deterministic RED-style load shedding. A shed decision is a pure
//!   function of `(seed, admission sequence number, occupancy, class)`, so
//!   the same arrival sequence reproduces the same decisions bit-for-bit.
//! * [`QueryBudget`] + [`BudgetMeter`] — per-query deadline and token
//!   budgets. Time is *virtual*: stages are charged from a deterministic
//!   [`CostModel`] (plus the resilience layer's virtual retry delays), so
//!   budget decisions never read the wall clock and replay identically.
//! * [`BrownoutLevel`] — the brownout ladder the pipeline walks when a
//!   budget runs short: drop feedback rounds → shrink rerank → skip rerank
//!   → flat top-k. The meter only ever *ratchets* the level upward, and
//!   the planner is monotone: a smaller remaining budget never yields a
//!   less-degraded level.
//! * [`SoakConfig`] + [`arrival_plan`] — a seeded open-loop arrival
//!   process (exponential inter-arrivals, weighted priority classes) for
//!   the deterministic soak harness in `sage-core`.
//!
//! Like `sage-resilience` and `sage-telemetry`, this crate has no external
//! dependencies; it reuses the resilience crate's deterministic RNG.

pub mod budget;
pub mod queue;
pub mod soak;

pub use budget::{BrownoutLevel, BudgetMeter, CostModel, PlanStage, QueryBudget};
pub use queue::{AdmissionConfig, AdmissionQueue, Decision, Priority, ShedReason};
pub use soak::{arrival_plan, Arrival, SoakConfig};
