//! Per-query deadline/token budgets and the brownout ladder.
//!
//! ## Determinism
//!
//! A [`BudgetMeter`] never reads the wall clock. Time charges come from a
//! fixed [`CostModel`] (per-stage virtual costs) plus the deterministic
//! virtual delays the resilience layer accumulates for retries, and the
//! simulated LLM's own deterministic latencies where the pipeline chooses
//! to charge them. The same query with the same budget therefore replays
//! the same brownout decisions bit-for-bit, regardless of machine load.
//!
//! ## Monotonicity
//!
//! The planner walks the ladder from the current level upward and stops at
//! the first level whose *estimated remaining cost* fits the remaining
//! budget. Estimates are non-increasing along the ladder by construction,
//! so for a fixed spend a smaller remaining budget can only produce an
//! equal or deeper level — and the level itself only ever ratchets upward
//! within a query. Two properties in `tests/properties.rs` pin this down.

use std::time::Duration;

/// Per-query resource envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryBudget {
    /// Virtual-time deadline for the whole query.
    pub deadline: Duration,
    /// Combined input+output LLM token allowance.
    pub max_tokens: u64,
}

impl QueryBudget {
    /// A budget from explicit parts.
    pub fn new(deadline: Duration, max_tokens: u64) -> Self {
        Self { deadline, max_tokens }
    }

    /// A budget generous enough that a healthy query never browns out
    /// (admission enabled, zero pressure).
    pub fn generous() -> Self {
        Self { deadline: Duration::from_secs(120), max_tokens: 1_000_000 }
    }
}

/// The brownout ladder, least to most degraded. Each level implies every
/// mitigation below it (level 3 also drops feedback, for example).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BrownoutLevel {
    /// Full-fidelity pipeline.
    None,
    /// Skip the self-feedback loop: one read, no judge calls.
    DropFeedback,
    /// Rerank only the top half of the candidate pool.
    ShrinkRerank,
    /// Skip reranking; keep the first-stage retrieval order.
    SkipRerank,
    /// Flat top-`min_k` prefix instead of gradient selection.
    FlatTopK,
}

impl BrownoutLevel {
    /// All levels, ladder order.
    pub const ALL: [BrownoutLevel; 5] = [
        BrownoutLevel::None,
        BrownoutLevel::DropFeedback,
        BrownoutLevel::ShrinkRerank,
        BrownoutLevel::SkipRerank,
        BrownoutLevel::FlatTopK,
    ];

    /// Stable index (ladder position).
    pub fn idx(self) -> usize {
        match self {
            BrownoutLevel::None => 0,
            BrownoutLevel::DropFeedback => 1,
            BrownoutLevel::ShrinkRerank => 2,
            BrownoutLevel::SkipRerank => 3,
            BrownoutLevel::FlatTopK => 4,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            BrownoutLevel::None => "none",
            BrownoutLevel::DropFeedback => "drop-feedback",
            BrownoutLevel::ShrinkRerank => "shrink-rerank",
            BrownoutLevel::SkipRerank => "skip-rerank",
            BrownoutLevel::FlatTopK => "flat-topk",
        }
    }
}

impl std::fmt::Display for BrownoutLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Pipeline checkpoints where the meter replans; each names the work that
/// is still *ahead* of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStage {
    /// Before retrieval: the whole query is ahead.
    Start,
    /// After first-stage retrieval, before reranking.
    Rerank,
    /// After reranking, before selection.
    Select,
    /// After selection, before the reader call.
    Read,
    /// After a read, deciding whether a feedback round is affordable.
    Feedback,
}

/// Deterministic virtual costs of the pipeline stages, used for budget
/// planning. These are *model* values, not measurements: charging the
/// model (rather than per-level actuals) keeps the virtual spend identical
/// across budgets up to each checkpoint, which is what makes the planner
/// monotone in the budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Query embedding.
    pub embed_time: Duration,
    /// Vector-index (or BM25) search.
    pub search_time: Duration,
    /// Cross-scorer cost per question/chunk pair.
    pub rerank_pair_time: Duration,
    /// Gradient selection.
    pub select_time: Duration,
    /// One reader (generation) call.
    pub read_time: Duration,
    /// One feedback round: the judge call plus loop bookkeeping.
    pub feedback_round_time: Duration,
    /// Token estimate of one reader call at full fidelity.
    pub read_tokens: u64,
    /// Token estimate of one feedback judge call.
    pub feedback_round_tokens: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            embed_time: Duration::from_millis(2),
            search_time: Duration::from_millis(3),
            rerank_pair_time: Duration::from_micros(500),
            select_time: Duration::from_micros(100),
            read_time: Duration::from_secs(2),
            feedback_round_time: Duration::from_secs(2),
            read_tokens: 500,
            feedback_round_tokens: 500,
        }
    }
}

impl CostModel {
    /// Estimated rerank cost at `level` over `candidates` candidates. Also
    /// the amount the pipeline charges once the rerank stage runs, so the
    /// plan and the spend agree.
    pub fn rerank_cost(&self, level: BrownoutLevel, candidates: usize) -> Duration {
        let pairs = match level {
            BrownoutLevel::None | BrownoutLevel::DropFeedback => candidates,
            BrownoutLevel::ShrinkRerank => candidates / 2,
            BrownoutLevel::SkipRerank | BrownoutLevel::FlatTopK => 0,
        };
        self.rerank_pair_time * pairs as u32
    }

    /// Model tokens of one reader call at `level` (deeper levels select
    /// smaller contexts). Also the per-read token charge.
    pub fn read_tokens_at(&self, level: BrownoutLevel) -> u64 {
        match level {
            BrownoutLevel::None | BrownoutLevel::DropFeedback => self.read_tokens,
            BrownoutLevel::ShrinkRerank => self.read_tokens * 3 / 4,
            BrownoutLevel::SkipRerank => self.read_tokens * 5 / 8,
            BrownoutLevel::FlatTopK => self.read_tokens / 2,
        }
    }

    /// Estimated feedback-loop cost beyond the first read: `rounds` judge
    /// calls plus the extra read+select of each later round. Zero once the
    /// ladder drops feedback. Including the follow-on read/select makes the
    /// per-round gate telescope exactly against the per-checkpoint charges:
    /// a plan that fits at `Start` keeps fitting at every later checkpoint.
    fn feedback_cost(&self, level: BrownoutLevel, rounds: u32) -> Duration {
        if level >= BrownoutLevel::DropFeedback || rounds == 0 {
            return Duration::ZERO;
        }
        self.feedback_round_time * rounds
            + (self.read_time + self.select_time) * rounds.saturating_sub(1)
    }

    /// Estimated virtual time of everything ahead of `stage` at `level`.
    /// Non-increasing in `level` at every stage.
    pub fn time_from(
        &self,
        stage: PlanStage,
        level: BrownoutLevel,
        candidates: usize,
        rounds: u32,
    ) -> Duration {
        let select = if level >= BrownoutLevel::FlatTopK {
            Duration::ZERO
        } else {
            self.select_time
        };
        let fb = self.feedback_cost(level, rounds);
        match stage {
            PlanStage::Start => {
                self.embed_time
                    + self.search_time
                    + self.rerank_cost(level, candidates)
                    + select
                    + self.read_time
                    + fb
            }
            PlanStage::Rerank => {
                self.rerank_cost(level, candidates) + select + self.read_time + fb
            }
            PlanStage::Select => select + self.read_time + fb,
            PlanStage::Read => self.read_time + fb,
            // Per-round gate: the whole remaining loop must be affordable,
            // not just the next judge call — otherwise a query could pass
            // the gate and strand itself without budget for the read the
            // judge triggers.
            PlanStage::Feedback => self.feedback_cost(level, rounds),
        }
    }

    /// Estimated tokens of everything ahead of `stage` at `level`.
    /// Non-increasing in `level` at every stage (deeper levels select
    /// smaller contexts).
    pub fn tokens_from(
        &self,
        stage: PlanStage,
        level: BrownoutLevel,
        rounds: u32,
    ) -> u64 {
        let read = self.read_tokens_at(level);
        let fb = if level >= BrownoutLevel::DropFeedback || rounds == 0 {
            0
        } else {
            self.feedback_round_tokens * u64::from(rounds)
                + read * u64::from(rounds.saturating_sub(1))
        };
        match stage {
            PlanStage::Start | PlanStage::Rerank | PlanStage::Select => read + fb,
            PlanStage::Read => read + fb,
            // Whole remaining loop, mirroring the time-side gate.
            PlanStage::Feedback => fb,
        }
    }
}

/// Tracks a query's spend against its [`QueryBudget`] and ratchets the
/// [`BrownoutLevel`] as the remainder shrinks.
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    budget: QueryBudget,
    model: CostModel,
    spent_time: Duration,
    spent_tokens: u64,
    level: BrownoutLevel,
}

impl BudgetMeter {
    /// A fresh meter at [`BrownoutLevel::None`].
    pub fn new(budget: QueryBudget, model: CostModel) -> Self {
        Self {
            budget,
            model,
            spent_time: Duration::ZERO,
            spent_tokens: 0,
            level: BrownoutLevel::None,
        }
    }

    /// The budget this meter enforces.
    pub fn budget(&self) -> QueryBudget {
        self.budget
    }

    /// The cost model in use.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Charge virtual time.
    pub fn charge_time(&mut self, d: Duration) {
        self.spent_time += d;
    }

    /// Charge LLM tokens (input + output).
    pub fn charge_tokens(&mut self, n: u64) {
        self.spent_tokens += n;
    }

    /// Virtual time still available.
    pub fn remaining_time(&self) -> Duration {
        self.budget.deadline.saturating_sub(self.spent_time)
    }

    /// Tokens still available.
    pub fn remaining_tokens(&self) -> u64 {
        self.budget.max_tokens.saturating_sub(self.spent_tokens)
    }

    /// Virtual time spent so far.
    pub fn spent_time(&self) -> Duration {
        self.spent_time
    }

    /// Tokens spent so far.
    pub fn spent_tokens(&self) -> u64 {
        self.spent_tokens
    }

    /// The current (ratcheted) brownout level.
    pub fn level(&self) -> BrownoutLevel {
        self.level
    }

    /// Re-plan at a checkpoint: ratchet to the shallowest level — at or
    /// above the current one — whose estimated remaining cost fits the
    /// remaining budget; [`BrownoutLevel::FlatTopK`] if none fits.
    pub fn replan(&mut self, stage: PlanStage, candidates: usize, rounds: u32) -> BrownoutLevel {
        let time_left = self.remaining_time();
        let tokens_left = self.remaining_tokens();
        for level in BrownoutLevel::ALL {
            if level < self.level {
                continue;
            }
            let fits = self.model.time_from(stage, level, candidates, rounds) <= time_left
                && self.model.tokens_from(stage, level, rounds) <= tokens_left;
            if fits {
                self.level = level;
                return level;
            }
        }
        self.level = BrownoutLevel::FlatTopK;
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter(deadline_ms: u64, tokens: u64) -> BudgetMeter {
        BudgetMeter::new(
            QueryBudget::new(Duration::from_millis(deadline_ms), tokens),
            CostModel::default(),
        )
    }

    #[test]
    fn generous_budget_plans_full_fidelity() {
        let mut m = BudgetMeter::new(QueryBudget::generous(), CostModel::default());
        assert_eq!(m.replan(PlanStage::Start, 32, 3), BrownoutLevel::None);
    }

    #[test]
    fn tight_deadline_walks_the_ladder() {
        // Full fidelity with 3 rounds estimates ~2s(read) + 3*2s(fb) +
        // 2*2s(extra reads) ≈ 12s; drop-feedback ≈ 2s; flat ≈ 2s.
        assert_eq!(meter(60_000, u64::MAX).replan(PlanStage::Start, 32, 3), BrownoutLevel::None);
        assert_eq!(
            meter(5_000, u64::MAX).replan(PlanStage::Start, 32, 3),
            BrownoutLevel::DropFeedback
        );
        assert_eq!(
            meter(500, u64::MAX).replan(PlanStage::Start, 32, 3),
            BrownoutLevel::FlatTopK,
            "deadline below one read bottoms out the ladder"
        );
    }

    #[test]
    fn token_budget_alone_can_drop_feedback() {
        // 3 rounds ≈ 500 + 3*500 + 2*500 = 3000 tokens; one read ≈ 500.
        let mut m = meter(600_000, 1_000);
        assert_eq!(m.replan(PlanStage::Start, 32, 3), BrownoutLevel::DropFeedback);
    }

    #[test]
    fn level_only_ratchets_upward() {
        let mut m = meter(5_000, u64::MAX);
        assert_eq!(m.replan(PlanStage::Start, 32, 3), BrownoutLevel::DropFeedback);
        // Budget is still fine for a single read at every later stage; the
        // level must not fall back to None.
        assert_eq!(m.replan(PlanStage::Read, 32, 3), BrownoutLevel::DropFeedback);
        m.charge_time(Duration::from_secs(4));
        assert!(m.replan(PlanStage::Read, 32, 3) >= BrownoutLevel::DropFeedback);
    }

    #[test]
    fn estimates_are_non_increasing_along_the_ladder() {
        let model = CostModel::default();
        for stage in [
            PlanStage::Start,
            PlanStage::Rerank,
            PlanStage::Select,
            PlanStage::Read,
            PlanStage::Feedback,
        ] {
            for pair in BrownoutLevel::ALL.windows(2) {
                assert!(
                    model.time_from(stage, pair[1], 32, 3)
                        <= model.time_from(stage, pair[0], 32, 3),
                    "time estimate must not grow from {:?} to {:?} at {stage:?}",
                    pair[0],
                    pair[1]
                );
                assert!(
                    model.tokens_from(stage, pair[1], 3) <= model.tokens_from(stage, pair[0], 3),
                    "token estimate must not grow from {:?} to {:?} at {stage:?}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn planner_is_monotone_in_the_budget() {
        // Denser grid than the property test, but same claim: a smaller
        // budget never plans a shallower level.
        let mut grid: Vec<(u64, u64)> = Vec::new();
        for ms in [100, 1_000, 2_500, 4_000, 6_000, 9_000, 15_000, 60_000] {
            for tok in [100, 600, 1_500, 2_500, 5_000, 50_000] {
                grid.push((ms, tok));
            }
        }
        for &(ms_a, tok_a) in &grid {
            for &(ms_b, tok_b) in &grid {
                if ms_a <= ms_b && tok_a <= tok_b {
                    let a = meter(ms_a, tok_a).replan(PlanStage::Start, 32, 3);
                    let b = meter(ms_b, tok_b).replan(PlanStage::Start, 32, 3);
                    assert!(
                        a >= b,
                        "budget ({ms_a}ms,{tok_a}tok) planned {a:?}, \
                         larger ({ms_b}ms,{tok_b}tok) planned {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn charges_accumulate_and_saturate() {
        let mut m = meter(1_000, 100);
        m.charge_time(Duration::from_millis(400));
        m.charge_tokens(40);
        assert_eq!(m.remaining_time(), Duration::from_millis(600));
        assert_eq!(m.remaining_tokens(), 60);
        m.charge_time(Duration::from_secs(5));
        m.charge_tokens(1_000);
        assert_eq!(m.remaining_time(), Duration::ZERO);
        assert_eq!(m.remaining_tokens(), 0);
        assert_eq!(m.spent_tokens(), 1_040);
    }
}
