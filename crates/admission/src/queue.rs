//! Bounded admission queue with priority classes and deterministic
//! RED-style load shedding.
//!
//! The queue tracks *occupancy*, not payloads: callers ask for admission,
//! hold a slot while their query is in flight (or waiting), and release it
//! when done. Decisions are a pure function of
//! `(seed, admission sequence number, occupancy, priority class)` — no
//! wall clock, no thread identity — so a fixed arrival sequence replays
//! the same admit/shed log bit-for-bit.

use sage_resilience::DetRng;

/// Priority class of a query, in descending order of protection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// User-facing requests: shed only when the queue is hard-full.
    Interactive,
    /// Bulk API traffic ([`answer_batch`-style]): sheds earlier.
    Batch,
    /// Best-effort maintenance traffic: first to go under pressure.
    Background,
}

impl Priority {
    /// Number of priority classes (stable counter layout).
    pub const COUNT: usize = 3;

    /// All classes, most protected first.
    pub const ALL: [Priority; Priority::COUNT] =
        [Priority::Interactive, Priority::Batch, Priority::Background];

    /// Stable index into per-class arrays.
    pub fn idx(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
            Priority::Background => 2,
        }
    }

    /// Display label (also the Prometheus `class` label value).
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::Background => "background",
        }
    }

    /// Parse a class label (as accepted on CLI flags).
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "interactive" => Some(Priority::Interactive),
            "batch" => Some(Priority::Batch),
            "background" => Some(Priority::Background),
            _ => None,
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a query was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Occupancy reached capacity: hard shed, all classes.
    QueueFull,
    /// The class's early-drop ramp fired below capacity (RED-style).
    EarlyDrop,
}

impl ShedReason {
    /// Display label for logs.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::EarlyDrop => "early-drop",
        }
    }
}

/// Outcome of one admission request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The query holds a queue slot; call [`AdmissionQueue::release`] when
    /// it finishes (or starts service, if the queue models waiting only).
    Admitted,
    /// The query was refused and must not run.
    Shed(ShedReason),
}

/// Configuration of an [`AdmissionQueue`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Maximum concurrent slots; occupancy at capacity sheds everything.
    pub capacity: usize,
    /// Seed of the deterministic early-drop coin.
    pub seed: u64,
    /// Per-class occupancy fraction where the early-drop ramp starts
    /// (indexed by [`Priority::idx`]). `>= 1.0` disables early drop for
    /// that class, leaving only the hard-full shed.
    pub ramp_start: [f64; Priority::COUNT],
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        // Interactive traffic is never early-dropped; batch and background
        // start shedding probabilistically at 85% / 70% occupancy.
        Self { capacity: 64, seed: 0, ramp_start: [1.0, 0.85, 0.70] }
    }
}

/// Bounded admission queue; see the module docs for the determinism
/// contract. Not internally synchronised — callers that admit from
/// multiple threads must serialise access (decision order is part of the
/// deterministic input).
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    config: AdmissionConfig,
    depth: usize,
    seq: u64,
    admitted: u64,
    shed: [u64; Priority::COUNT],
}

impl AdmissionQueue {
    /// An empty queue.
    pub fn new(config: AdmissionConfig) -> Self {
        Self { config, depth: 0, seq: 0, admitted: 0, shed: [0; Priority::COUNT] }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Current occupancy (admitted and not yet released).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Occupancy as a fraction of capacity.
    pub fn occupancy(&self) -> f64 {
        if self.config.capacity == 0 {
            1.0
        } else {
            self.depth as f64 / self.config.capacity as f64
        }
    }

    /// Request admission for one query of class `class`. On `Admitted` the
    /// query holds a slot until [`release`](AdmissionQueue::release).
    pub fn admit(&mut self, class: Priority) -> Decision {
        self.seq += 1;
        if self.depth >= self.config.capacity {
            self.shed[class.idx()] += 1;
            return Decision::Shed(ShedReason::QueueFull);
        }
        let start = self.config.ramp_start[class.idx()];
        if start < 1.0 {
            let occ = self.occupancy();
            if occ >= start {
                // Linear drop ramp from 0 at `start` to 1 at full, decided
                // by a per-admission deterministic coin.
                let p = ((occ - start) / (1.0 - start)).clamp(0.0, 1.0);
                let mut rng = DetRng::seed_from_u64(
                    self.config
                        .seed
                        .wrapping_add(self.seq.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        ^ (class.idx() as u64) << 56,
                );
                if rng.next_f64() < p {
                    self.shed[class.idx()] += 1;
                    return Decision::Shed(ShedReason::EarlyDrop);
                }
            }
        }
        self.depth += 1;
        self.admitted += 1;
        Decision::Admitted
    }

    /// Release one slot held by an admitted query.
    pub fn release(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    /// Total queries admitted so far.
    pub fn admitted_total(&self) -> u64 {
        self.admitted
    }

    /// Queries shed so far for one class.
    pub fn shed_for(&self, class: Priority) -> u64 {
        self.shed[class.idx()]
    }

    /// Total queries shed across classes.
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().sum()
    }

    /// `(class label, shed count)` pairs, nonzero entries only.
    pub fn shed_snapshot(&self) -> Vec<(&'static str, u64)> {
        Priority::ALL
            .iter()
            .map(|c| (c.label(), self.shed_for(*c)))
            .filter(|(_, n)| *n > 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut AdmissionQueue) {
        while q.depth() > 0 {
            q.release();
        }
    }

    #[test]
    fn admits_until_capacity_then_sheds_hard() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            capacity: 4,
            seed: 1,
            ramp_start: [1.0, 1.0, 1.0],
        });
        for _ in 0..4 {
            assert_eq!(q.admit(Priority::Interactive), Decision::Admitted);
        }
        assert_eq!(q.admit(Priority::Interactive), Decision::Shed(ShedReason::QueueFull));
        assert_eq!(q.depth(), 4);
        q.release();
        assert_eq!(q.admit(Priority::Interactive), Decision::Admitted);
        assert_eq!(q.admitted_total(), 5);
        assert_eq!(q.shed_total(), 1);
    }

    #[test]
    fn decisions_replay_bit_for_bit() {
        let cfg = AdmissionConfig { capacity: 8, seed: 42, ramp_start: [1.0, 0.5, 0.25] };
        let classes = [Priority::Background, Priority::Batch, Priority::Interactive];
        let run = |cfg: AdmissionConfig| {
            let mut q = AdmissionQueue::new(cfg);
            let mut log = Vec::new();
            for i in 0..200u32 {
                let class = classes[(i % 3) as usize];
                log.push(q.admit(class));
                if i % 5 == 0 {
                    q.release();
                }
            }
            log
        };
        assert_eq!(run(cfg), run(cfg), "same seed, same decision log");
        let other = run(AdmissionConfig { seed: 43, ..cfg });
        assert_ne!(run(cfg), other, "different seed, different early drops");
    }

    #[test]
    fn lower_priority_sheds_earlier() {
        let cfg = AdmissionConfig { capacity: 16, seed: 7, ramp_start: [1.0, 0.5, 0.25] };
        let mut shed_by_class = [0u64; Priority::COUNT];
        for class in Priority::ALL {
            let mut q = AdmissionQueue::new(cfg);
            // Hold the queue at 75% occupancy and offer 500 arrivals.
            for _ in 0..12 {
                assert_eq!(q.admit(Priority::Interactive), Decision::Admitted);
            }
            let held = q.depth();
            for _ in 0..500 {
                if q.admit(class) == Decision::Admitted {
                    q.release();
                }
            }
            drain(&mut q);
            assert_eq!(held, 12);
            shed_by_class[class.idx()] = q.shed_total();
        }
        assert_eq!(shed_by_class[0], 0, "interactive never early-drops");
        assert!(
            shed_by_class[2] > shed_by_class[1],
            "background {} should shed more than batch {}",
            shed_by_class[2],
            shed_by_class[1]
        );
        assert!(shed_by_class[1] > 0);
    }

    #[test]
    fn empty_queue_admits_everything() {
        let mut q = AdmissionQueue::new(AdmissionConfig::default());
        for class in Priority::ALL {
            for _ in 0..100 {
                assert_eq!(q.admit(class), Decision::Admitted);
                q.release();
            }
        }
        assert_eq!(q.shed_total(), 0);
        assert!(q.shed_snapshot().is_empty());
    }

    #[test]
    fn zero_capacity_sheds_everything() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            capacity: 0,
            ..AdmissionConfig::default()
        });
        assert_eq!(q.admit(Priority::Interactive), Decision::Shed(ShedReason::QueueFull));
        q.release(); // must not underflow
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn priority_labels_parse_back() {
        for c in Priority::ALL {
            assert_eq!(Priority::parse(c.label()), Some(c));
        }
        assert_eq!(Priority::parse("bogus"), None);
    }
}
