//! Deterministic overload soak harness.
//!
//! Replays a seeded open-loop arrival process ([`sage_admission::soak`])
//! against a built [`RagSystem`] through a bounded admission queue and
//! per-query deadline budgets — entirely on a **virtual clock**. Queries
//! execute sequentially on the caller's thread; "concurrency" is a set of
//! virtual servers whose busy intervals are computed from each query's
//! simulated latencies. Two runs with the same configuration therefore
//! produce bit-identical event logs and reports, which is what the
//! `sage soak` CLI subcommand and the CI smoke step diff.
//!
//! With `cfg.shards > 1` the server set splits into per-shard pools
//! (`concurrency` servers each): a job routes to its home pool by a
//! stable hash of its sequence number, so a shard slowed by a fault plan
//! queues its own jobs instead of silently borrowing capacity from
//! healthy shards. `shards <= 1` is the historical single-pool model,
//! byte-identical to the logs that predate sharding.
//!
//! The queue-wait → brownout coupling falls out naturally: a query's
//! absolute deadline is fixed at arrival, so time spent waiting in the
//! admission queue shrinks the deadline budget its pipeline run receives,
//! and deeper queues push queries further down the brownout ladder.

use crate::exec::sched::{self, BatchSpec};
use crate::pipeline::RagSystem;
use sage_admission::{
    arrival_plan, AdmissionConfig, AdmissionQueue, Decision, Priority, QueryBudget, ShedReason,
    SoakConfig,
};
use sage_obs::{Outcome, QueryObs};
use sage_vecdb::ShardRouter;
use std::collections::VecDeque;
use std::time::Duration;

/// Virtual service time charged for a query that returned a structured
/// error instead of a result (isolated panic, shed-free error paths).
const ERROR_SERVICE: Duration = Duration::from_millis(10);

/// What one soak run did, with enough detail to assert the overload
/// invariants and to diff two runs for determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoakReport {
    /// Arrivals planned by the seeded process.
    pub arrivals: usize,
    /// Queries the admission queue accepted.
    pub admitted: usize,
    /// Queries shed, by priority class (stable [`Priority`] order).
    pub shed: [u64; Priority::COUNT],
    /// Admitted queries whose deadline expired while queued (never run).
    pub expired: usize,
    /// Queries that completed with a result.
    pub completed: usize,
    /// Queries that returned a structured error (not shed, not panic).
    pub errors: usize,
    /// Queries that panicked (isolated by the serving path). Always zero
    /// unless something is broken — the first soak invariant.
    pub panics: usize,
    /// Completed queries served from shard survivors under a
    /// `shard-partial:<m>/<N>` rung (sharded serving with shard faults).
    pub shard_partial: usize,
    /// Completed queries by final brownout level (ladder order; index 0 is
    /// full fidelity).
    pub brownout: [u64; 5],
    /// Completed queries whose brownout events were out of ladder order.
    /// Always zero — the ladder only ratchets downward in fidelity.
    pub ladder_violations: usize,
    /// Median sojourn (arrival → virtual completion) of completed queries.
    pub p50_sojourn: Duration,
    /// 99th-percentile sojourn of completed queries.
    pub p99_sojourn: Duration,
    /// Deepest queue depth observed.
    pub max_depth: usize,
    /// Deterministic event log, one line per arrival/start/finish.
    pub log: Vec<String>,
    /// Per-query observations in terminal-event order (shed, expiry,
    /// completion, error) — the stream the flight recorder and the SLO
    /// accounting consume. Virtual quantities only, so it replays
    /// bit-for-bit like the log.
    pub obs: Vec<QueryObs>,
}

impl SoakReport {
    /// Total shed across classes.
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().sum()
    }

    /// Shed fraction of all arrivals (0 when nothing arrived).
    pub fn shed_rate(&self) -> f64 {
        if self.arrivals == 0 {
            return 0.0;
        }
        self.shed_total() as f64 / self.arrivals as f64
    }

    /// Completed queries that browned out at least one rung.
    pub fn browned_out(&self) -> u64 {
        self.brownout.iter().skip(1).sum()
    }

    /// Check the soak invariants; returns one line per violation (empty
    /// when the run is healthy):
    ///
    /// 1. zero panics;
    /// 2. shed rate within `max_shed_rate`;
    /// 3. brownout steps applied in ladder order on every query;
    /// 4. when budgets are on, p99 sojourn bounded by the deadline plus a
    ///    generous service allowance (a query admitted just before its
    ///    deadline still runs to completion).
    pub fn check_invariants(&self, cfg: &SoakConfig, max_shed_rate: f64) -> Vec<String> {
        let mut violations = Vec::new();
        if self.panics > 0 {
            violations.push(format!("{} queries panicked", self.panics));
        }
        if self.shed_rate() > max_shed_rate {
            violations.push(format!(
                "shed rate {:.3} exceeds bound {:.3}",
                self.shed_rate(),
                max_shed_rate
            ));
        }
        if self.ladder_violations > 0 {
            violations
                .push(format!("{} queries browned out out of order", self.ladder_violations));
        }
        if let Some(budget) = cfg.budget {
            let service_ceiling = Duration::from_secs(30);
            let bound = budget.deadline + service_ceiling;
            if self.completed > 0 && self.p99_sojourn > bound {
                violations.push(format!(
                    "p99 sojourn {:?} exceeds deadline+ceiling {:?}",
                    self.p99_sojourn, bound
                ));
            }
        }
        violations
    }

    /// Multi-line human summary (the `sage soak` stderr report).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "arrivals {}  admitted {}  shed {} (interactive {} / batch {} / background {})\n",
            self.arrivals,
            self.admitted,
            self.shed_total(),
            self.shed[0],
            self.shed[1],
            self.shed[2]
        ));
        out.push_str(&format!(
            "completed {}  expired {}  errors {}  panics {}  shard-partial {}\n",
            self.completed, self.expired, self.errors, self.panics, self.shard_partial
        ));
        out.push_str(&format!(
            "brownout none {} / drop-feedback {} / shrink-rerank {} / skip-rerank {} / flat-topk {}\n",
            self.brownout[0], self.brownout[1], self.brownout[2], self.brownout[3],
            self.brownout[4]
        ));
        out.push_str(&format!(
            "p50 sojourn {}  p99 sojourn {}  max depth {}\n",
            fmt_t(self.p50_sojourn),
            fmt_t(self.p99_sojourn),
            self.max_depth
        ));
        out
    }

    /// One-line machine-readable summary (virtual quantities only, so it
    /// is byte-identical across same-seed replays). The scenario harness
    /// and CI parse this instead of scraping the human summary;
    /// `violations` is whatever [`SoakReport::check_invariants`] returned.
    pub fn json_summary(&self, violations: &[String]) -> String {
        let mut out = String::from("{\"tool\": \"soak\"");
        out.push_str(&format!(", \"arrivals\": {}", self.arrivals));
        out.push_str(&format!(", \"admitted\": {}", self.admitted));
        out.push_str(&format!(
            ", \"shed\": {{\"interactive\": {}, \"batch\": {}, \"background\": {}, \"total\": {}}}",
            self.shed[0],
            self.shed[1],
            self.shed[2],
            self.shed_total()
        ));
        out.push_str(&format!(", \"expired\": {}", self.expired));
        out.push_str(&format!(", \"completed\": {}", self.completed));
        out.push_str(&format!(", \"errors\": {}", self.errors));
        out.push_str(&format!(", \"panics\": {}", self.panics));
        out.push_str(&format!(", \"shard_partial\": {}", self.shard_partial));
        out.push_str(&format!(
            ", \"brownout\": [{}, {}, {}, {}, {}]",
            self.brownout[0], self.brownout[1], self.brownout[2], self.brownout[3],
            self.brownout[4]
        ));
        out.push_str(&format!(", \"browned_out\": {}", self.browned_out()));
        out.push_str(&format!(", \"ladder_violations\": {}", self.ladder_violations));
        out.push_str(&format!(", \"p50_sojourn_us\": {}", self.p50_sojourn.as_micros()));
        out.push_str(&format!(", \"p99_sojourn_us\": {}", self.p99_sojourn.as_micros()));
        out.push_str(&format!(", \"max_depth\": {}", self.max_depth));
        out.push_str(", \"violations\": [");
        for (i, v) in violations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            sage_telemetry::span::write_json_str(v, &mut out);
        }
        out.push_str("]}");
        out
    }
}

/// One admitted query waiting for a virtual server.
struct Job {
    /// Index into the arrival plan (also the log's query id).
    seq: usize,
    /// Arrival offset.
    at: Duration,
    class: Priority,
    /// Absolute deadline (`at + budget.deadline`); `None` when budgets are
    /// off.
    deadline: Option<Duration>,
}

/// Fixed-width virtual timestamp (micros), so logs diff cleanly.
fn fmt_t(d: Duration) -> String {
    format!("{}.{:06}s", d.as_secs(), d.subsec_micros())
}

/// Replay the soak configured by `cfg` against `sys`, cycling through
/// `questions` in arrival order. Pure virtual time: the call is CPU-bound
/// and returns a deterministic [`SoakReport`].
pub fn run_soak(sys: &RagSystem, questions: &[String], cfg: &SoakConfig) -> SoakReport {
    let plan = arrival_plan(cfg);
    let mut report = SoakReport {
        arrivals: plan.len(),
        admitted: 0,
        shed: [0; Priority::COUNT],
        expired: 0,
        completed: 0,
        errors: 0,
        panics: 0,
        shard_partial: 0,
        brownout: [0; 5],
        ladder_violations: 0,
        p50_sojourn: Duration::ZERO,
        p99_sojourn: Duration::ZERO,
        max_depth: 0,
        log: Vec::new(),
        obs: Vec::new(),
    };
    if questions.is_empty() || plan.is_empty() {
        return report;
    }

    let mut queue = AdmissionQueue::new(AdmissionConfig {
        capacity: cfg.capacity,
        seed: cfg.seed,
        ramp_start: cfg.ramp_start,
    });
    let mut pending: VecDeque<Job> = VecDeque::new();
    // One virtual-server pool per shard fault domain (single pool below 2
    // shards). A job's home pool is a stable hash of its sequence number,
    // so shard-slow faults queue their own shard's jobs.
    let router = ShardRouter::new(cfg.shards.max(1));
    let mut free_at: Vec<Vec<Duration>> =
        vec![vec![Duration::ZERO; cfg.concurrency.max(1)]; router.shards() as usize];
    let mut sojourns: Vec<Duration> = Vec::new();

    let mut state = SimState {
        sys,
        questions,
        base_budget: cfg.budget,
        router,
        exec_workers: cfg.exec_workers,
        seed: cfg.seed,
        queue: &mut queue,
        pending: &mut pending,
        free_at: &mut free_at,
        sojourns: &mut sojourns,
        report: &mut report,
    };

    // The soak loop owns observation while it runs: the executor's ad-hoc
    // recorder hook is suppressed and every terminal event below feeds the
    // recorder (when attached) with full arrival/class/deadline context.
    crate::obs::set_driven(sys, true);
    for (seq, arrival) in plan.iter().enumerate() {
        state.dispatch_until(arrival.at);
        state.offer(seq, arrival.at, arrival.class);
    }
    // Drain: virtual time runs on until every queued job started.
    state.dispatch_until(Duration::MAX);
    crate::obs::set_driven(sys, false);

    sojourns.sort_unstable();
    if !sojourns.is_empty() {
        report.p50_sojourn = sojourns[(sojourns.len() - 1) / 2];
        report.p99_sojourn = sojourns[(sojourns.len() - 1) * 99 / 100];
    }
    report
}

/// The mutable halves of the simulation, grouped so the dispatch loop can
/// borrow them together.
struct SimState<'a> {
    sys: &'a RagSystem,
    questions: &'a [String],
    base_budget: Option<QueryBudget>,
    /// Routes each job to its home server pool (identity at one shard).
    router: ShardRouter,
    /// Real scheduler threads per dispatch wave (`<= 1` keeps the exact
    /// historical sequential path).
    exec_workers: usize,
    /// Soak seed, reused as the scheduler's worker-assignment seed.
    seed: u64,
    queue: &'a mut AdmissionQueue,
    pending: &'a mut VecDeque<Job>,
    /// Per-shard pools of virtual-server busy horizons.
    free_at: &'a mut Vec<Vec<Duration>>,
    sojourns: &'a mut Vec<Duration>,
    report: &'a mut SoakReport,
}

impl SimState<'_> {
    /// Record one terminal observation: into the report's stream always,
    /// and into the system's flight recorder when one is attached.
    fn record_obs(&mut self, o: QueryObs) {
        crate::obs::observe(self.sys, &o);
        self.report.obs.push(o);
    }

    /// Offer one arrival to the admission queue.
    fn offer(&mut self, seq: usize, at: Duration, class: Priority) {
        match self.queue.admit(class) {
            Decision::Admitted => {
                self.report.admitted += 1;
                self.report.max_depth = self.report.max_depth.max(self.queue.depth());
                let deadline = self.base_budget.map(|b| at + b.deadline);
                self.pending.push_back(Job { seq, at, class, deadline });
                self.report.log.push(format!(
                    "[{}] admit q={} class={} depth={}",
                    fmt_t(at),
                    seq,
                    class,
                    self.queue.depth()
                ));
            }
            Decision::Shed(reason) => {
                self.report.shed[class.idx()] += 1;
                sage_telemetry::metrics::SHED_TOTAL.inc(class.idx());
                let label = match reason {
                    ShedReason::QueueFull => "queue-full",
                    ShedReason::EarlyDrop => "early-drop",
                };
                self.report.log.push(format!(
                    "[{}] shed q={} class={} reason={} depth={}",
                    fmt_t(at),
                    seq,
                    class,
                    label,
                    self.queue.depth()
                ));
                self.record_obs(QueryObs {
                    seq: seq as u64,
                    class: class.label(),
                    arrival_us: at.as_micros() as u64,
                    end_us: at.as_micros() as u64,
                    sojourn_ns: 0,
                    service_ns: 0,
                    outcome: Outcome::Shed,
                    brownout: 0,
                    degraded: 0,
                    deadline_missed: false,
                    tokens: 0,
                    confidence_milli: 0,
                    question: label.to_string(),
                });
            }
        }
    }

    /// The (start, home pool, slot) placement the front job would get from
    /// the current busy horizons: home pool by stable hash of the sequence
    /// number, then the earliest-free server within it; ties break to the
    /// lowest slot (first minimum wins).
    fn place(&self, job: &Job) -> (Duration, usize, usize) {
        let home = self.router.route_id(job.seq) as usize;
        let pool = &self.free_at[home];
        let slot = pool
            .iter()
            .enumerate()
            .min_by_key(|(_, f)| **f)
            .map(|(i, _)| i)
            .unwrap_or(0);
        (pool[slot].max(job.at), home, slot)
    }

    /// Start every pending job whose virtual start time lands before
    /// `now`, in FIFO order. A job starts when the earliest-free server of
    /// its *home shard's* pool is available *and* the job has arrived.
    ///
    /// With `exec_workers > 1` the same FIFO sequence is cut into
    /// *dispatch waves* — maximal prefixes whose placements are mutually
    /// independent — and each wave's pipelines run interleaved through the
    /// cross-query slot scheduler, with all bookkeeping replayed in FIFO
    /// order afterwards. Virtual time never notices: logs, observations,
    /// and reports are byte-identical to the sequential path.
    fn dispatch_until(&mut self, now: Duration) {
        if self.exec_workers <= 1 {
            while let Some(job) = self.pending.front() {
                let (start, home, slot) = self.place(job);
                if start >= now {
                    break;
                }
                let Some(job) = self.pending.pop_front() else { break };
                self.queue.release();
                self.start(job, start, home, slot);
            }
            return;
        }
        while self.dispatch_wave(now) {}
    }

    /// Collect and run one dispatch wave: the maximal FIFO prefix of
    /// startable jobs whose placements don't depend on each other. A job's
    /// placement reads only its home pool's busy horizons, and only a
    /// *completed* job writes them — so the wave closes at the first job
    /// whose home pool an earlier wave member already claimed (its
    /// placement must see that member's finish first). Expiring jobs claim
    /// nothing and ride along in wave position. Returns whether anything
    /// was dispatched.
    fn dispatch_wave(&mut self, now: Duration) -> bool {
        let mut wave: Vec<(Job, Duration, usize, usize, bool)> = Vec::new();
        let mut claimed = vec![false; self.free_at.len()];
        while let Some(job) = self.pending.front() {
            let (start, home, slot) = self.place(job);
            if claimed[home] || start >= now {
                break;
            }
            let Some(job) = self.pending.pop_front() else { break };
            self.queue.release();
            let expired = job.deadline.is_some_and(|d| start >= d);
            if !expired {
                claimed[home] = true;
            }
            wave.push((job, start, home, slot, expired));
        }
        if wave.is_empty() {
            return false;
        }
        // Run the wave's live pipelines interleaved through the slot
        // scheduler (budgets fixed at placement time, exactly as the
        // sequential path computes them).
        let questions: &[String] = self.questions;
        let specs: Vec<BatchSpec<'_>> = wave
            .iter()
            .filter(|(_, _, _, _, expired)| !expired)
            .map(|(job, start, _, _, _)| BatchSpec {
                question: &questions[job.seq % questions.len()],
                options: None,
                budget: match (self.base_budget, job.deadline) {
                    (Some(base), Some(deadline)) => {
                        Some(QueryBudget::new(deadline.saturating_sub(*start), base.max_tokens))
                    }
                    _ => None,
                },
            })
            .collect();
        let mut outcomes =
            sched::run_interleaved(self.sys, &specs, self.exec_workers, self.seed).into_iter();
        // Replay all bookkeeping in FIFO order: horizons, logs, and
        // observations land exactly as the sequential path writes them.
        for (job, start, home, slot, expired) in wave {
            let wait = start.saturating_sub(job.at);
            if expired {
                self.expire(job, start, wait);
            } else if let Some(outcome) = outcomes.next() {
                // One outcome per live wave member, by construction: the
                // spec list was built from exactly the non-expired jobs.
                self.settle(job, start, home, slot, outcome);
            }
        }
        true
    }

    /// Run one job at virtual time `start` on server `slot` of pool
    /// `home` — the sequential path: execute the pipeline inline, then
    /// settle the bookkeeping.
    fn start(&mut self, job: Job, start: Duration, home: usize, slot: usize) {
        let wait = start.saturating_sub(job.at);
        if job.deadline.is_some_and(|d| start >= d) {
            self.expire(job, start, wait);
            return;
        }
        let questions: &[String] = self.questions;
        let question = &questions[job.seq % questions.len()];
        let outcome = match (self.base_budget, job.deadline) {
            (Some(base), Some(deadline)) => {
                let remaining = deadline.saturating_sub(start);
                self.sys
                    .try_answer_open_budgeted(question, QueryBudget::new(remaining, base.max_tokens))
            }
            _ => self.sys.try_answer_open(question),
        };
        self.settle(job, start, home, slot, outcome);
    }

    /// Bookkeeping for a job whose deadline passed while it queued.
    fn expire(&mut self, job: Job, start: Duration, wait: Duration) {
        self.report.expired += 1;
        self.report.log.push(format!(
            "[{}] expire q={} class={} waited={}",
            fmt_t(start),
            job.seq,
            job.class,
            fmt_t(wait)
        ));
        self.record_obs(QueryObs {
            seq: job.seq as u64,
            class: job.class.label(),
            arrival_us: job.at.as_micros() as u64,
            end_us: start.as_micros() as u64,
            sojourn_ns: wait.as_nanos() as u64,
            service_ns: 0,
            outcome: Outcome::Expired,
            brownout: 0,
            degraded: 0,
            deadline_missed: true,
            tokens: 0,
            confidence_milli: 0,
            question: self.questions[job.seq % self.questions.len()].clone(),
        });
    }

    /// Fold one finished pipeline outcome into the simulation: advance the
    /// server's busy horizon by the virtual service time and write the
    /// job's log line and observation. Shared verbatim by the sequential
    /// and wave paths — the outcome's deterministic fields are identical
    /// either way, so the bookkeeping is too.
    fn settle(
        &mut self,
        job: Job,
        start: Duration,
        home: usize,
        slot: usize,
        outcome: Result<crate::QueryResult, sage_resilience::SageError>,
    ) {
        let wait = start.saturating_sub(job.at);
        let question = &self.questions[job.seq % self.questions.len()];
        let service = match &outcome {
            Ok(r) => r.answer_latency + r.feedback_latency + r.degraded.total_delay(),
            Err(_) => ERROR_SERVICE,
        };
        let finish = start + service;
        self.free_at[home][slot] = finish;
        match outcome {
            Ok(r) => {
                self.report.completed += 1;
                self.report.brownout[r.brownout.idx()] += 1;
                // Ladder order: the steps recorded on the trace must be
                // strictly increasing.
                let steps: Vec<u8> =
                    r.degraded.events.iter().filter_map(|e| e.fallback.brownout_step()).collect();
                if !steps.windows(2).all(|w| w[0] < w[1]) {
                    self.report.ladder_violations += 1;
                }
                // A query served from shard survivors documents its rung
                // on the done line; unsharded (or clean) runs append
                // nothing, keeping historical logs byte-identical.
                let rung = r
                    .degraded
                    .events
                    .iter()
                    .find(|e| e.fallback.is_shard_partial())
                    .map(|e| format!(" rung={}", e.fallback))
                    .unwrap_or_default();
                if !rung.is_empty() {
                    self.report.shard_partial += 1;
                }
                self.sojourns.push(finish.saturating_sub(job.at));
                self.report.log.push(format!(
                    "[{}] done q={} class={} waited={} service={} level={} cost={}{}",
                    fmt_t(finish),
                    job.seq,
                    job.class,
                    fmt_t(wait),
                    fmt_t(service),
                    r.brownout,
                    r.cost.input_tokens + r.cost.output_tokens,
                    rung
                ));
                self.record_obs(QueryObs {
                    seq: job.seq as u64,
                    class: job.class.label(),
                    arrival_us: job.at.as_micros() as u64,
                    end_us: finish.as_micros() as u64,
                    sojourn_ns: finish.saturating_sub(job.at).as_nanos() as u64,
                    service_ns: service.as_nanos() as u64,
                    outcome: Outcome::Done,
                    brownout: r.brownout.idx() as u8,
                    degraded: r.degraded.events.len() as u32,
                    deadline_missed: job.deadline.is_some_and(|d| finish > d),
                    tokens: r.cost.input_tokens + r.cost.output_tokens,
                    confidence_milli: crate::obs::confidence_milli(r.answer.confidence),
                    question: question.clone(),
                });
            }
            Err(e) => {
                let panicked = matches!(e, sage_resilience::SageError::Panicked { .. });
                if panicked {
                    self.report.panics += 1;
                } else {
                    self.report.errors += 1;
                }
                self.report.log.push(format!(
                    "[{}] error q={} class={} err={}",
                    fmt_t(finish),
                    job.seq,
                    job.class,
                    e
                ));
                self.record_obs(QueryObs {
                    seq: job.seq as u64,
                    class: job.class.label(),
                    arrival_us: job.at.as_micros() as u64,
                    end_us: finish.as_micros() as u64,
                    sojourn_ns: finish.saturating_sub(job.at).as_nanos() as u64,
                    service_ns: service.as_nanos() as u64,
                    outcome: if panicked { Outcome::Panicked } else { Outcome::Error },
                    brownout: 0,
                    degraded: 0,
                    deadline_missed: false,
                    tokens: 0,
                    confidence_milli: 0,
                    question: question.clone(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RetrieverKind, SageConfig};
    use crate::models::{TrainBudget, TrainedModels};
    use sage_llm::LlmProfile;
    use std::sync::OnceLock;

    fn models() -> &'static TrainedModels {
        static M: OnceLock<TrainedModels> = OnceLock::new();
        M.get_or_init(|| TrainedModels::train(TrainBudget::tiny()))
    }

    fn system() -> RagSystem {
        RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &[
                "Whiskers is a playful tabby cat. He has bright green eyes.\n\
                 Patchy is a ferret with a stubborn streak. Patchy has bright orange eyes.\n\
                 Dorinwick was well known in the region. He lives in Ashford."
                    .to_string(),
            ],
        )
    }

    fn questions() -> Vec<String> {
        vec![
            "What is the color of Whiskers's eyes?".to_string(),
            "Where does Dorinwick live?".to_string(),
            "What animal is Patchy?".to_string(),
        ]
    }

    fn quick_cfg() -> SoakConfig {
        SoakConfig {
            seed: 7,
            duration: Duration::from_secs(20),
            qps: 2.0,
            capacity: 4,
            concurrency: 2,
            ..SoakConfig::default()
        }
    }

    #[test]
    fn soak_replays_bit_for_bit() {
        let sys = system();
        let a = run_soak(&sys, &questions(), &quick_cfg());
        let b = run_soak(&sys, &questions(), &quick_cfg());
        assert_eq!(a, b, "same seed must replay identically");
        assert!(a.completed > 0);
        assert!(a.check_invariants(&quick_cfg(), 0.9).is_empty(), "{:?}", a.log);
    }

    #[test]
    fn obs_stream_reconciles_with_report_counts() {
        let sys = system();
        let cfg = quick_cfg();
        let r = run_soak(&sys, &questions(), &cfg);
        let count = |o: Outcome| r.obs.iter().filter(|x| x.outcome == o).count();
        assert_eq!(count(Outcome::Done), r.completed);
        assert_eq!(count(Outcome::Shed) as u64, r.shed_total());
        assert_eq!(count(Outcome::Expired), r.expired);
        assert_eq!(count(Outcome::Error), r.errors);
        assert_eq!(count(Outcome::Panicked), r.panics);
        let js = r.json_summary(&r.check_invariants(&cfg, 0.9));
        assert!(js.starts_with("{\"tool\": \"soak\""), "{js}");
        assert!(js.contains("\"violations\": []"), "{js}");
        assert!(!js.contains('\n'), "summary must be one line");
    }

    #[test]
    fn attached_recorder_does_not_change_the_log() {
        let cfg = quick_cfg();
        let detached = run_soak(&system(), &questions(), &cfg);
        let mut sys = system();
        sys.enable_recorder(sage_obs::RecorderConfig::default());
        let attached = run_soak(&sys, &questions(), &cfg);
        assert_eq!(detached.log, attached.log, "recorder must be invisible to the log");
        let stats = sys.recorder_stats().unwrap();
        assert_eq!(stats.captured as usize, attached.obs.len());
    }

    #[test]
    fn different_seeds_differ() {
        let sys = system();
        let a = run_soak(&sys, &questions(), &quick_cfg());
        let b = run_soak(&sys, &questions(), &SoakConfig { seed: 8, ..quick_cfg() });
        assert_ne!(a.log, b.log);
    }

    #[test]
    fn queue_pressure_drives_brownout() {
        let sys = system();
        // One server and a tight deadline: queue wait eats the budget.
        let cfg = SoakConfig {
            seed: 11,
            duration: Duration::from_secs(30),
            qps: 3.0,
            capacity: 6,
            concurrency: 1,
            budget: Some(QueryBudget::new(Duration::from_secs(6), 50_000)),
            ..SoakConfig::default()
        };
        let r = run_soak(&sys, &questions(), &cfg);
        assert!(r.completed > 0);
        assert!(
            r.browned_out() > 0 || r.expired > 0 || r.shed_total() > 0,
            "overload must leave a trace: {:?}",
            r.summary()
        );
        assert_eq!(r.ladder_violations, 0);
        assert_eq!(r.panics, 0);
    }

    #[test]
    fn no_budget_means_no_brownout() {
        let sys = system();
        let cfg = SoakConfig { budget: None, ..quick_cfg() };
        let r = run_soak(&sys, &questions(), &cfg);
        assert!(r.completed > 0);
        assert_eq!(r.browned_out(), 0);
        assert_eq!(r.expired, 0);
    }

    #[test]
    fn one_shard_pool_matches_the_historical_model() {
        // `shards: 1` must be the exact single-pool model: byte-identical
        // report (log included) to a config that never mentions shards.
        let sys = system();
        let a = run_soak(&sys, &questions(), &quick_cfg());
        let b = run_soak(&sys, &questions(), &SoakConfig { shards: 1, ..quick_cfg() });
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_pools_replay_bit_for_bit() {
        let sys = system();
        let cfg = SoakConfig { shards: 4, ..quick_cfg() };
        let a = run_soak(&sys, &questions(), &cfg);
        let b = run_soak(&sys, &questions(), &cfg);
        assert_eq!(a, b, "per-shard pools must stay deterministic");
        assert!(a.completed > 0);
        assert_eq!(a.panics, 0);
        assert_eq!(a.shard_partial, 0, "no faults, no partial serves");
    }

    #[test]
    fn shard_fault_surfaces_partial_rungs_without_panics() {
        use crate::resilience::ResilienceConfig;
        use sage_resilience::{FaultPlan, Rates};
        let mut sys = system();
        sys.enable_resilience(ResilienceConfig::with_plan(
            FaultPlan::seeded(7).with_shard(1, Rates { timeout: 1.0, ..Rates::default() }),
        ));
        sys.enable_sharding(4, None);
        let cfg = SoakConfig { shards: 4, ..quick_cfg() };
        let r = run_soak(&sys, &questions(), &cfg);
        assert_eq!(r.panics, 0, "shard loss must never panic the serving path");
        assert!(r.completed > 0);
        assert!(r.shard_partial > 0, "dead shard must surface partial serves: {}", r.summary());
        assert!(
            r.log.iter().any(|l| l.contains("rung=shard-partial:1/4")),
            "done lines must document the rung"
        );
        // Determinism holds under faults too.
        assert_eq!(r, run_soak(&sys, &questions(), &cfg));
    }

    #[test]
    fn exec_workers_replay_byte_identically() {
        // The scheduler threads are a wall-clock knob only: every virtual
        // quantity — log lines, observations, the whole report — must be
        // byte-identical at any worker count.
        let sys = system();
        let base = run_soak(&sys, &questions(), &quick_cfg());
        for w in [2usize, 4, 8] {
            let cfg = SoakConfig { exec_workers: w, ..quick_cfg() };
            let r = run_soak(&sys, &questions(), &cfg);
            assert_eq!(base, r, "exec_workers={w} changed the report");
        }
    }

    #[test]
    fn exec_workers_replay_under_shards_and_faults() {
        use crate::resilience::ResilienceConfig;
        use sage_resilience::{FaultPlan, Rates};
        let mut sys = system();
        sys.enable_resilience(ResilienceConfig::with_plan(
            FaultPlan::seeded(7).with_shard(1, Rates { timeout: 1.0, ..Rates::default() }),
        ));
        sys.enable_sharding(4, None);
        let cfg = SoakConfig { shards: 4, ..quick_cfg() };
        let base = run_soak(&sys, &questions(), &cfg);
        let waved = run_soak(&sys, &questions(), &SoakConfig { exec_workers: 4, ..cfg });
        assert_eq!(base, waved, "faulted sharded soak must be exec_workers-invariant");
        assert!(base.shard_partial > 0, "fault must actually bite: {}", base.summary());
    }

    #[test]
    fn empty_inputs_yield_empty_reports() {
        let sys = system();
        let r = run_soak(&sys, &[], &quick_cfg());
        assert_eq!(r.completed, 0);
        assert!(r.arrivals > 0, "plan still generated");
        let r2 = run_soak(&sys, &questions(), &SoakConfig { qps: 0.0, ..quick_cfg() });
        assert_eq!(r2.arrivals, 0);
    }
}
