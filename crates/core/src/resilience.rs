//! Serving-path resilience: configuration, fallback tiers, and per-query
//! guard plumbing for [`crate::pipeline::RagSystem`].
//!
//! The degradation chain (DESIGN.md "Failure model & degradation chain"):
//!
//! | failing boundary | fallback |
//! |---|---|
//! | HNSW ANN search (opt-in tier) | exact flat-index scan |
//! | query embedding / flat search | BM25 sparse retrieval over the same chunks |
//! | reranker | first-stage retrieval order |
//! | reader (primary context) | second-best chunk set, then "unanswerable" |
//!
//! Scoping rule: circuit breakers and the virtual clock are **per query**
//! ([`QueryGuards`]), not shared across a batch. A shared breaker would
//! make one question's trace depend on which other questions ran first on
//! the same worker pool — per-query scoping keeps every `QueryResult` a
//! pure function of `(system, fault plan, question)`, which is what the
//! determinism property test demands. BM25 fallback postings and the
//! optional HNSW tier live in the system-wide [`ResilienceState`], as do
//! the degraded-mode counters the CLI reports.

use sage_resilience::{
    BreakerConfig, CircuitBreaker, Component, FallbackCounters, FaultPlan, Guard, RetryPolicy,
    VirtualClock,
};
use sage_retrieval::{Bm25Retriever, Retriever};
use sage_vecdb::{FlatIndex, HnswIndex, VectorIndex};

/// Resilience tuning for one [`crate::pipeline::RagSystem`].
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// The fault plan (default: [`FaultPlan::none`] — machinery on, no
    /// injected faults).
    pub plan: FaultPlan,
    /// Retry/backoff policy at every guarded boundary.
    pub retry: RetryPolicy,
    /// Per-component circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Build an HNSW tier over the dense index and search it first,
    /// falling back to the exact flat scan on failure. Off by default:
    /// ANN results are approximate, so enabling it changes (slightly)
    /// which chunks are retrieved even with no faults.
    pub use_hnsw: bool,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            plan: FaultPlan::none(),
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            use_hnsw: false,
        }
    }
}

impl ResilienceConfig {
    /// Default policies under the given fault plan.
    pub fn with_plan(plan: FaultPlan) -> Self {
        Self { plan, ..Self::default() }
    }
}

/// System-wide resilience state: the fallback retrieval tiers (shared,
/// read-only at query time) and the degraded-mode counters.
pub(crate) struct ResilienceState {
    pub(crate) config: ResilienceConfig,
    /// Sparse fallback over the same chunk store as the primary retriever.
    pub(crate) bm25: Bm25Retriever,
    /// Opt-in ANN tier built from the dense index's vectors.
    pub(crate) hnsw: Option<HnswIndex>,
    /// Fired-fallback totals across all queries since enablement.
    pub(crate) counters: FallbackCounters,
}

impl ResilienceState {
    /// Build fallback tiers for `chunks` (+ the dense index when present).
    pub(crate) fn build(
        config: ResilienceConfig,
        chunks: &[String],
        dense: Option<&FlatIndex>,
    ) -> Self {
        let mut bm25 = Bm25Retriever::new();
        bm25.index(chunks);
        let hnsw = if config.use_hnsw { dense.map(hnsw_from_flat) } else { None };
        Self { config, bm25, hnsw, counters: FallbackCounters::new() }
    }

    /// Rebuild the fallback tiers after the chunk store changed
    /// (`add_documents`). Counters carry over.
    pub(crate) fn reindex(&mut self, chunks: &[String], dense: Option<&FlatIndex>) {
        self.bm25.index(chunks);
        if self.config.use_hnsw {
            if let Some(flat) = dense {
                self.hnsw = Some(hnsw_from_flat(flat));
            }
        }
    }
}

/// Copy every vector of a flat index into a fresh ANN tier. Flat index
/// ids are dense (0..len), so the loop normally runs to completion; if
/// that invariant ever breaks, stopping early keeps the already-copied
/// prefix id-aligned rather than aborting the build.
fn hnsw_from_flat(flat: &FlatIndex) -> HnswIndex {
    let mut h = HnswIndex::cosine();
    for id in 0..flat.len() {
        let Some(v) = flat.vector(id) else { break };
        h.add(v.to_vec());
    }
    h
}

/// Per-query guard context: one circuit breaker per component and a fresh
/// virtual clock, so a query's degradation trace cannot depend on thread
/// interleaving within a batch.
pub(crate) struct QueryGuards<'a> {
    pub(crate) state: &'a ResilienceState,
    clock: VirtualClock,
    breakers: [CircuitBreaker; 4],
}

impl<'a> QueryGuards<'a> {
    pub(crate) fn new(state: &'a ResilienceState) -> Self {
        Self {
            state,
            clock: VirtualClock::new(),
            breakers: std::array::from_fn(|_| CircuitBreaker::new(state.config.breaker)),
        }
    }

    /// The guard for one component boundary.
    pub(crate) fn guard(&self, component: Component) -> Guard<'_> {
        Guard {
            plan: &self.state.config.plan,
            policy: &self.state.config.retry,
            clock: &self.clock,
            // sage-lint: allow(panic-reachability) - component.idx() is a dense enum index into the fixed breaker array
            breaker: &self.breakers[component.idx()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_builds_fallback_tiers() {
        let chunks =
            vec!["the cat sat on the mat".to_string(), "rockets reach the moon".to_string()];
        let mut flat = FlatIndex::cosine();
        flat.add(vec![1.0, 0.0]);
        flat.add(vec![0.0, 1.0]);
        let state = ResilienceState::build(
            ResilienceConfig { use_hnsw: true, ..ResilienceConfig::default() },
            &chunks,
            Some(&flat),
        );
        assert_eq!(state.bm25.len(), 2);
        assert_eq!(state.hnsw.as_ref().map(|h| h.len()), Some(2));
        let hits = state.bm25.retrieve("cat mat", 1);
        assert_eq!(hits[0].index, 0);
    }

    #[test]
    fn default_config_has_no_hnsw_and_no_faults() {
        let state = ResilienceState::build(ResilienceConfig::default(), &[], None);
        assert!(state.hnsw.is_none());
        assert!(!state.config.plan.is_active());
        assert_eq!(state.counters.total(), 0);
    }

    #[test]
    fn guards_are_independent_per_query() {
        let state = ResilienceState::build(ResilienceConfig::default(), &[], None);
        let a = QueryGuards::new(&state);
        let b = QueryGuards::new(&state);
        // Tripping one query's breaker leaves the other's closed.
        for _ in 0..state.config.breaker.failure_threshold {
            a.breakers[0].record_failure(a.clock.now());
        }
        assert!(a.breakers[0].is_open(&a.clock));
        assert!(!b.breakers[0].is_open(&b.clock));
    }
}
