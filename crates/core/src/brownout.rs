//! Budget → pipeline glue: the per-query brownout controller.
//!
//! [`BrownoutCtl`] wraps a [`BudgetMeter`] and owns the two pieces the
//! meter itself stays agnostic about:
//!
//! * **charging discipline** — the pipeline charges the deterministic
//!   [`CostModel`] values (never the wall clock) at each checkpoint, so a
//!   query's virtual spend — and therefore its brownout decisions — replay
//!   bit-for-bit;
//! * **event emission** — the first time each ladder step is applied the
//!   controller appends a [`DegradeEvent`] to the query's degradation
//!   trace (the same trace PR 1's fallback chain writes to, so one report
//!   explains both fault- and budget-driven degradation) and bumps the
//!   `sage_brownout_total{stage=...}` telemetry counter. A jump over
//!   several rungs emits every intermediate step: the ladder is
//!   cumulative, so all of those mitigations are in effect.
//!
//! ## Component attribution
//!
//! Brownout events reuse the existing [`Component`] set rather than adding
//! a `Selection` variant — the resilience layer sizes its per-query guard
//! and fault-plan arrays by `Component::COUNT`, and budget pressure is not
//! a component fault. Feedback drops attribute to the `Reader` (the calls
//! being skipped), rerank steps to the `Reranker`, and flat selection to
//! `IndexSearch` (the stage whose order the flat prefix preserves).

use sage_admission::{BrownoutLevel, BudgetMeter, CostModel, PlanStage, QueryBudget};
use sage_resilience::{Component, DegradeEvent, DegradeTrace, Fallback, SageError};
use std::time::Duration;

/// Per-query brownout state threaded through the pipeline stages.
pub(crate) struct BrownoutCtl {
    /// The budget meter (virtual spend + ratcheted level).
    pub meter: BudgetMeter,
    /// Candidate-pool size used for rerank planning.
    pub candidates: usize,
    /// Feedback rounds the configuration would run at full fidelity.
    planned_rounds: u32,
    /// Deepest level already reported as degrade events.
    reported: BrownoutLevel,
}

impl BrownoutCtl {
    pub(crate) fn new(
        budget: QueryBudget,
        model: CostModel,
        candidates: usize,
        planned_rounds: u32,
    ) -> Self {
        Self {
            meter: BudgetMeter::new(budget, model),
            candidates,
            planned_rounds,
            reported: BrownoutLevel::None,
        }
    }

    /// Judge calls still ahead after `executed` feedback rounds.
    pub(crate) fn rounds_left(&self, executed: usize) -> u32 {
        self.planned_rounds.saturating_sub(executed as u32)
    }

    /// Replan at `stage` and report any newly applied ladder steps into
    /// `trace`. Returns the (possibly ratcheted) level.
    pub(crate) fn checkpoint(
        &mut self,
        stage: PlanStage,
        rounds_left: u32,
        trace: &mut DegradeTrace,
    ) -> BrownoutLevel {
        let level = self.meter.replan(stage, self.candidates, rounds_left);
        self.note(trace);
        level
    }

    /// Emit one degrade event (and telemetry count) per ladder step newly
    /// crossed since the last report.
    fn note(&mut self, trace: &mut DegradeTrace) {
        let level = self.meter.level();
        while self.reported < level {
            let Some(next) = BrownoutLevel::ALL.get(self.reported.idx() + 1).copied() else {
                break;
            };
            record_rung(next, trace);
            self.reported = next;
        }
    }
}

/// The single recording point for a newly crossed brownout rung: the
/// degradation-trace entry and the `sage_brownout_total{stage=...}`
/// counter bump happen here and nowhere else. (The per-query telemetry
/// span event is derived from the trace entry at finalize time — see
/// `exec::finalize` — so all three sinks stay reconciled by
/// construction; `reconciliation` tests guard this.)
fn record_rung(rung: BrownoutLevel, trace: &mut DegradeTrace) {
    let (component, fallback, stage) = match rung {
        BrownoutLevel::DropFeedback => {
            (Component::Reader, Fallback::BrownoutDropFeedback, "feedback")
        }
        BrownoutLevel::ShrinkRerank => {
            (Component::Reranker, Fallback::BrownoutShrinkRerank, "rerank")
        }
        BrownoutLevel::SkipRerank => {
            (Component::Reranker, Fallback::BrownoutSkipRerank, "rerank")
        }
        BrownoutLevel::FlatTopK => {
            (Component::IndexSearch, Fallback::BrownoutFlatTopK, "selection")
        }
        // `None` is not a rung; nothing to record.
        BrownoutLevel::None => return,
    };
    trace.events.push(DegradeEvent {
        component,
        fallback,
        error: SageError::BudgetExhausted { stage },
        attempts: 0,
        delay: Duration::ZERO,
    });
    sage_telemetry::metrics::BROWNOUT_TOTAL.inc(rung.idx().saturating_sub(1));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_jump_reports_every_intermediate_step() {
        // A deadline below one read forces FlatTopK straight from None;
        // all four ladder steps must land in the trace, in ladder order.
        let mut ctl = BrownoutCtl::new(
            QueryBudget::new(Duration::from_millis(100), u64::MAX),
            CostModel::default(),
            20,
            3,
        );
        let mut trace = DegradeTrace::new();
        let level = ctl.checkpoint(PlanStage::Start, 3, &mut trace);
        assert_eq!(level, BrownoutLevel::FlatTopK);
        let steps: Vec<u8> =
            trace.events.iter().filter_map(|e| e.fallback.brownout_step()).collect();
        assert_eq!(steps, vec![1, 2, 3, 4]);
        // A later checkpoint at the same level reports nothing new.
        ctl.checkpoint(PlanStage::Read, 0, &mut trace);
        assert_eq!(trace.events.len(), 4);
    }

    #[test]
    fn generous_budget_reports_nothing() {
        let mut ctl = BrownoutCtl::new(QueryBudget::generous(), CostModel::default(), 20, 3);
        let mut trace = DegradeTrace::new();
        for (stage, rounds) in [
            (PlanStage::Start, 3),
            (PlanStage::Rerank, 3),
            (PlanStage::Select, 3),
            (PlanStage::Read, 3),
            (PlanStage::Feedback, 3),
        ] {
            assert_eq!(ctl.checkpoint(stage, rounds, &mut trace), BrownoutLevel::None);
        }
        assert!(trace.is_clean());
    }
}
