//! The observable outcomes of the pipeline: offline build statistics and
//! the per-question [`QueryResult`].

use sage_admission::BrownoutLevel;
use sage_eval::Cost;
use sage_llm::Answer;
use sage_resilience::DegradeTrace;
use std::time::Duration;

/// Offline build statistics (the left half of Tables VIII/IX).
#[derive(Debug, Clone, Copy)]
pub struct BuildStats {
    /// Number of chunks produced by segmentation.
    pub chunk_count: usize,
    /// Wall-clock time spent segmenting the corpus.
    pub segmentation_time: Duration,
    /// Wall-clock time spent building the retrieval index.
    pub index_time: Duration,
    /// Corpus size in (estimated) LLM tokens.
    pub corpus_tokens: usize,
    /// Approximate resident memory: index structures + chunk text.
    pub memory_bytes: usize,
}

/// Everything a single question produced.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The final answer (text, confidence, per-call cost of the *final*
    /// generation call).
    pub answer: Answer,
    /// Chosen option index for multiple-choice questions.
    pub picked_option: Option<usize>,
    /// Chunk ids (into [`crate::pipeline::RagSystem::chunks`]) used as the
    /// final context.
    pub selected: Vec<usize>,
    /// Total token cost across all generation + feedback calls.
    pub cost: Cost,
    /// Number of feedback rounds executed (0 when feedback is off).
    pub feedback_rounds: usize,
    /// Measured retrieval + rerank wall-clock latency.
    pub retrieval_latency: Duration,
    /// Simulated LLM generation latency (summed over rounds).
    pub answer_latency: Duration,
    /// Simulated feedback-call latency (summed over rounds).
    pub feedback_latency: Duration,
    /// Feedback score of the returned answer, when feedback ran.
    pub feedback_score: Option<u8>,
    /// Fallbacks fired while serving this question. Empty (`is_clean`)
    /// when the whole pipeline ran on its primary path — always the case
    /// when resilience is disabled. Budget-driven brownout steps land here
    /// too, one event per ladder rung applied.
    pub degraded: DegradeTrace,
    /// Deepest brownout ladder level this query ratcheted to.
    /// [`BrownoutLevel::None`] on every unbudgeted path.
    pub brownout: BrownoutLevel,
}

impl QueryResult {
    /// The result of a single generation call over a fixed context: no
    /// selection, no feedback loop, no degradation. Shared by the
    /// executor's fixed-context plan and the non-RAG baselines, so the
    /// bookkeeping (cost merge, honest zero feedback latency) cannot
    /// drift between them.
    pub(crate) fn single_read(
        answer: Answer,
        picked_option: Option<usize>,
        selected: Vec<usize>,
        retrieval_latency: Duration,
    ) -> Self {
        let mut cost = Cost::zero();
        cost.merge(answer.cost);
        QueryResult {
            answer_latency: answer.latency,
            answer,
            picked_option,
            selected,
            cost,
            feedback_rounds: 0,
            retrieval_latency,
            // Honest zero: no feedback round runs on this path.
            feedback_latency: Duration::ZERO,
            feedback_score: None,
            degraded: DegradeTrace::new(),
            brownout: BrownoutLevel::None,
        }
    }
}
