//! The SAGE pipeline (paper Figure 2): build (segment → embed → index) and
//! query (retrieve → rerank → gradient-select → generate → self-feedback).

use crate::config::{RetrieverKind, SageConfig};
use crate::models::TrainedModels;
use sage_embed::HashedEmbedder;
use sage_eval::Cost;
use sage_llm::{Answer, LlmProfile, SimLlm};
use sage_rerank::{gradient_select, CrossScorer, RankedChunk, SelectionConfig};
use sage_embed::{DualEncoder, SiameseEncoder};
use sage_retrieval::{Bm25Retriever, DenseRetriever, Retriever, ScoredChunk};
use sage_segment::{Segmenter, SemanticSegmenter, SentenceSegmenter};
use sage_vecdb::FlatIndex;
use std::time::{Duration, Instant};

/// Offline build statistics (the left half of Tables VIII/IX).
#[derive(Debug, Clone, Copy)]
pub struct BuildStats {
    /// Number of chunks produced by segmentation.
    pub chunk_count: usize,
    /// Wall-clock time spent segmenting the corpus.
    pub segmentation_time: Duration,
    /// Wall-clock time spent building the retrieval index.
    pub index_time: Duration,
    /// Corpus size in (estimated) LLM tokens.
    pub corpus_tokens: usize,
    /// Approximate resident memory: index structures + chunk text.
    pub memory_bytes: usize,
}

/// Everything a single question produced.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The final answer (text, confidence, per-call cost of the *final*
    /// generation call).
    pub answer: Answer,
    /// Chosen option index for multiple-choice questions.
    pub picked_option: Option<usize>,
    /// Chunk ids (into [`RagSystem::chunks`]) used as the final context.
    pub selected: Vec<usize>,
    /// Total token cost across all generation + feedback calls.
    pub cost: Cost,
    /// Number of feedback rounds executed (0 when feedback is off).
    pub feedback_rounds: usize,
    /// Measured retrieval + rerank wall-clock latency.
    pub retrieval_latency: Duration,
    /// Simulated LLM generation latency (summed over rounds).
    pub answer_latency: Duration,
    /// Simulated feedback-call latency (summed over rounds).
    pub feedback_latency: Duration,
    /// Feedback score of the returned answer, when feedback ran.
    pub feedback_score: Option<u8>,
}

/// The concrete retriever variants a [`RagSystem`] can hold. A closed enum
/// (rather than `Box<dyn Retriever>`) so built systems can be persisted —
/// each variant knows how to serialize itself.
pub enum AnyRetriever {
    /// OpenAI-analog hashed encoder + flat index.
    Hashed(DenseRetriever<sage_embed::HashedEmbedder, FlatIndex>),
    /// SBERT-analog siamese encoder + flat index.
    Sbert(DenseRetriever<SiameseEncoder, FlatIndex>),
    /// DPR-analog dual encoder + flat index.
    Dpr(DenseRetriever<DualEncoder, FlatIndex>),
    /// BM25 inverted index.
    Bm25(Bm25Retriever),
}

impl AnyRetriever {
    fn as_dyn(&self) -> &dyn Retriever {
        match self {
            AnyRetriever::Hashed(r) => r,
            AnyRetriever::Sbert(r) => r,
            AnyRetriever::Dpr(r) => r,
            AnyRetriever::Bm25(r) => r,
        }
    }

    fn index_chunks(&mut self, chunks: &[String]) {
        match self {
            AnyRetriever::Hashed(r) => r.index(chunks),
            AnyRetriever::Sbert(r) => r.index(chunks),
            AnyRetriever::Dpr(r) => r.index(chunks),
            AnyRetriever::Bm25(r) => r.index(chunks),
        }
    }

    fn retrieve(&self, query: &str, n: usize) -> Vec<ScoredChunk> {
        self.as_dyn().retrieve(query, n)
    }

    fn memory_bytes(&self) -> usize {
        self.as_dyn().memory_bytes()
    }

    /// Persistence hook: (embedder blob, flat-index ref) for dense
    /// variants; `None` for BM25 (which rebuilds from the chunk store).
    pub(crate) fn dense_state(&self) -> Option<(bytes::Bytes, &FlatIndex)> {
        use sage_nn::BytesSerialize;
        match self {
            AnyRetriever::Hashed(r) => Some((r.embedder().to_bytes(), r.index_ref())),
            AnyRetriever::Sbert(r) => Some((r.embedder().to_bytes(), r.index_ref())),
            AnyRetriever::Dpr(r) => Some((r.embedder().to_bytes(), r.index_ref())),
            AnyRetriever::Bm25(_) => None,
        }
    }
}

/// A built RAG system over one corpus.
pub struct RagSystem {
    config: SageConfig,
    kind: RetrieverKind,
    chunks: Vec<String>,
    retriever: AnyRetriever,
    scorer: Option<CrossScorer>,
    llm: SimLlm,
    stats: BuildStats,
}

impl RagSystem {
    /// Build a system over `corpus` (one string per document; documents
    /// use `'\n'` between paragraphs).
    pub fn build(
        models: &TrainedModels,
        kind: RetrieverKind,
        config: SageConfig,
        profile: LlmProfile,
        corpus: &[String],
    ) -> Self {
        // 1. Segmentation (Figure 2 (A) steps 1-2).
        let seg_start = Instant::now();
        let chunks: Vec<String> = if config.use_segmentation {
            let segmenter = SemanticSegmenter::with_params(
                models.segmentation.clone(),
                config.segmentation_threshold,
                config.coarse_tokens,
            );
            corpus.iter().flat_map(|doc| segmenter.segment(doc)).collect()
        } else {
            let segmenter = SentenceSegmenter { max_tokens: config.naive_chunk_tokens };
            corpus.iter().flat_map(|doc| segmenter.segment(doc)).collect()
        };
        let segmentation_time = seg_start.elapsed();

        // 2. Index construction (steps 3-4).
        let index_start = Instant::now();
        let mut retriever = match kind {
            RetrieverKind::Bm25 => AnyRetriever::Bm25(Bm25Retriever::new()),
            RetrieverKind::OpenAiSim => AnyRetriever::Hashed(DenseRetriever::new(
                HashedEmbedder::default_model(),
                FlatIndex::cosine(),
            )),
            RetrieverKind::Sbert => AnyRetriever::Sbert(DenseRetriever::new(
                models.siamese.clone(),
                FlatIndex::cosine(),
            )),
            RetrieverKind::Dpr => AnyRetriever::Dpr(DenseRetriever::new(
                models.dual.clone(),
                FlatIndex::cosine(),
            )),
        };
        retriever.index_chunks(&chunks);
        let index_time = index_start.elapsed();

        // 3. Reranker with corpus IDF (needed for reranking or selection).
        let scorer = if config.use_rerank || config.use_selection {
            let mut s = models.scorer.clone();
            s.fit_idf(&chunks);
            Some(s)
        } else {
            None
        };

        let corpus_tokens = corpus.iter().map(|d| sage_text::count_tokens(d)).sum();
        let memory_bytes = retriever.memory_bytes()
            + chunks.iter().map(|c| c.capacity()).sum::<usize>();
        let stats = BuildStats {
            chunk_count: chunks.len(),
            segmentation_time,
            index_time,
            corpus_tokens,
            memory_bytes,
        };
        Self { config, kind, chunks, retriever, scorer, llm: SimLlm::new(profile), stats }
    }

    /// Incrementally add documents to a built system: new text is
    /// segmented with the same strategy, appended to the chunk store,
    /// indexed (dense indexes extend in place; BM25 rebuilds its postings,
    /// which costs milliseconds), and the reranker's IDF is refitted.
    pub fn add_documents(&mut self, models: &TrainedModels, corpus: &[String]) {
        let new_chunks: Vec<String> = if self.config.use_segmentation {
            let segmenter = SemanticSegmenter::with_params(
                models.segmentation.clone(),
                self.config.segmentation_threshold,
                self.config.coarse_tokens,
            );
            corpus.iter().flat_map(|doc| segmenter.segment(doc)).collect()
        } else {
            let segmenter = SentenceSegmenter { max_tokens: self.config.naive_chunk_tokens };
            corpus.iter().flat_map(|doc| segmenter.segment(doc)).collect()
        };
        self.chunks.extend(new_chunks);
        // Dense indexes append; BM25 rebuilds.
        self.retriever.index_chunks(&self.chunks);
        if let Some(scorer) = &mut self.scorer {
            scorer.fit_idf(&self.chunks);
        }
        self.stats.chunk_count = self.chunks.len();
        self.stats.corpus_tokens += corpus.iter().map(|d| sage_text::count_tokens(d)).sum::<usize>();
        self.stats.memory_bytes = self.retriever.memory_bytes()
            + self.chunks.iter().map(|c| c.capacity()).sum::<usize>();
    }

    /// Answer many open-ended questions with `workers` threads. Results
    /// align with the input order; answers are identical to serial calls
    /// (the reader is deterministic per question).
    pub fn answer_batch(&self, questions: &[String], workers: usize) -> Vec<QueryResult> {
        if questions.is_empty() {
            return Vec::new();
        }
        let workers = workers.clamp(1, questions.len());
        let mut results: Vec<Option<QueryResult>> = (0..questions.len()).map(|_| None).collect();
        let indexed: Vec<(usize, &String)> = questions.iter().enumerate().collect();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for w in 0..workers {
                let mine: Vec<(usize, &String)> =
                    indexed.iter().skip(w).step_by(workers).copied().collect();
                handles.push(s.spawn(move || {
                    mine.into_iter().map(|(i, q)| (i, self.answer_open(q))).collect::<Vec<_>>()
                }));
            }
            for h in handles {
                for (i, r) in h.join().expect("answer worker panicked") {
                    results[i] = Some(r);
                }
            }
        });
        results.into_iter().map(|r| r.expect("all questions answered")).collect()
    }

    /// The retriever kind this system was built with.
    pub fn retriever_kind(&self) -> RetrieverKind {
        self.kind
    }

    /// Persistence hook for `persist.rs`.
    pub(crate) fn dense_state(&self) -> Option<(bytes::Bytes, &FlatIndex)> {
        self.retriever.dense_state()
    }

    /// The fitted reranker, if any (persistence hook).
    pub(crate) fn scorer_ref(&self) -> Option<&CrossScorer> {
        self.scorer.as_ref()
    }

    /// Reassemble a system from persisted parts (no re-segmentation, no
    /// re-indexing). Build stats report zero offline time and current
    /// memory.
    pub(crate) fn from_parts(
        config: SageConfig,
        kind: RetrieverKind,
        chunks: Vec<String>,
        retriever: AnyRetriever,
        scorer: Option<CrossScorer>,
        profile: LlmProfile,
    ) -> Self {
        let corpus_tokens = chunks.iter().map(|c| sage_text::count_tokens(c)).sum();
        let memory_bytes =
            retriever.memory_bytes() + chunks.iter().map(|c| c.capacity()).sum::<usize>();
        let stats = BuildStats {
            chunk_count: chunks.len(),
            segmentation_time: Duration::ZERO,
            index_time: Duration::ZERO,
            corpus_tokens,
            memory_bytes,
        };
        Self { config, kind, chunks, retriever, scorer, llm: SimLlm::new(profile), stats }
    }

    /// The chunk store.
    pub fn chunks(&self) -> &[String] {
        &self.chunks
    }

    /// Offline build statistics.
    pub fn build_stats(&self) -> &BuildStats {
        &self.stats
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SageConfig {
        &self.config
    }

    /// The underlying reader.
    pub fn llm(&self) -> &SimLlm {
        &self.llm
    }

    /// Retrieve + rerank once; returns (candidate chunk ids, ranked list
    /// over candidate positions).
    fn retrieve_ranked(&self, question: &str) -> (Vec<usize>, Vec<RankedChunk>) {
        let hits = self.retriever.retrieve(question, self.config.candidates);
        let cand_ids: Vec<usize> = hits.iter().map(|h| h.index).collect();
        let ranked = match &self.scorer {
            Some(scorer) => {
                let texts: Vec<&str> = cand_ids.iter().map(|&i| self.chunks[i].as_str()).collect();
                scorer.rerank(question, &texts)
            }
            None => hits
                .iter()
                .enumerate()
                .map(|(pos, h)| RankedChunk { index: pos, score: h.score })
                .collect(),
        };
        (cand_ids, ranked)
    }

    /// Select the context for the current `min_k` (Algorithm 2 when
    /// selection is on, fixed top-K otherwise).
    fn select(&self, ranked: &[RankedChunk], min_k: usize) -> Vec<usize> {
        if self.config.use_selection {
            let cfg = SelectionConfig {
                min_k,
                gradient: self.config.gradient,
                max_k: self.config.candidates,
                ..SelectionConfig::default()
            };
            gradient_select(ranked, cfg).iter().map(|r| r.index).collect()
        } else {
            ranked.iter().take(min_k.max(1)).map(|r| r.index).collect()
        }
    }

    /// The sorted relevance scores of the question's candidates — the
    /// Figure-5 curve. Uses the reranker when present, otherwise the
    /// retriever's own scores.
    pub fn rerank_scores(&self, question: &str) -> Vec<f32> {
        let (_, ranked) = self.retrieve_ranked(question);
        ranked.iter().map(|r| r.score).collect()
    }

    /// First-stage + rerank for a question: `(candidate chunk ids, ranked
    /// list over candidate positions)`. Lets callers plug in custom chunk
    /// selection (e.g. the flexible selector of the paper's future work)
    /// and then answer via [`RagSystem::answer_with_chunks`].
    pub fn candidates(&self, question: &str) -> (Vec<usize>, Vec<RankedChunk>) {
        self.retrieve_ranked(question)
    }

    /// One generation call over an explicit set of chunk ids (no selection,
    /// no feedback loop). `options` switches to multiple-choice mode.
    pub fn answer_with_chunks(
        &self,
        question: &str,
        chunk_ids: &[usize],
        options: Option<&[String]>,
    ) -> QueryResult {
        let context: Vec<String> = chunk_ids.iter().map(|&id| self.chunks[id].clone()).collect();
        let (picked, answer) = match options {
            Some(opts) => {
                let (idx, a) = self.llm.answer_multiple_choice(question, opts, &context);
                (Some(idx), a)
            }
            None => (None, self.llm.answer_open(question, &context)),
        };
        let mut cost = Cost::zero();
        cost.merge(answer.cost);
        QueryResult {
            answer_latency: answer.latency,
            answer,
            picked_option: picked,
            selected: chunk_ids.to_vec(),
            cost,
            feedback_rounds: 0,
            retrieval_latency: Duration::ZERO,
            feedback_latency: Duration::ZERO,
            feedback_score: None,
        }
    }

    /// Answer an open-ended question.
    pub fn answer_open(&self, question: &str) -> QueryResult {
        self.run(question, None)
    }

    /// Answer a multiple-choice question.
    pub fn answer_multiple_choice(&self, question: &str, options: &[String]) -> QueryResult {
        self.run(question, Some(options))
    }

    /// The Figure-2 query loop.
    fn run(&self, question: &str, options: Option<&[String]>) -> QueryResult {
        let retrieval_start = Instant::now();
        let (cand_ids, ranked) = self.retrieve_ranked(question);
        let retrieval_latency = retrieval_start.elapsed();

        let mut min_k = self.config.min_k;
        let mut total_cost = Cost::zero();
        let mut answer_latency = Duration::ZERO;
        let mut feedback_latency = Duration::ZERO;
        let rounds = if self.config.use_feedback { self.config.max_feedback_rounds } else { 1 };

        // Track the best round by feedback score; without feedback the
        // single round wins by construction.
        let mut best: Option<(u8, Answer, Option<usize>, Vec<usize>)> = None;
        let mut executed_feedback = 0usize;
        let mut last_selection: Option<Vec<usize>> = None;

        for round in 0..rounds {
            let selected_positions = self.select(&ranked, min_k);
            // The reader is deterministic: re-running with an identical
            // context reproduces the same answer and judgement, so a round
            // whose adjusted min_k selects the same chunks is pure token
            // waste — stop the loop instead.
            if last_selection.as_deref() == Some(&selected_positions) {
                break;
            }
            last_selection = Some(selected_positions.clone());
            let selected: Vec<usize> =
                selected_positions.iter().map(|&pos| cand_ids[pos]).collect();
            let context: Vec<String> =
                selected.iter().map(|&id| self.chunks[id].clone()).collect();

            let (picked, answer) = match options {
                Some(opts) => {
                    let (idx, a) = self.llm.answer_multiple_choice(question, opts, &context);
                    (Some(idx), a)
                }
                None => (None, self.llm.answer_open(question, &context)),
            };
            total_cost.merge(answer.cost);
            answer_latency += answer.latency;

            if !self.config.use_feedback {
                return QueryResult {
                    answer,
                    picked_option: picked,
                    selected,
                    cost: total_cost,
                    feedback_rounds: 0,
                    retrieval_latency,
                    answer_latency,
                    feedback_latency,
                    feedback_score: None,
                };
            }

            let fb = self.llm.self_feedback(question, &context, &answer);
            executed_feedback += 1;
            total_cost.merge(fb.cost);
            feedback_latency += fb.latency;

            let better = best.as_ref().is_none_or(|(s, ..)| fb.score > *s);
            if better {
                best = Some((fb.score, answer, picked, selected));
            }
            if fb.score >= self.config.feedback_threshold || round + 1 == rounds {
                break;
            }
            // Adjust min_k per the judge's context assessment (Figure 2
            // (C) step 6): -1 drops a chunk, +1 requests one more.
            let next = min_k as i64 + i64::from(fb.adjustment);
            min_k = next.clamp(1, self.config.candidates as i64) as usize;
        }

        let (score, answer, picked, selected) = best.expect("at least one round ran");
        QueryResult {
            answer,
            picked_option: picked,
            selected,
            cost: total_cost,
            feedback_rounds: executed_feedback,
            retrieval_latency,
            answer_latency,
            feedback_latency,
            feedback_score: Some(score),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{TrainBudget, TrainedModels};
    use std::sync::OnceLock;

    fn models() -> &'static TrainedModels {
        static M: OnceLock<TrainedModels> = OnceLock::new();
        M.get_or_init(|| TrainedModels::train(TrainBudget::tiny()))
    }

    fn corpus() -> Vec<String> {
        vec![
            "Whiskers is a playful tabby cat. He has bright green eyes. His fur is mostly gray.\n\
             The morning fog settled over the valley, as it had for many years.\n\
             Patchy is a ferret with a stubborn streak. Patchy has bright orange eyes.\n\
             Dorinwick was well known in the region. He lives in Ashford. He works as a baker."
                .to_string(),
        ]
    }

    #[test]
    fn sage_answers_open_question() {
        let sys = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &corpus(),
        );
        assert!(sys.build_stats().chunk_count > 1);
        let r = sys.answer_open("What is the color of Whiskers's eyes?");
        assert!(r.answer.text.contains("green"), "got {:?}", r.answer.text);
        assert!(!r.selected.is_empty());
        assert!(r.cost.input_tokens > 0);
        assert!(r.feedback_rounds >= 1);
        assert!(r.feedback_score.is_some());
    }

    #[test]
    fn naive_rag_answers_without_feedback() {
        let sys = RagSystem::build(
            models(),
            RetrieverKind::Bm25,
            SageConfig::naive_rag(),
            LlmProfile::gpt4o_mini(),
            &corpus(),
        );
        let r = sys.answer_open("Where does Dorinwick live?");
        assert_eq!(r.feedback_rounds, 0);
        assert!(r.feedback_score.is_none());
        assert!(r.answer.text.contains("ashford"), "got {:?}", r.answer.text);
    }

    #[test]
    fn multiple_choice_path() {
        let sys = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4(),
            &corpus(),
        );
        let options: Vec<String> =
            ["orange", "green", "violet", "gray"].iter().map(|s| s.to_string()).collect();
        let r = sys.answer_multiple_choice("What is the color of Whiskers's eyes?", &options);
        assert_eq!(r.picked_option, Some(1), "answer {:?}", r.answer.text);
    }

    #[test]
    fn sage_uses_fewer_context_tokens_than_naive() {
        // Table XI's mechanism: semantic chunks + selection shrink the
        // generation input. Needs a realistically sized document — on a
        // tiny corpus both methods retrieve everything.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use sage_corpus::document::{generate_document, DocSpec};
        let mut rng = StdRng::seed_from_u64(404);
        let spec = DocSpec {
            num_entities: 16,
            facts_per_entity: 4,
            multi_fact_count: 5,
            filler_paragraphs: 16,
            pronoun_prob: 0.6,
        };
        let doc = generate_document(0, &spec, &mut rng).document;
        let big_corpus = vec![doc.text()];
        let sage = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig { use_feedback: false, ..SageConfig::sage() },
            LlmProfile::gpt4o_mini(),
            &big_corpus,
        );
        let naive = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::naive_rag(),
            LlmProfile::gpt4o_mini(),
            &big_corpus,
        );
        let q = "What is the color of Whiskers's eyes?";
        let rs = sage.answer_open(q);
        let rn = naive.answer_open(q);
        assert!(
            rs.answer.cost.input_tokens < rn.answer.cost.input_tokens,
            "sage {} vs naive {}",
            rs.answer.cost.input_tokens,
            rn.answer.cost.input_tokens
        );
    }

    #[test]
    fn build_stats_populated() {
        let sys = RagSystem::build(
            models(),
            RetrieverKind::Sbert,
            SageConfig::sage(),
            LlmProfile::unifiedqa_3b(),
            &corpus(),
        );
        let s = sys.build_stats();
        assert!(s.corpus_tokens > 0);
        assert!(s.memory_bytes > 0);
        assert!(s.chunk_count > 0);
        assert_eq!(
            s.chunk_count,
            sys.chunks().len(),
        );
    }

    #[test]
    fn all_retriever_kinds_build() {
        for kind in RetrieverKind::all() {
            let sys = RagSystem::build(
                models(),
                kind,
                SageConfig::sage(),
                LlmProfile::gpt4o_mini(),
                &corpus(),
            );
            let r = sys.answer_open("Where does Dorinwick live?");
            assert!(!r.selected.is_empty(), "{kind:?} selected nothing");
        }
    }
}
