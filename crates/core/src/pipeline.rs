//! The SAGE pipeline (paper Figure 2): build (segment → embed → index) and
//! query (retrieve → rerank → gradient-select → generate → self-feedback).

// sage-lint: allow-file(no-wallclock) - this file IS the latency measurement layer: build/query stage timings feed BuildStats, QueryResult and the telemetry stage histograms; no control flow branches on the readings

use crate::brownout::BrownoutCtl;
use crate::config::{RetrieverKind, SageConfig};
use crate::models::TrainedModels;
use crate::resilience::{QueryGuards, ResilienceConfig, ResilienceState};
use sage_admission::{
    AdmissionConfig, AdmissionQueue, BrownoutLevel, CostModel, Decision, PlanStage, Priority,
    QueryBudget,
};
use sage_embed::HashedEmbedder;
use sage_eval::Cost;
use sage_llm::{Answer, LlmProfile, SimLlm};
use sage_rerank::{gradient_select, CrossScorer, RankedChunk, SelectionConfig};
use sage_embed::{DualEncoder, SiameseEncoder};
use sage_resilience::{Component, DegradeEvent, DegradeTrace, Failure, Fallback, SageError};
use sage_retrieval::{Bm25Retriever, DenseRetriever, Retriever, ScoredChunk};
use sage_segment::{Segmenter, SemanticSegmenter, SentenceSegmenter};
use sage_telemetry::{BuildRecord, Stage, Telemetry, Trace};
use sage_vecdb::{FlatIndex, VectorIndex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Offline build statistics (the left half of Tables VIII/IX).
#[derive(Debug, Clone, Copy)]
pub struct BuildStats {
    /// Number of chunks produced by segmentation.
    pub chunk_count: usize,
    /// Wall-clock time spent segmenting the corpus.
    pub segmentation_time: Duration,
    /// Wall-clock time spent building the retrieval index.
    pub index_time: Duration,
    /// Corpus size in (estimated) LLM tokens.
    pub corpus_tokens: usize,
    /// Approximate resident memory: index structures + chunk text.
    pub memory_bytes: usize,
}

/// Everything a single question produced.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The final answer (text, confidence, per-call cost of the *final*
    /// generation call).
    pub answer: Answer,
    /// Chosen option index for multiple-choice questions.
    pub picked_option: Option<usize>,
    /// Chunk ids (into [`RagSystem::chunks`]) used as the final context.
    pub selected: Vec<usize>,
    /// Total token cost across all generation + feedback calls.
    pub cost: Cost,
    /// Number of feedback rounds executed (0 when feedback is off).
    pub feedback_rounds: usize,
    /// Measured retrieval + rerank wall-clock latency.
    pub retrieval_latency: Duration,
    /// Simulated LLM generation latency (summed over rounds).
    pub answer_latency: Duration,
    /// Simulated feedback-call latency (summed over rounds).
    pub feedback_latency: Duration,
    /// Feedback score of the returned answer, when feedback ran.
    pub feedback_score: Option<u8>,
    /// Fallbacks fired while serving this question. Empty (`is_clean`)
    /// when the whole pipeline ran on its primary path — always the case
    /// when resilience is disabled. Budget-driven brownout steps land here
    /// too, one event per ladder rung applied.
    pub degraded: DegradeTrace,
    /// Deepest brownout ladder level this query ratcheted to.
    /// [`BrownoutLevel::None`] on every unbudgeted path.
    pub brownout: BrownoutLevel,
}

/// The concrete retriever variants a [`RagSystem`] can hold. A closed enum
/// (rather than `Box<dyn Retriever>`) so built systems can be persisted —
/// each variant knows how to serialize itself.
pub enum AnyRetriever {
    /// OpenAI-analog hashed encoder + flat index.
    Hashed(DenseRetriever<sage_embed::HashedEmbedder, FlatIndex>),
    /// SBERT-analog siamese encoder + flat index.
    Sbert(DenseRetriever<SiameseEncoder, FlatIndex>),
    /// DPR-analog dual encoder + flat index.
    Dpr(DenseRetriever<DualEncoder, FlatIndex>),
    /// BM25 inverted index.
    Bm25(Bm25Retriever),
}

impl AnyRetriever {
    fn as_dyn(&self) -> &dyn Retriever {
        match self {
            AnyRetriever::Hashed(r) => r,
            AnyRetriever::Sbert(r) => r,
            AnyRetriever::Dpr(r) => r,
            AnyRetriever::Bm25(r) => r,
        }
    }

    fn index_chunks(&mut self, chunks: &[String]) {
        match self {
            AnyRetriever::Hashed(r) => r.index(chunks),
            AnyRetriever::Sbert(r) => r.index(chunks),
            AnyRetriever::Dpr(r) => r.index(chunks),
            AnyRetriever::Bm25(r) => r.index(chunks),
        }
    }

    fn retrieve(&self, query: &str, n: usize) -> Vec<ScoredChunk> {
        self.as_dyn().retrieve(query, n)
    }

    fn memory_bytes(&self) -> usize {
        self.as_dyn().memory_bytes()
    }

    /// Embed a query with the dense embedder (`None` for BM25) — the first
    /// half of `retrieve`, exposed as its own failure domain.
    fn embed_query(&self, query: &str) -> Option<Vec<f32>> {
        match self {
            AnyRetriever::Hashed(r) => Some(r.embed_query(query)),
            AnyRetriever::Sbert(r) => Some(r.embed_query(query)),
            AnyRetriever::Dpr(r) => Some(r.embed_query(query)),
            AnyRetriever::Bm25(_) => None,
        }
    }

    /// Exact flat-index search over an already-embedded query (`None` for
    /// BM25) — the second half of `retrieve`.
    fn search_dense(&self, query: &[f32], n: usize) -> Option<Vec<ScoredChunk>> {
        match self {
            AnyRetriever::Hashed(r) => Some(r.search_with(query, n)),
            AnyRetriever::Sbert(r) => Some(r.search_with(query, n)),
            AnyRetriever::Dpr(r) => Some(r.search_with(query, n)),
            AnyRetriever::Bm25(_) => None,
        }
    }

    /// Whether this is a dense (embedder + vector index) variant.
    fn is_dense(&self) -> bool {
        !matches!(self, AnyRetriever::Bm25(_))
    }

    /// The underlying flat index of dense variants.
    pub(crate) fn flat_ref(&self) -> Option<&FlatIndex> {
        match self {
            AnyRetriever::Hashed(r) => Some(r.index_ref()),
            AnyRetriever::Sbert(r) => Some(r.index_ref()),
            AnyRetriever::Dpr(r) => Some(r.index_ref()),
            AnyRetriever::Bm25(_) => None,
        }
    }

    /// Persistence hook: (embedder blob, flat-index ref) for dense
    /// variants; `None` for BM25 (which rebuilds from the chunk store).
    pub(crate) fn dense_state(&self) -> Option<(bytes::Bytes, &FlatIndex)> {
        use sage_nn::BytesSerialize;
        match self {
            AnyRetriever::Hashed(r) => Some((r.embedder().to_bytes(), r.index_ref())),
            AnyRetriever::Sbert(r) => Some((r.embedder().to_bytes(), r.index_ref())),
            AnyRetriever::Dpr(r) => Some((r.embedder().to_bytes(), r.index_ref())),
            AnyRetriever::Bm25(_) => None,
        }
    }
}

/// Append one fired fallback to a query's degradation trace.
fn push_event(
    trace: &mut DegradeTrace,
    component: Component,
    fallback: Fallback,
    failure: Failure,
) {
    trace.events.push(DegradeEvent {
        component,
        fallback,
        error: failure.error,
        attempts: failure.attempts,
        delay: failure.delay,
    });
}

/// Open a span on the query trace, if one is being recorded.
fn span_enter(qt: &mut Option<Trace>, name: &'static str) -> Option<usize> {
    qt.as_mut().map(|t| t.enter(name))
}

/// Close a span opened by [`span_enter`].
fn span_exit(qt: &mut Option<Trace>, id: Option<usize>) {
    if let (Some(t), Some(id)) = (qt.as_mut(), id) {
        t.exit(id);
    }
}

/// A built RAG system over one corpus.
pub struct RagSystem {
    config: SageConfig,
    kind: RetrieverKind,
    chunks: Vec<String>,
    retriever: AnyRetriever,
    scorer: Option<CrossScorer>,
    llm: SimLlm,
    stats: BuildStats,
    /// Runtime-only serving-path resilience (never persisted); `None`
    /// means guards are off and every query runs the bare primary path.
    resilience: Option<ResilienceState>,
    /// Runtime-only telemetry hub (never persisted); `None` means no
    /// spans, histograms, or ledger entries are recorded for this system.
    telemetry: Option<Arc<Telemetry>>,
    /// Runtime-only admission queue (never persisted); `None` means every
    /// submission is accepted. A `std::sync::Mutex` rather than an atomic
    /// design: admit decisions must see a consistent (depth, seq) pair to
    /// stay deterministic, and the critical section is a few arithmetic
    /// ops.
    admission: Option<Mutex<AdmissionQueue>>,
}

impl RagSystem {
    /// Build a system over `corpus` (one string per document; documents
    /// use `'\n'` between paragraphs).
    pub fn build(
        models: &TrainedModels,
        kind: RetrieverKind,
        config: SageConfig,
        profile: LlmProfile,
        corpus: &[String],
    ) -> Self {
        // 1. Segmentation (Figure 2 (A) steps 1-2).
        let seg_start = Instant::now();
        let chunks: Vec<String> = if config.use_segmentation {
            let segmenter = SemanticSegmenter::with_params(
                models.segmentation.clone(),
                config.segmentation_threshold,
                config.coarse_tokens,
            );
            corpus.iter().flat_map(|doc| segmenter.segment(doc)).collect()
        } else {
            let segmenter = SentenceSegmenter { max_tokens: config.naive_chunk_tokens };
            corpus.iter().flat_map(|doc| segmenter.segment(doc)).collect()
        };
        let segmentation_time = seg_start.elapsed();

        // 2. Index construction (steps 3-4).
        let index_start = Instant::now();
        let mut retriever = match kind {
            RetrieverKind::Bm25 => AnyRetriever::Bm25(Bm25Retriever::new()),
            RetrieverKind::OpenAiSim => AnyRetriever::Hashed(DenseRetriever::new(
                HashedEmbedder::default_model(),
                FlatIndex::cosine(),
            )),
            RetrieverKind::Sbert => AnyRetriever::Sbert(DenseRetriever::new(
                models.siamese.clone(),
                FlatIndex::cosine(),
            )),
            RetrieverKind::Dpr => AnyRetriever::Dpr(DenseRetriever::new(
                models.dual.clone(),
                FlatIndex::cosine(),
            )),
        };
        retriever.index_chunks(&chunks);
        let index_time = index_start.elapsed();

        // 3. Reranker with corpus IDF (needed for reranking or selection).
        let scorer = if config.use_rerank || config.use_selection {
            let mut s = models.scorer.clone();
            s.fit_idf(&chunks);
            Some(s)
        } else {
            None
        };

        let corpus_tokens = corpus.iter().map(|d| sage_text::count_tokens(d)).sum();
        let memory_bytes = retriever.memory_bytes()
            + chunks.iter().map(|c| c.capacity()).sum::<usize>();
        let stats = BuildStats {
            chunk_count: chunks.len(),
            segmentation_time,
            index_time,
            corpus_tokens,
            memory_bytes,
        };
        Self {
            config,
            kind,
            chunks,
            retriever,
            scorer,
            llm: SimLlm::new(profile),
            stats,
            resilience: None,
            telemetry: None,
            admission: None,
        }
    }

    /// Incrementally add documents to a built system: new text is
    /// segmented with the same strategy, appended to the chunk store,
    /// indexed (dense indexes extend in place; BM25 rebuilds its postings,
    /// which costs milliseconds), and the reranker's IDF is refitted.
    pub fn add_documents(&mut self, models: &TrainedModels, corpus: &[String]) {
        let new_chunks: Vec<String> = if self.config.use_segmentation {
            let segmenter = SemanticSegmenter::with_params(
                models.segmentation.clone(),
                self.config.segmentation_threshold,
                self.config.coarse_tokens,
            );
            corpus.iter().flat_map(|doc| segmenter.segment(doc)).collect()
        } else {
            let segmenter = SentenceSegmenter { max_tokens: self.config.naive_chunk_tokens };
            corpus.iter().flat_map(|doc| segmenter.segment(doc)).collect()
        };
        self.chunks.extend(new_chunks);
        // Dense indexes append; BM25 rebuilds.
        self.retriever.index_chunks(&self.chunks);
        if let Some(scorer) = &mut self.scorer {
            scorer.fit_idf(&self.chunks);
        }
        self.stats.chunk_count = self.chunks.len();
        self.stats.corpus_tokens += corpus.iter().map(|d| sage_text::count_tokens(d)).sum::<usize>();
        self.stats.memory_bytes = self.retriever.memory_bytes()
            + self.chunks.iter().map(|c| c.capacity()).sum::<usize>();
        // Fallback tiers index the same chunk store; keep them in sync.
        if let Some(state) = &mut self.resilience {
            state.reindex(&self.chunks, self.retriever.flat_ref());
        }
    }

    /// Turn on the serving-path resilience layer: guarded component
    /// boundaries, retries with virtual-time backoff, per-query circuit
    /// breakers, and the documented degradation chain. Builds the fallback
    /// tiers (BM25 postings; optionally an HNSW tier over the dense index).
    ///
    /// With `config.plan` empty and `config.use_hnsw == false`, answers are
    /// identical to the unguarded path — the guards only add validation.
    pub fn enable_resilience(&mut self, config: ResilienceConfig) {
        self.resilience =
            Some(ResilienceState::build(config, &self.chunks, self.retriever.flat_ref()));
    }

    /// Turn the resilience layer off (drops fallback tiers and counters).
    pub fn disable_resilience(&mut self) {
        self.resilience = None;
    }

    /// Whether the resilience layer is active.
    pub fn resilience_enabled(&self) -> bool {
        self.resilience.is_some()
    }

    /// Degraded-mode report: `(fallback label, fire count)` pairs, nonzero
    /// entries only, since resilience was enabled. `None` when disabled.
    pub fn fallback_counters(&self) -> Option<Vec<(&'static str, u64)>> {
        self.resilience.as_ref().map(|s| s.counters.snapshot())
    }

    /// Attach a fresh telemetry hub to this system and return it. From now
    /// on every query records a span trace, per-stage latency histograms,
    /// and a token-cost ledger on the hub; the process-global substrate
    /// counters (`sage_telemetry::metrics`) are switched on as well.
    pub fn enable_telemetry(&mut self) -> Arc<Telemetry> {
        let hub = Arc::new(Telemetry::new());
        self.attach_telemetry(Arc::clone(&hub));
        hub
    }

    /// Attach an existing (possibly shared) telemetry hub. Registers this
    /// system's build statistics with the hub — the segmentation and index
    /// wall-clock measured during [`RagSystem::build`] become the hub's
    /// `segment`/`index` stage observations — and enables the global
    /// substrate counters.
    pub fn attach_telemetry(&mut self, hub: Arc<Telemetry>) {
        sage_telemetry::set_enabled(true);
        hub.record_build(BuildRecord {
            chunk_count: self.stats.chunk_count as u64,
            corpus_tokens: self.stats.corpus_tokens as u64,
            memory_bytes: self.stats.memory_bytes as u64,
            segmentation_ns: self.stats.segmentation_time.as_nanos() as u64,
            index_ns: self.stats.index_time.as_nanos() as u64,
        });
        hub.record_stage(Stage::Segment, self.stats.segmentation_time);
        hub.record_stage(Stage::Index, self.stats.index_time);
        self.telemetry = Some(hub);
    }

    /// Detach the telemetry hub. The process-global counter flag stays on
    /// (another system may share it); flip it explicitly with
    /// `sage_telemetry::set_enabled(false)` when the whole process is done
    /// measuring.
    pub fn disable_telemetry(&mut self) {
        self.telemetry = None;
    }

    /// The attached telemetry hub, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Turn on admission control. Batch submissions
    /// ([`RagSystem::try_answer_batch`]) are routed through the bounded
    /// queue as [`Priority::Batch`] work from then on; shed slots surface
    /// as [`SageError::Shed`]. Shed decisions are a pure function of the
    /// queue state and the configured seed — replaying the same submission
    /// sequence sheds the same slots.
    pub fn enable_admission(&mut self, config: AdmissionConfig) {
        self.admission = Some(Mutex::new(AdmissionQueue::new(config)));
    }

    /// Turn admission control off (drops the queue and its counters).
    pub fn disable_admission(&mut self) {
        self.admission = None;
    }

    /// Whether admission control is active.
    pub fn admission_enabled(&self) -> bool {
        self.admission.is_some()
    }

    /// Admission report since [`RagSystem::enable_admission`]: admitted
    /// total plus `(class label, shed count)` pairs (nonzero entries
    /// only). `None` when disabled.
    pub fn admission_report(&self) -> Option<(u64, Vec<(&'static str, u64)>)> {
        self.admission.as_ref().map(|m| {
            let q = Self::lock_queue(m);
            (q.admitted_total(), q.shed_snapshot())
        })
    }

    /// Lock the admission queue, recovering from a poisoned lock (a
    /// panicked batch worker must not wedge the serving path — the queue's
    /// own state is a few integers and stays internally consistent).
    fn lock_queue(m: &Mutex<AdmissionQueue>) -> std::sync::MutexGuard<'_, AdmissionQueue> {
        match m.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Record a stage observation on the attached hub, if any.
    #[inline]
    fn tel_stage(&self, stage: Stage, d: Duration) {
        if let Some(hub) = &self.telemetry {
            hub.record_stage(stage, d);
        }
    }

    /// Attribute one call's cost to a stage on the attached hub, if any.
    #[inline]
    fn tel_cost(&self, stage: Stage, cost: &Cost) {
        if let Some(hub) = &self.telemetry {
            hub.record_cost(stage, cost.input_tokens, cost.output_tokens);
        }
    }

    /// Answer many open-ended questions with `workers` threads. Results
    /// align with the input order; answers are identical to serial calls
    /// (the reader is deterministic per question). `workers == 0` is
    /// clamped to 1 (the empty input returns early before the clamp), and
    /// `workers > questions.len()` to the question count.
    ///
    /// A question whose pipeline panics aborts the whole batch by
    /// re-raising the panic on the caller's thread (the pre-resilience
    /// contract) — and when admission control is enabled, a shed question
    /// is re-raised the same way. Use [`RagSystem::try_answer_batch`] to
    /// get per-question `Err` slots instead.
    pub fn answer_batch(&self, questions: &[String], workers: usize) -> Vec<QueryResult> {
        self.try_answer_batch(questions, workers)
            .into_iter()
            .map(|r| match r {
                Ok(result) => result,
                // sage-lint: allow(no-panic-serving) - documented pre-resilience contract: this method re-raises per-question failures; try_answer_batch is the isolating alternative
                Err(e) => panic!("question failed: {e}"),
            })
            .collect()
    }

    /// [`RagSystem::answer_batch`] with per-question panic isolation: a
    /// panic anywhere in one question's pipeline (an injected `panic`
    /// fault, a bug) is caught at this boundary and surfaced as
    /// `Err(SageError::Panicked)` in that question's slot, while every
    /// other question completes normally. Results align with input order;
    /// `workers == 0` is clamped to 1.
    ///
    /// With admission control enabled ([`RagSystem::enable_admission`]),
    /// questions are offered to the queue in input order as
    /// [`Priority::Batch`] work and processed in waves of at most
    /// `workers` in-flight slots (released as each wave completes). A shed
    /// question's slot is `Err(SageError::Shed)`; sheds are deterministic
    /// for a fixed queue state, seed, and submission order.
    pub fn try_answer_batch(
        &self,
        questions: &[String],
        workers: usize,
    ) -> Vec<Result<QueryResult, SageError>> {
        if questions.is_empty() {
            return Vec::new();
        }
        let workers = workers.clamp(1, questions.len());
        let mut results: Vec<Option<Result<QueryResult, SageError>>> =
            (0..questions.len()).map(|_| None).collect();
        let indexed: Vec<(usize, &String)> = questions.iter().enumerate().collect();
        match &self.admission {
            None => self.batch_stripe(&indexed, workers, &mut results),
            Some(m) => {
                let mut offered = 0usize;
                while offered < indexed.len() {
                    // Admit the next wave under one lock hold: up to
                    // `workers` in-flight slots, so at zero external
                    // pressure a batch never lifts occupancy into the
                    // early-drop ramp.
                    let mut wave: Vec<(usize, &String)> = Vec::new();
                    {
                        let mut q = Self::lock_queue(m);
                        while offered < indexed.len() && wave.len() < workers {
                            let (i, question) = indexed[offered];
                            match q.admit(Priority::Batch) {
                                Decision::Admitted => wave.push((i, question)),
                                Decision::Shed(_) => {
                                    sage_telemetry::metrics::SHED_TOTAL
                                        .inc(Priority::Batch.idx());
                                    if let Some(state) = &self.resilience {
                                        state.counters.record(Fallback::Shed);
                                    }
                                    results[i] = Some(Err(SageError::Shed {
                                        class: Priority::Batch.label(),
                                    }));
                                }
                            }
                            offered += 1;
                        }
                    }
                    self.batch_stripe(&wave, workers, &mut results);
                    let mut q = Self::lock_queue(m);
                    for _ in 0..wave.len() {
                        q.release();
                    }
                }
            }
        }
        results
            .into_iter()
            .map(|r| {
                r.unwrap_or(Err(SageError::Panicked {
                    detail: "answer worker died before reporting".to_string(),
                }))
            })
            .collect()
    }

    /// Answer `wave` striped across up to `workers` threads, writing each
    /// question's result into its input slot.
    fn batch_stripe(
        &self,
        wave: &[(usize, &String)],
        workers: usize,
        results: &mut [Option<Result<QueryResult, SageError>>],
    ) {
        if wave.is_empty() {
            return;
        }
        let workers = workers.clamp(1, wave.len());
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for w in 0..workers {
                let mine: Vec<(usize, &String)> =
                    wave.iter().skip(w).step_by(workers).copied().collect();
                handles.push(s.spawn(move || {
                    mine.into_iter()
                        .map(|(i, q)| (i, self.try_answer_open(q)))
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                // Workers cannot panic (each question is caught inside),
                // but degrade gracefully if one somehow does: its questions
                // stay `None` and are filled with a structured error by the
                // caller.
                if let Ok(batch) = h.join() {
                    for (i, r) in batch {
                        results[i] = Some(r);
                    }
                }
            }
        });
    }

    /// Answer one open-ended question with panic isolation: a panic
    /// anywhere in the pipeline becomes `Err(SageError::Panicked)`.
    pub fn try_answer_open(&self, question: &str) -> Result<QueryResult, SageError> {
        catch_unwind(AssertUnwindSafe(|| self.answer_open(question))).map_err(|payload| {
            let err = SageError::from_panic(payload);
            if let Some(state) = &self.resilience {
                state.counters.record(Fallback::PanicIsolated);
            }
            err
        })
    }

    /// The retriever kind this system was built with.
    pub fn retriever_kind(&self) -> RetrieverKind {
        self.kind
    }

    /// Persistence hook for `persist.rs`.
    pub(crate) fn dense_state(&self) -> Option<(bytes::Bytes, &FlatIndex)> {
        self.retriever.dense_state()
    }

    /// The fitted reranker, if any (persistence hook).
    pub(crate) fn scorer_ref(&self) -> Option<&CrossScorer> {
        self.scorer.as_ref()
    }

    /// Reassemble a system from persisted parts (no re-segmentation, no
    /// re-indexing). Build stats report zero offline time and current
    /// memory.
    pub(crate) fn from_parts(
        config: SageConfig,
        kind: RetrieverKind,
        chunks: Vec<String>,
        retriever: AnyRetriever,
        scorer: Option<CrossScorer>,
        profile: LlmProfile,
    ) -> Self {
        let corpus_tokens = chunks.iter().map(|c| sage_text::count_tokens(c)).sum();
        let memory_bytes =
            retriever.memory_bytes() + chunks.iter().map(|c| c.capacity()).sum::<usize>();
        let stats = BuildStats {
            chunk_count: chunks.len(),
            segmentation_time: Duration::ZERO,
            index_time: Duration::ZERO,
            corpus_tokens,
            memory_bytes,
        };
        Self {
            config,
            kind,
            chunks,
            retriever,
            scorer,
            llm: SimLlm::new(profile),
            stats,
            resilience: None,
            telemetry: None,
            admission: None,
        }
    }

    /// The chunk store.
    pub fn chunks(&self) -> &[String] {
        &self.chunks
    }

    /// Offline build statistics.
    pub fn build_stats(&self) -> &BuildStats {
        &self.stats
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SageConfig {
        &self.config
    }

    /// The underlying reader.
    pub fn llm(&self) -> &SimLlm {
        &self.llm
    }

    /// Retrieve + rerank once; returns (candidate chunk ids, ranked list
    /// over candidate positions). Unguarded primary path.
    fn retrieve_ranked(&self, question: &str) -> (Vec<usize>, Vec<RankedChunk>) {
        let mut trace = DegradeTrace::new();
        let mut qt = None;
        self.retrieve_ranked_with(question, None, &mut trace, &mut qt, &mut None)
    }

    /// First-stage retrieval under the degradation chain. Dense systems
    /// guard the embedder and the vector search separately: an exhausted
    /// HNSW tier degrades to the exact flat scan, an exhausted embedder or
    /// flat scan degrades to BM25. BM25-primary systems have no deeper
    /// tier and run unguarded (the sparse index is the chain's last
    /// resort by construction — pure CPU inverted-index lookup).
    fn first_stage(
        &self,
        question: &str,
        guards: Option<&QueryGuards<'_>>,
        trace: &mut DegradeTrace,
        qt: &mut Option<Trace>,
    ) -> Vec<ScoredChunk> {
        let n = self.config.candidates;
        let Some(g) = guards.filter(|_| self.retriever.is_dense()) else {
            if self.telemetry.is_some() && self.retriever.is_dense() {
                // Unguarded dense path, split so the embedding stage can be
                // timed separately; identical to `retrieve` (dense.rs tests
                // pin `retrieve == search_with(embed_query(q))`).
                let embed_start = Instant::now();
                let sid = span_enter(qt, "embed");
                let v = self.retriever.embed_query(question);
                span_exit(qt, sid);
                self.tel_stage(Stage::Embed, embed_start.elapsed());
                return match v.and_then(|v| self.retriever.search_dense(&v, n)) {
                    Some(hits) => hits,
                    // A retriever that reports is_dense() but cannot
                    // embed or search falls back to its own entry point
                    // instead of aborting the query.
                    None => self.retriever.retrieve(question, n),
                };
            }
            return self.retriever.retrieve(question, n);
        };

        let embed_start = Instant::now();
        let sid = span_enter(qt, "embed");
        let embedded = g.guard(Component::Embedder).run(
            Component::Embedder,
            question,
            // None embeds as the empty vector, which the validator below
            // rejects, so the guard degrades DenseToBm25 instead of
            // panicking inside the guarded closure.
            || self.retriever.embed_query(question).unwrap_or_default(),
            |v| {
                for x in v.iter_mut() {
                    *x = f32::NAN;
                }
            },
            |v| !v.is_empty() && v.iter().all(|x| x.is_finite()),
        );
        span_exit(qt, sid);
        self.tel_stage(Stage::Embed, embed_start.elapsed());
        let query_vec = match embedded {
            Ok(v) => v,
            Err(failure) => {
                push_event(trace, Component::Embedder, Fallback::DenseToBm25, failure);
                return g.state.bm25.retrieve(question, n);
            }
        };

        let finite_scores =
            |hits: &Vec<ScoredChunk>| hits.iter().all(|h: &ScoredChunk| h.score.is_finite());
        let poison_scores = |hits: &mut Vec<ScoredChunk>| {
            for h in hits.iter_mut() {
                h.score = f32::NAN;
            }
            if hits.is_empty() {
                hits.push(ScoredChunk { index: 0, score: f32::NAN });
            }
        };

        if let Some(hnsw) = &g.state.hnsw {
            let approx = g.guard(Component::IndexSearch).run(
                Component::IndexSearch,
                question,
                || {
                    hnsw.search(&query_vec, n)
                        .into_iter()
                        .map(|h| ScoredChunk { index: h.id, score: h.score })
                        .collect::<Vec<_>>()
                },
                poison_scores,
                finite_scores,
            );
            return match approx {
                Ok(hits) => hits,
                Err(failure) => {
                    push_event(trace, Component::IndexSearch, Fallback::HnswToFlat, failure);
                    // The exact scan is the ANN tier's fallback, not
                    // another instance of the same failing component —
                    // it runs unguarded so a fully-failed ANN index
                    // still serves exact results. If even the exact scan
                    // is unavailable the chain bottoms out at BM25.
                    self.retriever
                        .search_dense(&query_vec, n)
                        .unwrap_or_else(|| g.state.bm25.retrieve(question, n))
                }
            };
        }

        let exact = g.guard(Component::IndexSearch).run(
            Component::IndexSearch,
            question,
            // None becomes a single NaN-scored sentinel hit, which the
            // validator rejects, so the guard degrades DenseToBm25
            // instead of panicking inside the guarded closure.
            || {
                self.retriever
                    .search_dense(&query_vec, n)
                    .unwrap_or_else(|| vec![ScoredChunk { index: 0, score: f32::NAN }])
            },
            poison_scores,
            finite_scores,
        );
        match exact {
            Ok(hits) => hits,
            Err(failure) => {
                push_event(trace, Component::IndexSearch, Fallback::DenseToBm25, failure);
                g.state.bm25.retrieve(question, n)
            }
        }
    }

    /// Retrieve + rerank under the degradation chain: an exhausted
    /// reranker falls back to the first-stage retrieval order, and budget
    /// pressure shrinks the rerank pool (top half) or skips the stage
    /// entirely.
    fn retrieve_ranked_with(
        &self,
        question: &str,
        guards: Option<&QueryGuards<'_>>,
        trace: &mut DegradeTrace,
        qt: &mut Option<Trace>,
        bctl: &mut Option<BrownoutCtl>,
    ) -> (Vec<usize>, Vec<RankedChunk>) {
        let retrieve_start = Instant::now();
        let retrieve_sid = span_enter(qt, "retrieve");
        let hits = self.first_stage(question, guards, trace, qt);
        let cand_ids: Vec<usize> = hits.iter().map(|h| h.index).collect();
        if let (Some(t), Some(id)) = (qt.as_mut(), retrieve_sid) {
            t.field(id, "candidates", cand_ids.len());
            t.exit(id);
        }
        self.tel_stage(Stage::Retrieve, retrieve_start.elapsed());
        let rerank_level = match bctl.as_mut() {
            Some(ctl) => {
                let model = *ctl.meter.model();
                ctl.meter.charge_time(model.embed_time + model.search_time);
                let left = ctl.rounds_left(0);
                let level = ctl.checkpoint(PlanStage::Rerank, left, trace);
                // Charge the rerank work at the level just decided; the
                // plan and the spend use the same model values.
                ctl.meter.charge_time(model.rerank_cost(level, ctl.candidates));
                level
            }
            None => BrownoutLevel::None,
        };
        let retrieval_order = |hits: &[ScoredChunk]| {
            hits.iter()
                .enumerate()
                .map(|(pos, h)| RankedChunk { index: pos, score: h.score })
                .collect::<Vec<_>>()
        };
        let rerank_start = Instant::now();
        let scorer =
            self.scorer.as_ref().filter(|_| rerank_level < BrownoutLevel::SkipRerank);
        let rerank_sid = match scorer {
            Some(_) => span_enter(qt, "rerank"),
            None => None,
        };
        let ranked = match scorer {
            Some(scorer) => {
                // ShrinkRerank scores only the top half of the candidate
                // pool (the first-stage order is the quality prior).
                let keep = if rerank_level >= BrownoutLevel::ShrinkRerank {
                    (cand_ids.len() / 2).max(1).min(cand_ids.len())
                } else {
                    cand_ids.len()
                };
                let texts: Vec<&str> =
                    cand_ids[..keep].iter().map(|&i| self.chunks[i].as_str()).collect();
                match guards {
                    None => scorer.rerank(question, &texts),
                    Some(g) => {
                        let reranked = g.guard(Component::Reranker).run(
                            Component::Reranker,
                            question,
                            || scorer.rerank(question, &texts),
                            |rl| {
                                for r in rl.iter_mut() {
                                    r.score = f32::NAN;
                                }
                            },
                            |rl| {
                                rl.len() == texts.len()
                                    && rl.iter().all(|r| r.score.is_finite())
                            },
                        );
                        match reranked {
                            Ok(rl) => rl,
                            Err(failure) => {
                                push_event(
                                    trace,
                                    Component::Reranker,
                                    Fallback::RerankToRetrievalOrder,
                                    failure,
                                );
                                retrieval_order(&hits)
                            }
                        }
                    }
                }
            }
            None => retrieval_order(&hits),
        };
        if let (Some(t), Some(id)) = (qt.as_mut(), rerank_sid) {
            t.field(id, "pairs", ranked.len());
            t.exit(id);
            self.tel_stage(Stage::Rerank, rerank_start.elapsed());
        } else if self.scorer.is_some() {
            self.tel_stage(Stage::Rerank, rerank_start.elapsed());
        }
        (cand_ids, ranked)
    }

    /// Select the context for the current `min_k` (Algorithm 2 when
    /// selection is on, fixed top-K otherwise). `flat` forces the fixed
    /// top-K prefix — the deepest brownout rung. `gradient_select` returns
    /// a prefix of its input ranking, so the flat `min_k` prefix is always
    /// a subset of what gradient selection would have chosen over the same
    /// order.
    fn select(&self, ranked: &[RankedChunk], min_k: usize, flat: bool) -> Vec<usize> {
        if self.config.use_selection && !flat {
            let cfg = SelectionConfig {
                min_k,
                gradient: self.config.gradient,
                max_k: self.config.candidates,
                ..SelectionConfig::default()
            };
            gradient_select(ranked, cfg).iter().map(|r| r.index).collect()
        } else {
            ranked.iter().take(min_k.max(1)).map(|r| r.index).collect()
        }
    }

    /// The sorted relevance scores of the question's candidates — the
    /// Figure-5 curve. Uses the reranker when present, otherwise the
    /// retriever's own scores.
    pub fn rerank_scores(&self, question: &str) -> Vec<f32> {
        let (_, ranked) = self.retrieve_ranked(question);
        ranked.iter().map(|r| r.score).collect()
    }

    /// First-stage + rerank for a question: `(candidate chunk ids, ranked
    /// list over candidate positions)`. Lets callers plug in custom chunk
    /// selection (e.g. the flexible selector of the paper's future work)
    /// and then answer via [`RagSystem::answer_with_chunks`].
    pub fn candidates(&self, question: &str) -> (Vec<usize>, Vec<RankedChunk>) {
        self.retrieve_ranked(question)
    }

    /// One generation call over an explicit set of chunk ids (no selection,
    /// no feedback loop). `options` switches to multiple-choice mode.
    pub fn answer_with_chunks(
        &self,
        question: &str,
        chunk_ids: &[usize],
        options: Option<&[String]>,
    ) -> QueryResult {
        let mut qt = self.telemetry.as_ref().map(|_| Trace::start(question));
        let query_start = Instant::now();
        // No retrieval runs on this path; the "retrieval" latency is the
        // (real, measured) context-assembly time rather than a zero
        // placeholder.
        let assemble_start = Instant::now();
        let context: Vec<String> = chunk_ids.iter().map(|&id| self.chunks[id].clone()).collect();
        let retrieval_latency = assemble_start.elapsed();
        let read_start = Instant::now();
        let read_sid = span_enter(&mut qt, "read");
        let (picked, answer) = match options {
            Some(opts) => {
                let (idx, a) = self.llm.answer_multiple_choice(question, opts, &context);
                (Some(idx), a)
            }
            None => (None, self.llm.answer_open(question, &context)),
        };
        if let (Some(t), Some(id)) = (qt.as_mut(), read_sid) {
            t.field(id, "context_chunks", chunk_ids.len());
            t.field(id, "input_tokens", answer.cost.input_tokens);
            t.field(id, "output_tokens", answer.cost.output_tokens);
            t.exit(id);
        }
        self.tel_stage(Stage::Read, read_start.elapsed());
        self.tel_cost(Stage::Read, &answer.cost);
        if let (Some(hub), Some(t)) = (&self.telemetry, qt) {
            hub.record_query(query_start.elapsed());
            hub.push_trace(t);
        }
        let mut cost = Cost::zero();
        cost.merge(answer.cost);
        QueryResult {
            answer_latency: answer.latency,
            answer,
            picked_option: picked,
            selected: chunk_ids.to_vec(),
            cost,
            feedback_rounds: 0,
            retrieval_latency,
            // Honest zero: no feedback round runs on this path.
            feedback_latency: Duration::ZERO,
            feedback_score: None,
            degraded: DegradeTrace::new(),
            brownout: BrownoutLevel::None,
        }
    }

    /// Answer an open-ended question.
    pub fn answer_open(&self, question: &str) -> QueryResult {
        self.run(question, None)
    }

    /// Answer a multiple-choice question.
    pub fn answer_multiple_choice(&self, question: &str, options: &[String]) -> QueryResult {
        self.run(question, Some(options))
    }

    /// Answer an open-ended question under a deadline/token budget. The
    /// pipeline replans at every stage boundary and walks the brownout
    /// ladder (drop feedback → shrink rerank → skip rerank → flat top-k)
    /// as the remaining budget shrinks; each step applied lands in
    /// [`QueryResult::degraded`] and the query's telemetry trace. Budget
    /// accounting charges the deterministic [`CostModel`], never the wall
    /// clock, so the same question with the same budget replays the same
    /// decisions bit-for-bit.
    pub fn answer_open_budgeted(&self, question: &str, budget: QueryBudget) -> QueryResult {
        self.run_budgeted(question, None, Some(budget))
    }

    /// [`RagSystem::answer_open_budgeted`] with panic isolation, mirroring
    /// [`RagSystem::try_answer_open`].
    pub fn try_answer_open_budgeted(
        &self,
        question: &str,
        budget: QueryBudget,
    ) -> Result<QueryResult, SageError> {
        catch_unwind(AssertUnwindSafe(|| self.answer_open_budgeted(question, budget))).map_err(
            |payload| {
                let err = SageError::from_panic(payload);
                if let Some(state) = &self.resilience {
                    state.counters.record(Fallback::PanicIsolated);
                }
                err
            },
        )
    }

    /// Answer a multiple-choice question under a deadline/token budget.
    pub fn answer_multiple_choice_budgeted(
        &self,
        question: &str,
        options: &[String],
        budget: QueryBudget,
    ) -> QueryResult {
        self.run_budgeted(question, Some(options), Some(budget))
    }

    /// One guarded generation call. `key` is the determinism handle (the
    /// question for the primary context, a derived key for the retry so
    /// the two calls draw independent fault decisions).
    fn guarded_generate(
        &self,
        question: &str,
        options: Option<&[String]>,
        context: &[String],
        key: &str,
        g: &QueryGuards<'_>,
    ) -> Result<(Option<usize>, Answer), Failure> {
        let guard = g.guard(Component::Reader);
        match options {
            Some(opts) => guard.run(
                Component::Reader,
                key,
                || {
                    let (idx, a) = self.llm.answer_multiple_choice(question, opts, context);
                    (Some(idx), a)
                },
                |(pick, a)| {
                    a.text.clear();
                    a.confidence = f32::NAN;
                    *pick = None;
                },
                |(pick, a)| a.is_wellformed() && pick.is_some_and(|i| i < opts.len()),
            ),
            None => guard.run(
                Component::Reader,
                key,
                || (None, self.llm.answer_open(question, context)),
                |(_, a)| {
                    a.text.clear();
                    a.confidence = f32::NAN;
                },
                |(_, a)| a.is_wellformed(),
            ),
        }
    }

    /// The reader leg of the degradation chain. Returns `None` when both
    /// the primary and the second-best context are exhausted (the caller
    /// degrades to an unanswerable answer); otherwise the generation
    /// result plus the chunk ids actually used.
    #[allow(clippy::too_many_arguments)]
    fn read_with_fallback(
        &self,
        question: &str,
        options: Option<&[String]>,
        selected: Vec<usize>,
        context: &[String],
        ranked: &[RankedChunk],
        cand_ids: &[usize],
        g: &QueryGuards<'_>,
        trace: &mut DegradeTrace,
    ) -> Option<(Option<usize>, Answer, Vec<usize>)> {
        match self.guarded_generate(question, options, context, question, g) {
            Ok((pick, a)) => Some((pick, a, selected)),
            Err(failure) => {
                push_event(trace, Component::Reader, Fallback::ReaderSecondBest, failure);
                // Second-best context: the ranked list shifted down by
                // one — drops the (possibly poisoned) top chunk while
                // keeping the context size.
                let alt_ids: Vec<usize> = ranked
                    .iter()
                    .skip(1)
                    .take(selected.len().max(1))
                    .map(|r| cand_ids[r.index])
                    .collect();
                let alt_context: Vec<String> =
                    alt_ids.iter().map(|&id| self.chunks[id].clone()).collect();
                let retry_key = format!("{question}\u{1f}second-best");
                match self.guarded_generate(question, options, &alt_context, &retry_key, g) {
                    Ok((pick, a)) => Some((pick, a, alt_ids)),
                    Err(failure) => {
                        push_event(
                            trace,
                            Component::Reader,
                            Fallback::ReaderUnanswerable,
                            failure,
                        );
                        None
                    }
                }
            }
        }
    }

    /// The degraded terminal answer: the reader (or the whole feedback
    /// loop) produced nothing usable. `latency` is the measured (virtual)
    /// time spent reaching this verdict — retry backoff accumulated by the
    /// failed attempts — not a zero placeholder.
    fn unanswerable(latency: Duration) -> Answer {
        Answer { text: "unanswerable".to_string(), confidence: 0.0, cost: Cost::zero(), latency }
    }

    /// The Figure-2 query loop, with per-query guards when resilience is
    /// enabled.
    fn run(&self, question: &str, options: Option<&[String]>) -> QueryResult {
        self.run_budgeted(question, options, None)
    }

    /// [`RagSystem::run`] with an optional per-query budget driving the
    /// brownout ladder.
    fn run_budgeted(
        &self,
        question: &str,
        options: Option<&[String]>,
        budget: Option<QueryBudget>,
    ) -> QueryResult {
        let guards = self.resilience.as_ref().map(QueryGuards::new);
        let mut trace = DegradeTrace::new();
        let mut qt = self.telemetry.as_ref().map(|_| Trace::start(question));
        let mut bctl = budget.map(|b| {
            BrownoutCtl::new(
                b,
                CostModel::default(),
                self.config.candidates,
                if self.config.use_feedback { self.config.max_feedback_rounds as u32 } else { 0 },
            )
        });
        if let Some(ctl) = bctl.as_mut() {
            let rounds = ctl.rounds_left(0);
            ctl.checkpoint(PlanStage::Start, rounds, &mut trace);
        }
        let query_start = Instant::now();
        let mut result =
            self.run_guarded(question, options, guards.as_ref(), &mut trace, &mut qt, &mut bctl);
        let total = query_start.elapsed();
        result.degraded = trace;
        if let Some(state) = &self.resilience {
            state.counters.absorb(&result.degraded);
        }
        if let (Some(hub), Some(mut t)) = (&self.telemetry, qt) {
            // Fold this query's degradation events into the same trace so
            // one record explains both where time went and what fell back.
            for e in &result.degraded.events {
                let id = t.event("degrade");
                t.field(id, "component", e.component.label());
                t.field(id, "fallback", e.fallback.label());
                t.field(id, "error", e.error.to_string());
                t.field(id, "attempts", u64::from(e.attempts));
                t.field(id, "virtual_delay_ns", e.delay.as_nanos() as u64);
            }
            hub.record_degrades(result.degraded.events.len() as u64);
            hub.record_query(total);
            hub.push_trace(t);
        }
        result
    }

    fn run_guarded(
        &self,
        question: &str,
        options: Option<&[String]>,
        guards: Option<&QueryGuards<'_>>,
        trace: &mut DegradeTrace,
        qt: &mut Option<Trace>,
        bctl: &mut Option<BrownoutCtl>,
    ) -> QueryResult {
        let retrieval_start = Instant::now();
        let (cand_ids, ranked) = self.retrieve_ranked_with(question, guards, trace, qt, bctl);
        let retrieval_latency = retrieval_start.elapsed();

        let mut min_k = self.config.min_k;
        let mut total_cost = Cost::zero();
        let mut answer_latency = Duration::ZERO;
        let mut feedback_latency = Duration::ZERO;
        let rounds = if self.config.use_feedback { self.config.max_feedback_rounds } else { 1 };

        // Track the best round by feedback score; without feedback the
        // single round wins by construction.
        let mut best: Option<(u8, Answer, Option<usize>, Vec<usize>)> = None;
        let mut executed_feedback = 0usize;
        let mut last_selection: Option<Vec<usize>> = None;

        for round in 0..rounds {
            let select_level = match bctl.as_mut() {
                Some(ctl) => {
                    let left = ctl.rounds_left(executed_feedback);
                    let level = ctl.checkpoint(PlanStage::Select, left, trace);
                    if level < BrownoutLevel::FlatTopK {
                        let d = ctl.meter.model().select_time;
                        ctl.meter.charge_time(d);
                    }
                    level
                }
                None => BrownoutLevel::None,
            };
            let selected_positions =
                self.select(&ranked, min_k, select_level >= BrownoutLevel::FlatTopK);
            // The reader is deterministic: re-running with an identical
            // context reproduces the same answer and judgement, so a round
            // whose adjusted min_k selects the same chunks is pure token
            // waste — stop the loop instead.
            if last_selection.as_deref() == Some(&selected_positions) {
                break;
            }
            last_selection = Some(selected_positions.clone());
            let selected: Vec<usize> =
                selected_positions.iter().map(|&pos| cand_ids[pos]).collect();
            let context: Vec<String> =
                selected.iter().map(|&id| self.chunks[id].clone()).collect();

            if let Some(ctl) = bctl.as_mut() {
                let left = ctl.rounds_left(executed_feedback);
                ctl.checkpoint(PlanStage::Read, left, trace);
            }
            let read_start = Instant::now();
            let read_sid = span_enter(qt, "read");
            let generated = match guards {
                None => {
                    let (picked, answer) = match options {
                        Some(opts) => {
                            let (idx, a) =
                                self.llm.answer_multiple_choice(question, opts, &context);
                            (Some(idx), a)
                        }
                        None => (None, self.llm.answer_open(question, &context)),
                    };
                    Some((picked, answer, selected))
                }
                Some(g) => self.read_with_fallback(
                    question, options, selected, &context, &ranked, &cand_ids, g, trace,
                ),
            };
            if let (Some(t), Some(id)) = (qt.as_mut(), read_sid) {
                t.field(id, "round", round);
                if let Some((_, a, sel)) = &generated {
                    t.field(id, "context_chunks", sel.len());
                    t.field(id, "input_tokens", a.cost.input_tokens);
                    t.field(id, "output_tokens", a.cost.output_tokens);
                }
                t.exit(id);
            }
            self.tel_stage(Stage::Read, read_start.elapsed());
            let Some((picked, answer, selected)) = generated else {
                // Reader exhausted both contexts. Fault decisions are
                // keyed on the question, so further rounds would fail
                // identically — stop here and fall back to an earlier
                // round's answer (or the degraded unanswerable below).
                break;
            };
            self.tel_cost(Stage::Read, &answer.cost);
            total_cost.merge(answer.cost);
            answer_latency += answer.latency;

            // Feedback gate: skipped when the configuration has feedback
            // off, and browned out when the remaining budget no longer
            // covers the rest of the loop (judges plus the reads they
            // trigger).
            let feedback_level = match bctl.as_mut() {
                Some(ctl) => {
                    let model = *ctl.meter.model();
                    ctl.meter.charge_time(model.read_time);
                    ctl.meter.charge_tokens(model.read_tokens_at(ctl.meter.level()));
                    let left = ctl.rounds_left(executed_feedback);
                    ctl.checkpoint(PlanStage::Feedback, left, trace)
                }
                None => BrownoutLevel::None,
            };
            if !self.config.use_feedback || feedback_level >= BrownoutLevel::DropFeedback {
                if best.is_some() {
                    // Earlier rounds were judged; return the best of them
                    // below rather than this unjudged answer.
                    break;
                }
                return QueryResult {
                    answer,
                    picked_option: picked,
                    selected,
                    cost: total_cost,
                    feedback_rounds: executed_feedback,
                    retrieval_latency,
                    answer_latency,
                    feedback_latency,
                    feedback_score: None,
                    degraded: DegradeTrace::new(),
                    brownout: bctl
                        .as_ref()
                        .map_or(BrownoutLevel::None, |c| c.meter.level()),
                };
            }

            // Judge against the context the reader actually saw (the
            // second-best set when the reader degraded).
            let context: Vec<String> =
                selected.iter().map(|&id| self.chunks[id].clone()).collect();
            let fb_start = Instant::now();
            let fb_sid = span_enter(qt, "feedback");
            let fb = self.llm.self_feedback(question, &context, &answer);
            if let (Some(t), Some(id)) = (qt.as_mut(), fb_sid) {
                t.field(id, "score", u64::from(fb.score));
                t.field(id, "adjustment", i64::from(fb.adjustment));
                t.exit(id);
            }
            self.tel_stage(Stage::Feedback, fb_start.elapsed());
            self.tel_cost(Stage::Feedback, &fb.cost);
            executed_feedback += 1;
            total_cost.merge(fb.cost);
            feedback_latency += fb.latency;
            if let Some(ctl) = bctl.as_mut() {
                let model = *ctl.meter.model();
                ctl.meter.charge_time(model.feedback_round_time);
                ctl.meter.charge_tokens(model.feedback_round_tokens);
            }

            let better = best.as_ref().is_none_or(|(s, ..)| fb.score > *s);
            if better {
                best = Some((fb.score, answer, picked, selected));
            }
            if fb.score >= self.config.feedback_threshold || round + 1 == rounds {
                break;
            }
            // Adjust min_k per the judge's context assessment (Figure 2
            // (C) step 6): -1 drops a chunk, +1 requests one more.
            let next = min_k as i64 + i64::from(fb.adjustment);
            min_k = next.clamp(1, self.config.candidates as i64) as usize;
        }

        // No round produced an answer: the reader exhausted its fallbacks,
        // or the loop was configured for zero rounds
        // (`max_feedback_rounds == 0`). Degrade to a well-formed
        // unanswerable result instead of panicking.
        let (score, answer, picked, selected) = match best {
            Some((s, a, p, sel)) => (Some(s), a, p, sel),
            None => (None, Self::unanswerable(trace.total_delay()), None, Vec::new()),
        };
        QueryResult {
            answer,
            picked_option: picked,
            selected,
            cost: total_cost,
            feedback_rounds: executed_feedback,
            retrieval_latency,
            answer_latency,
            feedback_latency,
            feedback_score: score,
            degraded: DegradeTrace::new(),
            brownout: bctl.as_ref().map_or(BrownoutLevel::None, |c| c.meter.level()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{TrainBudget, TrainedModels};
    use std::sync::OnceLock;

    fn models() -> &'static TrainedModels {
        static M: OnceLock<TrainedModels> = OnceLock::new();
        M.get_or_init(|| TrainedModels::train(TrainBudget::tiny()))
    }

    fn corpus() -> Vec<String> {
        vec![
            "Whiskers is a playful tabby cat. He has bright green eyes. His fur is mostly gray.\n\
             The morning fog settled over the valley, as it had for many years.\n\
             Patchy is a ferret with a stubborn streak. Patchy has bright orange eyes.\n\
             Dorinwick was well known in the region. He lives in Ashford. He works as a baker."
                .to_string(),
        ]
    }

    #[test]
    fn sage_answers_open_question() {
        let sys = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &corpus(),
        );
        assert!(sys.build_stats().chunk_count > 1);
        let r = sys.answer_open("What is the color of Whiskers's eyes?");
        assert!(r.answer.text.contains("green"), "got {:?}", r.answer.text);
        assert!(!r.selected.is_empty());
        assert!(r.cost.input_tokens > 0);
        assert!(r.feedback_rounds >= 1);
        assert!(r.feedback_score.is_some());
    }

    #[test]
    fn naive_rag_answers_without_feedback() {
        let sys = RagSystem::build(
            models(),
            RetrieverKind::Bm25,
            SageConfig::naive_rag(),
            LlmProfile::gpt4o_mini(),
            &corpus(),
        );
        let r = sys.answer_open("Where does Dorinwick live?");
        assert_eq!(r.feedback_rounds, 0);
        assert!(r.feedback_score.is_none());
        assert!(r.answer.text.contains("ashford"), "got {:?}", r.answer.text);
    }

    #[test]
    fn multiple_choice_path() {
        let sys = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4(),
            &corpus(),
        );
        let options: Vec<String> =
            ["orange", "green", "violet", "gray"].iter().map(|s| s.to_string()).collect();
        let r = sys.answer_multiple_choice("What is the color of Whiskers's eyes?", &options);
        assert_eq!(r.picked_option, Some(1), "answer {:?}", r.answer.text);
    }

    #[test]
    fn sage_uses_fewer_context_tokens_than_naive() {
        // Table XI's mechanism: semantic chunks + selection shrink the
        // generation input. Needs a realistically sized document — on a
        // tiny corpus both methods retrieve everything.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use sage_corpus::document::{generate_document, DocSpec};
        let mut rng = StdRng::seed_from_u64(404);
        let spec = DocSpec {
            num_entities: 16,
            facts_per_entity: 4,
            multi_fact_count: 5,
            filler_paragraphs: 16,
            pronoun_prob: 0.6,
        };
        let doc = generate_document(0, &spec, &mut rng).document;
        let big_corpus = vec![doc.text()];
        let sage = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig { use_feedback: false, ..SageConfig::sage() },
            LlmProfile::gpt4o_mini(),
            &big_corpus,
        );
        let naive = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::naive_rag(),
            LlmProfile::gpt4o_mini(),
            &big_corpus,
        );
        let q = "What is the color of Whiskers's eyes?";
        let rs = sage.answer_open(q);
        let rn = naive.answer_open(q);
        assert!(
            rs.answer.cost.input_tokens < rn.answer.cost.input_tokens,
            "sage {} vs naive {}",
            rs.answer.cost.input_tokens,
            rn.answer.cost.input_tokens
        );
    }

    #[test]
    fn build_stats_populated() {
        let sys = RagSystem::build(
            models(),
            RetrieverKind::Sbert,
            SageConfig::sage(),
            LlmProfile::unifiedqa_3b(),
            &corpus(),
        );
        let s = sys.build_stats();
        assert!(s.corpus_tokens > 0);
        assert!(s.memory_bytes > 0);
        assert!(s.chunk_count > 0);
        assert_eq!(
            s.chunk_count,
            sys.chunks().len(),
        );
    }

    #[test]
    fn zero_feedback_rounds_degrades_to_unanswerable() {
        // Regression: `use_feedback` with `max_feedback_rounds == 0` used
        // to panic on `best.expect("at least one round ran")`.
        let sys = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig { max_feedback_rounds: 0, ..SageConfig::sage() },
            LlmProfile::gpt4o_mini(),
            &corpus(),
        );
        let r = sys.answer_open("What is the color of Whiskers's eyes?");
        assert_eq!(r.answer.text, "unanswerable");
        assert_eq!(r.feedback_rounds, 0);
        assert!(r.feedback_score.is_none());
        assert!(r.selected.is_empty());
    }

    #[test]
    fn resilience_without_faults_is_transparent() {
        let questions = [
            "What is the color of Whiskers's eyes?",
            "Where does Dorinwick live?",
            "What animal is Patchy?",
        ];
        let plain = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &corpus(),
        );
        let mut guarded = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &corpus(),
        );
        guarded.enable_resilience(crate::resilience::ResilienceConfig::default());
        assert!(guarded.resilience_enabled());
        for q in questions {
            let a = plain.answer_open(q);
            let b = guarded.answer_open(q);
            assert_eq!(a.answer.text, b.answer.text, "{q}");
            assert_eq!(a.selected, b.selected, "{q}");
            assert_eq!(a.cost.input_tokens, b.cost.input_tokens, "{q}");
            assert!(b.degraded.is_clean(), "{q}: {:?}", b.degraded);
        }
        assert_eq!(guarded.fallback_counters(), Some(Vec::new()));
    }

    #[test]
    fn try_answer_batch_matches_serial_answers() {
        let sys = RagSystem::build(
            models(),
            RetrieverKind::Bm25,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &corpus(),
        );
        let questions: Vec<String> = [
            "What is the color of Whiskers's eyes?",
            "Where does Dorinwick live?",
            "What animal is Patchy?",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let batch = sys.try_answer_batch(&questions, 2);
        assert_eq!(batch.len(), questions.len());
        for (q, r) in questions.iter().zip(&batch) {
            let serial = sys.answer_open(q);
            let r = r.as_ref().expect("no faults, no panics");
            assert_eq!(r.answer.text, serial.answer.text);
        }
    }

    #[test]
    fn all_retriever_kinds_build() {
        for kind in RetrieverKind::all() {
            let sys = RagSystem::build(
                models(),
                kind,
                SageConfig::sage(),
                LlmProfile::gpt4o_mini(),
                &corpus(),
            );
            let r = sys.answer_open("Where does Dorinwick live?");
            assert!(!r.selected.is_empty(), "{kind:?} selected nothing");
        }
    }
}
