//! The SAGE pipeline (paper Figure 2): build (segment → embed → index) and
//! query (retrieve → rerank → gradient-select → generate → self-feedback).
//!
//! This module owns system *construction* and the public entry points;
//! query execution itself lives in [`crate::exec`] — every entry point
//! here resolves a [`crate::exec::QueryPlan`] and hands it to the one
//! deterministic executor.

// sage-lint: allow-file(no-wallclock) - this file IS the build-time latency measurement layer: segment/index stage timings feed BuildStats and the telemetry build record; no control flow branches on the readings

use crate::config::{RetrieverKind, SageConfig};
use crate::models::TrainedModels;
use crate::resilience::{ResilienceConfig, ResilienceState};
pub use crate::result::{BuildStats, QueryResult};
pub use crate::retriever::AnyRetriever;
use sage_admission::{AdmissionConfig, AdmissionQueue, QueryBudget};
use sage_embed::HashedEmbedder;
use sage_eval::Cost;
use sage_llm::{LlmProfile, SimLlm};
use sage_rerank::{CrossScorer, RankedChunk};
use sage_resilience::SageError;
use sage_retrieval::{Bm25Retriever, DenseRetriever};
use sage_segment::{Segmenter, SemanticSegmenter, SentenceSegmenter};
use sage_telemetry::{BuildRecord, Stage, Telemetry};
use sage_vecdb::FlatIndex;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A built RAG system over one corpus.
pub struct RagSystem {
    pub(crate) config: SageConfig,
    kind: RetrieverKind,
    pub(crate) chunks: Vec<String>,
    pub(crate) retriever: AnyRetriever,
    pub(crate) scorer: Option<CrossScorer>,
    pub(crate) llm: SimLlm,
    stats: BuildStats,
    /// Runtime-only serving-path resilience (never persisted); `None`
    /// means guards are off and every query runs the bare primary path.
    pub(crate) resilience: Option<ResilienceState>,
    /// Runtime-only telemetry hub (never persisted); `None` means no
    /// spans, histograms, or ledger entries are recorded for this system.
    pub(crate) telemetry: Option<Arc<Telemetry>>,
    /// Runtime-only admission queue (never persisted); `None` means every
    /// submission is accepted. A `std::sync::Mutex` rather than an atomic
    /// design: admit decisions must see a consistent (depth, seq) pair to
    /// stay deterministic, and the critical section is a few arithmetic
    /// ops.
    pub(crate) admission: Option<Mutex<AdmissionQueue>>,
    /// Runtime-only flight recorder state (see `crate::obs`); `None`
    /// records nothing.
    pub(crate) obs: Option<crate::obs::ObsState>,
    /// Runtime-only sharded-serving state (see `crate::exec::scatter`);
    /// `None` serves from the monolithic index.
    pub(crate) shards: Option<crate::exec::scatter::ShardState>,
}

impl RagSystem {
    /// Build a system over `corpus` (one string per document; documents
    /// use `'\n'` between paragraphs).
    pub fn build(
        models: &TrainedModels,
        kind: RetrieverKind,
        config: SageConfig,
        profile: LlmProfile,
        corpus: &[String],
    ) -> Self {
        // 1. Segmentation (Figure 2 (A) steps 1-2).
        let seg_start = Instant::now();
        let chunks: Vec<String> = if config.use_segmentation {
            let segmenter = SemanticSegmenter::with_params(
                models.segmentation.clone(),
                config.segmentation_threshold,
                config.coarse_tokens,
            );
            corpus.iter().flat_map(|doc| segmenter.segment(doc)).collect()
        } else {
            let segmenter = SentenceSegmenter { max_tokens: config.naive_chunk_tokens };
            corpus.iter().flat_map(|doc| segmenter.segment(doc)).collect()
        };
        let segmentation_time = seg_start.elapsed();

        // 2. Index construction (steps 3-4).
        let index_start = Instant::now();
        let mut retriever = match kind {
            RetrieverKind::Bm25 => AnyRetriever::Bm25(Bm25Retriever::new()),
            RetrieverKind::OpenAiSim => AnyRetriever::Hashed(DenseRetriever::new(
                HashedEmbedder::default_model(),
                FlatIndex::cosine(),
            )),
            RetrieverKind::Sbert => AnyRetriever::Sbert(DenseRetriever::new(
                models.siamese.clone(),
                FlatIndex::cosine(),
            )),
            RetrieverKind::Dpr => AnyRetriever::Dpr(DenseRetriever::new(
                models.dual.clone(),
                FlatIndex::cosine(),
            )),
        };
        retriever.index_chunks(&chunks);
        let index_time = index_start.elapsed();

        // 3. Reranker with corpus IDF (needed for reranking or selection).
        let scorer = if config.use_rerank || config.use_selection {
            let mut s = models.scorer.clone();
            s.fit_idf(&chunks);
            Some(s)
        } else {
            None
        };

        let corpus_tokens = corpus.iter().map(|d| sage_text::count_tokens(d)).sum();
        let memory_bytes = retriever.memory_bytes()
            + chunks.iter().map(|c| c.capacity()).sum::<usize>();
        let stats = BuildStats {
            chunk_count: chunks.len(),
            segmentation_time,
            index_time,
            corpus_tokens,
            memory_bytes,
        };
        Self {
            config,
            kind,
            chunks,
            retriever,
            scorer,
            llm: SimLlm::new(profile),
            stats,
            resilience: None,
            telemetry: None,
            admission: None,
            obs: None,
            shards: None,
        }
    }

    /// Incrementally add documents to a built system: new text is
    /// segmented with the same strategy, appended to the chunk store,
    /// indexed (dense indexes extend in place; BM25 rebuilds its postings,
    /// which costs milliseconds), and the reranker's IDF is refitted.
    pub fn add_documents(&mut self, models: &TrainedModels, corpus: &[String]) {
        let new_chunks: Vec<String> = if self.config.use_segmentation {
            let segmenter = SemanticSegmenter::with_params(
                models.segmentation.clone(),
                self.config.segmentation_threshold,
                self.config.coarse_tokens,
            );
            corpus.iter().flat_map(|doc| segmenter.segment(doc)).collect()
        } else {
            let segmenter = SentenceSegmenter { max_tokens: self.config.naive_chunk_tokens };
            corpus.iter().flat_map(|doc| segmenter.segment(doc)).collect()
        };
        self.chunks.extend(new_chunks);
        // Dense indexes append; BM25 rebuilds.
        self.retriever.index_chunks(&self.chunks);
        if let Some(scorer) = &mut self.scorer {
            scorer.fit_idf(&self.chunks);
        }
        self.stats.chunk_count = self.chunks.len();
        self.stats.corpus_tokens += corpus.iter().map(|d| sage_text::count_tokens(d)).sum::<usize>();
        self.stats.memory_bytes = self.retriever.memory_bytes()
            + self.chunks.iter().map(|c| c.capacity()).sum::<usize>();
        // Fallback tiers index the same chunk store; keep them in sync.
        if let Some(state) = &mut self.resilience {
            state.reindex(&self.chunks, self.retriever.flat_ref());
        }
        // The shard partition covers the chunk store exactly; re-partition.
        if let Some(ss) = &self.shards {
            self.shards = Some(ss.rebuild(&self.retriever, self.chunks.len()));
        }
    }

    /// Turn on the serving-path resilience layer: guarded component
    /// boundaries, retries with virtual-time backoff, per-query circuit
    /// breakers, and the documented degradation chain. Builds the fallback
    /// tiers (BM25 postings; optionally an HNSW tier over the dense index).
    ///
    /// With `config.plan` empty and `config.use_hnsw == false`, answers are
    /// identical to the unguarded path — the guards only add validation.
    pub fn enable_resilience(&mut self, config: ResilienceConfig) {
        self.resilience =
            Some(ResilienceState::build(config, &self.chunks, self.retriever.flat_ref()));
    }

    /// Turn the resilience layer off (drops fallback tiers and counters).
    pub fn disable_resilience(&mut self) {
        self.resilience = None;
    }

    /// Whether the resilience layer is active.
    pub fn resilience_enabled(&self) -> bool {
        self.resilience.is_some()
    }

    /// Degraded-mode report: `(fallback label, fire count)` pairs, nonzero
    /// entries only, since resilience was enabled. `None` when disabled.
    pub fn fallback_counters(&self) -> Option<Vec<(&'static str, u64)>> {
        self.resilience.as_ref().map(|s| s.counters.snapshot())
    }

    /// Attach a fresh telemetry hub to this system and return it. From now
    /// on every query records a span trace, per-stage latency histograms,
    /// and a token-cost ledger on the hub; the process-global substrate
    /// counters (`sage_telemetry::metrics`) are switched on as well.
    pub fn enable_telemetry(&mut self) -> Arc<Telemetry> {
        let hub = Arc::new(Telemetry::new());
        self.attach_telemetry(Arc::clone(&hub));
        hub
    }

    /// Attach an existing (possibly shared) telemetry hub. Registers this
    /// system's build statistics with the hub — the segmentation and index
    /// wall-clock measured during [`RagSystem::build`] become the hub's
    /// `segment`/`index` stage observations — and enables the global
    /// substrate counters.
    pub fn attach_telemetry(&mut self, hub: Arc<Telemetry>) {
        sage_telemetry::set_enabled(true);
        hub.record_build(BuildRecord {
            chunk_count: self.stats.chunk_count as u64,
            corpus_tokens: self.stats.corpus_tokens as u64,
            memory_bytes: self.stats.memory_bytes as u64,
            segmentation_ns: self.stats.segmentation_time.as_nanos() as u64,
            index_ns: self.stats.index_time.as_nanos() as u64,
        });
        hub.record_stage(Stage::Segment, self.stats.segmentation_time);
        hub.record_stage(Stage::Index, self.stats.index_time);
        self.telemetry = Some(hub);
    }

    /// Detach the telemetry hub. The process-global counter flag stays on
    /// (another system may share it); flip it explicitly with
    /// `sage_telemetry::set_enabled(false)` when the whole process is done
    /// measuring.
    pub fn disable_telemetry(&mut self) {
        self.telemetry = None;
    }

    /// The attached telemetry hub, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Turn on admission control. Batch submissions
    /// ([`RagSystem::try_answer_batch`]) are routed through the bounded
    /// queue as [`sage_admission::Priority::Batch`] work from then on; shed
    /// slots surface as [`SageError::Shed`]. Shed decisions are a pure
    /// function of the queue state and the configured seed — replaying the
    /// same submission sequence sheds the same slots.
    pub fn enable_admission(&mut self, config: AdmissionConfig) {
        self.admission = Some(Mutex::new(AdmissionQueue::new(config)));
    }

    /// Turn admission control off (drops the queue and its counters).
    pub fn disable_admission(&mut self) {
        self.admission = None;
    }

    /// Whether admission control is active.
    pub fn admission_enabled(&self) -> bool {
        self.admission.is_some()
    }

    /// Admission report since [`RagSystem::enable_admission`]: admitted
    /// total plus `(class label, shed count)` pairs (nonzero entries
    /// only). `None` when disabled.
    pub fn admission_report(&self) -> Option<(u64, Vec<(&'static str, u64)>)> {
        self.admission.as_ref().map(|m| {
            let q = Self::lock_queue(m);
            (q.admitted_total(), q.shed_snapshot())
        })
    }

    /// Lock the admission queue, recovering from a poisoned lock (a
    /// panicked batch worker must not wedge the serving path — the queue's
    /// own state is a few integers and stays internally consistent).
    pub(crate) fn lock_queue(
        m: &Mutex<AdmissionQueue>,
    ) -> std::sync::MutexGuard<'_, AdmissionQueue> {
        match m.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Record a stage observation on the attached hub, if any.
    #[inline]
    pub(crate) fn tel_stage(&self, stage: Stage, d: Duration) {
        if let Some(hub) = &self.telemetry {
            hub.record_stage(stage, d);
        }
    }

    /// Attribute one call's cost to a stage on the attached hub, if any.
    #[inline]
    pub(crate) fn tel_cost(&self, stage: Stage, cost: &Cost) {
        if let Some(hub) = &self.telemetry {
            hub.record_cost(stage, cost.input_tokens, cost.output_tokens);
        }
    }

    /// Answer one open-ended question with panic isolation: a panic
    /// anywhere in the pipeline becomes `Err(SageError::Panicked)`.
    pub fn try_answer_open(&self, question: &str) -> Result<QueryResult, SageError> {
        crate::exec::execute_caught(self, question, None, None)
    }

    /// The retriever kind this system was built with.
    pub fn retriever_kind(&self) -> RetrieverKind {
        self.kind
    }

    /// Persistence hook for `persist.rs`.
    pub(crate) fn dense_state(&self) -> Option<(bytes::Bytes, &FlatIndex)> {
        self.retriever.dense_state()
    }

    /// The fitted reranker, if any (persistence hook).
    pub(crate) fn scorer_ref(&self) -> Option<&CrossScorer> {
        self.scorer.as_ref()
    }

    /// Reassemble a system from persisted parts (no re-segmentation, no
    /// re-indexing). Build stats report zero offline time and current
    /// memory.
    pub(crate) fn from_parts(
        config: SageConfig,
        kind: RetrieverKind,
        chunks: Vec<String>,
        retriever: AnyRetriever,
        scorer: Option<CrossScorer>,
        profile: LlmProfile,
    ) -> Self {
        let corpus_tokens = chunks.iter().map(|c| sage_text::count_tokens(c)).sum();
        let memory_bytes =
            retriever.memory_bytes() + chunks.iter().map(|c| c.capacity()).sum::<usize>();
        let stats = BuildStats {
            chunk_count: chunks.len(),
            segmentation_time: Duration::ZERO,
            index_time: Duration::ZERO,
            corpus_tokens,
            memory_bytes,
        };
        Self {
            config,
            kind,
            chunks,
            retriever,
            scorer,
            llm: SimLlm::new(profile),
            stats,
            resilience: None,
            telemetry: None,
            admission: None,
            obs: None,
            shards: None,
        }
    }

    /// The chunk store.
    pub fn chunks(&self) -> &[String] {
        &self.chunks
    }

    /// Offline build statistics.
    pub fn build_stats(&self) -> &BuildStats {
        &self.stats
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SageConfig {
        &self.config
    }

    /// The underlying reader.
    pub fn llm(&self) -> &SimLlm {
        &self.llm
    }

    /// The sorted relevance scores of the question's candidates — the
    /// Figure-5 curve. Uses the reranker when present, otherwise the
    /// retriever's own scores.
    pub fn rerank_scores(&self, question: &str) -> Vec<f32> {
        let (_, ranked) = crate::exec::run_prelude(self, question);
        ranked.iter().map(|r| r.score).collect()
    }

    /// First-stage + rerank for a question: `(candidate chunk ids, ranked
    /// list over candidate positions)`. Lets callers plug in custom chunk
    /// selection (e.g. the flexible selector of the paper's future work)
    /// and then answer via [`RagSystem::answer_with_chunks`].
    pub fn candidates(&self, question: &str) -> (Vec<usize>, Vec<RankedChunk>) {
        crate::exec::run_prelude(self, question)
    }

    /// One generation call over an explicit set of chunk ids (no selection,
    /// no feedback loop). `options` switches to multiple-choice mode.
    pub fn answer_with_chunks(
        &self,
        question: &str,
        chunk_ids: &[usize],
        options: Option<&[String]>,
    ) -> QueryResult {
        crate::exec::execute_fixed(self, question, chunk_ids, options)
    }

    /// Answer an open-ended question.
    pub fn answer_open(&self, question: &str) -> QueryResult {
        crate::exec::execute(self, question, None, None)
    }

    /// Answer a multiple-choice question.
    pub fn answer_multiple_choice(&self, question: &str, options: &[String]) -> QueryResult {
        crate::exec::execute(self, question, Some(options), None)
    }

    /// Answer an open-ended question under a deadline/token budget. The
    /// executor replans at every stage boundary and walks the brownout
    /// ladder (drop feedback → shrink rerank → skip rerank → flat top-k)
    /// as the remaining budget shrinks — each rung is applied as a rewrite
    /// of the remaining plan, and lands in [`QueryResult::degraded`] and
    /// the query's telemetry trace. Budget accounting charges the
    /// deterministic [`sage_admission::CostModel`], never the wall clock,
    /// so the same question with the same budget replays the same
    /// decisions bit-for-bit.
    pub fn answer_open_budgeted(&self, question: &str, budget: QueryBudget) -> QueryResult {
        crate::exec::execute(self, question, None, Some(budget))
    }

    /// [`RagSystem::answer_open_budgeted`] with panic isolation, mirroring
    /// [`RagSystem::try_answer_open`].
    pub fn try_answer_open_budgeted(
        &self,
        question: &str,
        budget: QueryBudget,
    ) -> Result<QueryResult, SageError> {
        crate::exec::execute_caught(self, question, None, Some(budget))
    }

    /// Answer a multiple-choice question under a deadline/token budget.
    pub fn answer_multiple_choice_budgeted(
        &self,
        question: &str,
        options: &[String],
        budget: QueryBudget,
    ) -> QueryResult {
        crate::exec::execute(self, question, Some(options), Some(budget))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{TrainBudget, TrainedModels};
    use std::sync::OnceLock;

    fn models() -> &'static TrainedModels {
        static M: OnceLock<TrainedModels> = OnceLock::new();
        M.get_or_init(|| TrainedModels::train(TrainBudget::tiny()))
    }

    fn corpus() -> Vec<String> {
        vec![
            "Whiskers is a playful tabby cat. He has bright green eyes. His fur is mostly gray.\n\
             The morning fog settled over the valley, as it had for many years.\n\
             Patchy is a ferret with a stubborn streak. Patchy has bright orange eyes.\n\
             Dorinwick was well known in the region. He lives in Ashford. He works as a baker."
                .to_string(),
        ]
    }

    #[test]
    fn sage_answers_open_question() {
        let sys = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &corpus(),
        );
        assert!(sys.build_stats().chunk_count > 1);
        let r = sys.answer_open("What is the color of Whiskers's eyes?");
        assert!(r.answer.text.contains("green"), "got {:?}", r.answer.text);
        assert!(!r.selected.is_empty());
        assert!(r.cost.input_tokens > 0);
        assert!(r.feedback_rounds >= 1);
        assert!(r.feedback_score.is_some());
    }

    #[test]
    fn naive_rag_answers_without_feedback() {
        let sys = RagSystem::build(
            models(),
            RetrieverKind::Bm25,
            SageConfig::naive_rag(),
            LlmProfile::gpt4o_mini(),
            &corpus(),
        );
        let r = sys.answer_open("Where does Dorinwick live?");
        assert_eq!(r.feedback_rounds, 0);
        assert!(r.feedback_score.is_none());
        assert!(r.answer.text.contains("ashford"), "got {:?}", r.answer.text);
    }

    #[test]
    fn multiple_choice_path() {
        let sys = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4(),
            &corpus(),
        );
        let options: Vec<String> =
            ["orange", "green", "violet", "gray"].iter().map(|s| s.to_string()).collect();
        let r = sys.answer_multiple_choice("What is the color of Whiskers's eyes?", &options);
        assert_eq!(r.picked_option, Some(1), "answer {:?}", r.answer.text);
    }

    #[test]
    fn sage_uses_fewer_context_tokens_than_naive() {
        // Table XI's mechanism: semantic chunks + selection shrink the
        // generation input. Needs a realistically sized document — on a
        // tiny corpus both methods retrieve everything.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use sage_corpus::document::{generate_document, DocSpec};
        let mut rng = StdRng::seed_from_u64(404);
        let spec = DocSpec {
            num_entities: 16,
            facts_per_entity: 4,
            multi_fact_count: 5,
            filler_paragraphs: 16,
            pronoun_prob: 0.6,
        };
        let doc = generate_document(0, &spec, &mut rng).document;
        let big_corpus = vec![doc.text()];
        let sage = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig { use_feedback: false, ..SageConfig::sage() },
            LlmProfile::gpt4o_mini(),
            &big_corpus,
        );
        let naive = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::naive_rag(),
            LlmProfile::gpt4o_mini(),
            &big_corpus,
        );
        let q = "What is the color of Whiskers's eyes?";
        let rs = sage.answer_open(q);
        let rn = naive.answer_open(q);
        assert!(
            rs.answer.cost.input_tokens < rn.answer.cost.input_tokens,
            "sage {} vs naive {}",
            rs.answer.cost.input_tokens,
            rn.answer.cost.input_tokens
        );
    }

    #[test]
    fn build_stats_populated() {
        let sys = RagSystem::build(
            models(),
            RetrieverKind::Sbert,
            SageConfig::sage(),
            LlmProfile::unifiedqa_3b(),
            &corpus(),
        );
        let s = sys.build_stats();
        assert!(s.corpus_tokens > 0);
        assert!(s.memory_bytes > 0);
        assert!(s.chunk_count > 0);
        assert_eq!(
            s.chunk_count,
            sys.chunks().len(),
        );
    }

    #[test]
    fn zero_feedback_rounds_degrades_to_unanswerable() {
        // Regression: `use_feedback` with `max_feedback_rounds == 0` used
        // to panic on `best.expect("at least one round ran")`.
        let sys = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig { max_feedback_rounds: 0, ..SageConfig::sage() },
            LlmProfile::gpt4o_mini(),
            &corpus(),
        );
        let r = sys.answer_open("What is the color of Whiskers's eyes?");
        assert_eq!(r.answer.text, "unanswerable");
        assert_eq!(r.feedback_rounds, 0);
        assert!(r.feedback_score.is_none());
        assert!(r.selected.is_empty());
    }

    #[test]
    fn resilience_without_faults_is_transparent() {
        let questions = [
            "What is the color of Whiskers's eyes?",
            "Where does Dorinwick live?",
            "What animal is Patchy?",
        ];
        let plain = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &corpus(),
        );
        let mut guarded = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &corpus(),
        );
        guarded.enable_resilience(crate::resilience::ResilienceConfig::default());
        assert!(guarded.resilience_enabled());
        for q in questions {
            let a = plain.answer_open(q);
            let b = guarded.answer_open(q);
            assert_eq!(a.answer.text, b.answer.text, "{q}");
            assert_eq!(a.selected, b.selected, "{q}");
            assert_eq!(a.cost.input_tokens, b.cost.input_tokens, "{q}");
            assert!(b.degraded.is_clean(), "{q}: {:?}", b.degraded);
        }
        assert_eq!(guarded.fallback_counters(), Some(Vec::new()));
    }

    #[test]
    fn try_answer_batch_matches_serial_answers() {
        let sys = RagSystem::build(
            models(),
            RetrieverKind::Bm25,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &corpus(),
        );
        let questions: Vec<String> = [
            "What is the color of Whiskers's eyes?",
            "Where does Dorinwick live?",
            "What animal is Patchy?",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let batch = sys.try_answer_batch(&questions, 2);
        assert_eq!(batch.len(), questions.len());
        for (q, r) in questions.iter().zip(&batch) {
            let serial = sys.answer_open(q);
            let r = r.as_ref().expect("no faults, no panics");
            assert_eq!(r.answer.text, serial.answer.text);
        }
    }

    #[test]
    fn all_retriever_kinds_build() {
        for kind in RetrieverKind::all() {
            let sys = RagSystem::build(
                models(),
                kind,
                SageConfig::sage(),
                LlmProfile::gpt4o_mini(),
                &corpus(),
            );
            let r = sys.answer_open("Where does Dorinwick live?");
            assert!(!r.selected.is_empty(), "{kind:?} selected nothing");
        }
    }
}
