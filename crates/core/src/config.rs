//! SAGE configuration — the paper's §VII-A hyper-parameters and the module
//! toggles used by the Table IV ablation.

use serde::{Deserialize, Serialize};

/// Which first-stage retriever a system uses (paper §VII-A "Retrievers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetrieverKind {
    /// OpenAI `text-embedding-3-small` analog (feature-hashed encoder) —
    /// SAGE's default retriever.
    OpenAiSim,
    /// SBERT analog (trained siamese encoder).
    Sbert,
    /// DPR analog (trained dual-tower encoder).
    Dpr,
    /// Okapi BM25 inverted index.
    Bm25,
}

impl RetrieverKind {
    /// Display name used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            RetrieverKind::OpenAiSim => "OpenAI Embedding",
            RetrieverKind::Sbert => "SBERT",
            RetrieverKind::Dpr => "DPR",
            RetrieverKind::Bm25 => "BM25",
        }
    }

    /// All four retrievers, in the paper's table order.
    pub fn all() -> [RetrieverKind; 4] {
        [RetrieverKind::Sbert, RetrieverKind::Bm25, RetrieverKind::Dpr, RetrieverKind::OpenAiSim]
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SageConfig {
    /// Segmentation score threshold `ss` (§IV-D). Default 0.55.
    pub segmentation_threshold: f32,
    /// Coarse chunk length `l` in tokens (§IV-E). Default 400.
    pub coarse_tokens: usize,
    /// Initial minimum retrieved chunks `min_k` (§V-B). Default 7.
    pub min_k: usize,
    /// Gradient threshold `g` (§V-B). Default 0.3.
    pub gradient: f32,
    /// Feedback score threshold `fs` (§VI-A). Default 9.
    pub feedback_threshold: u8,
    /// Max self-feedback rounds. Default 3 (§VI-A).
    pub max_feedback_rounds: usize,
    /// Candidates fetched from the vector database (`N`). Default 32 —
    /// sized for semantic chunking's finer granularity (4-8x more chunks
    /// than 200-token chunking over the same corpus).
    pub candidates: usize,
    /// Module toggle: semantic segmentation (off ⇒ Naive RAG's 200-token
    /// sentence chunks).
    pub use_segmentation: bool,
    /// Module toggle: second-stage reranking (the BM25+BERT baseline
    /// reranks without gradient selection).
    pub use_rerank: bool,
    /// Module toggle: gradient-based selection (off ⇒ fixed top-`min_k`).
    /// Implies reranking.
    pub use_selection: bool,
    /// Module toggle: the self-feedback loop.
    pub use_feedback: bool,
    /// Naive chunk size when segmentation is off. Default 200 (§VII-A
    /// "Naive RAG").
    pub naive_chunk_tokens: usize,
}

impl Default for SageConfig {
    fn default() -> Self {
        Self {
            segmentation_threshold: 0.55,
            coarse_tokens: 400,
            min_k: 7,
            gradient: 0.3,
            feedback_threshold: 9,
            max_feedback_rounds: 3,
            candidates: 32,
            use_segmentation: true,
            use_rerank: true,
            use_selection: true,
            use_feedback: true,
            naive_chunk_tokens: 200,
        }
    }
}

impl SageConfig {
    /// Full SAGE (all modules on, paper defaults).
    pub fn sage() -> Self {
        Self::default()
    }

    /// Naive RAG: 200-token sentence chunks, fixed top-K, no feedback.
    pub fn naive_rag() -> Self {
        Self {
            use_segmentation: false,
            use_rerank: false,
            use_selection: false,
            use_feedback: false,
            ..Self::default()
        }
    }

    /// BM25+BERT-style: rerank the candidates but keep a fixed K.
    pub fn rerank_fixed_k() -> Self {
        Self { use_rerank: true, ..Self::naive_rag() }
    }

    /// Table IV row: Naive RAG + semantic segmentation only.
    pub fn naive_with_segmentation() -> Self {
        Self { use_segmentation: true, ..Self::naive_rag() }
    }

    /// Table IV row: Naive RAG + gradient selection only.
    pub fn naive_with_selection() -> Self {
        Self { use_selection: true, ..Self::naive_rag() }
    }

    /// Table IV row: Naive RAG + self-feedback only.
    pub fn naive_with_feedback() -> Self {
        Self { use_feedback: true, ..Self::naive_rag() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SageConfig::default();
        assert_eq!(c.segmentation_threshold, 0.55);
        assert_eq!(c.coarse_tokens, 400);
        assert_eq!(c.min_k, 7);
        assert_eq!(c.gradient, 0.3);
        assert_eq!(c.feedback_threshold, 9);
        assert_eq!(c.max_feedback_rounds, 3);
    }

    #[test]
    fn ablation_presets_toggle_one_module() {
        let naive = SageConfig::naive_rag();
        assert!(!naive.use_segmentation && !naive.use_selection && !naive.use_feedback);
        assert!(SageConfig::naive_with_segmentation().use_segmentation);
        assert!(!SageConfig::naive_with_segmentation().use_selection);
        assert!(SageConfig::naive_with_selection().use_selection);
        assert!(SageConfig::naive_with_feedback().use_feedback);
        let sage = SageConfig::sage();
        assert!(sage.use_segmentation && sage.use_selection && sage.use_feedback);
    }

    #[test]
    fn retriever_labels() {
        assert_eq!(RetrieverKind::Bm25.label(), "BM25");
        assert_eq!(RetrieverKind::all().len(), 4);
    }
}
