//! The Tables VIII/IX harness: memory, offline latency, and online latency
//! under 1x / 5x / 10x concurrent question streams on the TriviaQA-analog
//! corpus.
//!
//! Measured quantities are measured (segmentation and index-build wall
//! time, concurrent retrieval latency, resident-memory estimates);
//! LLM-call latencies are simulated from the profile's generation speed,
//! since the paper's numbers come from a web API / local GPU we do not
//! have.

use crate::config::{RetrieverKind, SageConfig};
use crate::models::TrainedModels;
use crate::pipeline::RagSystem;
use sage_corpus::Dataset;
use sage_eval::f1_match;
use sage_llm::LlmProfile;
use std::time::Duration;

/// The four system rows of Tables VIII/IX.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalMethod {
    /// Naive RAG with the dense (OpenAI-analog) retriever.
    NaiveRag,
    /// Naive RAG with BM25.
    Bm25NaiveRag,
    /// SAGE stages over BM25 retrieval.
    Bm25Sage,
    /// Full SAGE.
    Sage,
}

impl ScalMethod {
    /// Table row label.
    pub fn label(self) -> &'static str {
        match self {
            ScalMethod::NaiveRag => "Naive RAG",
            ScalMethod::Bm25NaiveRag => "BM25 + Naive RAG",
            ScalMethod::Bm25Sage => "BM25 + SAGE",
            ScalMethod::Sage => "SAGE",
        }
    }

    fn build(self, models: &TrainedModels, profile: LlmProfile, corpus: &[String]) -> RagSystem {
        match self {
            ScalMethod::NaiveRag => RagSystem::build(
                models,
                RetrieverKind::OpenAiSim,
                SageConfig::naive_rag(),
                profile,
                corpus,
            ),
            ScalMethod::Bm25NaiveRag => RagSystem::build(
                models,
                RetrieverKind::Bm25,
                SageConfig::naive_rag(),
                profile,
                corpus,
            ),
            ScalMethod::Bm25Sage => RagSystem::build(
                models,
                RetrieverKind::Bm25,
                SageConfig::sage(),
                profile,
                corpus,
            ),
            ScalMethod::Sage => RagSystem::build(
                models,
                RetrieverKind::OpenAiSim,
                SageConfig::sage(),
                profile,
                corpus,
            ),
        }
    }

    /// Whether the method loads the trained GPU models (segmentation model
    /// + reranker) — drives the GPU-memory column.
    fn uses_models(self) -> bool {
        matches!(self, ScalMethod::Bm25Sage | ScalMethod::Sage)
    }
}

/// One row of Table VIII/IX.
#[derive(Debug, Clone)]
pub struct ScalabilityRow {
    /// Method label.
    pub method: &'static str,
    /// Concurrency level (1, 5, 10).
    pub concurrency: usize,
    /// Host-memory estimate in bytes (index + chunks + corpus + per-stream
    /// buffers).
    pub host_memory_bytes: usize,
    /// Accelerator-memory analog in bytes (model parameters + per-stream
    /// activations); 0 for methods that load no model.
    pub gpu_memory_bytes: usize,
    /// Measured index-build wall time.
    pub build_db_latency: Duration,
    /// Measured segmentation wall time.
    pub segmentation_latency: Duration,
    /// Segmentation throughput in tokens/second.
    pub segmentation_tokens_per_s: f64,
    /// Measured mean retrieval (+rerank) latency per question under the
    /// concurrent load.
    pub retrieval_latency: Duration,
    /// Simulated mean feedback latency per question (zero when feedback is
    /// off).
    pub feedback_latency: Duration,
    /// Simulated mean answer-generation latency per question.
    pub answer_latency: Duration,
    /// F1-Match over the question set.
    pub f1: f32,
}

/// Rough parameter-memory estimate for the trained models (segmentation
/// embedder + MLP + reranker + encoder tables), standing in for the
/// paper's GPU-memory column.
fn model_param_bytes() -> usize {
    // 2048x24 seg table + MLP, 2x 4096x48 towers, 4096x48 siamese, scorer.
    let seg = 2048 * 24 + 96 * 24 + 24;
    let towers = 2 * 4096 * 48 + 4096 * 48;
    let scorer = 7 * 12 + 12;
    (seg + towers + scorer) * 4
}

/// Run one (method, concurrency) cell: build the corpus-wide system, then
/// answer every dataset question with `concurrency` worker threads,
/// measuring retrieval wall time and aggregating simulated LLM latencies
/// and F1.
pub fn run_cell(
    method: ScalMethod,
    models: &TrainedModels,
    profile: LlmProfile,
    dataset: &Dataset,
    concurrency: usize,
) -> ScalabilityRow {
    assert!(concurrency >= 1);
    let corpus: Vec<String> = dataset.documents.iter().map(|d| d.text()).collect();
    let system = method.build(models, profile, &corpus);
    let stats = *system.build_stats();

    // Concurrent query phase.
    let tasks: Vec<(&str, &[String])> = dataset
        .tasks
        .iter()
        .map(|t| (t.item.question.as_str(), t.item.answers.as_slice()))
        .collect();
    let results: Vec<(f32, Duration, Duration, Duration)> = std::thread::scope(|s| {
        let system = &system;
        let mut handles = Vec::new();
        for w in 0..concurrency {
            let my: Vec<(&str, &[String])> =
                tasks.iter().skip(w).step_by(concurrency).copied().collect();
            handles.push(s.spawn(move || {
                my.into_iter()
                    .map(|(q, answers)| {
                        // One question's panic must not abort the cell:
                        // score it zero and keep measuring the rest.
                        match system.try_answer_open(q) {
                            Ok(r) => {
                                let f1 = f1_match(&r.answer.text, answers);
                                (f1, r.retrieval_latency, r.feedback_latency, r.answer_latency)
                            }
                            Err(_) => (0.0, Duration::ZERO, Duration::ZERO, Duration::ZERO),
                        }
                    })
                    .collect::<Vec<_>>()
            }));
        }
        handles.into_iter().flat_map(|h| h.join().unwrap_or_default()).collect()
    });

    let n = results.len().max(1) as u32;
    let f1 = results.iter().map(|r| r.0).sum::<f32>() / n as f32;
    let retrieval = results.iter().map(|r| r.1).sum::<Duration>() / n;
    let feedback = results.iter().map(|r| r.2).sum::<Duration>() / n;
    let answer = results.iter().map(|r| r.3).sum::<Duration>() / n;

    let corpus_bytes: usize = corpus.iter().map(String::len).sum();
    let per_stream_buffers = 32 * 1024; // question embeddings, prompts, heaps
    // SAGE rows also host the trained models' runtime (the paper's host
    // memory jumps from 0.58 GB to 5.17 GB when the models are loaded).
    let model_host = if method.uses_models() { 2 * model_param_bytes() } else { 0 };
    let host_memory_bytes =
        stats.memory_bytes + corpus_bytes + model_host + concurrency * per_stream_buffers;
    let gpu_memory_bytes = if method.uses_models() {
        // Parameters + per-stream activation workspace.
        model_param_bytes() + concurrency * 64 * 1024
    } else {
        0
    };
    let seg_tokens_per_s = if stats.segmentation_time.as_secs_f64() > 0.0 {
        stats.corpus_tokens as f64 / stats.segmentation_time.as_secs_f64()
    } else {
        f64::INFINITY
    };

    ScalabilityRow {
        method: method.label(),
        concurrency,
        host_memory_bytes,
        gpu_memory_bytes,
        build_db_latency: stats.index_time,
        segmentation_latency: stats.segmentation_time,
        segmentation_tokens_per_s: seg_tokens_per_s,
        retrieval_latency: retrieval,
        feedback_latency: feedback,
        answer_latency: answer,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::TrainBudget;
    use sage_corpus::datasets::{triviaqa, SizeConfig};
    use std::sync::OnceLock;

    fn models() -> &'static TrainedModels {
        static M: OnceLock<TrainedModels> = OnceLock::new();
        M.get_or_init(|| TrainedModels::train(TrainBudget::tiny()))
    }

    fn dataset() -> Dataset {
        triviaqa::generate(SizeConfig { num_docs: 20, questions_per_doc: 1, seed: 5 })
    }

    #[test]
    fn cell_runs_and_scores() {
        let row = run_cell(
            ScalMethod::Sage,
            models(),
            LlmProfile::gpt4o_mini(),
            &dataset(),
            1,
        );
        assert!(row.f1 > 0.0, "F1 {}", row.f1);
        assert!(row.host_memory_bytes > 0);
        assert!(row.gpu_memory_bytes > 0);
        assert!(row.answer_latency > Duration::ZERO);
        assert!(row.feedback_latency > Duration::ZERO, "SAGE runs feedback");
    }

    #[test]
    fn naive_has_no_gpu_memory_or_feedback() {
        let row = run_cell(
            ScalMethod::NaiveRag,
            models(),
            LlmProfile::gpt4o_mini(),
            &dataset(),
            1,
        );
        assert_eq!(row.gpu_memory_bytes, 0);
        assert_eq!(row.feedback_latency, Duration::ZERO);
    }

    #[test]
    fn memory_grows_mildly_with_concurrency() {
        let ds = dataset();
        let one = run_cell(ScalMethod::Sage, models(), LlmProfile::gpt4o_mini(), &ds, 1);
        let ten = run_cell(ScalMethod::Sage, models(), LlmProfile::gpt4o_mini(), &ds, 10);
        assert!(ten.host_memory_bytes > one.host_memory_bytes);
        // The paper stresses the increase is small (≈27% at 10x).
        let ratio = ten.host_memory_bytes as f64 / one.host_memory_bytes as f64;
        assert!(ratio < 2.0, "memory ratio {ratio}");
        // Offline phases run once regardless of concurrency (wall-clock
        // noise aside, both must be nonzero and same order of magnitude).
        assert!(one.segmentation_latency > Duration::ZERO);
        assert!(ten.segmentation_latency > Duration::ZERO);
        // F1 unaffected by concurrency (deterministic per-question).
        assert!((one.f1 - ten.f1).abs() < 1e-6);
    }

    #[test]
    fn concurrent_queries_match_serial_results() {
        let ds = dataset();
        let serial = run_cell(ScalMethod::Bm25Sage, models(), LlmProfile::gpt4o_mini(), &ds, 1);
        let parallel =
            run_cell(ScalMethod::Bm25Sage, models(), LlmProfile::gpt4o_mini(), &ds, 5);
        assert!((serial.f1 - parallel.f1).abs() < 1e-6, "answers must not depend on threading");
    }
}
