//! The closed set of retriever backends a [`crate::pipeline::RagSystem`]
//! can hold.

use sage_embed::{DualEncoder, SiameseEncoder};
use sage_retrieval::{Bm25Retriever, DenseRetriever, Retriever, ScoredChunk};
use sage_vecdb::FlatIndex;

/// The concrete retriever variants a [`crate::pipeline::RagSystem`] can
/// hold. A closed enum (rather than `Box<dyn Retriever>`) so built systems
/// can be persisted — each variant knows how to serialize itself.
pub enum AnyRetriever {
    /// OpenAI-analog hashed encoder + flat index.
    Hashed(DenseRetriever<sage_embed::HashedEmbedder, FlatIndex>),
    /// SBERT-analog siamese encoder + flat index.
    Sbert(DenseRetriever<SiameseEncoder, FlatIndex>),
    /// DPR-analog dual encoder + flat index.
    Dpr(DenseRetriever<DualEncoder, FlatIndex>),
    /// BM25 inverted index.
    Bm25(Bm25Retriever),
}

impl AnyRetriever {
    fn as_dyn(&self) -> &dyn Retriever {
        match self {
            AnyRetriever::Hashed(r) => r,
            AnyRetriever::Sbert(r) => r,
            AnyRetriever::Dpr(r) => r,
            AnyRetriever::Bm25(r) => r,
        }
    }

    pub(crate) fn index_chunks(&mut self, chunks: &[String]) {
        match self {
            AnyRetriever::Hashed(r) => r.index(chunks),
            AnyRetriever::Sbert(r) => r.index(chunks),
            AnyRetriever::Dpr(r) => r.index(chunks),
            AnyRetriever::Bm25(r) => r.index(chunks),
        }
    }

    pub(crate) fn retrieve(&self, query: &str, n: usize) -> Vec<ScoredChunk> {
        self.as_dyn().retrieve(query, n)
    }

    pub(crate) fn memory_bytes(&self) -> usize {
        self.as_dyn().memory_bytes()
    }

    /// Embed a query with the dense embedder (`None` for BM25) — the first
    /// half of `retrieve`, exposed as its own failure domain.
    pub(crate) fn embed_query(&self, query: &str) -> Option<Vec<f32>> {
        match self {
            AnyRetriever::Hashed(r) => Some(r.embed_query(query)),
            AnyRetriever::Sbert(r) => Some(r.embed_query(query)),
            AnyRetriever::Dpr(r) => Some(r.embed_query(query)),
            AnyRetriever::Bm25(_) => None,
        }
    }

    /// Embed many queries with the dense embedder in one coalesced
    /// [`sage_embed::EmbedBatch`] call (`None` for BM25). Element `i` is
    /// bit-identical to `embed_query(queries[i])` — the scheduler relies
    /// on that to coalesce cross-query embed slots without changing any
    /// result.
    pub(crate) fn embed_query_batch(&self, queries: &[&str]) -> Option<Vec<Vec<f32>>> {
        match self {
            AnyRetriever::Hashed(r) => Some(r.embed_query_batch(queries)),
            AnyRetriever::Sbert(r) => Some(r.embed_query_batch(queries)),
            AnyRetriever::Dpr(r) => Some(r.embed_query_batch(queries)),
            AnyRetriever::Bm25(_) => None,
        }
    }

    /// Exact flat-index search over an already-embedded query (`None` for
    /// BM25) — the second half of `retrieve`.
    pub(crate) fn search_dense(&self, query: &[f32], n: usize) -> Option<Vec<ScoredChunk>> {
        match self {
            AnyRetriever::Hashed(r) => Some(r.search_with(query, n)),
            AnyRetriever::Sbert(r) => Some(r.search_with(query, n)),
            AnyRetriever::Dpr(r) => Some(r.search_with(query, n)),
            AnyRetriever::Bm25(_) => None,
        }
    }

    /// Whether this is a dense (embedder + vector index) variant.
    pub(crate) fn is_dense(&self) -> bool {
        !matches!(self, AnyRetriever::Bm25(_))
    }

    /// The underlying flat index of dense variants.
    pub(crate) fn flat_ref(&self) -> Option<&FlatIndex> {
        match self {
            AnyRetriever::Hashed(r) => Some(r.index_ref()),
            AnyRetriever::Sbert(r) => Some(r.index_ref()),
            AnyRetriever::Dpr(r) => Some(r.index_ref()),
            AnyRetriever::Bm25(_) => None,
        }
    }

    /// Persistence hook: (embedder blob, flat-index ref) for dense
    /// variants; `None` for BM25 (which rebuilds from the chunk store).
    pub(crate) fn dense_state(&self) -> Option<(bytes::Bytes, &FlatIndex)> {
        use sage_nn::BytesSerialize;
        match self {
            AnyRetriever::Hashed(r) => Some((r.embedder().to_bytes(), r.index_ref())),
            AnyRetriever::Sbert(r) => Some((r.embedder().to_bytes(), r.index_ref())),
            AnyRetriever::Dpr(r) => Some((r.embedder().to_bytes(), r.index_ref())),
            AnyRetriever::Bm25(_) => None,
        }
    }
}
