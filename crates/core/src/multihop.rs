//! Multi-hop retrieval — the paper's future-work direction §X(1)
//! ("Multi-hop retrieval … like Baleen"), implemented Baleen-style:
//! retrieve for a bridge sub-question, condense the bridge answer into the
//! query, retrieve again, answer.
//!
//! Ships with its own synthetic 2-hop dataset: "What color are the eyes of
//! the pet kept by X?" needs hop 1 (X keeps a *tortoise*) before hop 2
//! (the tortoise's eyes are *amber*) — single-hop retrieval sees only the
//! person paragraph and fails.

use crate::pipeline::{QueryResult, RagSystem};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sage_corpus::lexicon::{Lexicon, ANIMALS, COLORS};
use sage_eval::Cost;

/// One 2-hop task.
#[derive(Debug, Clone)]
pub struct TwoHopTask {
    /// The full question (answerable only via the bridge).
    pub question: String,
    /// The bridge sub-question (hop 1).
    pub bridge_question: String,
    /// Hop-2 rewrite template with a `{bridge}` placeholder — the
    /// "condensed retrieval" rewrite a Baleen-style system generates after
    /// hop 1.
    pub hop2_template: String,
    /// Gold final answer.
    pub answer: String,
    /// Gold bridge answer (the intermediate entity/species).
    pub bridge_answer: String,
}

/// A synthetic 2-hop corpus plus its tasks.
#[derive(Debug, Clone)]
pub struct TwoHopDataset {
    /// Corpus documents (one string each, `'\n'`-separated paragraphs).
    pub corpus: Vec<String>,
    /// The 2-hop tasks.
    pub tasks: Vec<TwoHopTask>,
}

/// Generate `n` two-hop tasks over one shared corpus.
pub fn generate_two_hop(n: usize, seed: u64) -> TwoHopDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut paragraphs = Vec::new();
    let mut tasks = Vec::new();
    let species_pool = Lexicon::pick_distinct(&mut rng, ANIMALS, n.min(ANIMALS.len()));
    for i in 0..n {
        let person = Lexicon::person_name(&mut rng);
        let pet = Lexicon::pet_name(&mut rng);
        // Distinct species per task keep the bridges unambiguous.
        let species = species_pool[i % species_pool.len()];
        let color = Lexicon::pick(&mut rng, COLORS);
        // Hop-1 paragraph: person → species (pet name never mentioned).
        paragraphs.push(format!(
            "{person} was well known in the region. {person} keeps a {species} at home."
        ));
        // Hop-2 paragraph: species → color (person never mentioned).
        paragraphs.push(format!(
            "{pet} is the {species} of the household. {pet} has bright {color} eyes."
        ));
        // Filler between tasks.
        paragraphs.push(Lexicon::filler_sentence(&mut rng));
        tasks.push(TwoHopTask {
            question: format!("What is the color of the eyes of the pet kept by {person}?"),
            bridge_question: format!("What kind of animal does {person} keep?"),
            hop2_template: "What is the color of the eyes of the {bridge}?".to_string(),
            answer: color.to_string(),
            bridge_answer: species.to_string(),
        });
    }
    TwoHopDataset { corpus: vec![paragraphs.join("\n")], tasks }
}

/// Answer a 2-hop task with iterative retrieval: hop 1 answers the bridge
/// question, hop 2 re-queries with the bridge answer appended (Baleen's
/// "condensed retrieval" step), then answers the full question.
pub fn answer_multihop(system: &RagSystem, task: &TwoHopTask) -> QueryResult {
    let hop1 = system.answer_open(&task.bridge_question);
    let bridged = task.hop2_template.replace("{bridge}", &hop1.answer.text);
    let mut hop2 = system.answer_open(&bridged);
    // Account both hops' spend.
    let mut cost = Cost::zero();
    cost.merge(hop1.cost);
    cost.merge(hop2.cost);
    hop2.cost = cost;
    hop2.answer_latency += hop1.answer_latency;
    hop2.retrieval_latency += hop1.retrieval_latency;
    hop2
}

/// Answer the task single-hop (the ablation baseline).
pub fn answer_singlehop(system: &RagSystem, task: &TwoHopTask) -> QueryResult {
    system.answer_open(&task.question)
}

/// A second 2-hop pattern: "What does the keeper of the {species} do for a
/// living?" — hop 1 finds who keeps the species, hop 2 asks that person's
/// profession. Exercises the person→fact direction (the pet dataset above
/// exercises person→pet).
pub fn generate_two_hop_professions(n: usize, seed: u64) -> TwoHopDataset {
    use sage_corpus::lexicon::PROFESSIONS;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut paragraphs = Vec::new();
    let mut tasks = Vec::new();
    let species_pool = Lexicon::pick_distinct(&mut rng, ANIMALS, n.min(ANIMALS.len()));
    for i in 0..n {
        let person = Lexicon::person_name(&mut rng);
        let species = species_pool[i % species_pool.len()];
        let profession = Lexicon::pick(&mut rng, PROFESSIONS);
        // Hop-1 paragraph: species → keeper (profession never mentioned).
        paragraphs.push(format!(
            "{person} was well known in the region. {person} keeps a {species} at home."
        ));
        // Hop-2 paragraph: keeper → profession (species never mentioned).
        paragraphs.push(format!(
            "Everyone in town had a story about {person}. {person} works as a {profession}."
        ));
        paragraphs.push(Lexicon::filler_sentence(&mut rng));
        tasks.push(TwoHopTask {
            question: format!("What does the keeper of the {species} do for a living?"),
            bridge_question: format!("Who keeps a {species} at home?"),
            hop2_template: "What is {bridge}'s profession?".to_string(),
            answer: profession.to_string(),
            bridge_answer: person,
        });
    }
    TwoHopDataset { corpus: vec![paragraphs.join("
")], tasks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RetrieverKind, SageConfig};
    use crate::models::{TrainBudget, TrainedModels};
    use sage_eval::f1_match;
    use sage_llm::LlmProfile;
    use std::sync::OnceLock;

    fn models() -> &'static TrainedModels {
        static M: OnceLock<TrainedModels> = OnceLock::new();
        M.get_or_init(|| TrainedModels::train(TrainBudget::tiny()))
    }

    fn accuracy(two_hop: bool) -> f32 {
        let ds = generate_two_hop(8, 0xB41);
        let system = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig { use_feedback: false, ..SageConfig::sage() },
            LlmProfile::gpt4(),
            &ds.corpus,
        );
        let scores: Vec<f32> = ds
            .tasks
            .iter()
            .map(|t| {
                let r = if two_hop {
                    answer_multihop(&system, t)
                } else {
                    answer_singlehop(&system, t)
                };
                f1_match(&r.answer.text, std::slice::from_ref(&t.answer))
            })
            .collect();
        scores.iter().sum::<f32>() / scores.len() as f32
    }

    #[test]
    fn dataset_structure() {
        let ds = generate_two_hop(5, 1);
        assert_eq!(ds.tasks.len(), 5);
        let text = &ds.corpus[0];
        for t in &ds.tasks {
            assert!(text.contains(&t.bridge_answer), "bridge {}", t.bridge_answer);
            assert!(text.contains(&t.answer), "answer {}", t.answer);
        }
    }

    #[test]
    fn multihop_beats_singlehop() {
        let single = accuracy(false);
        let multi = accuracy(true);
        assert!(
            multi > single,
            "multihop {multi} should beat singlehop {single}"
        );
        assert!(multi > 0.4, "multihop should mostly succeed: {multi}");
    }

    #[test]
    fn profession_pattern_multihop_beats_singlehop() {
        let ds = generate_two_hop_professions(8, 0xB42);
        let system = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig { use_feedback: false, ..SageConfig::sage() },
            LlmProfile::gpt4(),
            &ds.corpus,
        );
        let score = |two_hop: bool| -> f32 {
            ds.tasks
                .iter()
                .map(|t| {
                    let r = if two_hop {
                        answer_multihop(&system, t)
                    } else {
                        answer_singlehop(&system, t)
                    };
                    f1_match(&r.answer.text, std::slice::from_ref(&t.answer))
                })
                .sum::<f32>()
                / ds.tasks.len() as f32
        };
        let single = score(false);
        let multi = score(true);
        assert!(multi > single, "multi {multi} vs single {single}");
    }

    #[test]
    fn multihop_accounts_both_hops() {
        let ds = generate_two_hop(2, 2);
        let system = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig { use_feedback: false, ..SageConfig::sage() },
            LlmProfile::gpt4(),
            &ds.corpus,
        );
        let single = answer_singlehop(&system, &ds.tasks[0]);
        let multi = answer_multihop(&system, &ds.tasks[0]);
        assert!(multi.cost.input_tokens > single.cost.input_tokens);
    }
}
