//! Batched execution over the executor: striping across worker threads
//! and the admission-queue wave protocol. Each question still runs the
//! single per-query plan via [`crate::RagSystem::try_answer_open`].

use crate::pipeline::RagSystem;
use crate::QueryResult;
use sage_admission::{Decision, Priority};
use sage_resilience::{Fallback, SageError};

impl RagSystem {
    /// Answer many open-ended questions with `workers` threads. Results
    /// align with the input order; answers are identical to serial calls
    /// (the reader is deterministic per question). `workers == 0` is
    /// clamped to 1 (the empty input returns early before the clamp), and
    /// `workers > questions.len()` to the question count.
    ///
    /// A question whose pipeline panics aborts the whole batch by
    /// re-raising the panic on the caller's thread (the pre-resilience
    /// contract) — and when admission control is enabled, a shed question
    /// is re-raised the same way. Use [`RagSystem::try_answer_batch`] to
    /// get per-question `Err` slots instead.
    pub fn answer_batch(&self, questions: &[String], workers: usize) -> Vec<QueryResult> {
        self.try_answer_batch(questions, workers)
            .into_iter()
            .map(|r| match r {
                Ok(result) => result,
                // sage-lint: allow(no-panic-serving) - documented pre-resilience contract: this method re-raises per-question failures; try_answer_batch is the isolating alternative
                Err(e) => panic!("question failed: {e}"),
            })
            .collect()
    }

    /// [`RagSystem::answer_batch`] with per-question panic isolation: a
    /// panic anywhere in one question's pipeline (an injected `panic`
    /// fault, a bug) is caught at this boundary and surfaced as
    /// `Err(SageError::Panicked)` in that question's slot, while every
    /// other question completes normally. Results align with input order;
    /// `workers == 0` is clamped to 1.
    ///
    /// With admission control enabled ([`RagSystem::enable_admission`]),
    /// questions are offered to the queue in input order as
    /// [`Priority::Batch`] work and processed in waves of at most
    /// `workers` in-flight slots (released as each wave completes). A shed
    /// question's slot is `Err(SageError::Shed)`; sheds are deterministic
    /// for a fixed queue state, seed, and submission order.
    pub fn try_answer_batch(
        &self,
        questions: &[String],
        workers: usize,
    ) -> Vec<Result<QueryResult, SageError>> {
        if questions.is_empty() {
            return Vec::new();
        }
        let workers = workers.clamp(1, questions.len());
        let mut results: Vec<Option<Result<QueryResult, SageError>>> =
            (0..questions.len()).map(|_| None).collect();
        let indexed: Vec<(usize, &String)> = questions.iter().enumerate().collect();
        match &self.admission {
            None => self.batch_stripe(&indexed, workers, &mut results),
            Some(m) => {
                let mut offered = 0usize;
                while offered < indexed.len() {
                    // Admit the next wave under one lock hold: up to
                    // `workers` in-flight slots, so at zero external
                    // pressure a batch never lifts occupancy into the
                    // early-drop ramp.
                    let mut wave: Vec<(usize, &String)> = Vec::new();
                    {
                        let mut q = Self::lock_queue(m);
                        while offered < indexed.len() && wave.len() < workers {
                            let (i, question) = indexed[offered];
                            match q.admit(Priority::Batch) {
                                Decision::Admitted => wave.push((i, question)),
                                Decision::Shed(_) => {
                                    sage_telemetry::metrics::SHED_TOTAL
                                        .inc(Priority::Batch.idx());
                                    if let Some(state) = &self.resilience {
                                        state.counters.record(Fallback::Shed);
                                    }
                                    results[i] = Some(Err(SageError::Shed {
                                        class: Priority::Batch.label(),
                                    }));
                                }
                            }
                            offered += 1;
                        }
                    }
                    self.batch_stripe(&wave, workers, &mut results);
                    let mut q = Self::lock_queue(m);
                    for _ in 0..wave.len() {
                        q.release();
                    }
                }
            }
        }
        results
            .into_iter()
            .map(|r| {
                r.unwrap_or(Err(SageError::Panicked {
                    detail: "answer worker died before reporting".to_string(),
                }))
            })
            .collect()
    }

    /// Answer `wave` striped across up to `workers` threads, writing each
    /// question's result into its input slot.
    fn batch_stripe(
        &self,
        wave: &[(usize, &String)],
        workers: usize,
        results: &mut [Option<Result<QueryResult, SageError>>],
    ) {
        if wave.is_empty() {
            return;
        }
        let workers = workers.clamp(1, wave.len());
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for w in 0..workers {
                let mine: Vec<(usize, &String)> =
                    wave.iter().skip(w).step_by(workers).copied().collect();
                handles.push(s.spawn(move || {
                    mine.into_iter()
                        .map(|(i, q)| (i, self.try_answer_open(q)))
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                // Workers cannot panic (each question is caught inside),
                // but degrade gracefully if one somehow does: its questions
                // stay `None` and are filled with a structured error by the
                // caller.
                if let Ok(batch) = h.join() {
                    for (i, r) in batch {
                        results[i] = Some(r);
                    }
                }
            }
        });
    }
}
