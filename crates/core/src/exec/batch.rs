//! Batched execution over the slot scheduler: many questions run
//! *interleaved* — each live query advances one plan slot per scheduler
//! tick, same-stage ready slots coalesce into cross-query batch ops, and
//! the admission-queue wave protocol feeds the ready-set. Results are
//! byte-identical (in every deterministic field) to a sequential loop of
//! single-query calls, at any worker count and any batch size.

use super::sched::{self, BatchSpec, ScheduleStats};
use crate::pipeline::RagSystem;
use crate::QueryResult;
use sage_admission::{Decision, Priority};
use sage_resilience::{Fallback, SageError};

/// The seed of the scheduler's deterministic worker-assignment policy.
/// A fixed constant, so a batch's schedule is a pure function of
/// `(batch size, worker count)` — replayable across processes and runs.
const SCHED_SEED: u64 = 0x5A9E_0001;

/// Re-raise a per-question failure on the caller's thread — the
/// pre-resilience [`RagSystem::answer_batch`] contract, collapsed into
/// one place so the panic-on-serving exception is auditable at a single
/// suppression. [`RagSystem::try_answer_batch`] is the isolating
/// alternative: it surfaces the same failures as per-question `Err`
/// slots instead.
fn reraise(result: Result<QueryResult, SageError>) -> QueryResult {
    match result {
        Ok(r) => r,
        // sage-lint: allow(no-panic-serving) - documented pre-resilience contract: answer_batch re-raises per-question failures; try_answer_batch is the isolating alternative
        Err(e) => panic!("question failed: {e}"),
    }
}

impl RagSystem {
    /// Answer many open-ended questions with `workers` scheduler threads.
    /// Results align with the input order; answers are identical to serial
    /// calls (stages are deterministic per question and the coalesced
    /// batch surfaces are element-wise). `workers == 0` is clamped to 1,
    /// and `workers > questions.len()` to the question count.
    ///
    /// A question whose pipeline panics aborts the whole batch by
    /// re-raising the panic on the caller's thread (the pre-resilience
    /// contract, see [`reraise`]) — and when admission control is enabled,
    /// a shed question is re-raised the same way. Use
    /// [`RagSystem::try_answer_batch`] to get per-question `Err` slots
    /// instead.
    pub fn answer_batch(&self, questions: &[String], workers: usize) -> Vec<QueryResult> {
        self.try_answer_batch(questions, workers).into_iter().map(reraise).collect()
    }

    /// [`RagSystem::answer_batch`] with per-question panic isolation: a
    /// panic anywhere in one question's pipeline (an injected `panic`
    /// fault, a bug) is caught at the scheduler's per-slot boundary and
    /// surfaced as `Err(SageError::Panicked)` in that question's slot,
    /// while every other in-flight question completes normally. Results
    /// align with input order; `workers == 0` is clamped to 1.
    ///
    /// With admission control enabled ([`RagSystem::enable_admission`]),
    /// questions are offered to the queue in input order as
    /// [`Priority::Batch`] work and processed in waves of at most
    /// `workers` in-flight slots (released as each wave completes). A shed
    /// question's slot is `Err(SageError::Shed)`; sheds are deterministic
    /// for a fixed queue state, seed, and submission order.
    pub fn try_answer_batch(
        &self,
        questions: &[String],
        workers: usize,
    ) -> Vec<Result<QueryResult, SageError>> {
        if questions.is_empty() {
            return Vec::new();
        }
        let workers = workers.clamp(1, questions.len());
        match &self.admission {
            None => {
                let specs: Vec<BatchSpec<'_>> =
                    questions.iter().map(|q| BatchSpec::open(q)).collect();
                sched::run_interleaved(self, &specs, workers, SCHED_SEED)
            }
            Some(m) => {
                let mut results: Vec<Option<Result<QueryResult, SageError>>> =
                    (0..questions.len()).map(|_| None).collect();
                let mut offered = 0usize;
                while offered < questions.len() {
                    // Admit the next wave under one lock hold: up to
                    // `workers` in-flight slots, so at zero external
                    // pressure a batch never lifts occupancy into the
                    // early-drop ramp.
                    let mut wave: Vec<(usize, &String)> = Vec::new();
                    {
                        let mut q = Self::lock_queue(m);
                        while offered < questions.len() && wave.len() < workers {
                            let (i, question) = (offered, &questions[offered]);
                            match q.admit(Priority::Batch) {
                                Decision::Admitted => wave.push((i, question)),
                                Decision::Shed(_) => {
                                    sage_telemetry::metrics::SHED_TOTAL
                                        .inc(Priority::Batch.idx());
                                    if let Some(state) = &self.resilience {
                                        state.counters.record(Fallback::Shed);
                                    }
                                    results[i] = Some(Err(SageError::Shed {
                                        class: Priority::Batch.label(),
                                    }));
                                }
                            }
                            offered += 1;
                        }
                    }
                    let specs: Vec<BatchSpec<'_>> =
                        wave.iter().map(|&(_, q)| BatchSpec::open(q)).collect();
                    let wave_results =
                        sched::run_interleaved(self, &specs, workers, SCHED_SEED);
                    for ((i, _), r) in wave.iter().zip(wave_results) {
                        results[*i] = Some(r);
                    }
                    let mut q = Self::lock_queue(m);
                    for _ in 0..wave.len() {
                        q.release();
                    }
                }
                results
                    .into_iter()
                    .map(|r| {
                        r.unwrap_or(Err(SageError::Panicked {
                            detail: "answer worker died before reporting".to_string(),
                        }))
                    })
                    .collect()
            }
        }
    }

    /// [`RagSystem::try_answer_batch`] in the scheduler's profiling mode:
    /// slots execute sequentially (results unchanged) while each measured
    /// slot duration is attributed to the worker the deterministic policy
    /// assigned — so [`ScheduleStats::critical_path`] models the batch's
    /// parallel makespan on any host, including single-core CI. Bypasses
    /// admission (the bench measures the executor, not the queue).
    pub fn profile_batch(
        &self,
        questions: &[String],
        workers: usize,
    ) -> (Vec<Result<QueryResult, SageError>>, ScheduleStats) {
        let specs: Vec<BatchSpec<'_>> = questions.iter().map(|q| BatchSpec::open(q)).collect();
        sched::profile_interleaved(self, &specs, workers, SCHED_SEED)
    }

    /// Render the deterministic cross-query schedule this system's
    /// resolved plan yields for `queries` in-flight questions on
    /// `workers` workers (the engine behind `sage explain --concurrency`).
    pub fn explain_schedule(&self, queries: usize, workers: usize) -> String {
        let mut plan = super::QueryPlan::resolve(
            &self.config,
            self.retriever.is_dense(),
            self.scorer.is_some(),
        );
        if let Some(ss) = &self.shards {
            plan = plan.with_fanout(ss.fanout);
        }
        sched::render_schedule(&plan, queries, workers, SCHED_SEED)
    }
}
