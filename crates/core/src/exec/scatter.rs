//! Sharded scatter-gather retrieval: per-shard fault domains, hedged
//! probes, and partial-result degradation.
//!
//! When sharding is enabled ([`crate::RagSystem::enable_sharding`]) the
//! retrieval slots fan out over N deterministic shards (stable FNV-1a
//! routing of the chunk id, see [`sage_vecdb::ShardRouter`]) instead of
//! scanning one monolithic index. Each shard is its own fault domain: a
//! shard-scoped fault plan entry (`shard:2:slow`) can take it down without
//! touching its siblings. The probe protocol per shard:
//!
//! 1. Issue the primary probe (attempt 0). A clean probe contributes the
//!    shard's exact top-k to the merge.
//! 2. A faulted probe burns its full virtual budget slice and triggers a
//!    *hedged* re-probe (attempt 1) against the shard's replica — an
//!    independent fault draw, so transient faults clear on the hedge
//!    exactly like a component retry. The per-shard breaker can veto the
//!    hedge when the shard has already proven itself down.
//! 3. A shard whose hedge also faults is *lost* for this query.
//!
//! Gather: survivors merge with [`sage_vecdb::merge_hits`] — score
//! descending, global-id tie-break — which is invariant to shard
//! completion order, and (because every shard returns its full top-k over
//! an exact partition) byte-identical to the unsharded scan when nothing
//! is lost. Losing `m` shards with `N - m >= quorum` serves from the
//! survivors and records the `shard-partial:m/N` rung; below quorum the
//! query walks the ordinary BM25/flat fallback chain instead.
//!
//! Determinism: fault draws are a pure function of `(seed, shard, question,
//! attempt)`; the virtual clock and per-shard breakers are scoped to the
//! single scatter call (per query), mirroring the per-query breaker rule
//! of `crate::resilience`. No wall clock, no thread-order dependence.

use super::plan::Fanout;
use crate::pipeline::RagSystem;
use crate::retriever::AnyRetriever;
use sage_admission::CostModel;
use sage_resilience::{BreakerConfig, CircuitBreaker, FaultPlan, VirtualClock};
use sage_retrieval::ScoredChunk;
use sage_telemetry::metrics;
use sage_vecdb::{merge_hits, Hit, ShardRouter, ShardedFlat, VectorIndex};
use std::time::Duration;

/// System-wide sharding state: the resolved fan-out plus the partitioned
/// dense index and the sparse shard assignment. Built once per corpus
/// (and rebuilt on `add_documents`); read-only at query time.
pub(crate) struct ShardState {
    /// Resolved fan-out (shard count, quorum, per-probe budget slice).
    pub(crate) fanout: Fanout,
    /// Dense partition (one exact flat arena per shard); `None` for BM25
    /// primaries, which filter postings by `assignment` instead.
    pub(crate) dense: Option<ShardedFlat>,
    /// Chunk id → shard, shared by sparse shard filtering.
    pub(crate) assignment: Vec<u32>,
}

impl ShardState {
    /// Partition `retriever`'s corpus across `shards` fault domains. The
    /// per-probe budget slice is the cost model's search time — the same
    /// deterministic constant the brownout meter charges for the stage.
    pub(crate) fn build(
        retriever: &AnyRetriever,
        chunk_count: usize,
        shards: u32,
        quorum: Option<u32>,
    ) -> Self {
        let router = ShardRouter::new(shards);
        let fanout = Fanout::new(shards, quorum, CostModel::default().search_time);
        let dense = retriever.flat_ref().map(|flat| {
            let vectors: Vec<&[f32]> = (0..flat.len()).filter_map(|id| flat.vector(id)).collect();
            ShardedFlat::build(router, vectors)
        });
        Self { fanout, dense, assignment: router.assignment(chunk_count) }
    }

    /// Re-partition after the chunk store changed, keeping the configured
    /// shard count and quorum.
    pub(crate) fn rebuild(&self, retriever: &AnyRetriever, chunk_count: usize) -> Self {
        Self::build(retriever, chunk_count, self.fanout.shards, Some(self.fanout.quorum))
    }
}

impl RagSystem {
    /// Turn on sharded scatter-gather serving: the retrieval slots fan out
    /// over `shards` deterministic fault domains with hedged probes and
    /// partial-result degradation. `quorum` is the minimum surviving
    /// shards to serve from the shard path (default: majority). With no
    /// shard faults injected the merged results are byte-identical to the
    /// unsharded index at every shard count.
    pub fn enable_sharding(&mut self, shards: u32, quorum: Option<u32>) {
        self.shards = Some(ShardState::build(&self.retriever, self.chunks.len(), shards, quorum));
    }

    /// Turn sharding off (drops the partitioned indexes).
    pub fn disable_sharding(&mut self) {
        self.shards = None;
    }

    /// Whether sharded serving is active.
    pub fn sharding_enabled(&self) -> bool {
        self.shards.is_some()
    }

    /// The resolved fan-out, when sharding is active.
    pub fn shard_fanout(&self) -> Option<Fanout> {
        self.shards.as_ref().map(|s| s.fanout)
    }
}

/// Outcome of one scatter-gather pass over the shard set.
pub(crate) enum Scattered {
    /// Every shard answered: the merge is byte-identical to the unsharded
    /// scan.
    Clean(Vec<ScoredChunk>),
    /// `lost` of `total` shards were lost but quorum held: serve the
    /// survivors' merge under the `shard-partial:<m>/<N>` rung.
    Partial {
        /// Survivors' merged hits.
        hits: Vec<ScoredChunk>,
        /// Shards lost after the hedged probe.
        lost: u8,
        /// Shards fanned out to.
        total: u8,
        /// Probes issued (primaries + hedges).
        attempts: u32,
        /// Virtual time burned by faulted probes.
        delay: Duration,
    },
    /// Survivors fell below quorum: the caller degrades down the ordinary
    /// BM25/flat fallback chain.
    QuorumFailed {
        /// Shards lost after the hedged probe. The serving path degrades
        /// regardless of the count (tests assert on it), hence the
        /// non-test `dead_code` allowance.
        #[cfg_attr(not(test), allow(dead_code))]
        lost: u8,
        /// Shards fanned out to.
        #[cfg_attr(not(test), allow(dead_code))]
        total: u8,
        /// Probes issued (primaries + hedges).
        attempts: u32,
        /// Virtual time burned by faulted probes.
        delay: Duration,
    },
}

/// One scatter-gather pass: probe every shard (with hedging), merge the
/// survivors, and classify the outcome against the quorum. `probe` runs
/// the shard-local search; shards are visited in index order and the merge
/// is completion-order invariant, so the result is deterministic.
fn run_scatter(
    fanout: Fanout,
    plan: Option<&FaultPlan>,
    breaker_cfg: BreakerConfig,
    question: &str,
    k: usize,
    probe: impl Fn(u32) -> Vec<Hit>,
) -> Scattered {
    let total = fanout.shards;
    let clock = VirtualClock::new();
    let mut parts: Vec<Vec<Hit>> = Vec::with_capacity(total as usize);
    let mut lost: u32 = 0;
    let mut attempts: u32 = 0;
    let mut delay = Duration::ZERO;
    for s in 0..total {
        let breaker = CircuitBreaker::new(breaker_cfg);
        metrics::SHARD_PROBES.inc();
        attempts += 1;
        if plan.and_then(|p| p.inject_shard(s, question, 0)).is_none() {
            parts.push(probe(s));
            continue;
        }
        // The primary probe overran its slice (or failed outright): charge
        // the slice and hedge against the replica, unless the shard's
        // breaker already proved it down.
        breaker.record_failure(clock.now());
        clock.advance(fanout.slice);
        delay += fanout.slice;
        let hedge_allowed = !breaker.is_open(&clock);
        if hedge_allowed {
            metrics::SHARD_HEDGES.inc();
            metrics::SHARD_PROBES.inc();
            attempts += 1;
            if plan.and_then(|p| p.inject_shard(s, question, 1)).is_none() {
                parts.push(probe(s));
                continue;
            }
            breaker.record_failure(clock.now());
            clock.advance(fanout.slice);
            delay += fanout.slice;
        }
        lost += 1;
        metrics::SHARD_LOST.inc();
    }
    let survivors = total - lost;
    let hits: Vec<ScoredChunk> = merge_hits(&parts, k)
        .into_iter()
        .map(|h| ScoredChunk { index: h.id, score: h.score })
        .collect();
    if lost == 0 {
        Scattered::Clean(hits)
    } else if survivors >= fanout.quorum {
        metrics::SHARD_PARTIAL_SERVES.inc();
        Scattered::Partial {
            hits,
            lost: lost.min(255) as u8,
            total: total.min(255) as u8,
            attempts,
            delay,
        }
    } else {
        metrics::SHARD_QUORUM_FAILURES.inc();
        Scattered::QuorumFailed {
            lost: lost.min(255) as u8,
            total: total.min(255) as u8,
            attempts,
            delay,
        }
    }
}

/// Scatter the dense retrieval slot over the shard set. `None` when the
/// system is unsharded (or holds no dense partition) — the caller runs
/// the monolithic path.
pub(crate) fn scatter_dense(
    sys: &RagSystem,
    plan: Option<&FaultPlan>,
    breaker_cfg: BreakerConfig,
    question: &str,
    query_vec: &[f32],
    k: usize,
) -> Option<Scattered> {
    let state = sys.shards.as_ref()?;
    let sharded = state.dense.as_ref()?;
    Some(run_scatter(state.fanout, plan, breaker_cfg, question, k, |s| {
        sharded.search_shard(s, query_vec, k)
    }))
}

/// Scatter the sparse (BM25 primary) retrieval slot over the shard set:
/// each probe filters the postings to one shard's chunks while keeping
/// the *global* document statistics, so per-shard scores are
/// cross-comparable and the merge equals the global ranking exactly.
/// `None` when the system is unsharded or not a BM25 primary.
pub(crate) fn scatter_bm25(
    sys: &RagSystem,
    plan: Option<&FaultPlan>,
    breaker_cfg: BreakerConfig,
    question: &str,
    k: usize,
) -> Option<Scattered> {
    let state = sys.shards.as_ref()?;
    let AnyRetriever::Bm25(bm25) = &sys.retriever else { return None };
    Some(run_scatter(state.fanout, plan, breaker_cfg, question, k, |s| {
        bm25.retrieve_shard(question, k, s, &state.assignment)
            .into_iter()
            .map(|c| Hit { id: c.index, score: c.score })
            .collect()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_resilience::Rates;

    fn fanout(shards: u32, quorum: u32) -> Fanout {
        Fanout::new(shards, Some(quorum), Duration::from_millis(3))
    }

    fn fake_probe(s: u32) -> Vec<Hit> {
        vec![Hit { id: s as usize, score: 1.0 - s as f32 * 0.1 }]
    }

    #[test]
    fn clean_scatter_merges_all_shards() {
        let out = run_scatter(fanout(4, 3), None, BreakerConfig::default(), "q", 10, fake_probe);
        match out {
            Scattered::Clean(hits) => {
                assert_eq!(hits.len(), 4);
                assert_eq!(hits[0].index, 0, "best score first");
            }
            _ => panic!("no plan means no faults means clean"),
        }
    }

    #[test]
    fn one_lost_shard_serves_partial_with_quorum_intact() {
        let plan = FaultPlan::seeded(7).with_shard(2, Rates { transient: 1.0, ..Rates::default() });
        let out = run_scatter(
            fanout(4, 3),
            Some(&plan),
            BreakerConfig::default(),
            "q",
            10,
            fake_probe,
        );
        match out {
            Scattered::Partial { hits, lost, total, attempts, delay } => {
                assert_eq!((lost, total), (1, 4));
                assert!(hits.iter().all(|h| h.index != 2), "lost shard contributed no hits");
                assert_eq!(hits.len(), 3);
                assert_eq!(attempts, 5, "4 primaries + 1 hedge");
                assert_eq!(delay, Duration::from_millis(6), "two faulted probes x slice");
            }
            _ => panic!("one loss at quorum 3/4 must serve partial"),
        }
    }

    #[test]
    fn losing_more_than_quorum_allows_fails_the_quorum() {
        let mut plan = FaultPlan::seeded(7);
        for s in 0..3 {
            plan = plan.with_shard(s, Rates { transient: 1.0, ..Rates::default() });
        }
        let out = run_scatter(
            fanout(4, 3),
            Some(&plan),
            BreakerConfig::default(),
            "q",
            10,
            fake_probe,
        );
        match out {
            Scattered::QuorumFailed { lost, total, .. } => {
                assert_eq!((lost, total), (3, 4));
            }
            _ => panic!("3 lost of 4 at quorum 3 must fail the quorum"),
        }
    }

    #[test]
    fn transient_shard_fault_can_clear_on_the_hedge() {
        // Sweep seeds until a draw faults at attempt 0 but not attempt 1 —
        // the hedge saves the shard and the scatter stays clean.
        let mut saved = false;
        for seed in 0..64 {
            let plan = FaultPlan::seeded(seed)
                .with_shard(1, Rates { transient: 0.5, ..Rates::default() });
            let faulted0 = plan.inject_shard(1, "q", 0).is_some();
            let faulted1 = plan.inject_shard(1, "q", 1).is_some();
            if faulted0 && !faulted1 {
                let out = run_scatter(
                    fanout(2, 1),
                    Some(&plan),
                    BreakerConfig::default(),
                    "q",
                    10,
                    fake_probe,
                );
                assert!(
                    matches!(out, Scattered::Clean(_)),
                    "seed {seed}: hedge cleared the fault, scatter must be clean"
                );
                saved = true;
                break;
            }
        }
        assert!(saved, "no seed in 0..64 exercised the hedge-save path");
    }

    #[test]
    fn scatter_is_deterministic_across_runs() {
        let plan = FaultPlan::seeded(11).with_shard(0, Rates { timeout: 1.0, ..Rates::default() });
        let describe = |out: Scattered| match out {
            Scattered::Clean(h) => format!("clean:{}", h.len()),
            Scattered::Partial { hits, lost, total, attempts, delay } => {
                format!("partial:{}:{lost}/{total}:{attempts}:{delay:?}", hits.len())
            }
            Scattered::QuorumFailed { lost, total, attempts, delay } => {
                format!("quorum:{lost}/{total}:{attempts}:{delay:?}")
            }
        };
        let a = describe(run_scatter(
            fanout(4, 3),
            Some(&plan),
            BreakerConfig::default(),
            "same question",
            5,
            fake_probe,
        ));
        let b = describe(run_scatter(
            fanout(4, 3),
            Some(&plan),
            BreakerConfig::default(),
            "same question",
            5,
            fake_probe,
        ));
        assert_eq!(a, b);
    }
}
