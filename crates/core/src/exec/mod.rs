//! The stage-graph query execution engine.
//!
//! One deterministic executor runs every query path: a [`QueryPlan`]
//! (resolved from the configuration) is executed slot by slot, with the
//! cross-cutting concerns — budget checkpoint charging, brownout plan
//! rewrites, telemetry spans/histograms/ledger, resilience `catch_unwind`
//! at the public boundary — applied as middleware around the stages
//! instead of hand-stitched at each entry point. `pipeline.rs` keeps only
//! thin plan builders over [`execute`], [`execute_fixed`],
//! [`execute_caught`], and [`run_prelude`].
//!
//! Per-slot middleware order (load-bearing, see DESIGN.md §11):
//! budget-before → rung rewrite → op re-fetch → telemetry-open → stage →
//! telemetry-close → budget-after → rung rewrite.

// sage-lint: allow-file(no-wallclock) - the executor owns the query/prelude latency measurement previously inlined in pipeline.rs; no control flow branches on the readings

mod batch;
mod ctx;
mod middleware;
mod plan;
pub(crate) mod scatter;
pub(crate) mod sched;
mod stages;

pub(crate) use ctx::QueryCtx;
pub use plan::{Fanout, QueryPlan, RerankMode, SelectMode, StageOp};
pub use sched::{render_schedule, ScheduleStats};
use plan::Loc;
use stages::dispatch;

use crate::brownout::BrownoutCtl;
use crate::pipeline::RagSystem;
use crate::resilience::QueryGuards;
use crate::QueryResult;
use sage_admission::{CostModel, PlanStage, QueryBudget};
use sage_rerank::RankedChunk;
use sage_resilience::{Fallback, SageError};
use sage_telemetry::Trace;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// What a completed slot tells the executor about the rest of the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flow {
    /// Proceed to the next slot.
    Continue,
    /// The query is decided: skip the remaining round slots and fuse.
    Done,
    /// The embedder is exhausted; splice the BM25 substitution in for the
    /// pending dense search.
    FallbackToBm25,
}

/// Run one slot: the full middleware sandwich around a single stage. The
/// op is re-fetched after the budget rewrite because the checkpoint may
/// have rewritten the very slot about to run (e.g. `Select(Gradient)` →
/// `Select(Flat)` at the FlatTopK rung).
fn exec_slot(sys: &RagSystem, plan: &mut QueryPlan, ctx: &mut QueryCtx<'_>, loc: Loc) -> Flow {
    let op = plan.get(loc);
    if let Some(level) = middleware::budget_before(ctx, op) {
        plan.apply_rung(level);
    }
    let op = plan.get(loc);
    middleware::tel_before(sys, ctx, op);
    let flow = dispatch(op).run(sys, ctx, op);
    middleware::tel_after(sys, ctx, op, flow);
    if let Some(level) = middleware::budget_after(ctx, op, flow) {
        plan.apply_rung(level);
    }
    flow
}

/// Run the prelude slots (retrieval + rerank) of `plan` over `ctx`.
fn run_prelude_slots(sys: &RagSystem, plan: &mut QueryPlan, ctx: &mut QueryCtx<'_>) {
    let mut i = 0;
    while i < plan.prelude.len() {
        let flow = exec_slot(sys, plan, ctx, Loc::Prelude(i));
        if flow == Flow::FallbackToBm25 {
            plan.on_bm25_fallback(i + 1);
        }
        i += 1;
    }
}

/// Finalize: stamp the degradation trace into the result, absorb it into
/// the resilience counters, and flush the query's telemetry (degrade
/// events folded into the span trace, query histogram, trace ring).
/// Shared by every path — on a clean unbudgeted query each step is a
/// no-op by construction.
fn finalize(sys: &RagSystem, mut ctx: QueryCtx<'_>, total: Duration) -> QueryResult {
    let mut result = ctx.result.take().unwrap_or_else(|| {
        // Unreachable: fuse always sets a result. Degrade to an honest
        // empty result rather than panicking on the serving path.
        QueryResult::single_read(stages::unanswerable(Duration::ZERO), None, Vec::new(), Duration::ZERO)
    });
    result.degraded = ctx.trace;
    if let Some(state) = &sys.resilience {
        state.counters.absorb(&result.degraded);
    }
    if let (Some(hub), Some(mut t)) = (&sys.telemetry, ctx.qt.take()) {
        // Fold this query's degradation events into the same trace so one
        // record explains both where time went and what fell back.
        for e in &result.degraded.events {
            let id = t.event("degrade");
            t.field(id, "component", e.component.label());
            t.field(id, "fallback", e.fallback.label());
            t.field(id, "error", e.error.to_string());
            t.field(id, "attempts", u64::from(e.attempts));
            t.field(id, "virtual_delay_ns", e.delay.as_nanos() as u64);
        }
        hub.record_degrades(result.degraded.events.len() as u64);
        hub.record_query(total);
        hub.push_trace(t);
    }
    // Flight-recorder hook: one ad-hoc observation per query when a
    // recorder is attached (suppressed while an external driver like the
    // soak loop supplies its own, richer observations).
    crate::obs::observe_adhoc(sys, ctx.question, &result);
    result
}

/// Resolve the plan and assemble the fresh context for one query — the
/// shared setup behind [`execute`] and the scheduler's admission step:
/// plan resolution (with shard fan-out), guard arming, trace opening, and
/// the brownout admission gate (replan once before any work so a hopeless
/// budget walks the ladder immediately).
pub(crate) fn prepare<'a>(
    sys: &'a RagSystem,
    question: &'a str,
    options: Option<&'a [String]>,
    budget: Option<QueryBudget>,
) -> (QueryPlan, QueryCtx<'a>) {
    let mut plan =
        QueryPlan::resolve(&sys.config, sys.retriever.is_dense(), sys.scorer.is_some());
    if let Some(ss) = &sys.shards {
        plan = plan.with_fanout(ss.fanout);
    }
    let guards = sys.resilience.as_ref().map(QueryGuards::new);
    let qt = sys.telemetry.as_ref().map(|_| Trace::start(question));
    let bctl = budget.map(|b| {
        BrownoutCtl::new(
            b,
            CostModel::default(),
            sys.config.candidates,
            if sys.config.use_feedback { sys.config.max_feedback_rounds as u32 } else { 0 },
        )
    });
    let mut ctx = QueryCtx::new(question, options, guards, qt, bctl, sys.config.min_k);
    if let Some(ctl) = ctx.bctl.as_mut() {
        let rounds = ctl.rounds_left(0);
        let level = ctl.checkpoint(PlanStage::Start, rounds, &mut ctx.trace);
        plan.apply_rung(level);
    }
    (plan, ctx)
}

/// Execute the full query plan for `question`: the one entry point behind
/// `answer_open`, `answer_multiple_choice`, and the `*_budgeted` pair. A
/// batch of one through the slot scheduler's stepper — the same code that
/// runs interleaved cross-query batches.
pub(crate) fn execute(
    sys: &RagSystem,
    question: &str,
    options: Option<&[String]>,
    budget: Option<QueryBudget>,
) -> QueryResult {
    let (plan, ctx) = prepare(sys, question, options, budget);
    sched::drive(sys, plan, ctx)
}

/// [`execute`] with panic isolation: a panic anywhere in the pipeline
/// becomes `Err(SageError::Panicked)` and is counted on the resilience
/// ledger.
pub(crate) fn execute_caught(
    sys: &RagSystem,
    question: &str,
    options: Option<&[String]>,
    budget: Option<QueryBudget>,
) -> Result<QueryResult, SageError> {
    catch_unwind(AssertUnwindSafe(|| execute(sys, question, options, budget))).map_err(|payload| {
        let err = SageError::from_panic(payload);
        if let Some(state) = &sys.resilience {
            state.counters.record(Fallback::PanicIsolated);
        }
        err
    })
}

/// Execute the fixed-context plan: one generation call over explicit
/// chunk ids (no retrieval, no selection, no feedback loop).
pub(crate) fn execute_fixed(
    sys: &RagSystem,
    question: &str,
    chunk_ids: &[usize],
    options: Option<&[String]>,
) -> QueryResult {
    let plan = QueryPlan::fixed();
    let qt = sys.telemetry.as_ref().map(|_| Trace::start(question));
    let mut ctx = QueryCtx::new(question, options, None, qt, None, sys.config.min_k);
    ctx.fixed = true;
    let query_start = Instant::now();
    // No retrieval runs on this path; the "retrieval" latency is the
    // (real, measured) context-assembly time rather than a zero
    // placeholder.
    let assemble_start = Instant::now();
    ctx.selected = chunk_ids.to_vec();
    // sage-lint: allow(panic-reachability) - chunk ids were produced against sys.chunks by this run's retriever
    ctx.context = chunk_ids.iter().map(|&id| sys.chunks[id].clone()).collect();
    ctx.retrieval_latency = assemble_start.elapsed();
    sched::drive_from(sys, plan, ctx, query_start)
}

/// Execute only the prelude (retrieval + rerank) unguarded and unbudgeted:
/// the engine behind [`crate::RagSystem::candidates`] and
/// [`crate::RagSystem::rerank_scores`]. Histogram stages still record when
/// a hub is attached, but no span trace is kept.
pub(crate) fn run_prelude(sys: &RagSystem, question: &str) -> (Vec<usize>, Vec<RankedChunk>) {
    let mut plan =
        QueryPlan::resolve(&sys.config, sys.retriever.is_dense(), sys.scorer.is_some());
    if let Some(ss) = &sys.shards {
        plan = plan.with_fanout(ss.fanout);
    }
    let mut ctx = QueryCtx::new(question, None, None, None, None, sys.config.min_k);
    run_prelude_slots(sys, &mut plan, &mut ctx);
    (ctx.cand_ids, ctx.ranked)
}
