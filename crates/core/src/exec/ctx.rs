//! The mutable state a query plan executes over: the typed blackboard
//! every [`super::Stage`] reads its input from and writes its output to.

// sage-lint: allow-file(no-wallclock) - holds the stage/retrieve timing anchors the telemetry middleware reads; no control flow branches on them

use crate::brownout::BrownoutCtl;
use crate::resilience::QueryGuards;
use sage_eval::Cost;
use sage_llm::{Answer, FeedbackOutcome};
use sage_rerank::RankedChunk;
use sage_resilience::DegradeTrace;
use sage_retrieval::ScoredChunk;
use sage_telemetry::Trace;
use std::time::{Duration, Instant};

/// One round's generation output: what the reader answered and over which
/// chunks (the second-best set when the reader degraded).
pub(crate) struct RoundAnswer {
    /// Chosen option index in multiple-choice mode.
    pub picked: Option<usize>,
    /// The generated answer.
    pub answer: Answer,
    /// Chunk ids the reader actually saw.
    pub selected: Vec<usize>,
}

/// Everything a query accumulates while its plan runs. Stages communicate
/// exclusively through these fields; the middleware hooks observe them.
pub(crate) struct QueryCtx<'a> {
    /// The question being answered.
    pub question: &'a str,
    /// Multiple-choice options, when in that mode.
    pub options: Option<&'a [String]>,
    /// Per-query resilience guards (`None` runs the bare primary path).
    pub guards: Option<QueryGuards<'a>>,
    /// Degradation events accumulated so far.
    pub trace: DegradeTrace,
    /// The query's telemetry span trace, when a hub is attached.
    pub qt: Option<Trace>,
    /// Brownout controller, when the query runs under a budget.
    pub bctl: Option<BrownoutCtl>,

    // --- prelude outputs ---
    /// A query embedding computed ahead of the embed slot by the slot
    /// scheduler's cross-query `EmbedBatch` coalescing. The embed stage
    /// consumes it in place of its own embedder call; by the batch
    /// surface's element-wise contract the bytes are identical either way.
    pub prefetched_query_vec: Option<Vec<f32>>,
    /// The embedded question (dense systems; `None` before embed or on
    /// BM25 paths).
    pub query_vec: Option<Vec<f32>>,
    /// First-stage hits, in retrieval order.
    pub hits: Vec<ScoredChunk>,
    /// Candidate chunk ids (hit indices into the chunk store).
    pub cand_ids: Vec<usize>,
    /// Ranked list over candidate *positions*.
    pub ranked: Vec<RankedChunk>,

    // --- round state ---
    /// Current selection floor (feedback adjusts it between rounds).
    pub min_k: usize,
    /// Current round number (0-based).
    pub round: usize,
    /// Previous round's selected positions; a repeat stops the loop.
    pub last_selection: Option<Vec<usize>>,
    /// This round's selected chunk ids.
    pub selected: Vec<usize>,
    /// This round's assembled context text.
    pub context: Vec<String>,
    /// This round's generation output (`None` after a fully exhausted
    /// reader).
    pub current: Option<RoundAnswer>,
    /// Best judged round so far, by feedback score.
    pub best: Option<(u8, RoundAnswer)>,
    /// A final round that was never judged (feedback off or browned out);
    /// it wins over `best` at fuse time with no score.
    pub unjudged: Option<RoundAnswer>,
    /// The latest self-feedback outcome, for the telemetry middleware.
    pub last_feedback: Option<FeedbackOutcome>,
    /// Feedback rounds actually executed.
    pub executed_feedback: usize,

    // --- accumulators ---
    /// Token cost across all generation + feedback calls.
    pub total_cost: Cost,
    /// Simulated generation latency, summed over rounds.
    pub answer_latency: Duration,
    /// Simulated feedback latency, summed over rounds.
    pub feedback_latency: Duration,
    /// Measured retrieval + rerank (or context assembly) wall-clock.
    pub retrieval_latency: Duration,

    // --- plan shape flags ---
    /// Fixed-context mode (`answer_with_chunks`): context preassembled,
    /// fuse emits a bare single-read result.
    pub fixed: bool,

    // --- telemetry anchors (owned by the middleware) ---
    /// Open retrieve span id.
    pub retrieve_sid: Option<usize>,
    /// Open embed span id.
    pub embed_sid: Option<usize>,
    /// Open span id of the current non-retrieval stage.
    pub stage_sid: Option<usize>,
    /// Start of the first-stage retrieval window.
    pub retrieve_start: Option<Instant>,
    /// Start of the current stage's timing window.
    pub stage_start: Option<Instant>,

    /// The fused result, set by the terminal stage.
    pub result: Option<crate::QueryResult>,
}

impl<'a> QueryCtx<'a> {
    /// A fresh context. `min_k` seeds the selection floor from the
    /// configuration.
    pub(crate) fn new(
        question: &'a str,
        options: Option<&'a [String]>,
        guards: Option<QueryGuards<'a>>,
        qt: Option<Trace>,
        bctl: Option<BrownoutCtl>,
        min_k: usize,
    ) -> Self {
        QueryCtx {
            question,
            options,
            guards,
            trace: DegradeTrace::new(),
            qt,
            bctl,
            prefetched_query_vec: None,
            query_vec: None,
            hits: Vec::new(),
            cand_ids: Vec::new(),
            ranked: Vec::new(),
            min_k,
            round: 0,
            last_selection: None,
            selected: Vec::new(),
            context: Vec::new(),
            current: None,
            best: None,
            unjudged: None,
            last_feedback: None,
            executed_feedback: 0,
            total_cost: Cost::zero(),
            answer_latency: Duration::ZERO,
            feedback_latency: Duration::ZERO,
            retrieval_latency: Duration::ZERO,
            fixed: false,
            retrieve_sid: None,
            embed_sid: None,
            stage_sid: None,
            retrieve_start: None,
            stage_start: None,
            result: None,
        }
    }
}
