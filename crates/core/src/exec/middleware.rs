//! Cross-cutting middleware applied around every executor slot: budget
//! checkpoint charging (before/after) and telemetry span + histogram
//! recording. Both are pure observers of the stage contract — a plan run
//! with no budget and no telemetry hub executes the identical stage
//! sequence with every hook a no-op.

// sage-lint: allow-file(no-wallclock) - this module IS the latency measurement layer: stage timings feed the telemetry histograms and QueryResult latency fields; no control flow branches on the readings

use super::ctx::QueryCtx;
use super::plan::{RerankMode, StageOp};
use super::Flow;
use crate::pipeline::RagSystem;
use sage_admission::{BrownoutLevel, PlanStage};
use sage_resilience::{Component, DegradeEvent, DegradeTrace, Failure, Fallback};
use sage_telemetry::{Stage, Trace};
use std::time::{Duration, Instant};

/// Append one fired fallback to a query's degradation trace.
pub(crate) fn push_event(
    trace: &mut DegradeTrace,
    component: Component,
    fallback: Fallback,
    failure: Failure,
) {
    trace.events.push(DegradeEvent {
        component,
        fallback,
        error: failure.error,
        attempts: failure.attempts,
        delay: failure.delay,
    });
}

/// Open a span on the query trace, if one is being recorded.
pub(crate) fn span_enter(qt: &mut Option<Trace>, name: &'static str) -> Option<usize> {
    qt.as_mut().map(|t| t.enter(name))
}

/// Close a span opened by [`span_enter`].
pub(crate) fn span_exit(qt: &mut Option<Trace>, id: Option<usize>) {
    if let (Some(t), Some(id)) = (qt.as_mut(), id) {
        t.exit(id);
    }
}

fn elapsed(start: Option<Instant>) -> Duration {
    start.map(|t| t.elapsed()).unwrap_or(Duration::ZERO)
}

/// Budget middleware, entry side: charge the work about to run at the
/// deterministic cost model and replan at the stage's checkpoint. Returns
/// the ratcheted level the executor rewrites the remaining plan with.
///
/// The charge/checkpoint order per stage is load-bearing and mirrors the
/// pre-executor inline accounting exactly: rerank charges the first-stage
/// work *then* replans *then* charges its own work at the level just
/// decided; selection replans first and only charges when it will actually
/// run the gradient pass.
pub(crate) fn budget_before(ctx: &mut QueryCtx<'_>, op: StageOp) -> Option<BrownoutLevel> {
    let ctl = ctx.bctl.as_mut()?;
    match op {
        StageOp::Rerank(_) => {
            let model = *ctl.meter.model();
            ctl.meter.charge_time(model.embed_time + model.search_time);
            let left = ctl.rounds_left(0);
            let level = ctl.checkpoint(PlanStage::Rerank, left, &mut ctx.trace);
            // Charge the rerank work at the level just decided; the plan
            // and the spend use the same model values.
            ctl.meter.charge_time(model.rerank_cost(level, ctl.candidates));
            Some(level)
        }
        StageOp::Select(_) => {
            let left = ctl.rounds_left(ctx.executed_feedback);
            let level = ctl.checkpoint(PlanStage::Select, left, &mut ctx.trace);
            if level < BrownoutLevel::FlatTopK {
                let d = ctl.meter.model().select_time;
                ctl.meter.charge_time(d);
            }
            Some(level)
        }
        StageOp::Read => {
            let left = ctl.rounds_left(ctx.executed_feedback);
            Some(ctl.checkpoint(PlanStage::Read, left, &mut ctx.trace))
        }
        _ => None,
    }
}

/// Budget middleware, exit side: settle a completed stage's spend and run
/// the post-read feedback checkpoint (the rung that decides whether the
/// loop may still afford judging — its rewrite drops the feedback op).
pub(crate) fn budget_after(
    ctx: &mut QueryCtx<'_>,
    op: StageOp,
    flow: Flow,
) -> Option<BrownoutLevel> {
    let ctl = ctx.bctl.as_mut()?;
    match (op, flow) {
        // A read that produced nothing charges nothing: the reader
        // exhausted its fallbacks and the loop stops here.
        (StageOp::Read, Flow::Continue) => {
            let model = *ctl.meter.model();
            ctl.meter.charge_time(model.read_time);
            ctl.meter.charge_tokens(model.read_tokens_at(ctl.meter.level()));
            let left = ctl.rounds_left(ctx.executed_feedback);
            Some(ctl.checkpoint(PlanStage::Feedback, left, &mut ctx.trace))
        }
        (StageOp::Feedback, _) => {
            let model = *ctl.meter.model();
            ctl.meter.charge_time(model.feedback_round_time);
            ctl.meter.charge_tokens(model.feedback_round_tokens);
            None
        }
        _ => None,
    }
}

/// Telemetry middleware, entry side: start the stage clock and open the
/// matching span(s). The retrieve span wraps the whole first stage (embed
/// plus search), so it opens lazily at whichever retrieval op runs first
/// and stays open across the embed → search (or embed → BM25 fallback)
/// boundary.
pub(crate) fn tel_before(sys: &RagSystem, ctx: &mut QueryCtx<'_>, op: StageOp) {
    match op {
        StageOp::Embed => {
            if ctx.retrieve_start.is_none() {
                ctx.retrieve_start = Some(Instant::now());
                ctx.retrieve_sid = span_enter(&mut ctx.qt, "retrieve");
            }
            ctx.stage_start = Some(Instant::now());
            ctx.embed_sid = span_enter(&mut ctx.qt, "embed");
        }
        StageOp::RetrieveDense | StageOp::RetrieveBm25 { .. }
            if ctx.retrieve_start.is_none() =>
        {
            ctx.retrieve_start = Some(Instant::now());
            ctx.retrieve_sid = span_enter(&mut ctx.qt, "retrieve");
        }
        StageOp::Rerank(mode) => {
            ctx.stage_start = Some(Instant::now());
            // A span only when the cross-encoder actually scores pairs.
            ctx.stage_sid = if !matches!(mode, RerankMode::Bypass) && sys.scorer.is_some() {
                span_enter(&mut ctx.qt, "rerank")
            } else {
                None
            };
        }
        StageOp::Read => {
            ctx.stage_start = Some(Instant::now());
            ctx.stage_sid = span_enter(&mut ctx.qt, "read");
        }
        StageOp::Feedback => {
            ctx.stage_start = Some(Instant::now());
            ctx.stage_sid = span_enter(&mut ctx.qt, "feedback");
        }
        _ => {}
    }
}

/// Telemetry middleware, exit side: annotate + close the stage span,
/// observe the stage histogram, and attribute token cost. Runs for every
/// flow — a degraded or terminal stage still reports its timing.
pub(crate) fn tel_after(sys: &RagSystem, ctx: &mut QueryCtx<'_>, op: StageOp, _flow: Flow) {
    match op {
        StageOp::Embed => {
            span_exit(&mut ctx.qt, ctx.embed_sid.take());
            sys.tel_stage(Stage::Embed, elapsed(ctx.stage_start));
        }
        StageOp::RetrieveDense | StageOp::RetrieveBm25 { .. } => {
            if let (Some(t), Some(id)) = (ctx.qt.as_mut(), ctx.retrieve_sid.take()) {
                t.field(id, "candidates", ctx.cand_ids.len());
                t.exit(id);
            }
            sys.tel_stage(Stage::Retrieve, elapsed(ctx.retrieve_start));
        }
        StageOp::Rerank(_) => {
            if let (Some(t), Some(id)) = (ctx.qt.as_mut(), ctx.stage_sid.take()) {
                t.field(id, "pairs", ctx.ranked.len());
                t.exit(id);
                sys.tel_stage(Stage::Rerank, elapsed(ctx.stage_start));
            } else if sys.scorer.is_some() {
                // Bypassed-but-configured rerank still observes its (near
                // zero) stage time, so budgeted and unbudgeted histograms
                // stay comparable.
                sys.tel_stage(Stage::Rerank, elapsed(ctx.stage_start));
            }
        }
        StageOp::Read => {
            if let (Some(t), Some(id)) = (ctx.qt.as_mut(), ctx.stage_sid.take()) {
                if !ctx.fixed {
                    t.field(id, "round", ctx.round);
                }
                if let Some(cur) = &ctx.current {
                    t.field(id, "context_chunks", cur.selected.len());
                    t.field(id, "input_tokens", cur.answer.cost.input_tokens);
                    t.field(id, "output_tokens", cur.answer.cost.output_tokens);
                }
                t.exit(id);
            }
            sys.tel_stage(Stage::Read, elapsed(ctx.stage_start));
            if let Some(cur) = &ctx.current {
                sys.tel_cost(Stage::Read, &cur.answer.cost);
            }
        }
        StageOp::Feedback => {
            if let (Some(t), Some(id)) = (ctx.qt.as_mut(), ctx.stage_sid.take()) {
                if let Some(fb) = &ctx.last_feedback {
                    t.field(id, "score", u64::from(fb.score));
                    t.field(id, "adjustment", i64::from(fb.adjustment));
                }
                t.exit(id);
            }
            sys.tel_stage(Stage::Feedback, elapsed(ctx.stage_start));
            if let Some(fb) = &ctx.last_feedback {
                sys.tel_cost(Stage::Feedback, &fb.cost);
            }
        }
        _ => {}
    }
}
