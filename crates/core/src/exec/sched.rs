//! The cross-query slot scheduler: many in-flight queries advance through
//! their plans one slot at a time, and same-stage ready slots coalesce
//! into cross-query batch ops.
//!
//! Every query is a [`QueryRun`] — a resumable cursor over its
//! [`QueryPlan`] that executes exactly one slot (the full middleware
//! sandwich) per [`QueryRun::advance`]. The scheduler keeps the ready-set
//! (each live run exposes exactly one ready slot), groups it by stage
//! kind, and assigns slots to workers with a *deterministic* policy:
//! seeded round-robin keyed on `(query_seq, slot_index)` — never
//! wall-clock, never thread id — so the schedule replays identically at
//! any machine speed and any worker count.
//!
//! ## Why batched == sequential, byte for byte
//!
//! Three invariants make the interleaving invisible in the outputs:
//!
//! 1. **Stages are pure over their context.** All query state lives on
//!    the per-query [`QueryCtx`] blackboard; the models are seeded per
//!    call, so a slot's result is a function of `(ctx, sys)` alone and
//!    cannot observe which worker ran it, when, or what ran beside it.
//! 2. **Batch surfaces are element-wise.** The coalesced paths
//!    (`EmbedBatch`, `RerankBatch`, `LlmBatch`) contractually return
//!    exactly what the single calls return, and the single calls *are*
//!    batches of one — one code path, no drift.
//! 3. **Shared state is commutative.** Everything cross-query is a sum
//!    (telemetry ledger and histograms, resilience counters, process
//!    metrics), so accumulation order cannot reach any output.
//!
//! Panic isolation is per slot: a stage panic fails its own query with
//! `SageError::Panicked` (counted on the resilience ledger, exactly like
//! the sequential `execute_caught` boundary) while every other in-flight
//! query proceeds.

// sage-lint: allow-file(no-wallclock) - the scheduler owns the query/prelude latency and worker-busy measurement the executor previously inlined in mod.rs; no control flow branches on the readings

use super::plan::{Loc, QueryPlan, StageOp};
use super::stages::dispatch;
use super::{exec_slot, finalize, Flow, QueryCtx};
use crate::pipeline::RagSystem;
use crate::QueryResult;
use sage_admission::QueryBudget;
use sage_resilience::{Fallback, SageError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Where a run's single ready slot sits in its plan.
#[derive(Debug, Clone, Copy)]
enum Pos {
    /// Next slot is `prelude[i]`.
    Prelude(usize),
    /// Next slot is `round[slot]` of feedback round `round`.
    Round { round: usize, slot: usize },
    /// All rounds decided; the terminal fuse is pending.
    Fuse,
    /// Fused: the context holds the result.
    Done,
}

/// One in-flight query: plan + context + cursor. The stepper reproduces
/// `run_plan`'s control flow exactly — same slot order, same brownout
/// re-checks of the (possibly rewritten) plan shape after every slot —
/// just resumable, so the scheduler can interleave many runs.
pub(crate) struct QueryRun<'a> {
    plan: QueryPlan,
    ctx: QueryCtx<'a>,
    pos: Pos,
    /// Wall-clock anchor for the whole query (telemetry histogram input).
    started: Instant,
    /// Wall-clock anchor for the prelude window (retrieval latency).
    prelude_start: Option<Instant>,
    /// Slots executed so far — the `slot_index` half of the worker
    /// assignment key.
    slots_run: usize,
}

impl<'a> QueryRun<'a> {
    /// Begin a run with an explicit wall-clock anchor (the fixed-context
    /// path starts its clock before context assembly).
    pub(crate) fn start_at(plan: QueryPlan, ctx: QueryCtx<'a>, started: Instant) -> Self {
        let pos =
            if plan.prelude.is_empty() { Self::round_entry(&plan) } else { Pos::Prelude(0) };
        QueryRun { plan, ctx, pos, started, prelude_start: None, slots_run: 0 }
    }

    /// Begin a run, clock starting now.
    pub(crate) fn start(plan: QueryPlan, ctx: QueryCtx<'a>) -> Self {
        Self::start_at(plan, ctx, Instant::now())
    }

    /// Entry position of the round section (straight to fuse when the
    /// plan carries no rounds).
    fn round_entry(plan: &QueryPlan) -> Pos {
        if plan.max_rounds == 0 {
            Pos::Fuse
        } else {
            Pos::Round { round: 0, slot: 0 }
        }
    }

    /// Whether the run has fused.
    pub(crate) fn done(&self) -> bool {
        matches!(self.pos, Pos::Done)
    }

    /// The stage op the ready slot would execute — the coalescing key.
    pub(crate) fn next_op(&self) -> StageOp {
        match self.pos {
            Pos::Prelude(i) => self.plan.get(Loc::Prelude(i)),
            Pos::Round { slot, .. } if slot < self.plan.round.len() => {
                self.plan.get(Loc::Round(slot))
            }
            _ => StageOp::Fuse,
        }
    }

    /// The second half of the worker assignment key.
    pub(crate) fn slot_index(&self) -> usize {
        self.slots_run
    }

    /// The question this run answers.
    pub(crate) fn question(&self) -> &'a str {
        self.ctx.question
    }

    /// Stash a coalesced-embed result for the pending embed slot to
    /// consume (see [`super::stages`]; identical to what the slot would
    /// compute, by the `EmbedBatch` element-wise contract).
    pub(crate) fn prefetch_embedding(&mut self, v: Vec<f32>) {
        self.ctx.prefetched_query_vec = Some(v);
    }

    /// Round-completion bookkeeping, verbatim from the sequential loop: a
    /// completed round with no judging left in the plan (feedback off, or
    /// browned out by a rewrite) is final — without a score there is
    /// nothing to compare further rounds by.
    fn complete_round(&mut self, round: usize) {
        if !self.plan.has_feedback() {
            if self.ctx.best.is_none() {
                self.ctx.unjudged = self.ctx.current.take();
            }
            self.pos = Pos::Fuse;
        } else if round + 1 < self.plan.max_rounds {
            self.pos = Pos::Round { round: round + 1, slot: 0 };
        } else {
            self.pos = Pos::Fuse;
        }
    }

    /// Execute the ready slot (full middleware sandwich) and advance the
    /// cursor. One call, one slot — the scheduler's unit of work.
    pub(crate) fn advance(&mut self, sys: &RagSystem) {
        self.slots_run += 1;
        match self.pos {
            Pos::Prelude(i) => {
                if self.prelude_start.is_none() {
                    self.prelude_start = Some(Instant::now());
                }
                let flow = exec_slot(sys, &mut self.plan, &mut self.ctx, Loc::Prelude(i));
                if flow == Flow::FallbackToBm25 {
                    self.plan.on_bm25_fallback(i + 1);
                }
                // Re-check the length each step: fallback splices may have
                // rewritten the remaining prelude.
                if i + 1 < self.plan.prelude.len() {
                    self.pos = Pos::Prelude(i + 1);
                } else {
                    if let Some(t0) = self.prelude_start {
                        self.ctx.retrieval_latency = t0.elapsed();
                    }
                    self.pos = Self::round_entry(&self.plan);
                }
            }
            Pos::Round { round, slot } => {
                if slot == 0 {
                    self.ctx.round = round;
                }
                if slot >= self.plan.round.len() {
                    // The round vanished under a brownout rewrite before
                    // any of its slots ran: only completion bookkeeping.
                    self.complete_round(round);
                    return;
                }
                let flow = exec_slot(sys, &mut self.plan, &mut self.ctx, Loc::Round(slot));
                if flow == Flow::Done {
                    // Decided: skip the remaining round slots and fuse.
                    self.pos = Pos::Fuse;
                } else if slot + 1 < self.plan.round.len() {
                    self.pos = Pos::Round { round, slot: slot + 1 };
                } else {
                    self.complete_round(round);
                }
            }
            Pos::Fuse => {
                // The terminal fuse runs bare (no middleware), as in the
                // sequential loop.
                dispatch(StageOp::Fuse).run(sys, &mut self.ctx, StageOp::Fuse);
                self.pos = Pos::Done;
            }
            Pos::Done => {}
        }
    }

    /// Finalize the fused run into its result (degrade trace, counters,
    /// telemetry flush).
    pub(crate) fn finish(self, sys: &RagSystem) -> QueryResult {
        finalize(sys, self.ctx, self.started.elapsed())
    }
}

/// Drive one run to completion on the caller's thread: the single-query
/// path is a batch of one through the same stepper the scheduler uses.
pub(crate) fn drive(sys: &RagSystem, plan: QueryPlan, ctx: QueryCtx<'_>) -> QueryResult {
    drive_run(sys, QueryRun::start(plan, ctx))
}

/// [`drive`] with a caller-owned start anchor.
pub(crate) fn drive_from(
    sys: &RagSystem,
    plan: QueryPlan,
    ctx: QueryCtx<'_>,
    started: Instant,
) -> QueryResult {
    drive_run(sys, QueryRun::start_at(plan, ctx, started))
}

fn drive_run(sys: &RagSystem, mut run: QueryRun<'_>) -> QueryResult {
    while !run.done() {
        run.advance(sys);
    }
    run.finish(sys)
}

/// One query's admission into the scheduler: the question plus the
/// per-query execution inputs the entry points resolve.
pub(crate) struct BatchSpec<'a> {
    /// The question to answer.
    pub question: &'a str,
    /// Multiple-choice options, when in that mode.
    pub options: Option<&'a [String]>,
    /// Per-query deadline/token budget, when one applies.
    pub budget: Option<QueryBudget>,
}

impl<'a> BatchSpec<'a> {
    /// An open-ended unbudgeted question.
    pub(crate) fn open(question: &'a str) -> Self {
        BatchSpec { question, options: None, budget: None }
    }
}

/// What one scheduled batch did: coalescing counts plus per-worker busy
/// attribution. `worker_busy_ns[w]` sums the measured slot times the
/// deterministic policy assigned to worker `w`; on a single-core host
/// those are exactly the times a real worker fleet would overlap, so
/// [`ScheduleStats::critical_path`] models the batch's parallel makespan
/// the same way the shard bench models fan-out overlap.
#[derive(Debug, Clone)]
pub struct ScheduleStats {
    /// Queries admitted to the scheduler.
    pub queries: usize,
    /// Worker count after the degenerate-count clamps.
    pub workers: usize,
    /// Scheduler ticks (each live query steps one slot per tick).
    pub ticks: usize,
    /// Coalesced same-stage groups executed (including groups of one).
    pub batch_ops: usize,
    /// Slots that ran inside a group of two or more.
    pub coalesced_slots: usize,
    /// Largest same-stage group observed.
    pub max_group: usize,
    /// Per-worker sums of measured slot durations (profiling mode only).
    pub worker_busy_ns: Vec<u64>,
    /// Wall-clock of the whole scheduled run.
    pub wall_ns: u64,
}

impl ScheduleStats {
    /// The modeled parallel makespan: the busiest worker's attributed
    /// time.
    pub fn critical_path(&self) -> Duration {
        Duration::from_nanos(self.worker_busy_ns.iter().copied().max().unwrap_or(0))
    }

    /// Total attributed work across all workers.
    pub fn busy_total(&self) -> Duration {
        Duration::from_nanos(self.worker_busy_ns.iter().sum())
    }
}

/// Deterministic worker assignment: seeded round-robin keyed on
/// `(query_seq, slot_index)`. The slot index rotates the round-robin
/// origin through a mixed seed, so consecutive queries spread evenly
/// within every tick while the striping varies across ticks — and the
/// assignment stays a pure function of its key (never wall-clock, never
/// thread id).
pub(crate) fn worker_of(seed: u64, query_seq: usize, slot_index: usize, workers: usize) -> usize {
    if workers <= 1 {
        return 0;
    }
    let mut x = seed ^ (slot_index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (query_seq + x as usize % workers) % workers
}

/// Convert a caught panic into the structured per-query error, counted on
/// the resilience ledger exactly as the sequential boundary counts it.
fn panic_error(sys: &RagSystem, payload: Box<dyn std::any::Any + Send>) -> SageError {
    let err = SageError::from_panic(payload);
    if let Some(state) = &sys.resilience {
        state.counters.record(Fallback::PanicIsolated);
    }
    err
}

/// Run many queries through the scheduler with `workers` real threads.
/// Results align with input order and are byte-identical (in every
/// deterministic field) to a sequential loop over the same specs, at any
/// worker count.
pub(crate) fn run_interleaved<'a>(
    sys: &'a RagSystem,
    specs: &[BatchSpec<'a>],
    workers: usize,
    seed: u64,
) -> Vec<Result<QueryResult, SageError>> {
    run_scheduler(sys, specs, workers, seed, false).0
}

/// [`run_interleaved`] in profiling mode: slots execute sequentially on
/// the caller's thread (results unchanged — the assignment never affects
/// outputs) while each measured slot duration is attributed to the worker
/// the deterministic policy picked. This is the measurement engine behind
/// the `throughput_scaling` bench.
pub(crate) fn profile_interleaved<'a>(
    sys: &'a RagSystem,
    specs: &[BatchSpec<'a>],
    workers: usize,
    seed: u64,
) -> (Vec<Result<QueryResult, SageError>>, ScheduleStats) {
    run_scheduler(sys, specs, workers, seed, true)
}

fn run_scheduler<'a>(
    sys: &'a RagSystem,
    specs: &[BatchSpec<'a>],
    workers: usize,
    seed: u64,
    profiled: bool,
) -> (Vec<Result<QueryResult, SageError>>, ScheduleStats) {
    let n = specs.len();
    let mut stats = ScheduleStats {
        queries: n,
        workers: 0,
        ticks: 0,
        batch_ops: 0,
        coalesced_slots: 0,
        max_group: 0,
        worker_busy_ns: Vec::new(),
        wall_ns: 0,
    };
    if n == 0 {
        return (Vec::new(), stats);
    }
    // Degenerate worker counts: zero clamps to one, and more workers than
    // queries would only spawn idle threads, so cap at the batch length.
    let workers = workers.clamp(1, n);
    stats.workers = workers;
    stats.worker_busy_ns = vec![0; workers];
    let wall = Instant::now();

    // Admit every spec in input order, under the same panic boundary the
    // sequential path puts around setup.
    let mut out: Vec<Option<Result<QueryResult, SageError>>> = (0..n).map(|_| None).collect();
    let mut runs: Vec<Option<QueryRun<'a>>> = Vec::with_capacity(n);
    for (i, spec) in specs.iter().enumerate() {
        match catch_unwind(AssertUnwindSafe(|| {
            let (plan, ctx) = super::prepare(sys, spec.question, spec.options, spec.budget);
            QueryRun::start(plan, ctx)
        })) {
            Ok(run) => runs.push(Some(run)),
            Err(payload) => {
                out[i] = Some(Err(panic_error(sys, payload)));
                runs.push(None);
            }
        }
    }

    loop {
        let live: Vec<usize> = (0..n).filter(|&i| runs[i].is_some()).collect();
        if live.is_empty() {
            break;
        }
        coalesce_tick(sys, &mut runs, &live, &mut stats);

        // Assign this tick's ready slots to workers.
        let assigned: Vec<(usize, usize)> = live
            .iter()
            .map(|&i| {
                let slot = runs[i].as_ref().map_or(0, QueryRun::slot_index);
                (i, worker_of(seed, i, slot, workers))
            })
            .collect();

        if profiled {
            // Sequential execution, virtual attribution: byte-identical
            // results with per-worker overlap numbers.
            for &(i, w) in &assigned {
                let t0 = Instant::now();
                advance_caught(sys, &mut runs[i], &mut out[i]);
                stats.worker_busy_ns[w] += t0.elapsed().as_nanos() as u64;
            }
        } else if workers == 1 {
            for &(i, _) in &assigned {
                advance_caught(sys, &mut runs[i], &mut out[i]);
            }
        } else {
            // Real threads: each worker steps its assigned runs once, in
            // query order. Runs move into the worker and back; a panicking
            // slot fails only its own query.
            let mut buckets: Vec<Vec<(usize, QueryRun<'a>)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for &(i, w) in &assigned {
                if let Some(run) = runs[i].take() {
                    buckets[w].push((i, run));
                }
            }
            std::thread::scope(|s| {
                let handles: Vec<_> = buckets
                    .into_iter()
                    .map(|bucket| {
                        s.spawn(move || {
                            bucket
                                .into_iter()
                                .map(|(i, mut run)| {
                                    let caught =
                                        catch_unwind(AssertUnwindSafe(|| run.advance(sys)));
                                    (i, run, caught.err())
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    // A worker cannot unwind past the per-slot boundary,
                    // but degrade gracefully if one somehow does: its
                    // queries stay unfilled and surface as structured
                    // errors below.
                    if let Ok(stepped) = h.join() {
                        for (i, run, panicked) in stepped {
                            match panicked {
                                None => runs[i] = Some(run),
                                Some(payload) => {
                                    out[i] = Some(Err(panic_error(sys, payload)));
                                }
                            }
                        }
                    }
                }
            });
        }

        // Retire fused queries in input order, so cross-query finalize
        // effects (trace ring pushes) are deterministic.
        for &i in &live {
            if runs[i].as_ref().is_some_and(QueryRun::done) {
                if let Some(run) = runs[i].take() {
                    match catch_unwind(AssertUnwindSafe(|| run.finish(sys))) {
                        Ok(result) => out[i] = Some(Ok(result)),
                        Err(payload) => out[i] = Some(Err(panic_error(sys, payload))),
                    }
                }
            }
        }
        stats.ticks += 1;
    }

    stats.wall_ns = wall.elapsed().as_nanos() as u64;
    let results = out
        .into_iter()
        .map(|r| {
            r.unwrap_or(Err(SageError::Panicked {
                detail: "answer worker died before reporting".to_string(),
            }))
        })
        .collect();
    (results, stats)
}

/// Step one run behind the per-slot panic boundary; a panic retires the
/// query with a structured error.
fn advance_caught<'a>(
    sys: &RagSystem,
    slot: &mut Option<QueryRun<'a>>,
    out: &mut Option<Result<QueryResult, SageError>>,
) {
    let Some(run) = slot.as_mut() else { return };
    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run.advance(sys))) {
        *out = Some(Err(panic_error(sys, payload)));
        *slot = None;
    }
}

/// Group the tick's ready-set into same-stage batch ops and execute the
/// coalescable ones through the batch surfaces. Groups keep query order;
/// the embed group goes through one `EmbedBatch` call when no fault plan
/// is armed (injection is keyed per question *inside* the guard, so
/// guarded runs keep the per-slot path — which is itself a batch of one
/// at the model layer).
fn coalesce_tick<'a>(
    sys: &RagSystem,
    runs: &mut [Option<QueryRun<'a>>],
    live: &[usize],
    stats: &mut ScheduleStats,
) {
    let mut groups: Vec<(&'static str, Vec<usize>)> = Vec::new();
    for &i in live {
        let Some(run) = runs[i].as_ref() else { continue };
        let name = run.next_op().name();
        match groups.iter_mut().find(|(k, _)| *k == name) {
            Some((_, members)) => members.push(i),
            None => groups.push((name, vec![i])),
        }
    }
    stats.batch_ops += groups.len();
    for (kind, members) in &groups {
        stats.max_group = stats.max_group.max(members.len());
        if members.len() < 2 {
            continue;
        }
        stats.coalesced_slots += members.len();
        if *kind == "embed" && sys.resilience.is_none() {
            let texts: Vec<&str> =
                members.iter().filter_map(|&i| runs[i].as_ref().map(QueryRun::question)).collect();
            if let Some(vecs) = sys.retriever.embed_query_batch(&texts) {
                for (&i, v) in members.iter().zip(vecs) {
                    if let Some(run) = runs[i].as_mut() {
                        run.prefetch_embedding(v);
                    }
                }
            }
        }
    }
}

/// Render the deterministic schedule `queries` identical in-flight copies
/// of `plan` would execute: per tick, the coalesced same-stage group and
/// the seeded round-robin worker assignment. Static resolution — no
/// models, no corpus — so it shows the first feedback round and notes
/// where runtime divergence (early exits, brownout rewrites) begins.
pub fn render_schedule(
    plan: &QueryPlan,
    queries: usize,
    workers: usize,
    seed: u64,
) -> String {
    use std::fmt::Write as _;
    let queries = queries.max(1);
    let workers = workers.clamp(1, queries);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "schedule: {queries} in-flight quer{} x {workers} worker{} (seeded round-robin, seed {seed})",
        if queries == 1 { "y" } else { "ies" },
        if workers == 1 { "" } else { "s" },
    );
    // The static slot sequence every copy of the plan executes: prelude,
    // first round, terminal fuse.
    let mut ops: Vec<StageOp> = plan.prelude.clone();
    ops.extend(plan.round.iter().copied());
    ops.push(StageOp::Fuse);
    for (tick, op) in ops.iter().enumerate() {
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for q in 0..queries {
            buckets[worker_of(seed, q, tick, workers)].push(q);
        }
        let lanes: Vec<String> = buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(w, b)| {
                let qs: Vec<String> = b.iter().map(|q| format!("q{q}")).collect();
                format!("w{w}[{}]", qs.join(" "))
            })
            .collect();
        let _ = writeln!(s, "  tick {tick:2}: {:<18} x{queries} -> {}", op.name(), lanes.join(" "));
    }
    if plan.max_rounds > 1 && plan.round.iter().any(|op| matches!(op, StageOp::Feedback)) {
        let _ = writeln!(
            s,
            "  (round slots repeat up to {} feedback rounds; Done exits a query early, \
             after which the survivors re-coalesce)",
            plan.max_rounds
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_assignment_is_deterministic_and_balanced() {
        // Pure function of the key.
        for seed in [0u64, 42, 0xDEAD] {
            for q in 0..16 {
                for slot in 0..8 {
                    let a = worker_of(seed, q, slot, 4);
                    assert_eq!(a, worker_of(seed, q, slot, 4));
                    assert!(a < 4);
                }
            }
        }
        // Round-robin within a tick: any `workers` consecutive query seqs
        // land on `workers` distinct workers.
        for slot in 0..8 {
            let lanes: Vec<usize> = (0..4).map(|q| worker_of(7, q, slot, 4)).collect();
            let mut sorted = lanes.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "tick {slot} not a permutation: {lanes:?}");
        }
        // Degenerate counts.
        assert_eq!(worker_of(1, 5, 3, 1), 0);
    }

    #[test]
    fn schedule_rendering_is_deterministic() {
        let config = crate::config::SageConfig::sage();
        let plan = QueryPlan::resolve(&config, true, true);
        let a = render_schedule(&plan, 4, 2, 42);
        let b = render_schedule(&plan, 4, 2, 42);
        assert_eq!(a, b);
        assert!(a.contains("4 in-flight queries"), "{a}");
        assert!(a.contains("embed"), "{a}");
        assert!(a.contains("fuse"), "{a}");
        // Workers clamp to the in-flight count.
        let c = render_schedule(&plan, 2, 8, 42);
        assert!(c.contains("x 2 worker"), "{c}");
    }
}
