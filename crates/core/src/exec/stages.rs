//! The stage implementations: each [`Stage`] consumes typed inputs from
//! the [`QueryCtx`] blackboard and leaves typed outputs for the next op.
//! Resilience guards live *inside* the stages (each stage knows its own
//! validator and fallback), while budget and telemetry concerns stay in
//! the middleware — a stage never touches the meter or the span trace
//! except to append degrade events.

// sage-lint: allow-file(panic-reachability) - candidate ids are positions into sys.chunks produced by this run's retrieval stages

use super::ctx::{QueryCtx, RoundAnswer};
use super::middleware::push_event;
use super::plan::{RerankMode, SelectMode, StageOp};
use super::scatter::{self, Scattered};
use super::Flow;
use crate::pipeline::RagSystem;
use crate::resilience::QueryGuards;
use sage_admission::BrownoutLevel;
use sage_eval::Cost;
use sage_llm::Answer;
use sage_rerank::{gradient_select, RankedChunk, SelectionConfig};
use sage_resilience::{
    BreakerConfig, Component, DegradeTrace, Failure, Fallback, SageError,
};
use sage_retrieval::{Retriever, ScoredChunk};
use sage_vecdb::VectorIndex;
use std::time::Duration;

/// One stage of the query graph. Implementations are stateless unit
/// structs — all state flows through the context — so dispatch is a
/// zero-allocation static lookup.
pub(crate) trait Stage {
    /// Run the stage. `op` carries the (possibly brownout-rewritten) mode
    /// for stages with variants.
    fn run(&self, sys: &RagSystem, ctx: &mut QueryCtx<'_>, op: StageOp) -> Flow;
}

struct EmbedStage;
struct RetrieveDenseStage;
struct RetrieveBm25Stage;
struct RerankStage;
struct SelectStage;
struct ReadStage;
struct FeedbackStage;
struct FuseStage;

/// The executor's stage table.
pub(crate) fn dispatch(op: StageOp) -> &'static dyn Stage {
    match op {
        StageOp::Embed => &EmbedStage,
        StageOp::RetrieveDense => &RetrieveDenseStage,
        StageOp::RetrieveBm25 { .. } => &RetrieveBm25Stage,
        StageOp::Rerank(_) => &RerankStage,
        StageOp::Select(_) => &SelectStage,
        StageOp::Read => &ReadStage,
        StageOp::Feedback => &FeedbackStage,
        StageOp::Fuse => &FuseStage,
    }
}

impl Stage for EmbedStage {
    fn run(&self, sys: &RagSystem, ctx: &mut QueryCtx<'_>, _op: StageOp) -> Flow {
        match ctx.guards.as_ref() {
            Some(g) => {
                let embedded = g.guard(Component::Embedder).run(
                    Component::Embedder,
                    ctx.question,
                    // None embeds as the empty vector, which the validator
                    // below rejects, so the guard degrades DenseToBm25
                    // instead of panicking inside the guarded closure.
                    || sys.retriever.embed_query(ctx.question).unwrap_or_default(),
                    |v| {
                        for x in v.iter_mut() {
                            *x = f32::NAN;
                        }
                    },
                    |v| !v.is_empty() && v.iter().all(|x| x.is_finite()),
                );
                match embedded {
                    Ok(v) => {
                        ctx.query_vec = Some(v);
                        Flow::Continue
                    }
                    Err(failure) => {
                        push_event(
                            &mut ctx.trace,
                            Component::Embedder,
                            Fallback::DenseToBm25,
                            failure,
                        );
                        Flow::FallbackToBm25
                    }
                }
            }
            None => {
                // A scheduler-coalesced batch embedding stands in for the
                // per-slot call when present — same bytes either way, by
                // the `EmbedBatch` element-wise contract. Guarded runs
                // never receive a prefetch: fault injection is keyed per
                // question inside the guard, so they must reach it.
                ctx.query_vec = match ctx.prefetched_query_vec.take() {
                    Some(v) => Some(v),
                    None => sys.retriever.embed_query(ctx.question),
                };
                Flow::Continue
            }
        }
    }
}

/// Fold a scatter-gather outcome into the query: survivors' merged hits
/// (recording the `shard-partial:<m>/<N>` rung when shards were lost but
/// quorum held), or `None` on quorum failure — after recording
/// `quorum_rung`, the caller serves from its fallback tier.
fn gather_scattered(
    ctx: &mut QueryCtx<'_>,
    outcome: Scattered,
    quorum_rung: Fallback,
) -> Option<Vec<ScoredChunk>> {
    let shard_failure = |attempts: u32, delay: Duration| Failure {
        error: SageError::ComponentFailed { component: Component::IndexSearch, attempts },
        attempts,
        delay,
    };
    match outcome {
        Scattered::Clean(hits) => Some(hits),
        Scattered::Partial { hits, lost, total, attempts, delay } => {
            push_event(
                &mut ctx.trace,
                Component::IndexSearch,
                Fallback::ShardPartial { lost, total },
                shard_failure(attempts, delay),
            );
            Some(hits)
        }
        Scattered::QuorumFailed { attempts, delay, .. } => {
            push_event(
                &mut ctx.trace,
                Component::IndexSearch,
                quorum_rung,
                shard_failure(attempts, delay),
            );
            None
        }
    }
}

/// The fault plan and breaker tuning the scatter path probes under (no
/// guards means no plan, which means no shard faults can fire).
fn scatter_policies<'c>(
    ctx: &'c QueryCtx<'_>,
) -> (Option<&'c sage_resilience::FaultPlan>, BreakerConfig) {
    let plan = ctx.guards.as_ref().map(|g| &g.state.config.plan);
    let breaker = ctx.guards.as_ref().map_or_else(BreakerConfig::default, |g| g.state.config.breaker);
    (plan, breaker)
}

fn finite_scores(hits: &[ScoredChunk]) -> bool {
    hits.iter().all(|h| h.score.is_finite())
}

fn poison_scores(hits: &mut Vec<ScoredChunk>) {
    for h in hits.iter_mut() {
        h.score = f32::NAN;
    }
    if hits.is_empty() {
        hits.push(ScoredChunk { index: 0, score: f32::NAN });
    }
}

impl Stage for RetrieveDenseStage {
    fn run(&self, sys: &RagSystem, ctx: &mut QueryCtx<'_>, _op: StageOp) -> Flow {
        let n = sys.config.candidates;
        // Sharded serving: scatter-gather replaces the monolithic
        // (HNSW/flat) search when sharding is enabled. Quorum failure
        // abandons the dense shard set for the sparse tier — the same
        // DenseToBm25 rung a failed monolithic search records.
        let scattered = {
            let (plan, breaker) = scatter_policies(ctx);
            ctx.query_vec
                .as_ref()
                .and_then(|qv| scatter::scatter_dense(sys, plan, breaker, ctx.question, qv, n))
        };
        if let Some(outcome) = scattered {
            let hits = gather_scattered(ctx, outcome, Fallback::DenseToBm25).unwrap_or_else(
                || match ctx.guards.as_ref() {
                    Some(g) => g.state.bm25.retrieve(ctx.question, n),
                    // Shard faults require a plan, which requires guards —
                    // but a missing guard still serves honestly from the
                    // unsharded primary.
                    None => sys.retriever.retrieve(ctx.question, n),
                },
            );
            ctx.cand_ids = hits.iter().map(|h| h.index).collect();
            ctx.hits = hits;
            return Flow::Continue;
        }
        let question = ctx.question;
        let trace = &mut ctx.trace;
        let hits = match (ctx.guards.as_ref(), ctx.query_vec.as_ref()) {
            (Some(g), Some(query_vec)) => {
                if let Some(hnsw) = &g.state.hnsw {
                    let approx = g.guard(Component::IndexSearch).run(
                        Component::IndexSearch,
                        question,
                        || {
                            hnsw.search(query_vec, n)
                                .into_iter()
                                .map(|h| ScoredChunk { index: h.id, score: h.score })
                                .collect::<Vec<_>>()
                        },
                        poison_scores,
                        |hits| finite_scores(hits),
                    );
                    match approx {
                        Ok(hits) => hits,
                        Err(failure) => {
                            push_event(
                                trace,
                                Component::IndexSearch,
                                Fallback::HnswToFlat,
                                failure,
                            );
                            // The exact scan is the ANN tier's fallback, not
                            // another instance of the same failing component —
                            // it runs unguarded so a fully-failed ANN index
                            // still serves exact results. If even the exact
                            // scan is unavailable the chain bottoms out at
                            // BM25.
                            sys.retriever
                                .search_dense(query_vec, n)
                                .unwrap_or_else(|| g.state.bm25.retrieve(question, n))
                        }
                    }
                } else {
                    let exact = g.guard(Component::IndexSearch).run(
                        Component::IndexSearch,
                        question,
                        // None becomes a single NaN-scored sentinel hit,
                        // which the validator rejects, so the guard degrades
                        // DenseToBm25 instead of panicking inside the
                        // guarded closure.
                        || {
                            sys.retriever
                                .search_dense(query_vec, n)
                                .unwrap_or_else(|| vec![ScoredChunk { index: 0, score: f32::NAN }])
                        },
                        poison_scores,
                        |hits| finite_scores(hits),
                    );
                    match exact {
                        Ok(hits) => hits,
                        Err(failure) => {
                            push_event(
                                trace,
                                Component::IndexSearch,
                                Fallback::DenseToBm25,
                                failure,
                            );
                            g.state.bm25.retrieve(question, n)
                        }
                    }
                }
            }
            // Unguarded path; a retriever that reports is_dense() but
            // cannot embed or search falls back to its own entry point
            // instead of aborting the query.
            (_, query_vec) => match query_vec.and_then(|v| sys.retriever.search_dense(v, n)) {
                Some(hits) => hits,
                None => sys.retriever.retrieve(question, n),
            },
        };
        ctx.cand_ids = hits.iter().map(|h| h.index).collect();
        ctx.hits = hits;
        Flow::Continue
    }
}

impl Stage for RetrieveBm25Stage {
    fn run(&self, sys: &RagSystem, ctx: &mut QueryCtx<'_>, op: StageOp) -> Flow {
        let n = sys.config.candidates;
        let fallback = matches!(op, StageOp::RetrieveBm25 { fallback: true });
        // Sharded serving on a sparse primary (never on the degraded
        // substitution path — the fallback tier IS the degradation target
        // and stays monolithic). Quorum failure serves the unsharded scan.
        if !fallback {
            let scattered = {
                let (plan, breaker) = scatter_policies(ctx);
                scatter::scatter_bm25(sys, plan, breaker, ctx.question, n)
            };
            if let Some(outcome) = scattered {
                let hits = gather_scattered(ctx, outcome, Fallback::ShardQuorumLost)
                    .unwrap_or_else(|| sys.retriever.retrieve(ctx.question, n));
                ctx.cand_ids = hits.iter().map(|h| h.index).collect();
                ctx.hits = hits;
                return Flow::Continue;
            }
        }
        let hits = match (fallback, ctx.guards.as_ref()) {
            // The degraded substitution retrieves from the resilience
            // layer's BM25 tier (the primary retriever is dense and just
            // failed).
            (true, Some(g)) => g.state.bm25.retrieve(ctx.question, n),
            _ => sys.retriever.retrieve(ctx.question, n),
        };
        ctx.cand_ids = hits.iter().map(|h| h.index).collect();
        ctx.hits = hits;
        Flow::Continue
    }
}

fn retrieval_order(hits: &[ScoredChunk]) -> Vec<RankedChunk> {
    hits.iter()
        .enumerate()
        .map(|(pos, h)| RankedChunk { index: pos, score: h.score })
        .collect()
}

impl Stage for RerankStage {
    fn run(&self, sys: &RagSystem, ctx: &mut QueryCtx<'_>, op: StageOp) -> Flow {
        let mode = match op {
            StageOp::Rerank(m) => m,
            _ => RerankMode::Bypass,
        };
        let scorer = sys.scorer.as_ref().filter(|_| !matches!(mode, RerankMode::Bypass));
        let ranked = match scorer {
            Some(scorer) => {
                // ShrinkRerank scores only the top half of the candidate
                // pool (the first-stage order is the quality prior).
                let keep = if matches!(mode, RerankMode::Shrunk) {
                    (ctx.cand_ids.len() / 2).max(1).min(ctx.cand_ids.len())
                } else {
                    ctx.cand_ids.len()
                };
                let texts: Vec<&str> =
                    ctx.cand_ids[..keep].iter().map(|&i| sys.chunks[i].as_str()).collect();
                match ctx.guards.as_ref() {
                    None => scorer.rerank(ctx.question, &texts),
                    Some(g) => {
                        let reranked = g.guard(Component::Reranker).run(
                            Component::Reranker,
                            ctx.question,
                            || scorer.rerank(ctx.question, &texts),
                            |rl| {
                                for r in rl.iter_mut() {
                                    r.score = f32::NAN;
                                }
                            },
                            |rl| {
                                rl.len() == texts.len()
                                    && rl.iter().all(|r| r.score.is_finite())
                            },
                        );
                        match reranked {
                            Ok(rl) => rl,
                            Err(failure) => {
                                push_event(
                                    &mut ctx.trace,
                                    Component::Reranker,
                                    Fallback::RerankToRetrievalOrder,
                                    failure,
                                );
                                retrieval_order(&ctx.hits)
                            }
                        }
                    }
                }
            }
            None => retrieval_order(&ctx.hits),
        };
        ctx.ranked = ranked;
        Flow::Continue
    }
}

impl Stage for SelectStage {
    fn run(&self, sys: &RagSystem, ctx: &mut QueryCtx<'_>, op: StageOp) -> Flow {
        let selected_positions: Vec<usize> = if matches!(op, StageOp::Select(SelectMode::Gradient))
        {
            let cfg = SelectionConfig {
                min_k: ctx.min_k,
                gradient: sys.config.gradient,
                max_k: sys.config.candidates,
                ..SelectionConfig::default()
            };
            gradient_select(&ctx.ranked, cfg).iter().map(|r| r.index).collect()
        } else {
            ctx.ranked.iter().take(ctx.min_k.max(1)).map(|r| r.index).collect()
        };
        // The reader is deterministic: re-running with an identical
        // context reproduces the same answer and judgement, so a round
        // whose adjusted min_k selects the same chunks is pure token
        // waste — stop the loop instead.
        if ctx.last_selection.as_deref() == Some(&selected_positions) {
            return Flow::Done;
        }
        ctx.selected = selected_positions.iter().map(|&pos| ctx.cand_ids[pos]).collect();
        ctx.last_selection = Some(selected_positions);
        ctx.context = ctx.selected.iter().map(|&id| sys.chunks[id].clone()).collect();
        Flow::Continue
    }
}

/// One guarded generation call. `key` is the determinism handle (the
/// question for the primary context, a derived key for the retry so the
/// two calls draw independent fault decisions).
fn guarded_generate(
    sys: &RagSystem,
    question: &str,
    options: Option<&[String]>,
    context: &[String],
    key: &str,
    g: &QueryGuards<'_>,
) -> Result<(Option<usize>, Answer), Failure> {
    let guard = g.guard(Component::Reader);
    match options {
        Some(opts) => guard.run(
            Component::Reader,
            key,
            || {
                let (idx, a) = sys.llm.answer_multiple_choice(question, opts, context);
                (Some(idx), a)
            },
            |(pick, a)| {
                a.text.clear();
                a.confidence = f32::NAN;
                *pick = None;
            },
            |(pick, a)| a.is_wellformed() && pick.is_some_and(|i| i < opts.len()),
        ),
        None => guard.run(
            Component::Reader,
            key,
            || (None, sys.llm.answer_open(question, context)),
            |(_, a)| {
                a.text.clear();
                a.confidence = f32::NAN;
            },
            |(_, a)| a.is_wellformed(),
        ),
    }
}

/// The reader leg of the degradation chain. Returns `None` when both the
/// primary and the second-best context are exhausted (the fuse stage then
/// degrades to an unanswerable answer); otherwise the generation result
/// plus the chunk ids actually used.
#[allow(clippy::too_many_arguments)]
fn read_with_fallback(
    sys: &RagSystem,
    question: &str,
    options: Option<&[String]>,
    selected: Vec<usize>,
    context: &[String],
    ranked: &[RankedChunk],
    cand_ids: &[usize],
    g: &QueryGuards<'_>,
    trace: &mut DegradeTrace,
) -> Option<(Option<usize>, Answer, Vec<usize>)> {
    match guarded_generate(sys, question, options, context, question, g) {
        Ok((pick, a)) => Some((pick, a, selected)),
        Err(failure) => {
            push_event(trace, Component::Reader, Fallback::ReaderSecondBest, failure);
            // Second-best context: the ranked list shifted down by one —
            // drops the (possibly poisoned) top chunk while keeping the
            // context size.
            let alt_ids: Vec<usize> = ranked
                .iter()
                .skip(1)
                .take(selected.len().max(1))
                .map(|r| cand_ids[r.index])
                .collect();
            let alt_context: Vec<String> =
                alt_ids.iter().map(|&id| sys.chunks[id].clone()).collect();
            let retry_key = format!("{question}\u{1f}second-best");
            match guarded_generate(sys, question, options, &alt_context, &retry_key, g) {
                Ok((pick, a)) => Some((pick, a, alt_ids)),
                Err(failure) => {
                    push_event(trace, Component::Reader, Fallback::ReaderUnanswerable, failure);
                    None
                }
            }
        }
    }
}

impl Stage for ReadStage {
    fn run(&self, sys: &RagSystem, ctx: &mut QueryCtx<'_>, _op: StageOp) -> Flow {
        let generated = match ctx.guards.as_ref() {
            None => {
                let (picked, answer) = match ctx.options {
                    Some(opts) => {
                        let (idx, a) =
                            sys.llm.answer_multiple_choice(ctx.question, opts, &ctx.context);
                        (Some(idx), a)
                    }
                    None => (None, sys.llm.answer_open(ctx.question, &ctx.context)),
                };
                Some((picked, answer, ctx.selected.clone()))
            }
            Some(g) => read_with_fallback(
                sys,
                ctx.question,
                ctx.options,
                ctx.selected.clone(),
                &ctx.context,
                &ctx.ranked,
                &ctx.cand_ids,
                g,
                &mut ctx.trace,
            ),
        };
        match generated {
            Some((picked, answer, selected)) => {
                ctx.total_cost.merge(answer.cost);
                ctx.answer_latency += answer.latency;
                ctx.current = Some(RoundAnswer { picked, answer, selected });
                Flow::Continue
            }
            None => {
                // Reader exhausted both contexts. Fault decisions are keyed
                // on the question, so further rounds would fail identically
                // — stop here and fall back to an earlier round's answer
                // (or the degraded unanswerable at fuse).
                ctx.current = None;
                Flow::Done
            }
        }
    }
}

impl Stage for FeedbackStage {
    fn run(&self, sys: &RagSystem, ctx: &mut QueryCtx<'_>, _op: StageOp) -> Flow {
        let Some(current) = ctx.current.take() else {
            return Flow::Done;
        };
        // Judge against the context the reader actually saw (the
        // second-best set when the reader degraded).
        let context: Vec<String> =
            current.selected.iter().map(|&id| sys.chunks[id].clone()).collect();
        let fb = sys.llm.self_feedback(ctx.question, &context, &current.answer);
        ctx.executed_feedback += 1;
        ctx.total_cost.merge(fb.cost);
        ctx.feedback_latency += fb.latency;
        let better = ctx.best.as_ref().is_none_or(|(s, _)| fb.score > *s);
        if better {
            ctx.best = Some((fb.score, current));
        }
        let score = fb.score;
        let adjustment = fb.adjustment;
        ctx.last_feedback = Some(fb);
        if score >= sys.config.feedback_threshold {
            return Flow::Done;
        }
        // Adjust min_k per the judge's context assessment (Figure 2 (C)
        // step 6): -1 drops a chunk, +1 requests one more.
        let next = ctx.min_k as i64 + i64::from(adjustment);
        ctx.min_k = next.clamp(1, sys.config.candidates as i64) as usize;
        Flow::Continue
    }
}

/// The degraded terminal answer: the reader (or the whole feedback loop)
/// produced nothing usable. `latency` is the measured (virtual) time spent
/// reaching this verdict — retry backoff accumulated by the failed
/// attempts — not a zero placeholder.
pub(crate) fn unanswerable(latency: Duration) -> Answer {
    Answer { text: "unanswerable".to_string(), confidence: 0.0, cost: Cost::zero(), latency }
}

impl Stage for FuseStage {
    fn run(&self, _sys: &RagSystem, ctx: &mut QueryCtx<'_>, _op: StageOp) -> Flow {
        if ctx.fixed {
            // Fixed-context mode: one read over a caller-chosen context,
            // no selection loop, no degradation bookkeeping in the result.
            if let Some(r) = ctx.unjudged.take().or_else(|| ctx.current.take()) {
                ctx.result = Some(crate::QueryResult::single_read(
                    r.answer,
                    r.picked,
                    r.selected,
                    ctx.retrieval_latency,
                ));
            }
            return Flow::Done;
        }
        let brownout =
            ctx.bctl.as_ref().map_or(BrownoutLevel::None, |c| c.meter.level());
        let (score, answer, picked, selected) = if let Some(u) = ctx.unjudged.take() {
            // A completed round that was never judged (feedback off, or
            // browned out) is final as-is, with no score.
            (None, u.answer, u.picked, u.selected)
        } else {
            match ctx.best.take() {
                Some((s, r)) => (Some(s), r.answer, r.picked, r.selected),
                // No round produced an answer: the reader exhausted its
                // fallbacks, or the loop was configured for zero rounds.
                // Degrade to a well-formed unanswerable result instead of
                // panicking.
                None => (None, unanswerable(ctx.trace.total_delay()), None, Vec::new()),
            }
        };
        ctx.result = Some(crate::QueryResult {
            answer,
            picked_option: picked,
            selected,
            cost: ctx.total_cost,
            feedback_rounds: ctx.executed_feedback,
            retrieval_latency: ctx.retrieval_latency,
            answer_latency: ctx.answer_latency,
            feedback_latency: ctx.feedback_latency,
            feedback_score: score,
            degraded: DegradeTrace::new(),
            brownout,
        });
        Flow::Done
    }
}
