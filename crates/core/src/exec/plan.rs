//! The query-plan IR: the stage sequence a query will execute, resolved
//! from the configuration up front and rewritten — never branched around —
//! when the brownout ladder ratchets.
//!
//! A plan has a *prelude* (embed → retrieve → rerank, run once) and a
//! *round* template (select → read → feedback, run up to `max_rounds`
//! times), followed by the implicit fuse stage that folds the rounds into
//! one [`crate::QueryResult`]. Brownout rung N is [`QueryPlan::apply_rung`]:
//! a pure rewrite of the remaining ops (drop feedback, shrink or bypass
//! rerank, flatten selection). Because [`sage_admission::BudgetMeter`]
//! ratchets monotonically, a rewrite applied at one checkpoint is exactly
//! the decision every later checkpoint would have made inline — which is
//! why the rewrite formulation preserves the old branch-per-call-site
//! behaviour bit for bit.

use crate::config::{RetrieverKind, SageConfig};
use sage_admission::BrownoutLevel;

/// How the rerank stage scores the candidate pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RerankMode {
    /// Score every candidate with the cross-encoder.
    Full,
    /// Score only the top half of the pool (brownout rung 2); the
    /// first-stage order is the quality prior for the rest.
    Shrunk,
    /// Keep the first-stage retrieval order (no scorer configured, or
    /// brownout rung 3).
    Bypass,
}

/// How the select stage picks the context from the ranked list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectMode {
    /// Gradient-based chunk selection (Algorithm 2).
    Gradient,
    /// Fixed top-`min_k` prefix (naive RAG, or brownout rung 4).
    Flat,
}

/// One operation in a query plan. `Copy` so executor slots can re-fetch
/// the (possibly rewritten) op cheaply at every middleware boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageOp {
    /// Embed the question with the dense encoder.
    Embed,
    /// Vector search (HNSW tier, then exact flat scan) over the embedding.
    RetrieveDense,
    /// Sparse inverted-index retrieval. `fallback` marks the degraded
    /// substitution spliced in when the embedder is exhausted, as opposed
    /// to a BM25-primary system's first stage.
    RetrieveBm25 {
        /// True when this op replaced a failed dense retrieval.
        fallback: bool,
    },
    /// Cross-encoder rerank of the candidate pool.
    Rerank(RerankMode),
    /// Context selection over the ranked list.
    Select(SelectMode),
    /// One generation call over the selected context.
    Read,
    /// Self-feedback judgement of the round's answer.
    Feedback,
    /// Fold the executed rounds into the final [`crate::QueryResult`].
    Fuse,
}

impl StageOp {
    /// Short lowercase name for traces and `sage explain`.
    pub fn name(&self) -> &'static str {
        match self {
            StageOp::Embed => "embed",
            StageOp::RetrieveDense => "retrieve-dense",
            StageOp::RetrieveBm25 { .. } => "retrieve-bm25",
            StageOp::Rerank(_) => "rerank",
            StageOp::Select(_) => "select",
            StageOp::Read => "read",
            StageOp::Feedback => "feedback",
            StageOp::Fuse => "fuse",
        }
    }

    fn describe(&self) -> String {
        match self {
            StageOp::RetrieveBm25 { fallback: true } => "retrieve-bm25 (fallback)".to_string(),
            StageOp::Rerank(RerankMode::Full) => "rerank (full pool)".to_string(),
            StageOp::Rerank(RerankMode::Shrunk) => "rerank (top half)".to_string(),
            StageOp::Rerank(RerankMode::Bypass) => "rerank (bypass: retrieval order)".to_string(),
            StageOp::Select(SelectMode::Gradient) => "select (gradient)".to_string(),
            StageOp::Select(SelectMode::Flat) => "select (flat top-k)".to_string(),
            op => op.name().to_string(),
        }
    }
}

/// Where a slot lives in the plan, so the executor can re-fetch the op
/// after a brownout rewrite touched the very slot it is about to run.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Loc {
    /// Index into [`QueryPlan::prelude`].
    Prelude(usize),
    /// Index into [`QueryPlan::round`].
    Round(usize),
}

/// The scatter-gather fan-out a retrieval slot resolves to when the system
/// is sharded: how many fault domains the lookup spans, the survivor
/// quorum below which the query leaves the shard path for the BM25/flat
/// fallback chain, and the per-shard virtual-clock slice whose overrun
/// triggers a deterministic hedged re-probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fanout {
    /// Shard fault domains the retrieval fans out across.
    pub shards: u32,
    /// Minimum surviving shards to serve from the shard path.
    pub quorum: u32,
    /// Virtual-clock budget slice per shard probe, carved from the query's
    /// search cost; a probe whose injected delay exceeds it is hedged.
    pub slice: std::time::Duration,
}

impl Fanout {
    /// A fan-out over `shards` domains with the default majority quorum
    /// and the cost-model search slice.
    pub fn new(shards: u32, quorum: Option<u32>, slice: std::time::Duration) -> Self {
        let shards = shards.max(1);
        let quorum = quorum.unwrap_or(shards / 2 + 1).clamp(1, shards);
        Self { shards, quorum, slice }
    }
}

/// A resolved query plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// Run once, before the round loop: retrieval + rerank.
    pub prelude: Vec<StageOp>,
    /// The per-round template: selection, generation, judgement.
    pub round: Vec<StageOp>,
    /// Upper bound on rounds (1 without feedback; `max_feedback_rounds`
    /// with it — the loop also stops on a stable selection, an exhausted
    /// reader, or a feedback score at threshold).
    pub max_rounds: usize,
    /// Scatter-gather fan-out for the retrieval slots (`None` = unsharded;
    /// [`Fanout::new`] with `shards == 1` is byte-equivalent to `None`).
    pub fanout: Option<Fanout>,
}

impl QueryPlan {
    /// Resolve the plan for a configuration. `dense` selects the two-op
    /// embed + vector-search prelude over single-op BM25; `scorer` is
    /// whether a cross-encoder is fitted (rerank is bypassed without one).
    pub fn resolve(config: &SageConfig, dense: bool, scorer: bool) -> Self {
        let mut prelude = if dense {
            vec![StageOp::Embed, StageOp::RetrieveDense]
        } else {
            vec![StageOp::RetrieveBm25 { fallback: false }]
        };
        prelude.push(StageOp::Rerank(if scorer { RerankMode::Full } else { RerankMode::Bypass }));
        let mut round = vec![
            StageOp::Select(if config.use_selection {
                SelectMode::Gradient
            } else {
                SelectMode::Flat
            }),
            StageOp::Read,
        ];
        if config.use_feedback {
            round.push(StageOp::Feedback);
        }
        QueryPlan {
            prelude,
            round,
            max_rounds: if config.use_feedback { config.max_feedback_rounds } else { 1 },
            fanout: None,
        }
    }

    /// Builder: attach a scatter-gather fan-out to the retrieval slots.
    pub fn with_fanout(mut self, fanout: Fanout) -> Self {
        self.fanout = Some(fanout);
        self
    }

    /// [`QueryPlan::resolve`] from a retriever kind instead of a built
    /// system: `dense` is every kind but BM25, and a scorer is fitted
    /// exactly when the config asks for reranking or selection (mirroring
    /// [`crate::RagSystem::build`]). Lets `sage explain` print the plan a
    /// question would run without building an index.
    pub fn for_kind(config: &SageConfig, kind: RetrieverKind) -> Self {
        let dense = !matches!(kind, RetrieverKind::Bm25);
        let scorer = config.use_rerank || config.use_selection;
        Self::resolve(config, dense, scorer)
    }

    /// The degenerate plan for [`crate::RagSystem::answer_with_chunks`]:
    /// one generation call over a caller-fixed context.
    pub fn fixed() -> Self {
        QueryPlan { prelude: Vec::new(), round: vec![StageOp::Read], max_rounds: 1, fanout: None }
    }

    /// Whether the (possibly rewritten) round template still judges
    /// answers. When it does not, the first completed round is final.
    pub fn has_feedback(&self) -> bool {
        self.round.contains(&StageOp::Feedback)
    }

    /// Fetch the op at `loc`. Executed slots are never revisited, so the
    /// only shifting rewrite (dropping feedback, the last round op) cannot
    /// invalidate a live location; a vanished slot reads as `Fuse`, which
    /// every middleware hook ignores.
    pub(crate) fn get(&self, loc: Loc) -> StageOp {
        let op = match loc {
            Loc::Prelude(i) => self.prelude.get(i),
            Loc::Round(i) => self.round.get(i),
        };
        op.copied().unwrap_or(StageOp::Fuse)
    }

    /// Apply brownout rung(s) up to `level` as a plan rewrite. Idempotent
    /// and cumulative: each rung implies the shallower ones.
    pub fn apply_rung(&mut self, level: BrownoutLevel) {
        if level >= BrownoutLevel::DropFeedback {
            self.round.retain(|op| *op != StageOp::Feedback);
        }
        if level >= BrownoutLevel::ShrinkRerank {
            for op in self.prelude.iter_mut() {
                if *op == StageOp::Rerank(RerankMode::Full) {
                    *op = StageOp::Rerank(RerankMode::Shrunk);
                }
            }
        }
        if level >= BrownoutLevel::SkipRerank {
            for op in self.prelude.iter_mut() {
                if matches!(op, StageOp::Rerank(_)) {
                    *op = StageOp::Rerank(RerankMode::Bypass);
                }
            }
        }
        if level >= BrownoutLevel::FlatTopK {
            for op in self.round.iter_mut() {
                if *op == StageOp::Select(SelectMode::Gradient) {
                    *op = StageOp::Select(SelectMode::Flat);
                }
            }
        }
    }

    /// Splice the BM25 substitution in after the embedder was exhausted:
    /// the op at `next` (the pending vector search) becomes a fallback
    /// BM25 retrieval; the rest of the plan is untouched.
    pub(crate) fn on_bm25_fallback(&mut self, next: usize) {
        if let Some(op) = self.prelude.get_mut(next) {
            if *op == StageOp::RetrieveDense {
                *op = StageOp::RetrieveBm25 { fallback: true };
            }
        }
    }

    /// Human-readable rendering of the plan plus the rewrite each brownout
    /// rung would apply — the body of `sage explain`.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str("prelude:\n");
        for op in &self.prelude {
            out.push_str(&format!("  {}\n", op.describe()));
        }
        out.push_str(&format!("rounds (up to {}):\n", self.max_rounds));
        for op in &self.round {
            out.push_str(&format!("  {}\n", op.describe()));
        }
        out.push_str("  fuse\n");
        if let Some(f) = self.fanout {
            out.push_str(&format!(
                "fan-out (retrieval slots): scatter-gather over {} shard fault domain(s)\n",
                f.shards
            ));
            out.push_str(
                "  per-shard k: full top-k (exact partition; merge equals unsharded)\n",
            );
            out.push_str(&format!(
                "  budget slice: {:.0?} virtual per shard probe; overrun -> hedged re-probe\n",
                f.slice
            ));
            out.push_str(&format!(
                "  quorum: {}/{} survivors (below -> bm25/flat fallback chain, \
                 shard-partial rung otherwise)\n",
                f.quorum, f.shards
            ));
            out.push_str(
                "  merge: score desc, global-id tie-break (completion-order invariant)\n",
            );
        }
        out.push_str(
            "middleware (per slot): budget checkpoint -> rung rewrite -> telemetry span \
             -> stage -> telemetry close -> budget settle -> rung rewrite\n",
        );
        out.push_str("brownout rewrites:\n");
        for level in [
            BrownoutLevel::DropFeedback,
            BrownoutLevel::ShrinkRerank,
            BrownoutLevel::SkipRerank,
            BrownoutLevel::FlatTopK,
        ] {
            let mut rewritten = self.clone();
            rewritten.apply_rung(level);
            let delta = if rewritten == *self {
                "no change".to_string()
            } else {
                let ops: Vec<String> = rewritten
                    .prelude
                    .iter()
                    .chain(rewritten.round.iter())
                    .map(|op| op.describe())
                    .collect();
                ops.join(" -> ")
            };
            out.push_str(&format!("  rung {level:?}: {delta}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sage_plan_has_feedback_and_gradient() {
        let plan = QueryPlan::resolve(&SageConfig::sage(), true, true);
        assert_eq!(
            plan.prelude,
            vec![StageOp::Embed, StageOp::RetrieveDense, StageOp::Rerank(RerankMode::Full)]
        );
        assert_eq!(
            plan.round,
            vec![StageOp::Select(SelectMode::Gradient), StageOp::Read, StageOp::Feedback]
        );
        assert!(plan.has_feedback());
        assert_eq!(plan.max_rounds, SageConfig::sage().max_feedback_rounds);
    }

    #[test]
    fn naive_plan_is_flat_single_round() {
        let cfg = SageConfig::naive_rag();
        let plan = QueryPlan::for_kind(&cfg, RetrieverKind::Bm25);
        assert_eq!(
            plan.prelude,
            vec![StageOp::RetrieveBm25 { fallback: false }, StageOp::Rerank(RerankMode::Bypass)]
        );
        assert_eq!(plan.round, vec![StageOp::Select(SelectMode::Flat), StageOp::Read]);
        assert_eq!(plan.max_rounds, 1);
    }

    #[test]
    fn rungs_rewrite_cumulatively() {
        let mut plan = QueryPlan::resolve(&SageConfig::sage(), true, true);
        plan.apply_rung(BrownoutLevel::DropFeedback);
        assert!(!plan.has_feedback());
        assert_eq!(plan.prelude[2], StageOp::Rerank(RerankMode::Full));
        plan.apply_rung(BrownoutLevel::SkipRerank);
        assert_eq!(plan.prelude[2], StageOp::Rerank(RerankMode::Bypass));
        plan.apply_rung(BrownoutLevel::FlatTopK);
        assert_eq!(plan.round, vec![StageOp::Select(SelectMode::Flat), StageOp::Read]);
        // Idempotent: re-applying changes nothing.
        let snapshot = plan.clone();
        plan.apply_rung(BrownoutLevel::FlatTopK);
        assert_eq!(plan, snapshot);
    }

    #[test]
    fn bm25_fallback_splices_into_dense_prelude() {
        let mut plan = QueryPlan::resolve(&SageConfig::sage(), true, true);
        plan.on_bm25_fallback(1);
        assert_eq!(plan.prelude[1], StageOp::RetrieveBm25 { fallback: true });
        // The rewrite only targets a pending dense search.
        plan.on_bm25_fallback(2);
        assert_eq!(plan.prelude[2], StageOp::Rerank(RerankMode::Full));
    }

    #[test]
    fn explain_lists_stages_and_rungs() {
        let plan = QueryPlan::resolve(&SageConfig::sage(), true, true);
        let text = plan.explain();
        assert!(text.contains("embed"));
        assert!(text.contains("select (gradient)"));
        assert!(text.contains("rung DropFeedback"));
        assert!(text.contains("rung FlatTopK"));
        assert!(!text.contains("fan-out"), "unsharded plan must not render a fan-out");
    }

    #[test]
    fn fanout_resolves_quorum_and_renders() {
        let f = Fanout::new(4, None, std::time::Duration::from_millis(3));
        assert_eq!((f.shards, f.quorum), (4, 3), "default quorum is a majority");
        assert_eq!(Fanout::new(0, None, f.slice).shards, 1, "clamped to one shard");
        assert_eq!(Fanout::new(4, Some(9), f.slice).quorum, 4, "quorum clamped to shards");
        let plan = QueryPlan::resolve(&SageConfig::sage(), true, true).with_fanout(f);
        let text = plan.explain();
        assert!(text.contains("fan-out"), "{text}");
        assert!(text.contains("4 shard fault domain(s)"), "{text}");
        assert!(text.contains("quorum: 3/4"), "{text}");
        assert!(text.contains("hedged re-probe"), "{text}");
    }
}
