//! Live-corpus soak: interleaved writes and queries under a crash plan.
//!
//! [`run_live_soak`] drives a [`CorpusWriter`] through a seeded stream of
//! upsert/delete batches, querying between commits, with deterministic
//! crash injection at the commit write barriers. Every commit is checked
//! against four invariants:
//!
//! 1. **Recovery** — after an injected crash the store reopens to exactly
//!    the last committed epoch with an identical content digest, and the
//!    abandoned batch retries cleanly.
//! 2. **Snapshot isolation** — a snapshot taken before a commit answers
//!    identically after it: readers never observe a half-applied batch.
//! 3. **Hit validity** — every search hit names a document the shadow
//!    model says exists, and its chunk text is a substring of that
//!    document's current text (no stale or tombstoned chunks served).
//! 4. **Sublinear updates** — a commit's indexing work is bounded by the
//!    batch's dirty documents times a per-document chunk cap, never by
//!    corpus size.
//!
//! The run is a pure function of its config: the op stream, crash
//! decisions, and every log line derive from the seeds, and the log
//! contains no wall-clock times or filesystem paths — two runs with the
//! same config are byte-identical even in different directories, which
//! `scripts/check.sh` exploits as a determinism gate.

use super::{CorpusWriter, LiveConfig, LiveError, LiveOp};
use sage_resilience::{CrashPlan, DetRng};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// An upsert may index at most this many chunks per document before the
/// sublinearity invariant trips (generated docs are 2–3 sentences).
const CHUNKS_PER_DOC_CAP: usize = 8;

/// Give up on a batch after this many injected crashes in a row. An
/// `always(point)` plan can never pass — hitting the cap ends the run
/// (it is not an invariant violation). High enough that fractional plans
/// essentially never trip it (crash rate 0.6 → p ≈ 3e-6).
const MAX_ATTEMPTS: usize = 25;

/// Configuration of a live soak run.
#[derive(Debug, Clone, Copy)]
pub struct LiveSoakConfig {
    /// Seed of the op stream (documents, deletes, queries).
    pub seed: u64,
    /// Number of commit batches to attempt.
    pub commits: usize,
    /// Ops per batch.
    pub batch: usize,
    /// Distinct document ids the stream draws from.
    pub doc_pool: usize,
    /// Queries to run after each successful commit.
    pub queries_per_commit: usize,
    /// Crash plan injected at the commit write barriers.
    pub crash: CrashPlan,
    /// Store configuration.
    pub live: LiveConfig,
}

impl Default for LiveSoakConfig {
    fn default() -> Self {
        Self {
            seed: 0x50AC,
            commits: 24,
            batch: 4,
            doc_pool: 16,
            queries_per_commit: 2,
            crash: CrashPlan::none(),
            live: LiveConfig::default(),
        }
    }
}

/// What a live soak run observed.
#[derive(Debug, Clone)]
pub struct LiveSoakReport {
    /// The deterministic, byte-comparable event log.
    pub log: String,
    /// Batches committed successfully.
    pub commits: usize,
    /// Crashes injected (each followed by a recovery drill).
    pub crashes_injected: usize,
    /// Recovery drills performed.
    pub recoveries: usize,
    /// Invariant violations (empty on a healthy run).
    pub violations: Vec<String>,
    /// Whether a maxed-out crash plan ended the run early.
    pub gave_up: bool,
    /// Last committed epoch.
    pub final_epoch: u64,
    /// Content digest of the final state.
    pub final_digest: u64,
}

impl LiveSoakReport {
    /// One-line human summary (stderr; the log itself goes to stdout).
    pub fn summary(&self) -> String {
        format!(
            "live soak: {} commits, {} crashes injected, {} recoveries, \
             {} violations, final epoch {} digest {:#018x}{}",
            self.commits,
            self.crashes_injected,
            self.recoveries,
            self.violations.len(),
            self.final_epoch,
            self.final_digest,
            if self.gave_up { " (gave up: crash plan never passes)" } else { "" }
        )
    }

    /// One-line machine-readable summary for the scenario harness and CI
    /// (deterministic: every field replays bit-for-bit under a fixed
    /// seed).
    pub fn json_summary(&self) -> String {
        let mut out = String::from("{\"tool\": \"soak-live\"");
        out.push_str(&format!(", \"commits\": {}", self.commits));
        out.push_str(&format!(", \"crashes_injected\": {}", self.crashes_injected));
        out.push_str(&format!(", \"recoveries\": {}", self.recoveries));
        out.push_str(&format!(", \"gave_up\": {}", self.gave_up));
        out.push_str(&format!(", \"final_epoch\": {}", self.final_epoch));
        out.push_str(&format!(", \"final_digest\": \"{:#018x}\"", self.final_digest));
        out.push_str(", \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            sage_telemetry::span::write_json_str(v, &mut out);
        }
        out.push_str("]}");
        out
    }
}

/// Seeded word pools for generated document text and queries. Drawn by
/// index, so text is a pure function of `(doc, version)`.
const SUBJECTS: [&str; 8] = [
    "the lighthouse keeper",
    "a cargo manifest",
    "the tide table",
    "an old chart",
    "the harbor master",
    "a weather log",
    "the signal tower",
    "a mooring ledger",
];
const VERBS: [&str; 6] =
    ["records", "mentions", "describes", "lists", "disputes", "confirms"];
const OBJECTS: [&str; 8] = [
    "seventeen vessels",
    "the northern shoals",
    "a broken beacon",
    "the spring tides",
    "an unpaid berth",
    "the fog seasons",
    "two sunken buoys",
    "the quay repairs",
];

fn doc_text(doc: usize, version: usize) -> String {
    let s = SUBJECTS[(doc * 3 + version) % SUBJECTS.len()];
    let v = VERBS[(doc + version * 5) % VERBS.len()];
    let o = OBJECTS[(doc * 7 + version * 2) % OBJECTS.len()];
    let o2 = OBJECTS[(doc + version) % OBJECTS.len()];
    format!(
        "Entry {doc} revision {version}: {s} {v} {o}. \
         A later note adds that {s} also {v} {o2}."
    )
}

fn query_text(rng: &mut DetRng) -> String {
    let s = SUBJECTS[(rng.next_u64() % SUBJECTS.len() as u64) as usize];
    let o = OBJECTS[(rng.next_u64() % OBJECTS.len() as u64) as usize];
    format!("what does {s} say about {o}")
}

/// Run a live soak against the store directory `dir` (created if absent;
/// expected to be a scratch directory).
pub fn run_live_soak(dir: &Path, cfg: &LiveSoakConfig) -> Result<LiveSoakReport, LiveError> {
    let mut log = String::new();
    let mut violations: Vec<String> = Vec::new();
    let mut rng = DetRng::seed_from_u64(cfg.seed);
    let mut shadow: BTreeMap<String, String> = BTreeMap::new();
    let mut versions: BTreeMap<usize, usize> = BTreeMap::new();

    let (mut writer, rec) = CorpusWriter::open_with_crash_plan(dir, cfg.live, cfg.crash)?;
    let _ = writeln!(
        log,
        "open epoch={} segments={} orphans={}",
        rec.epoch, rec.segments_replayed, rec.orphans_discarded
    );
    let mut commits = 0usize;
    let mut crashes = 0usize;
    let mut recoveries = 0usize;
    let mut gave_up = false;

    'run: for _ in 0..cfg.commits {
        // Generate one batch against the shadow model.
        let mut ops: Vec<LiveOp> = Vec::with_capacity(cfg.batch);
        let mut dirty_upserts = 0usize;
        for _ in 0..cfg.batch {
            let delete = rng.next_f64() < 0.2 && !shadow.is_empty();
            if delete {
                let idx = (rng.next_u64() % shadow.len() as u64) as usize;
                let doc_id = match shadow.keys().nth(idx) {
                    Some(k) => k.clone(),
                    None => continue,
                };
                shadow.remove(&doc_id);
                ops.push(LiveOp::Delete { doc_id });
            } else {
                let doc = (rng.next_u64() % cfg.doc_pool.max(1) as u64) as usize;
                let version = versions.entry(doc).or_insert(0);
                let text = doc_text(doc, *version);
                *version += 1;
                let doc_id = format!("doc-{doc:03}");
                if shadow.get(&doc_id).map(String::as_str) != Some(text.as_str()) {
                    dirty_upserts += 1;
                }
                shadow.insert(doc_id.clone(), text.clone());
                ops.push(LiveOp::Upsert { doc_id, text });
            }
        }

        // Invariant 2 witness: a snapshot held across the commit.
        let held = writer.snapshot();
        let witness_query = query_text(&mut rng);
        let before = held.search(&witness_query, 5);

        // Commit, drilling recovery after every injected crash.
        let mut attempts = 0usize;
        let report = loop {
            let expected = (writer.epoch(), writer.digest());
            match writer.commit(&ops) {
                Ok(report) => break report,
                Err(LiveError::CrashInjected(point)) => {
                    crashes += 1;
                    attempts += 1;
                    let _ = writeln!(
                        log,
                        "crash point={} epoch={}",
                        point.label(),
                        expected.0 + 1
                    );
                    drop(writer);
                    let (w, rec) = CorpusWriter::open_with_crash_plan(dir, cfg.live, cfg.crash)?;
                    recoveries += 1;
                    let _ = writeln!(
                        log,
                        "recover epoch={} segments={} orphans={} digest={:#018x}",
                        rec.epoch,
                        rec.segments_replayed,
                        rec.orphans_discarded,
                        w.digest()
                    );
                    if rec.epoch != expected.0 || w.digest() != expected.1 {
                        violations.push(format!(
                            "recovery after {point} crash: expected epoch {} digest \
                             {:#018x}, recovered epoch {} digest {:#018x}",
                            expected.0,
                            expected.1,
                            rec.epoch,
                            w.digest()
                        ));
                    }
                    writer = w;
                    writer.set_commit_attempt(attempts as u32);
                    if attempts >= MAX_ATTEMPTS {
                        let _ = writeln!(log, "gave-up epoch={}", expected.0 + 1);
                        gave_up = true;
                        break 'run;
                    }
                }
                Err(e) => return Err(e),
            }
        };
        commits += 1;
        let _ = writeln!(
            log,
            "commit epoch={} ops={} upserts={} clean={} deletes={} chunks={} \
             tombstones={} compacted={}",
            report.epoch,
            ops.len(),
            report.docs_upserted,
            report.clean_upserts,
            report.docs_deleted,
            report.chunks_indexed,
            report.tombstones,
            report.compacted
        );

        // Invariant 2: the held snapshot answers as before the commit.
        if held.search(&witness_query, 5) != before || held.epoch() != report.epoch - 1 {
            violations.push(format!(
                "snapshot isolation broken across epoch {} commit",
                report.epoch
            ));
        }

        // Invariant 4: indexing work bounded by the batch, not the corpus.
        if report.chunks_indexed > dirty_upserts * CHUNKS_PER_DOC_CAP {
            violations.push(format!(
                "epoch {}: {} chunks indexed for {} dirty upserts (cap {})",
                report.epoch, report.chunks_indexed, dirty_upserts, CHUNKS_PER_DOC_CAP
            ));
        }

        // Invariant 3: fresh-snapshot hits agree with the shadow model.
        let snap = writer.snapshot();
        for _ in 0..cfg.queries_per_commit {
            let q = query_text(&mut rng);
            let hits = snap.search(&q, 3);
            let _ = writeln!(log, "query epoch={} hits={} q=\"{q}\"", snap.epoch(), hits.len());
            for hit in hits {
                match shadow.get(&hit.doc_id) {
                    Some(text) if text.contains(&hit.chunk) => {}
                    Some(_) => violations.push(format!(
                        "epoch {}: hit chunk not in current text of {}",
                        snap.epoch(),
                        hit.doc_id
                    )),
                    None => violations.push(format!(
                        "epoch {}: hit names deleted/unknown doc {}",
                        snap.epoch(),
                        hit.doc_id
                    )),
                }
            }
        }
    }

    let final_epoch = writer.epoch();
    let final_digest = writer.digest();
    for v in &violations {
        let _ = writeln!(log, "VIOLATION {v}");
    }
    let _ = writeln!(
        log,
        "done commits={commits} crashes={crashes} recoveries={recoveries} \
         violations={} epoch={final_epoch} digest={final_digest:#018x}",
        violations.len()
    );

    Ok(LiveSoakReport {
        log,
        commits,
        crashes_injected: crashes,
        recoveries,
        violations,
        gave_up,
        final_epoch,
        final_digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_resilience::CrashPoint;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sage_live_soak_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn base_cfg() -> LiveSoakConfig {
        LiveSoakConfig { commits: 12, ..LiveSoakConfig::default() }
    }

    #[test]
    fn healthy_soak_has_no_violations() {
        let dir = scratch("healthy");
        let report = run_live_soak(&dir, &base_cfg()).expect("soak");
        assert_eq!(report.violations, Vec::<String>::new());
        assert_eq!(report.commits, 12);
        assert_eq!(report.final_epoch, 12);
        assert_eq!(report.crashes_injected, 0);
        assert!(!report.gave_up);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn soak_is_byte_deterministic_across_directories() {
        let (a, b) = (scratch("det_a"), scratch("det_b"));
        let cfg = LiveSoakConfig {
            crash: CrashPlan::seeded(5).with(CrashPoint::PreRename, 0.3),
            ..base_cfg()
        };
        let ra = run_live_soak(&a, &cfg).expect("soak a");
        let rb = run_live_soak(&b, &cfg).expect("soak b");
        assert_eq!(ra.log, rb.log, "logs must be byte-identical across runs");
        assert_eq!(ra.final_digest, rb.final_digest);
        std::fs::remove_dir_all(&a).ok();
        std::fs::remove_dir_all(&b).ok();
    }

    #[test]
    fn crashy_soak_recovers_every_time_with_zero_violations() {
        let dir = scratch("crashy");
        let cfg = LiveSoakConfig {
            crash: CrashPlan::seeded(9)
                .with(CrashPoint::PostTmp, 0.4)
                .with(CrashPoint::PreManifest, 0.3),
            ..base_cfg()
        };
        let report = run_live_soak(&dir, &cfg).expect("soak");
        assert!(report.crashes_injected > 0, "plan should fire at these rates");
        assert_eq!(report.recoveries, report.crashes_injected);
        assert_eq!(report.violations, Vec::<String>::new());
        assert_eq!(report.commits, 12, "every batch eventually commits");
        assert!(!report.gave_up);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn certain_crash_plan_gives_up_rather_than_spinning() {
        let dir = scratch("certain");
        let cfg = LiveSoakConfig {
            crash: CrashPlan::always(CrashPoint::PreTmp),
            ..base_cfg()
        };
        let report = run_live_soak(&dir, &cfg).expect("soak");
        assert!(report.gave_up);
        assert_eq!(report.commits, 0);
        assert_eq!(report.final_epoch, 0);
        assert_eq!(report.violations, Vec::<String>::new());
        assert!(report.summary().contains("gave up"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
