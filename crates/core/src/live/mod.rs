//! Live-corpus mutation with epoch snapshots and crash recovery.
//!
//! Everything else in the reproduction is build-once-serve-forever; this
//! module makes the corpus *churn* safely. A single-writer
//! [`CorpusWriter`] applies batches of document [`LiveOp`]s — upsert and
//! delete — and commits each batch as one **epoch**:
//!
//! * only *dirty* documents are re-segmented (an upsert whose
//!   [`sage_segment::fingerprint`] matches the stored one is a no-op);
//! * vector inserts go to a [`MutableIndex`] (flat arena + optional HNSW
//!   tier) and BM25 postings are appended incrementally, so commit cost
//!   scales with the batch, not the corpus;
//! * deletes and updates tombstone old chunks; a deterministic compaction
//!   policy (dead fraction ≥ threshold) purges them by rebuilding the
//!   indexes over the survivors;
//! * readers hold [`LiveSnapshot`]s — cheap `Arc` clones of the state —
//!   that stay internally consistent while the writer advances
//!   (copy-on-write via `Arc::make_mut`).
//!
//! Durability: each commit appends one segment file (the op batch, framed
//! with the shared [`crate::fsx`] CRC-32 trailer and committed
//! tmp+fsync+rename), then atomically rewrites a manifest naming every
//! committed segment. Recovery replays the manifest's segments through the
//! same deterministic apply code, discards torn or orphaned files, and
//! provably lands on the last committed epoch — under deterministic
//! crash-point injection ([`sage_resilience::CrashPlan`]) at all five
//! write barriers, which the [`soak`] harness drills continuously.

pub mod soak;
pub(crate) mod store;

pub use soak::{run_live_soak, LiveSoakConfig, LiveSoakReport};
pub use store::RecoveryReport;

use sage_embed::{Embedder, HashedEmbedder};
use sage_resilience::{CrashPlan, CrashPoint};
use sage_retrieval::{Bm25Retriever, Retriever};
use sage_segment::{Segmenter, SentenceSegmenter};
use sage_telemetry::metrics;
use sage_telemetry::{Telemetry, Trace};
use sage_vecdb::{MutableIndex, VectorIndex};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Which retriever the live store maintains. All three are model-free and
/// fully deterministic, so recovery replay reconstructs bit-identical
/// state without trained weights on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveRetrieverKind {
    /// Hashed embedder over an exact flat arena.
    Hashed,
    /// Hashed embedder over a flat arena with an HNSW tier.
    HashedHnsw,
    /// BM25 inverted index with delta postings.
    Bm25,
}

impl LiveRetrieverKind {
    /// Parse a CLI token ("hashed" | "hnsw" | "bm25").
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "hashed" | "flat" => Some(Self::Hashed),
            "hnsw" => Some(Self::HashedHnsw),
            "bm25" => Some(Self::Bm25),
            _ => None,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Hashed => "hashed",
            Self::HashedHnsw => "hnsw",
            Self::Bm25 => "bm25",
        }
    }
}

/// Configuration of the live store. Persisted in the manifest so a store
/// always reopens with the geometry it was created with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveConfig {
    /// Retriever maintained by the writer.
    pub retriever: LiveRetrieverKind,
    /// Sentence-segmenter token budget per chunk.
    pub segment_tokens: usize,
    /// Hashed-embedder dimensionality (dense retrievers).
    pub embed_dim: usize,
    /// Hashed-embedder seed (dense retrievers).
    pub embed_seed: u64,
    /// Compact when the dead fraction reaches this threshold…
    pub compact_dead_fraction: f64,
    /// …and at least this many chunks are dead.
    pub compact_min_dead: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            retriever: LiveRetrieverKind::Hashed,
            segment_tokens: 64,
            embed_dim: 256,
            embed_seed: 0x0A1,
            compact_dead_fraction: 0.3,
            compact_min_dead: 8,
        }
    }
}

/// One corpus mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveOp {
    /// Add a document or replace its text (no-op when the text is
    /// unchanged — the dirty-document fingerprint check).
    Upsert {
        /// Stable document identifier.
        doc_id: String,
        /// Full document text.
        text: String,
    },
    /// Remove a document (no-op when absent).
    Delete {
        /// Stable document identifier.
        doc_id: String,
    },
}

/// Errors from the live store.
#[derive(Debug)]
pub enum LiveError {
    /// A [`CrashPlan`] fired at a write barrier: the commit was abandoned
    /// with the disk exactly as a real crash would leave it. The store's
    /// durable state is still the previous epoch; reopen to recover.
    CrashInjected(CrashPoint),
    /// An I/O failure outside injected crashes.
    Io(std::io::Error),
    /// The on-disk store is unusable: a manifest-listed segment is
    /// missing, torn, or inconsistent with the manifest.
    Corrupt(String),
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::CrashInjected(p) => write!(f, "crash injected at {p} barrier"),
            LiveError::Io(e) => write!(f, "live store i/o: {e}"),
            LiveError::Corrupt(msg) => write!(f, "live store corrupt: {msg}"),
        }
    }
}

impl std::error::Error for LiveError {}

impl From<std::io::Error> for LiveError {
    fn from(e: std::io::Error) -> Self {
        LiveError::Io(e)
    }
}

/// What one committed epoch did, for logs and telemetry reconciliation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitReport {
    /// The epoch this commit produced.
    pub epoch: u64,
    /// Documents upserted with changed (or new) text.
    pub docs_upserted: usize,
    /// Upserts skipped because the fingerprint was unchanged.
    pub clean_upserts: usize,
    /// Documents deleted (that existed).
    pub docs_deleted: usize,
    /// Chunks segmented, embedded, and indexed by this commit.
    pub chunks_indexed: usize,
    /// Chunks tombstoned by this commit's updates and deletes.
    pub tombstones: usize,
    /// Whether the deterministic compaction policy fired after applying.
    pub compacted: bool,
}

#[derive(Debug, Clone)]
struct ChunkSlot {
    text: String,
    doc: String,
    live: bool,
}

#[derive(Debug, Clone)]
struct DocMeta {
    fingerprint: u64,
    chunks: Vec<u32>,
}

#[derive(Debug, Clone)]
enum LiveIndex {
    Dense { embedder: HashedEmbedder, index: Box<MutableIndex> },
    Bm25(Box<Bm25Retriever>),
}

/// The in-memory state one epoch describes. Cloned lazily: snapshots pin
/// an `Arc` of it, and the writer copies-on-write only while a snapshot
/// is held.
#[derive(Debug, Clone)]
pub(crate) struct LiveState {
    epoch: u64,
    docs: BTreeMap<String, DocMeta>,
    chunks: Vec<ChunkSlot>,
    dead: usize,
    index: LiveIndex,
}

impl LiveState {
    fn new(cfg: &LiveConfig) -> Self {
        let index = match cfg.retriever {
            LiveRetrieverKind::Hashed => LiveIndex::Dense {
                embedder: HashedEmbedder::new(cfg.embed_dim.max(1), cfg.embed_seed),
                index: Box::new(MutableIndex::cosine()),
            },
            LiveRetrieverKind::HashedHnsw => LiveIndex::Dense {
                embedder: HashedEmbedder::new(cfg.embed_dim.max(1), cfg.embed_seed),
                index: Box::new(MutableIndex::with_hnsw(
                    sage_vecdb::Metric::Cosine,
                    sage_vecdb::HnswConfig::default(),
                )),
            },
            LiveRetrieverKind::Bm25 => LiveIndex::Bm25(Box::new(Bm25Retriever::new())),
        };
        Self { epoch: 0, docs: BTreeMap::new(), chunks: Vec::new(), dead: 0, index }
    }

    /// Apply one op batch, advance to `epoch`, then run the deterministic
    /// compaction policy. Identical inputs produce identical state — this
    /// is the function both live commits and recovery replay go through.
    fn apply_batch(&mut self, epoch: u64, ops: &[LiveOp], cfg: &LiveConfig) -> CommitReport {
        let mut report = CommitReport {
            epoch,
            docs_upserted: 0,
            clean_upserts: 0,
            docs_deleted: 0,
            chunks_indexed: 0,
            tombstones: 0,
            compacted: false,
        };
        for op in ops {
            match op {
                LiveOp::Upsert { doc_id, text } => {
                    let fp = sage_segment::fingerprint(text);
                    if self.docs.get(doc_id).is_some_and(|m| m.fingerprint == fp) {
                        report.clean_upserts += 1;
                        continue;
                    }
                    report.tombstones += self.tombstone_doc(doc_id);
                    let segmenter = SentenceSegmenter { max_tokens: cfg.segment_tokens.max(1) };
                    let mut ids = Vec::new();
                    for chunk in segmenter.segment(text) {
                        let id = match &mut self.index {
                            LiveIndex::Dense { embedder, index } => {
                                index.add(embedder.embed(&chunk))
                            }
                            LiveIndex::Bm25(r) => r.push_live_chunk(&chunk),
                        };
                        self.chunks.push(ChunkSlot {
                            text: chunk,
                            doc: doc_id.clone(),
                            live: true,
                        });
                        ids.push(id as u32);
                    }
                    report.chunks_indexed += ids.len();
                    report.docs_upserted += 1;
                    self.docs.insert(doc_id.clone(), DocMeta { fingerprint: fp, chunks: ids });
                }
                LiveOp::Delete { doc_id } => {
                    if self.docs.contains_key(doc_id) {
                        report.tombstones += self.tombstone_doc(doc_id);
                        self.docs.remove(doc_id);
                        report.docs_deleted += 1;
                    }
                }
            }
        }
        self.epoch = epoch;
        report.compacted = self.maybe_compact(cfg);
        report
    }

    /// Tombstone every chunk of `doc_id` (in both the slot table and the
    /// index), returning how many were newly tombstoned.
    fn tombstone_doc(&mut self, doc_id: &str) -> usize {
        let ids = self.docs.get(doc_id).map(|m| m.chunks.clone()).unwrap_or_default();
        let mut n = 0;
        for id in ids {
            let id = id as usize;
            if let Some(slot) = self.chunks.get_mut(id) {
                if slot.live {
                    slot.live = false;
                    self.dead += 1;
                    n += 1;
                }
            }
            match &mut self.index {
                LiveIndex::Dense { index, .. } => {
                    index.tombstone(id);
                }
                LiveIndex::Bm25(r) => {
                    r.tombstone_chunk(id);
                }
            }
        }
        n
    }

    /// The compaction policy: a pure function of the state's slot counts,
    /// so replay re-triggers compaction at exactly the same epochs.
    fn maybe_compact(&mut self, cfg: &LiveConfig) -> bool {
        let total = self.chunks.len();
        if total == 0 || self.dead < cfg.compact_min_dead.max(1) {
            return false;
        }
        if (self.dead as f64) / (total as f64) < cfg.compact_dead_fraction {
            return false;
        }
        self.compact();
        true
    }

    /// Purge tombstones: rebuild the index over surviving chunks in id
    /// order and renumber the slot table densely.
    fn compact(&mut self) {
        // Old id → new id for survivors, derived from the slot table; the
        // index tiers are kept in lockstep so their remaps agree.
        let mut remap: Vec<Option<u32>> = vec![None; self.chunks.len()];
        let mut survivors: Vec<ChunkSlot> = Vec::with_capacity(self.chunks.len() - self.dead);
        for (old, slot) in self.chunks.iter().enumerate() {
            if slot.live {
                // sage-lint: allow(panic-reachability) - old indexes the remap table sized to the previous id space just above
                remap[old] = Some(survivors.len() as u32);
                survivors.push(slot.clone());
            }
        }
        match &mut self.index {
            LiveIndex::Dense { index, .. } => {
                index.compact();
            }
            LiveIndex::Bm25(r) => {
                let texts: Vec<String> = survivors.iter().map(|s| s.text.clone()).collect();
                r.index(&texts);
            }
        }
        for meta in self.docs.values_mut() {
            meta.chunks =
                meta.chunks.iter().filter_map(|&id| remap.get(id as usize).copied()?).collect();
        }
        self.chunks = survivors;
        self.dead = 0;
    }

    fn search(&self, query: &str, n: usize) -> Vec<LiveHit> {
        let raw: Vec<(usize, f32)> = match &self.index {
            LiveIndex::Dense { embedder, index } => index
                .search(&embedder.embed_query(query), n)
                .into_iter()
                .map(|h| (h.id, h.score))
                .collect(),
            LiveIndex::Bm25(r) => {
                r.retrieve(query, n).into_iter().map(|s| (s.index, s.score)).collect()
            }
        };
        raw.into_iter()
            .filter_map(|(id, score)| {
                let slot = self.chunks.get(id)?;
                if !slot.live {
                    return None;
                }
                Some(LiveHit {
                    doc_id: slot.doc.clone(),
                    chunk: slot.text.clone(),
                    score,
                })
            })
            .collect()
    }

    /// Content digest: a pure function of the committed corpus (epoch,
    /// documents, live chunks). Two stores that applied the same op
    /// history digest identically — the recovery-drill equivalence check.
    fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&self.epoch.to_le_bytes());
        for (doc, meta) in &self.docs {
            eat(doc.as_bytes());
            eat(&meta.fingerprint.to_le_bytes());
            for &c in &meta.chunks {
                eat(&c.to_le_bytes());
            }
        }
        for (i, slot) in self.chunks.iter().enumerate() {
            if slot.live {
                eat(&(i as u32).to_le_bytes());
                eat(slot.text.as_bytes());
            }
        }
        h
    }
}

/// One search hit from a live snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveHit {
    /// Owning document.
    pub doc_id: String,
    /// Chunk text.
    pub chunk: String,
    /// Similarity score under the configured retriever.
    pub score: f32,
}

/// An immutable, internally consistent view of one committed epoch.
/// Cheap to take (`Arc` clone) and to hold: the writer copies-on-write
/// around live snapshots, so a reader never observes a half-applied
/// batch and an old snapshot keeps answering from its own epoch.
#[derive(Debug, Clone)]
pub struct LiveSnapshot {
    state: Arc<LiveState>,
}

impl LiveSnapshot {
    /// The epoch this snapshot serves.
    pub fn epoch(&self) -> u64 {
        self.state.epoch
    }

    /// Number of documents.
    pub fn doc_count(&self) -> usize {
        self.state.docs.len()
    }

    /// Number of live (retrievable) chunks.
    pub fn live_chunks(&self) -> usize {
        self.state.chunks.len() - self.state.dead
    }

    /// Top-`n` retrieval over the snapshot's corpus.
    pub fn search(&self, query: &str, n: usize) -> Vec<LiveHit> {
        self.state.search(query, n)
    }

    /// Content digest (see [`CorpusWriter::digest`]).
    pub fn digest(&self) -> u64 {
        self.state.digest()
    }

    /// The stored text fingerprint of `doc_id`, if present.
    pub fn doc_fingerprint(&self, doc_id: &str) -> Option<u64> {
        self.state.docs.get(doc_id).map(|m| m.fingerprint)
    }
}

/// The single writer of a live corpus store.
///
/// ```
/// use sage_core::live::{CorpusWriter, LiveConfig, LiveOp};
///
/// let dir = std::env::temp_dir().join("sage_live_doc_example");
/// std::fs::remove_dir_all(&dir).ok();
/// let (mut writer, _recovery) = CorpusWriter::open(&dir, LiveConfig::default()).unwrap();
/// writer
///     .commit(&[LiveOp::Upsert {
///         doc_id: "cats".into(),
///         text: "Whiskers is a tabby cat. He has bright green eyes.".into(),
///     }])
///     .unwrap();
/// let snap = writer.snapshot();
/// assert_eq!(snap.epoch(), 1);
/// assert!(snap.search("green eyes", 1)[0].chunk.contains("green"));
/// std::fs::remove_dir_all(&dir).ok();
/// ```
pub struct CorpusWriter {
    dir: PathBuf,
    cfg: LiveConfig,
    crash: CrashPlan,
    state: Arc<LiveState>,
    segments: Vec<store::SegmentEntry>,
    /// Commit attempts for the *next* epoch; folded into the crash key so
    /// a fractional crash plan lets a deterministic retry succeed.
    attempt: u32,
    telemetry: Telemetry,
}

impl CorpusWriter {
    /// Open (or create) the store at `dir`, recovering to the last
    /// committed epoch: manifest-listed segments are verified and
    /// replayed, torn or orphaned files are discarded.
    pub fn open(dir: &Path, cfg: LiveConfig) -> Result<(Self, RecoveryReport), LiveError> {
        Self::open_with_crash_plan(dir, cfg, CrashPlan::none())
    }

    /// [`CorpusWriter::open`] with deterministic crash injection at the
    /// commit write barriers (recovery drills, `sage soak --live`).
    pub fn open_with_crash_plan(
        dir: &Path,
        cfg: LiveConfig,
        crash: CrashPlan,
    ) -> Result<(Self, RecoveryReport), LiveError> {
        std::fs::create_dir_all(dir)?;
        let mut state = LiveState::new(&cfg);
        let recovered = store::recover(dir, &mut state, &cfg)?;
        metrics::LIVE_RECOVERIES.inc();
        metrics::LIVE_SEGMENTS_DISCARDED.add(recovered.report.orphans_discarded as u64);
        let telemetry = Telemetry::new();
        let mut trace = Trace::start("live-recovery");
        let span = trace.enter("live-recover");
        trace.field(span, "epoch", recovered.report.epoch);
        trace.field(span, "segments_replayed", recovered.report.segments_replayed);
        trace.field(span, "orphans_discarded", recovered.report.orphans_discarded);
        trace.event("live-recovery");
        trace.exit(span);
        telemetry.push_trace(trace);
        Ok((
            Self {
                dir: dir.to_path_buf(),
                cfg,
                crash,
                state: Arc::new(state),
                segments: recovered.segments,
                attempt: 0,
                telemetry,
            },
            recovered.report,
        ))
    }

    /// The store configuration.
    pub fn config(&self) -> &LiveConfig {
        &self.cfg
    }

    /// The last committed epoch (0 for a fresh store).
    pub fn epoch(&self) -> u64 {
        self.state.epoch
    }

    /// Content digest of the committed state (pure function of the op
    /// history; recovery must reproduce it exactly).
    pub fn digest(&self) -> u64 {
        self.state.digest()
    }

    /// Take a consistent read snapshot of the current epoch.
    pub fn snapshot(&self) -> LiveSnapshot {
        LiveSnapshot { state: Arc::clone(&self.state) }
    }

    /// Restore the retry counter folded into crash-injection keys.
    /// Recovery drills reopen the writer between attempts; without this a
    /// reopened writer would redraw the identical crash decision on every
    /// retry of the same epoch.
    pub fn set_commit_attempt(&mut self, attempt: u32) {
        self.attempt = attempt;
    }

    /// The telemetry hub collecting commit/compaction/recovery traces.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Durably commit one batch of ops as the next epoch.
    ///
    /// Protocol: write `seg-<epoch>.sageseg` through the barriered
    /// [`crate::fsx::commit_framed`] path, cross the pre-manifest
    /// barrier, atomically rewrite the manifest, then apply the batch to
    /// the in-memory state (copy-on-write if snapshots are held) and run
    /// the compaction policy. A [`LiveError::CrashInjected`] return means
    /// the disk looks exactly like a real crash at that barrier and the
    /// in-memory state still serves the previous epoch.
    pub fn commit(&mut self, ops: &[LiveOp]) -> Result<CommitReport, LiveError> {
        let epoch = self.state.epoch + 1;
        let key = format!("epoch:{epoch}:attempt:{}", self.attempt);
        let plan = self.crash;
        let framed = crate::fsx::frame(&store::encode_segment(epoch, ops));
        let seg_path = self.dir.join(store::segment_name(epoch));

        let mut injected: Option<CrashPoint> = None;
        let commit_res = crate::fsx::commit_framed(&seg_path, &framed, &mut |point| {
            if plan.crashes_at(point, &key) {
                injected = Some(point);
                Err(std::io::Error::other("injected crash"))
            } else {
                Ok(())
            }
        });
        if let Err(e) = commit_res {
            return Err(self.crash_or_io(injected, e));
        }
        if plan.crashes_at(CrashPoint::PreManifest, &key) {
            return Err(self.crash_or_io(
                Some(CrashPoint::PreManifest),
                std::io::Error::other("injected crash"),
            ));
        }

        let mut segments = self.segments.clone();
        segments.push(store::SegmentEntry {
            epoch,
            len: framed.len() as u64,
            crc: crate::fsx::crc32(&framed),
        });
        let manifest = crate::fsx::frame(&store::encode_manifest(epoch, &self.cfg, &segments));
        crate::fsx::commit_bytes(&self.dir.join(store::MANIFEST_NAME), &manifest)?;
        self.segments = segments;
        self.attempt = 0;

        let report = Arc::make_mut(&mut self.state).apply_batch(epoch, ops, &self.cfg);
        self.record_commit(&report, ops.len());
        Ok(report)
    }

    fn crash_or_io(&mut self, injected: Option<CrashPoint>, e: std::io::Error) -> LiveError {
        match injected {
            Some(point) => {
                self.attempt += 1;
                metrics::LIVE_CRASHES_INJECTED.inc();
                let mut trace = Trace::start("live-crash");
                let span = trace.enter("live-commit");
                trace.field(span, "barrier", point.label());
                trace.event("live-crash-injected");
                trace.exit(span);
                self.telemetry.push_trace(trace);
                LiveError::CrashInjected(point)
            }
            None => LiveError::Io(e),
        }
    }

    fn record_commit(&mut self, report: &CommitReport, ops: usize) {
        metrics::LIVE_COMMITS.inc();
        metrics::LIVE_DOCS_UPSERTED.add(report.docs_upserted as u64);
        metrics::LIVE_DOCS_DELETED.add(report.docs_deleted as u64);
        metrics::LIVE_CHUNKS_INDEXED.add(report.chunks_indexed as u64);
        metrics::LIVE_TOMBSTONES.add(report.tombstones as u64);
        if report.compacted {
            metrics::LIVE_COMPACTIONS.inc();
        }
        let mut trace = Trace::start(format!("live-epoch-{}", report.epoch));
        let span = trace.enter("live-commit");
        trace.field(span, "epoch", report.epoch);
        trace.field(span, "ops", ops);
        trace.field(span, "chunks_indexed", report.chunks_indexed);
        trace.field(span, "tombstones", report.tombstones);
        trace.event("live-epoch-commit");
        if report.compacted {
            trace.event("live-compaction");
        }
        trace.exit(span);
        self.telemetry.push_trace(trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sage_live_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn doc(i: usize, version: usize) -> LiveOp {
        LiveOp::Upsert {
            doc_id: format!("doc-{i}"),
            text: format!(
                "Document {i} version {version}. The harbor town kept its records carefully. \
                 Entry {i} lists the {version} known lighthouses.\n\
                 A second paragraph describes the cliffs near town {i}."
            ),
        }
    }

    #[test]
    fn commits_advance_epochs_and_serve_snapshots() {
        let dir = scratch("epochs");
        let (mut w, rec) = CorpusWriter::open(&dir, LiveConfig::default()).unwrap();
        assert_eq!(rec.epoch, 0);
        w.commit(&[doc(1, 0), doc(2, 0)]).unwrap();
        let snap1 = w.snapshot();
        assert_eq!(snap1.epoch(), 1);
        assert_eq!(snap1.doc_count(), 2);
        let hits = snap1.search("lighthouses in the harbor town", 3);
        assert!(!hits.is_empty());

        // Old snapshots keep answering from their own epoch.
        let before = snap1.search("records of town", 3);
        w.commit(&[LiveOp::Delete { doc_id: "doc-1".into() }]).unwrap();
        assert_eq!(w.epoch(), 2);
        assert_eq!(snap1.epoch(), 1, "held snapshot must not advance");
        assert_eq!(snap1.search("records of town", 3), before);
        let snap2 = w.snapshot();
        assert_eq!(snap2.doc_count(), 1);
        assert!(snap2.search("records of town", 5).iter().all(|h| h.doc_id != "doc-1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clean_upserts_are_noops() {
        let dir = scratch("clean");
        let (mut w, _) = CorpusWriter::open(&dir, LiveConfig::default()).unwrap();
        let r1 = w.commit(&[doc(7, 0)]).unwrap();
        assert_eq!(r1.docs_upserted, 1);
        assert!(r1.chunks_indexed > 0);
        let digest = w.digest();
        // Same text again: fingerprint match, nothing re-segmented.
        let r2 = w.commit(&[doc(7, 0)]).unwrap();
        assert_eq!(r2.clean_upserts, 1);
        assert_eq!(r2.docs_upserted, 0);
        assert_eq!(r2.chunks_indexed, 0);
        assert_eq!(r2.tombstones, 0);
        // Changed text: old chunks tombstoned, new ones indexed.
        let r3 = w.commit(&[doc(7, 1)]).unwrap();
        assert_eq!(r3.docs_upserted, 1);
        assert!(r3.tombstones > 0 && r3.chunks_indexed > 0);
        assert_ne!(w.digest(), digest);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_recovers_identical_state() {
        let dir = scratch("reopen");
        let cfg = LiveConfig::default();
        let (mut w, _) = CorpusWriter::open(&dir, cfg).unwrap();
        w.commit(&[doc(1, 0), doc(2, 0), doc(3, 0)]).unwrap();
        w.commit(&[doc(2, 1), LiveOp::Delete { doc_id: "doc-3".into() }]).unwrap();
        let (epoch, digest) = (w.epoch(), w.digest());
        let hits = w.snapshot().search("lighthouses", 4);
        drop(w);
        let (w2, rec) = CorpusWriter::open(&dir, cfg).unwrap();
        assert_eq!(rec.epoch, epoch);
        assert_eq!(rec.segments_replayed, 2);
        assert_eq!(rec.orphans_discarded, 0);
        assert_eq!(w2.epoch(), epoch);
        assert_eq!(w2.digest(), digest, "replay must reconstruct identical state");
        assert_eq!(w2.snapshot().search("lighthouses", 4), hits);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_crash_point_recovers_to_last_committed_epoch() {
        for point in CrashPoint::ALL {
            let dir = scratch(&format!("crash_{}", point.label()));
            let cfg = LiveConfig::default();
            let (mut w, _) = CorpusWriter::open(&dir, cfg).unwrap();
            w.commit(&[doc(1, 0), doc(2, 0)]).unwrap();
            let (epoch, digest) = (w.epoch(), w.digest());
            drop(w);

            let (mut w, _) =
                CorpusWriter::open_with_crash_plan(&dir, cfg, CrashPlan::always(point)).unwrap();
            match w.commit(&[doc(1, 1)]) {
                Err(LiveError::CrashInjected(p)) => assert_eq!(p, point),
                other => panic!("{point}: expected injected crash, got {other:?}"),
            }
            // In-memory state still serves the old epoch.
            assert_eq!(w.epoch(), epoch);
            drop(w);

            // Recovery drill: reopen without the plan.
            let (w, rec) = CorpusWriter::open(&dir, cfg).unwrap();
            assert_eq!(w.epoch(), epoch, "{point}: must recover to last committed epoch");
            assert_eq!(w.digest(), digest, "{point}: recovered state must be identical");
            // Post-tmp/pre-rename leave a torn tmp; post-rename/pre-manifest
            // leave an orphaned segment. Pre-tmp leaves nothing.
            match point {
                CrashPoint::PreTmp => assert_eq!(rec.orphans_discarded, 0, "{point}"),
                _ => assert_eq!(rec.orphans_discarded, 1, "{point}"),
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn fractional_crash_plan_allows_deterministic_retry() {
        let dir = scratch("retry");
        let cfg = LiveConfig::default();
        // Crash ~half of pre-rename barriers: some attempt must eventually
        // pass because the attempt number is folded into the crash key.
        let plan = CrashPlan::seeded(11).with(CrashPoint::PreRename, 0.5);
        let (mut w, _) = CorpusWriter::open_with_crash_plan(&dir, cfg, plan).unwrap();
        let mut crashes = 0;
        for i in 0..6 {
            loop {
                match w.commit(&[doc(i, 0)]) {
                    Ok(r) => {
                        assert_eq!(r.epoch, (i as u64) + 1);
                        break;
                    }
                    Err(LiveError::CrashInjected(_)) => {
                        crashes += 1;
                        assert!(crashes < 100, "plan never lets a retry through");
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
        assert_eq!(w.epoch(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_purges_tombstones_deterministically() {
        let dir = scratch("compact");
        let cfg = LiveConfig {
            compact_dead_fraction: 0.2,
            compact_min_dead: 2,
            ..LiveConfig::default()
        };
        let (mut w, _) = CorpusWriter::open(&dir, cfg).unwrap();
        for i in 0..6 {
            w.commit(&[doc(i, 0)]).unwrap();
        }
        let before_chunks = w.snapshot().live_chunks();
        let r = w
            .commit(&[
                LiveOp::Delete { doc_id: "doc-0".into() },
                LiveOp::Delete { doc_id: "doc-1".into() },
                LiveOp::Delete { doc_id: "doc-2".into() },
            ])
            .unwrap();
        assert!(r.compacted, "deleting half the corpus must trigger compaction");
        let snap = w.snapshot();
        assert!(snap.live_chunks() < before_chunks);
        // After compaction the slot table is dense again and search works.
        assert!(!snap.search("lighthouses", 3).is_empty());
        // Replay reproduces the compacted state bit-for-bit.
        let digest = w.digest();
        drop(w);
        let (w2, _) = CorpusWriter::open(&dir, cfg).unwrap();
        assert_eq!(w2.digest(), digest);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bm25_and_hnsw_variants_work() {
        for kind in [LiveRetrieverKind::Bm25, LiveRetrieverKind::HashedHnsw] {
            let dir = scratch(&format!("kind_{}", kind.label()));
            let cfg = LiveConfig { retriever: kind, ..LiveConfig::default() };
            let (mut w, _) = CorpusWriter::open(&dir, cfg).unwrap();
            w.commit(&[doc(1, 0), doc(2, 0)]).unwrap();
            w.commit(&[doc(1, 1)]).unwrap();
            let hits = w.snapshot().search("lighthouses near the harbor", 3);
            assert!(!hits.is_empty(), "{kind:?}");
            let digest = w.digest();
            drop(w);
            let (w2, _) = CorpusWriter::open(&dir, cfg).unwrap();
            assert_eq!(w2.digest(), digest, "{kind:?}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn commit_traces_carry_epoch_events() {
        let dir = scratch("traces");
        let (mut w, _) = CorpusWriter::open(&dir, LiveConfig::default()).unwrap();
        w.commit(&[doc(1, 0)]).unwrap();
        w.telemetry().with_traces(|traces| {
            assert!(traces.iter().any(|t| t.label() == "live-recovery"));
            assert!(traces.iter().any(|t| t.label() == "live-epoch-1"));
        });
        std::fs::remove_dir_all(&dir).ok();
    }
}
