//! On-disk format and recovery scan of the live-corpus store.
//!
//! A store directory holds:
//!
//! * `seg-<epoch>.sageseg` — one file per committed epoch carrying the
//!   *operations* of that epoch's batch (magic `SAGESEG1`), not derived
//!   state: recovery replays them through the same deterministic apply
//!   code the live writer uses, so replayed and live state are
//!   bit-identical.
//! * `MANIFEST.sageman` — the commit record (magic `SAGEMAN1`): the last
//!   committed epoch, the store's [`LiveConfig`], and for every committed
//!   segment its epoch, framed length, and CRC-32. The manifest is
//!   rewritten atomically *after* the segment is durable, so a crash
//!   between the two leaves an orphaned segment the manifest never
//!   mentions — recovery discards it.
//!
//! Both file kinds carry the shared [`crate::fsx`] `SAGECRC1` trailer and
//! go through the tmp+fsync+rename commit protocol. The recovery scan
//! ([`recover`]) verifies every manifest-listed segment against its
//! recorded length and checksum (a mismatch is corruption, not a crash —
//! the manifest only ever names durable segments), replays them in epoch
//! order, and deletes stray `.tmp` scratch files and unlisted segments.

use super::{LiveConfig, LiveError, LiveOp, LiveRetrieverKind, LiveState};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sage_nn::io::{get_string, get_u32, get_u64, get_u8, put_string};
use std::collections::BTreeSet;
use std::path::Path;

/// Header magic of a segment file.
pub(crate) const SEGMENT_MAGIC: &[u8; 8] = b"SAGESEG1";

/// Header magic of the manifest.
pub(crate) const MANIFEST_MAGIC: &[u8; 8] = b"SAGEMAN1";

/// Manifest file name inside a store directory.
pub(crate) const MANIFEST_NAME: &str = "MANIFEST.sageman";

/// File-name extension of segment files.
const SEGMENT_EXT: &str = ".sageseg";

/// One committed segment as the manifest records it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SegmentEntry {
    /// The epoch this segment produced.
    pub epoch: u64,
    /// Length of the framed file in bytes.
    pub len: u64,
    /// CRC-32 of the framed file bytes.
    pub crc: u32,
}

/// What [`recover`] found and did while reopening a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The last committed epoch the store recovered to (0 = fresh store).
    pub epoch: u64,
    /// Manifest-listed segments verified and replayed.
    pub segments_replayed: usize,
    /// Stray files deleted: `.tmp` scratch files from torn commits and
    /// segments the manifest never committed.
    pub orphans_discarded: usize,
}

pub(crate) struct Recovered {
    pub segments: Vec<SegmentEntry>,
    pub report: RecoveryReport,
}

/// File name of the segment committing `epoch`.
pub(crate) fn segment_name(epoch: u64) -> String {
    format!("seg-{epoch:06}{SEGMENT_EXT}")
}

/// Encode one epoch's op batch (unframed payload).
pub(crate) fn encode_segment(epoch: u64, ops: &[LiveOp]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_slice(SEGMENT_MAGIC);
    buf.put_u64_le(epoch);
    buf.put_u32_le(ops.len() as u32);
    for op in ops {
        match op {
            LiveOp::Upsert { doc_id, text } => {
                buf.put_u8(0);
                put_string(&mut buf, doc_id);
                put_string(&mut buf, text);
            }
            LiveOp::Delete { doc_id } => {
                buf.put_u8(1);
                put_string(&mut buf, doc_id);
            }
        }
    }
    buf.to_vec()
}

/// Decode a segment payload; `None` on malformed input.
pub(crate) fn decode_segment(payload: Vec<u8>) -> Option<(u64, Vec<LiveOp>)> {
    let mut bytes = Bytes::from(payload);
    if bytes.remaining() < SEGMENT_MAGIC.len()
        || bytes.split_to(SEGMENT_MAGIC.len()).as_ref() != SEGMENT_MAGIC
    {
        return None;
    }
    let epoch = get_u64(&mut bytes)?;
    let count = get_u32(&mut bytes)? as usize;
    if count > bytes.remaining() {
        return None; // hostile count: each op needs at least one byte
    }
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        let op = match get_u8(&mut bytes)? {
            0 => LiveOp::Upsert { doc_id: get_string(&mut bytes)?, text: get_string(&mut bytes)? },
            1 => LiveOp::Delete { doc_id: get_string(&mut bytes)? },
            _ => return None,
        };
        ops.push(op);
    }
    if bytes.has_remaining() {
        return None;
    }
    Some((epoch, ops))
}

/// Encode the manifest (unframed payload).
pub(crate) fn encode_manifest(epoch: u64, cfg: &LiveConfig, segments: &[SegmentEntry]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_slice(MANIFEST_MAGIC);
    buf.put_u64_le(epoch);
    buf.put_u8(match cfg.retriever {
        LiveRetrieverKind::Hashed => 0,
        LiveRetrieverKind::HashedHnsw => 1,
        LiveRetrieverKind::Bm25 => 2,
    });
    buf.put_u32_le(cfg.segment_tokens as u32);
    buf.put_u32_le(cfg.embed_dim as u32);
    buf.put_u64_le(cfg.embed_seed);
    buf.put_u64_le(cfg.compact_dead_fraction.to_bits());
    buf.put_u32_le(cfg.compact_min_dead as u32);
    buf.put_u32_le(segments.len() as u32);
    for seg in segments {
        buf.put_u64_le(seg.epoch);
        buf.put_u64_le(seg.len);
        buf.put_u32_le(seg.crc);
    }
    buf.to_vec()
}

/// Decode a manifest payload; `None` on malformed input.
pub(crate) fn decode_manifest(payload: Vec<u8>) -> Option<(u64, LiveConfig, Vec<SegmentEntry>)> {
    let mut bytes = Bytes::from(payload);
    if bytes.remaining() < MANIFEST_MAGIC.len()
        || bytes.split_to(MANIFEST_MAGIC.len()).as_ref() != MANIFEST_MAGIC
    {
        return None;
    }
    let epoch = get_u64(&mut bytes)?;
    let retriever = match get_u8(&mut bytes)? {
        0 => LiveRetrieverKind::Hashed,
        1 => LiveRetrieverKind::HashedHnsw,
        2 => LiveRetrieverKind::Bm25,
        _ => return None,
    };
    let cfg = LiveConfig {
        retriever,
        segment_tokens: get_u32(&mut bytes)? as usize,
        embed_dim: get_u32(&mut bytes)? as usize,
        embed_seed: get_u64(&mut bytes)?,
        compact_dead_fraction: f64::from_bits(get_u64(&mut bytes)?),
        compact_min_dead: get_u32(&mut bytes)? as usize,
    };
    let count = get_u32(&mut bytes)? as usize;
    if count > bytes.remaining() {
        return None; // hostile count: each entry is 20 bytes
    }
    let mut segments = Vec::with_capacity(count);
    for _ in 0..count {
        segments.push(SegmentEntry {
            epoch: get_u64(&mut bytes)?,
            len: get_u64(&mut bytes)?,
            crc: get_u32(&mut bytes)?,
        });
    }
    if bytes.has_remaining() {
        return None;
    }
    Some((epoch, cfg, segments))
}

/// Reopen the store at `dir`: verify and replay manifest-listed segments
/// into `state`, delete torn/orphaned files, and fail loudly on anything
/// the manifest promised but the disk cannot deliver.
pub(crate) fn recover(
    dir: &Path,
    state: &mut LiveState,
    cfg: &LiveConfig,
) -> Result<Recovered, LiveError> {
    let manifest_path = dir.join(MANIFEST_NAME);
    let (manifest_epoch, segments) = if manifest_path.exists() {
        let raw = std::fs::read(&manifest_path)?;
        let payload = crate::fsx::unframe(raw, "live-store manifest").map_err(corrupt)?;
        let (epoch, stored_cfg, segments) =
            decode_manifest(payload).ok_or_else(|| LiveError::Corrupt(
                "live-store manifest is malformed".to_string(),
            ))?;
        if stored_cfg != *cfg {
            return Err(LiveError::Corrupt(format!(
                "live store was created with a different config \
                 (stored retriever {}, requested {})",
                stored_cfg.retriever.label(),
                cfg.retriever.label()
            )));
        }
        (epoch, segments)
    } else {
        (0, Vec::new())
    };

    // Verify then replay every committed segment, in the order the
    // manifest committed them.
    let mut listed: BTreeSet<String> = BTreeSet::new();
    for seg in &segments {
        let name = segment_name(seg.epoch);
        let path = dir.join(&name);
        let framed = std::fs::read(&path).map_err(|e| {
            LiveError::Corrupt(format!("manifest lists segment {name} but it is unreadable: {e}"))
        })?;
        if framed.len() as u64 != seg.len || crate::fsx::crc32(&framed) != seg.crc {
            return Err(LiveError::Corrupt(format!(
                "segment {name} does not match its manifest record \
                 ({} bytes vs {} recorded)",
                framed.len(),
                seg.len
            )));
        }
        let payload = crate::fsx::unframe(framed, "live segment").map_err(corrupt)?;
        let (epoch, ops) = decode_segment(payload)
            .ok_or_else(|| LiveError::Corrupt(format!("segment {name} is malformed")))?;
        if epoch != seg.epoch {
            return Err(LiveError::Corrupt(format!(
                "segment {name} claims epoch {epoch}, manifest recorded {}",
                seg.epoch
            )));
        }
        state.apply_batch(epoch, &ops, cfg);
        listed.insert(name);
    }
    if state.epoch != manifest_epoch {
        return Err(LiveError::Corrupt(format!(
            "replay reached epoch {} but the manifest committed epoch {manifest_epoch}",
            state.epoch
        )));
    }

    // Discard what no committed epoch owns: scratch files from torn
    // commits and segments whose manifest rewrite never happened. They
    // were never served and never will be.
    let mut orphans = 0;
    for entry in std::fs::read_dir(dir)? {
        let Ok(entry) = entry else { continue };
        let name = entry.file_name().to_string_lossy().into_owned();
        let torn_tmp = name.ends_with(".tmp");
        let orphan_segment = name.ends_with(SEGMENT_EXT) && !listed.contains(&name);
        if torn_tmp || orphan_segment {
            std::fs::remove_file(entry.path())?;
            orphans += 1;
        }
    }

    Ok(Recovered {
        segments,
        report: RecoveryReport {
            epoch: manifest_epoch,
            segments_replayed: listed.len(),
            orphans_discarded: orphans,
        },
    })
}

fn corrupt(e: std::io::Error) -> LiveError {
    LiveError::Corrupt(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::CorpusWriter;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sage_live_store_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn segment_roundtrip() {
        let ops = vec![
            LiveOp::Upsert { doc_id: "a".into(), text: "Some text. More text.".into() },
            LiveOp::Delete { doc_id: "b".into() },
            LiveOp::Upsert { doc_id: "c".into(), text: String::new() },
        ];
        let (epoch, back) = decode_segment(encode_segment(42, &ops)).expect("roundtrip");
        assert_eq!(epoch, 42);
        assert_eq!(back, ops);
    }

    #[test]
    fn segment_rejects_malformed_input() {
        assert!(decode_segment(b"garbage".to_vec()).is_none());
        assert!(decode_segment(Vec::new()).is_none());
        // Wrong op tag.
        let mut buf = BytesMut::new();
        buf.put_slice(SEGMENT_MAGIC);
        buf.put_u64_le(1);
        buf.put_u32_le(1);
        buf.put_u8(9);
        assert!(decode_segment(buf.to_vec()).is_none());
        // Hostile count with no payload behind it.
        let mut buf = BytesMut::new();
        buf.put_slice(SEGMENT_MAGIC);
        buf.put_u64_le(1);
        buf.put_u32_le(u32::MAX);
        assert!(decode_segment(buf.to_vec()).is_none());
        // Trailing bytes are an error.
        let mut ok = encode_segment(1, &[LiveOp::Delete { doc_id: "x".into() }]);
        ok.push(0xFF);
        assert!(decode_segment(ok).is_none());
    }

    #[test]
    fn manifest_roundtrip() {
        let cfg = LiveConfig { retriever: LiveRetrieverKind::Bm25, ..LiveConfig::default() };
        let segments = vec![
            SegmentEntry { epoch: 1, len: 120, crc: 0xDEAD_BEEF },
            SegmentEntry { epoch: 2, len: 64, crc: 7 },
        ];
        let (epoch, back_cfg, back) =
            decode_manifest(encode_manifest(2, &cfg, &segments)).expect("roundtrip");
        assert_eq!(epoch, 2);
        assert_eq!(back_cfg, cfg);
        assert_eq!(back, segments);
        assert!(decode_manifest(b"junk".to_vec()).is_none());
    }

    #[test]
    fn truncated_listed_segment_is_corruption_not_silence() {
        let dir = scratch("truncated");
        let cfg = LiveConfig::default();
        let (mut w, _) = CorpusWriter::open(&dir, cfg).unwrap();
        w.commit(&[LiveOp::Upsert { doc_id: "d".into(), text: "One sentence here.".into() }])
            .unwrap();
        drop(w);
        // Truncate the committed segment behind the manifest's back.
        let seg = dir.join(segment_name(1));
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();
        match CorpusWriter::open(&dir, cfg) {
            Err(LiveError::Corrupt(msg)) => {
                assert!(msg.contains("does not match its manifest record"), "{msg}");
            }
            other => panic!("expected corruption error, got {:?}", other.map(|_| ())),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_config_is_rejected_on_reopen() {
        let dir = scratch("config");
        let (mut w, _) = CorpusWriter::open(&dir, LiveConfig::default()).unwrap();
        w.commit(&[LiveOp::Upsert { doc_id: "d".into(), text: "One sentence.".into() }]).unwrap();
        drop(w);
        let other = LiveConfig { retriever: LiveRetrieverKind::Bm25, ..LiveConfig::default() };
        match CorpusWriter::open(&dir, other) {
            Err(LiveError::Corrupt(msg)) => assert!(msg.contains("different config"), "{msg}"),
            other => panic!("expected config mismatch, got {:?}", other.map(|_| ())),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stray_files_are_discarded_on_open() {
        let dir = scratch("strays");
        let cfg = LiveConfig::default();
        let (mut w, _) = CorpusWriter::open(&dir, cfg).unwrap();
        w.commit(&[LiveOp::Upsert { doc_id: "d".into(), text: "Keep me around.".into() }])
            .unwrap();
        drop(w);
        // A torn tmp and an orphaned (never-manifested) segment.
        std::fs::write(dir.join("seg-000002.sageseg.tmp"), b"torn").unwrap();
        std::fs::write(dir.join(segment_name(9)), b"orphan").unwrap();
        let (w, rec) = CorpusWriter::open(&dir, cfg).unwrap();
        assert_eq!(rec.epoch, 1);
        assert_eq!(rec.orphans_discarded, 2);
        assert!(!dir.join("seg-000002.sageseg.tmp").exists());
        assert!(!dir.join(segment_name(9)).exists());
        assert_eq!(w.epoch(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
