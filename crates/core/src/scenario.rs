//! Scenario-matrix cells: one declarative grid cell → one metrics row.
//!
//! A [`sage_obs::ScenarioCell`] names a point in the dataset × retriever ×
//! fault-plan × budget × load-shape grid. [`run_cell`] materialises that
//! point with the existing machinery — dataset generators, the soak
//! harness, the experiment evaluator — and folds the outcome into one
//! [`sage_obs::BenchRow`] of rendered metric strings. Everything the row
//! contains is a pure function of the cell (virtual clock, seeded
//! arrivals, deterministic models), so two runs of the same grid are
//! byte-identical and CI can diff the rendered JSON against a committed
//! baseline with per-metric tolerance bands.

use crate::baselines::Method;
use crate::config::{RetrieverKind, SageConfig};
use crate::experiment::evaluate;
use crate::models::TrainedModels;
use crate::pipeline::RagSystem;
use crate::resilience::ResilienceConfig;
use crate::soak::run_soak;
use sage_admission::{QueryBudget, SoakConfig};
use sage_corpus::datasets::{narrativeqa, qasper, quality, SizeConfig};
use sage_corpus::Dataset;
use sage_llm::LlmProfile;
use sage_obs::{BenchRow, ScenarioCell};
use sage_resilience::FaultPlan;
use std::time::Duration;

/// Resolve a cell's retriever axis.
fn parse_retriever(name: &str) -> Result<RetrieverKind, String> {
    match name {
        "openai" | "hashed" => Ok(RetrieverKind::OpenAiSim),
        "sbert" => Ok(RetrieverKind::Sbert),
        "dpr" => Ok(RetrieverKind::Dpr),
        "bm25" => Ok(RetrieverKind::Bm25),
        other => Err(format!("unknown retriever `{other}` (openai|sbert|dpr|bm25)")),
    }
}

/// Resolve a cell's dataset axis.
fn generate_dataset(cell: &ScenarioCell) -> Result<Dataset, String> {
    let cfg = SizeConfig {
        num_docs: (cell.docs.max(1)) as usize,
        questions_per_doc: 4,
        seed: cell.seed,
    };
    match cell.dataset.as_str() {
        "quality" => Ok(quality::generate(cfg)),
        "qasper" => Ok(qasper::generate(cfg)),
        "narrativeqa" => Ok(narrativeqa::generate(cfg)),
        other => Err(format!("unknown dataset `{other}` (quality|qasper|narrativeqa)")),
    }
}

/// Translate the cell's load-shape and budget axes into a soak config.
fn soak_config(cell: &ScenarioCell) -> SoakConfig {
    SoakConfig {
        seed: cell.seed,
        duration: Duration::from_secs(cell.duration_s),
        qps: cell.qps as f64,
        capacity: cell.capacity as usize,
        concurrency: cell.concurrency as usize,
        shards: cell.shards.max(1) as u32,
        exec_workers: cell.exec_workers.max(1) as usize,
        budget: Some(QueryBudget::new(
            Duration::from_millis(cell.deadline_ms),
            cell.max_tokens,
        )),
        ..SoakConfig::default()
    }
}

/// Run one grid cell end to end: generate the dataset, build the system,
/// arm the cell's fault plan, soak it under the cell's load shape, grade
/// the method on the same dataset, and render everything into one
/// [`BenchRow`]. All metrics are virtual-clock quantities; floats are
/// rendered at fixed precision so the row is byte-stable.
pub fn run_cell(models: &TrainedModels, cell: &ScenarioCell) -> Result<BenchRow, String> {
    let retriever = parse_retriever(&cell.retriever)?;
    let dataset = generate_dataset(cell)?;
    let profile = LlmProfile::gpt4o_mini();

    let corpus: Vec<String> = dataset.documents.iter().map(|d| d.text()).collect();
    let questions: Vec<String> = dataset.tasks.iter().map(|t| t.item.question.clone()).collect();
    if questions.is_empty() {
        return Err(format!("cell `{}`: dataset generated no questions", cell.name));
    }

    let mut system = RagSystem::build(models, retriever, SageConfig::sage(), profile, &corpus);
    if !cell.faults.is_empty() {
        let plan = FaultPlan::parse_spec(&cell.faults, cell.seed)
            .map_err(|e| format!("cell `{}`: bad fault spec: {e}", cell.name))?;
        system.enable_resilience(ResilienceConfig::with_plan(plan));
    }
    if cell.shards > 1 {
        system.enable_sharding(cell.shards as u32, None);
    }

    let cfg = soak_config(cell);
    let report = run_soak(&system, &questions, &cfg);
    let scores = evaluate(Method::Sage(retriever), models, profile, &dataset);

    let mut row = BenchRow::new(&cell.name);
    row.push_u64("arrivals", report.arrivals as u64);
    row.push_u64("admitted", report.admitted as u64);
    row.push_u64("shed", report.shed_total());
    row.push_u64("expired", report.expired as u64);
    row.push_u64("completed", report.completed as u64);
    row.push_u64("errors", report.errors as u64);
    row.push_u64("panics", report.panics as u64);
    row.push_u64("shard_partial", report.shard_partial as u64);
    row.push_u64("browned_out", report.browned_out());
    row.push_u64("p50_sojourn_us", report.p50_sojourn.as_micros() as u64);
    row.push_u64("p99_sojourn_us", report.p99_sojourn.as_micros() as u64);
    row.push_f64("shed_rate", report.shed_rate());
    row.push_f64("accuracy", f64::from(scores.accuracy));
    row.push_f64("f1", f64::from(scores.f1));
    row.push_u64("tokens", scores.cost.input_tokens + scores.cost.output_tokens);
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::TrainBudget;
    use std::sync::OnceLock;

    fn models() -> &'static TrainedModels {
        static M: OnceLock<TrainedModels> = OnceLock::new();
        M.get_or_init(|| TrainedModels::train(TrainBudget::tiny()))
    }

    fn quick_cell() -> ScenarioCell {
        ScenarioCell {
            name: "quick".to_string(),
            dataset: "quality".to_string(),
            docs: 1,
            duration_s: 6,
            qps: 2,
            ..ScenarioCell::default()
        }
    }

    #[test]
    fn cells_replay_byte_for_byte() {
        let a = run_cell(models(), &quick_cell()).unwrap();
        let b = run_cell(models(), &quick_cell()).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "same cell must render identically");
    }

    #[test]
    fn exec_workers_axis_never_moves_a_metric() {
        // The axis is a wall-clock knob only: the rendered row must be
        // byte-identical at any worker count.
        let base = run_cell(models(), &quick_cell()).unwrap();
        let waved =
            run_cell(models(), &ScenarioCell { exec_workers: 4, ..quick_cell() }).unwrap();
        assert_eq!(base.to_json(), waved.to_json());
    }

    #[test]
    fn bad_axes_are_rejected() {
        let cell = ScenarioCell { dataset: "squad".to_string(), ..quick_cell() };
        assert!(run_cell(models(), &cell).unwrap_err().contains("unknown dataset"));
        let cell = ScenarioCell { retriever: "colbert".to_string(), ..quick_cell() };
        assert!(run_cell(models(), &cell).unwrap_err().contains("unknown retriever"));
        let cell = ScenarioCell { faults: "reader=explode".to_string(), ..quick_cell() };
        assert!(run_cell(models(), &cell).unwrap_err().contains("bad fault spec"));
    }

    #[test]
    fn fault_axis_changes_the_row() {
        let clean = run_cell(models(), &quick_cell()).unwrap();
        let faulty = run_cell(
            models(),
            &ScenarioCell { faults: "reader=transient:1.0".to_string(), ..quick_cell() },
        )
        .unwrap();
        // Same grid point apart from the fault plan: both rows carry the
        // same metric keys, whatever the outcome values are.
        let keys = |r: &BenchRow| r.metrics.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>();
        assert_eq!(keys(&clean), keys(&faulty));
    }
}
