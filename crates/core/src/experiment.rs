//! Dataset → method → metrics plumbing shared by every table/figure bench.

use crate::baselines::Method;
use crate::models::TrainedModels;
use sage_corpus::{Dataset, QuestionKind};
use sage_eval::{bleu, cost_efficiency, f1_match, mean, meteor, rouge_l, Cost};
use sage_llm::LlmProfile;

/// Aggregated scores for one (method, dataset, profile) run.
#[derive(Debug, Clone)]
pub struct MethodScores {
    /// Method label.
    pub label: String,
    /// LLM profile name.
    pub llm: String,
    /// Number of graded questions.
    pub n: usize,
    /// ROUGE-L over open-ended questions.
    pub rouge: f32,
    /// BLEU-1 over open-ended questions.
    pub bleu1: f32,
    /// BLEU-4 over open-ended questions.
    pub bleu4: f32,
    /// METEOR over open-ended questions.
    pub meteor: f32,
    /// Token-F1 over open-ended questions.
    pub f1: f32,
    /// Multiple-choice accuracy over all MC questions.
    pub accuracy: f32,
    /// Accuracy over the normal (non-hard) subset.
    pub normal_accuracy: f32,
    /// Accuracy over the hard subset.
    pub hard_accuracy: f32,
    /// Total token usage across every question (all LLM calls).
    pub cost: Cost,
    /// Total dollars at the profile's prices.
    pub dollars: f64,
}

impl MethodScores {
    /// Eq. 2 cost-efficiency with the MC accuracy (or F1 for open sets) as
    /// the quality term.
    pub fn efficiency(&self) -> f64 {
        let quality = if self.accuracy > 0.0 { self.accuracy } else { self.f1 } as f64;
        cost_efficiency(quality, self.dollars)
    }
}

/// Run a method over a per-document dataset: one system is built per
/// document (the paper retrieves within the queried article on QuALITY /
/// QASPER / NarrativeQA) and all of that document's questions reuse it.
pub fn evaluate(
    method: Method,
    models: &TrainedModels,
    profile: LlmProfile,
    dataset: &Dataset,
) -> MethodScores {
    let mut rouge_scores = Vec::new();
    let mut bleu1_scores = Vec::new();
    let mut bleu4_scores = Vec::new();
    let mut meteor_scores = Vec::new();
    let mut f1_scores = Vec::new();
    let mut mc_total = 0usize;
    let mut mc_correct = 0usize;
    let mut normal_total = 0usize;
    let mut normal_correct = 0usize;
    let mut hard_total = 0usize;
    let mut hard_correct = 0usize;
    let mut cost = Cost::zero();

    let mut built: Option<(usize, crate::baselines::DocSystem)> = None;
    let mut n = 0usize;
    for task in &dataset.tasks {
        if built.as_ref().map(|(d, _)| *d) != Some(task.doc) {
            built = Some((task.doc, method.build(models, profile, &dataset.documents[task.doc])));
        }
        let Some((_, system)) = built.as_ref() else { continue };
        let item = &task.item;
        n += 1;
        if item.is_multiple_choice() {
            let result = system.answer(&item.question, Some(&item.options));
            cost.merge(result.cost);
            let correct = result.picked_option == Some(item.correct_option);
            mc_total += 1;
            mc_correct += usize::from(correct);
            if item.hard {
                hard_total += 1;
                hard_correct += usize::from(correct);
            } else {
                normal_total += 1;
                normal_correct += usize::from(correct);
            }
        } else {
            let result = system.answer(&item.question, None);
            cost.merge(result.cost);
            let answer = &result.answer.text;
            rouge_scores.push(rouge_l(answer, &item.answers));
            bleu1_scores.push(bleu(answer, &item.answers, 1));
            bleu4_scores.push(bleu(answer, &item.answers, 4));
            meteor_scores.push(meteor(answer, &item.answers));
            let f1 = if item.kind == QuestionKind::Unanswerable {
                f32::from(answer == "unanswerable")
            } else {
                f1_match(answer, &item.answers)
            };
            f1_scores.push(f1);
        }
    }

    let ratio = |c: usize, t: usize| if t == 0 { 0.0 } else { c as f32 / t as f32 };
    let dollars = cost.dollars(profile.prices);
    MethodScores {
        label: method.label(),
        llm: profile.name.to_string(),
        n,
        rouge: mean(&rouge_scores),
        bleu1: mean(&bleu1_scores),
        bleu4: mean(&bleu4_scores),
        meteor: mean(&meteor_scores),
        f1: mean(&f1_scores),
        accuracy: ratio(mc_correct, mc_total),
        normal_accuracy: ratio(normal_correct, normal_total),
        hard_accuracy: ratio(hard_correct, hard_total),
        cost,
        dollars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RetrieverKind;
    use crate::models::TrainBudget;
    use sage_corpus::datasets::{narrativeqa, quality, SizeConfig};
    use std::sync::OnceLock;

    fn models() -> &'static TrainedModels {
        static M: OnceLock<TrainedModels> = OnceLock::new();
        M.get_or_init(|| TrainedModels::train(TrainBudget::tiny()))
    }

    fn tiny() -> SizeConfig {
        SizeConfig { num_docs: 3, questions_per_doc: 2, seed: 15 }
    }

    #[test]
    fn evaluate_open_dataset() {
        let ds = narrativeqa::generate(tiny());
        let scores = evaluate(
            Method::Sage(RetrieverKind::OpenAiSim),
            models(),
            LlmProfile::gpt4o_mini(),
            &ds,
        );
        assert_eq!(scores.n, ds.tasks.len());
        assert!(scores.rouge > 0.0, "ROUGE {}", scores.rouge);
        assert!(scores.f1 > 0.0);
        assert!(scores.cost.total_tokens() > 0);
        assert!(scores.dollars > 0.0);
        assert_eq!(scores.accuracy, 0.0, "no MC items in narrativeqa");
    }

    #[test]
    fn evaluate_mc_dataset() {
        let ds = quality::generate(tiny());
        let scores = evaluate(
            Method::Sage(RetrieverKind::OpenAiSim),
            models(),
            LlmProfile::gpt4(),
            &ds,
        );
        assert!(scores.accuracy > 0.0, "accuracy {}", scores.accuracy);
        assert!(scores.normal_accuracy > 0.0);
        // Hard subset exists on quality.
        let hard = ds.tasks.iter().filter(|t| t.item.hard).count();
        assert!(hard > 0);
    }

    #[test]
    fn sage_beats_title_abstract() {
        // The weakest baseline in every table: Title+Abstract rarely
        // contains the queried fact.
        let ds = quality::generate(SizeConfig { num_docs: 5, questions_per_doc: 4, seed: 31 });
        let sage = evaluate(
            Method::Sage(RetrieverKind::OpenAiSim),
            models(),
            LlmProfile::gpt4o_mini(),
            &ds,
        );
        let ta = evaluate(Method::TitleAbstract, models(), LlmProfile::gpt4o_mini(), &ds);
        assert!(
            sage.accuracy > ta.accuracy,
            "SAGE {} vs Title+Abstract {}",
            sage.accuracy,
            ta.accuracy
        );
    }

    #[test]
    fn efficiency_uses_quality_over_dollars() {
        let ds = quality::generate(tiny());
        let s = evaluate(
            Method::Sage(RetrieverKind::OpenAiSim),
            models(),
            LlmProfile::gpt4o_mini(),
            &ds,
        );
        if s.dollars > 0.0 && s.accuracy > 0.0 {
            assert!(s.efficiency() > 0.0);
        }
    }
}
