//! Every comparison method from the paper's §VII-A, behind one [`Method`]
//! enum. `Method::build` constructs a per-document (or per-corpus)
//! [`DocSystem`] that answers questions with the same [`QueryResult`]
//! bookkeeping as SAGE, so the experiment harness treats all methods
//! uniformly.
//!
//! | Paper method | Here |
//! |---|---|
//! | Naive RAG | [`Method::NaiveRag`] — 200-token sentence chunks, fixed top-K |
//! | Title+Abstract | [`Method::TitleAbstract`] |
//! | BM25+BERT | [`Method::Bm25Bert`] — BM25 retrieval + reranker, fixed K |
//! | Recursively Summarizing Books | [`Method::RecursiveSummary`] |
//! | RAPTOR | [`Method::Raptor`] — cluster-summary tree, collapsed retrieval |
//! | BiDAF | [`Method::BiDaf`] — truncated-window reader |
//! | Longformer-base | [`Method::Longformer`] — whole-document reader |
//! | CoLISA | [`Method::Colisa`] — question+option sentence selection |
//! | DPR+DeBERTaV3 | [`Method::DprReader`] — DPR retrieval, fixed K |
//! | SAGE | [`Method::Sage`] |

use crate::config::{RetrieverKind, SageConfig};
use crate::models::TrainedModels;
use crate::pipeline::{QueryResult, RagSystem};
use sage_corpus::Document;
use sage_embed::{Embedder, HashedEmbedder};
use sage_llm::{LlmProfile, SimLlm};
use sage_segment::Segmenter;
use sage_text::{count_tokens, is_stopword, split_sentences, stem, tokenize};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// A QA method under evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// Full SAGE with the given first-stage retriever.
    Sage(RetrieverKind),
    /// Naive RAG with the given retriever.
    NaiveRag(RetrieverKind),
    /// Any explicit configuration (ablation rows).
    Custom(RetrieverKind, SageConfig),
    /// Title + abstract as the only context.
    TitleAbstract,
    /// BM25 retrieval + reranker at fixed K.
    Bm25Bert,
    /// Recursive extractive summarization, then QA over the summary.
    RecursiveSummary,
    /// RAPTOR-style cluster-summary tree with collapsed retrieval.
    Raptor,
    /// BiDAF analog: reads only a truncated window of the document.
    BiDaf,
    /// Longformer analog: reads the whole document (up to a budget).
    Longformer,
    /// CoLISA analog: question+option-driven sentence selection.
    Colisa,
    /// DPR retrieval + reader at fixed K.
    DprReader,
}

impl Method {
    /// Table label.
    pub fn label(&self) -> String {
        match self {
            Method::Sage(r) => format!("SAGE ({})", r.label()),
            Method::NaiveRag(r) => format!("Naive RAG ({})", r.label()),
            Method::Custom(r, _) => format!("Custom ({})", r.label()),
            Method::TitleAbstract => "Title+Abstract".to_string(),
            Method::Bm25Bert => "BM25+BERT".to_string(),
            Method::RecursiveSummary => "Recursively Summarizing Books".to_string(),
            Method::Raptor => "RAPTOR".to_string(),
            Method::BiDaf => "BiDAF".to_string(),
            Method::Longformer => "Longformer-base".to_string(),
            Method::Colisa => "CoLISA".to_string(),
            Method::DprReader => "DPR".to_string(),
        }
    }

    /// Build the method's system over one document.
    pub fn build(
        &self,
        models: &TrainedModels,
        profile: LlmProfile,
        doc: &Document,
    ) -> DocSystem {
        let corpus = vec![doc.text()];
        match self {
            Method::Sage(kind) => DocSystem::Rag(Box::new(RagSystem::build(
                models,
                *kind,
                SageConfig::sage(),
                profile,
                &corpus,
            ))),
            Method::NaiveRag(kind) => DocSystem::Rag(Box::new(RagSystem::build(
                models,
                *kind,
                SageConfig::naive_rag(),
                profile,
                &corpus,
            ))),
            Method::Custom(kind, config) => DocSystem::Rag(Box::new(RagSystem::build(
                models, *kind, *config, profile, &corpus,
            ))),
            Method::Bm25Bert => DocSystem::Rag(Box::new(RagSystem::build(
                models,
                RetrieverKind::Bm25,
                SageConfig::rerank_fixed_k(),
                profile,
                &corpus,
            ))),
            Method::DprReader => DocSystem::Rag(Box::new(RagSystem::build(
                models,
                RetrieverKind::Dpr,
                SageConfig { min_k: 5, ..SageConfig::naive_rag() },
                profile,
                &corpus,
            ))),
            Method::TitleAbstract => DocSystem::FixedContext {
                context: vec![doc.title.clone(), doc.abstract_text.clone()],
                llm: SimLlm::new(profile),
            },
            Method::RecursiveSummary => DocSystem::FixedContext {
                context: recursive_summary(&doc.text(), 800),
                llm: SimLlm::new(profile),
            },
            Method::BiDaf => DocSystem::FixedContext {
                context: truncate_tokens(&doc.text(), 300),
                llm: SimLlm::new(profile),
            },
            Method::Longformer => DocSystem::FixedContext {
                context: truncate_tokens(&doc.text(), 4096),
                llm: SimLlm::new(profile),
            },
            Method::Colisa => DocSystem::Colisa {
                sentences: doc
                    .paragraphs
                    .iter()
                    .flat_map(|p| split_sentences(p))
                    .collect(),
                llm: SimLlm::new(profile),
                keep: 12,
            },
            Method::Raptor => DocSystem::Rag(Box::new(build_raptor(models, profile, doc))),
        }
    }
}

/// A built per-document QA system.
pub enum DocSystem {
    /// Retrieval-based (SAGE / Naive / BM25+BERT / DPR / RAPTOR). Boxed:
    /// a built system is orders of magnitude larger than the other
    /// variants.
    Rag(Box<RagSystem>),
    /// A fixed context independent of the question.
    FixedContext {
        /// Context chunks.
        context: Vec<String>,
        /// The reader.
        llm: SimLlm,
    },
    /// CoLISA-style question+option sentence selection.
    Colisa {
        /// All document sentences.
        sentences: Vec<String>,
        /// The reader.
        llm: SimLlm,
        /// Sentences kept as context.
        keep: usize,
    },
}

impl DocSystem {
    /// Answer a question (open-ended when `options` is `None`).
    pub fn answer(&self, question: &str, options: Option<&[String]>) -> QueryResult {
        match self {
            DocSystem::Rag(system) => match options {
                Some(opts) => system.answer_multiple_choice(question, opts),
                None => system.answer_open(question),
            },
            DocSystem::FixedContext { context, llm } => {
                answer_with_context(llm, question, options, context.clone(), Duration::ZERO)
            }
            DocSystem::Colisa { sentences, llm, keep } => {
                // sage-lint: allow(no-wallclock) - retrieval latency bookkeeping feeding QueryResult, mirroring the pipeline's timing; nothing branches on it
                let start = Instant::now();
                let context = colisa_select(sentences, question, options, *keep);
                let retrieval = start.elapsed();
                answer_with_context(llm, question, options, context, retrieval)
            }
        }
    }
}

/// Wrap a plain LLM call in the common [`QueryResult`] bookkeeping.
fn answer_with_context(
    llm: &SimLlm,
    question: &str,
    options: Option<&[String]>,
    context: Vec<String>,
    retrieval_latency: Duration,
) -> QueryResult {
    let (picked, answer) = match options {
        Some(opts) => {
            let (idx, a) = llm.answer_multiple_choice(question, opts, &context);
            (Some(idx), a)
        }
        None => (None, llm.answer_open(question, &context)),
    };
    QueryResult::single_read(answer, picked, Vec::new(), retrieval_latency)
}

/// Sentence-aligned truncation to roughly `budget` tokens, returned as one
/// chunk (the reader sees a contiguous window, so coreference works).
fn truncate_tokens(text: &str, budget: usize) -> Vec<String> {
    let mut kept = Vec::new();
    let mut used = 0usize;
    'outer: for paragraph in sage_text::split_paragraphs(text) {
        for sentence in split_sentences(paragraph) {
            let t = count_tokens(&sentence);
            if used + t > budget && used > 0 {
                break 'outer;
            }
            used += t;
            kept.push(sentence);
        }
    }
    if kept.is_empty() {
        vec![]
    } else {
        vec![kept.join(" ")]
    }
}

/// Rewrite sentence-initial pronouns to the most recent subject name —
/// the abstractive step of summarization ("He sang…" → "Gavir sang…"),
/// which keeps extracted sentences self-contained after their antecedents
/// are dropped. Purely textual: the subject is the most recent sentence-
/// initial-or-early capitalised non-stopword.
fn flatten_coreference(text: &str) -> String {
    let mut out_paragraphs = Vec::new();
    for paragraph in sage_text::split_paragraphs(text) {
        let mut last_subject: Option<String> = None;
        let mut rewritten = Vec::new();
        for sentence in split_sentences(paragraph) {
            let words: Vec<&str> = sentence.split_whitespace().collect();
            let mut sentence_out = sentence.clone();
            if let Some(first) = words.first() {
                let lower = first.to_lowercase();
                if let Some(subject) = &last_subject {
                    let replacement = match lower.as_str() {
                        "he" | "she" | "it" | "they" => Some(subject.clone()),
                        "his" | "her" | "its" | "their" => Some(format!("{subject}'s")),
                        _ => None,
                    };
                    if let Some(r) = replacement {
                        sentence_out = format!("{r} {}", words[1..].join(" "));
                    }
                }
            }
            // Update the running subject from capitalised tokens.
            for (i, w) in words.iter().enumerate() {
                if w.chars().next().is_some_and(char::is_uppercase) {
                    let t = w.trim_matches(|c: char| !c.is_alphanumeric()).to_string();
                    let lower = t.to_lowercase();
                    if !lower.is_empty()
                        && !is_stopword(&lower)
                        && (i > 0 || !["the", "a", "rain", "bells", "dust", "lanterns", "everyone"]
                            .contains(&lower.as_str()))
                    {
                        last_subject = Some(t.strip_suffix("'s").unwrap_or(&t).to_string());
                        break;
                    }
                }
            }
            rewritten.push(sentence_out);
        }
        out_paragraphs.push(rewritten.join(" "));
    }
    out_paragraphs.join("\n")
}

/// Recursive summarization ("Recursively Summarizing Books" [49]): flatten
/// coreference (the abstractive rewrite), then per 200-token window keep
/// the most central sentences, repeating until the text fits `budget`
/// tokens.
pub fn recursive_summary(text: &str, budget: usize) -> Vec<String> {
    let mut current = flatten_coreference(text);
    for _ in 0..6 {
        if count_tokens(&current) <= budget {
            break;
        }
        // Document-level term frequencies (centrality weights). BTreeMap
        // so the map is deterministic however it is consumed; the seed's
        // HashMap made chunk ordering RandomState-dependent in principle.
        let mut tf: BTreeMap<String, f32> = BTreeMap::new();
        for t in tokenize(&current) {
            if !is_stopword(&t) {
                *tf.entry(stem(&t)).or_insert(0.0) += 1.0;
            }
        }
        let windows = sage_segment::SentenceSegmenter { max_tokens: 200 }.segment(&current);
        let mut kept: Vec<String> = Vec::new();
        for window in windows {
            let sentences = split_sentences(&window);
            // Keep the ~half of sentences most central to the document.
            // Raw term frequency would rank repeated boilerplate highest,
            // so centrality is damped (sqrt) and sentences naming an
            // entity — the content carriers a narrative summary keeps —
            // get a strong prior, like real summarizers' salience models.
            let mut scored: Vec<(f32, usize)> = sentences
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let toks = tokenize(s);
                    let tf_score: f32 = toks
                        .iter()
                        .filter(|t| !is_stopword(t))
                        .map(|t| tf.get(&stem(t)).copied().unwrap_or(0.0).sqrt())
                        .sum::<f32>()
                        / toks.len().max(1) as f32;
                    // "Names an entity" ≈ contains a capitalised word that
                    // is *rare* in the document (boilerplate sentence
                    // openers repeat; character names do not).
                    let has_proper = s.split_whitespace().any(|w| {
                        w.chars().next().is_some_and(char::is_uppercase) && {
                            let lower = w
                                .trim_matches(|c: char| !c.is_alphanumeric())
                                .to_lowercase();
                            !lower.is_empty()
                                && !is_stopword(&lower)
                                && tf.get(&stem(&lower)).copied().unwrap_or(0.0) <= 8.0
                        }
                    });
                    let score = tf_score + if has_proper { 10.0 } else { 0.0 };
                    (score, i)
                })
                .collect();
            scored.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
            let keep_n = sentences.len().div_ceil(2).max(1);
            // Entity-bearing sentences are what narrative summaries retain;
            // boilerplate only survives in windows that have nothing else.
            let proper_count = scored.iter().filter(|(s, _)| *s >= 10.0).count();
            let keep_n = if proper_count > 0 { keep_n.min(proper_count) } else { keep_n };
            let mut keep_idx: Vec<usize> = scored[..keep_n.min(scored.len())]
                .iter()
                .map(|(_, i)| *i)
                .collect();
            keep_idx.sort_unstable();
            kept.push(
                keep_idx.into_iter().map(|i| sentences[i].clone()).collect::<Vec<_>>().join(" "),
            );
        }
        let next = kept.join("\n");
        if count_tokens(&next) >= count_tokens(&current) {
            break; // no progress; avoid looping forever
        }
        current = next;
    }
    sage_text::split_paragraphs(&current).into_iter().map(str::to_string).collect()
}

/// CoLISA-style selection: sentences scored by overlap with the question
/// *and its options* (the "inner interaction" idea), top `keep` kept in
/// document order.
fn colisa_select(
    sentences: &[String],
    question: &str,
    options: Option<&[String]>,
    keep: usize,
) -> Vec<String> {
    let mut probe_stems: Vec<String> = tokenize(question)
        .iter()
        .filter(|t| !is_stopword(t))
        .map(|t| stem(t))
        .collect();
    if let Some(opts) = options {
        for o in opts {
            probe_stems
                .extend(tokenize(o).iter().filter(|t| !is_stopword(t)).map(|t| stem(t)));
        }
    }
    let mut scored: Vec<(f32, usize)> = sentences
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let stems: std::collections::BTreeSet<String> =
                tokenize(s).iter().filter(|t| !is_stopword(t)).map(|t| stem(t)).collect();
            let hits = probe_stems.iter().filter(|p| stems.contains(*p)).count();
            (hits as f32, i)
        })
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    let mut keep_idx: Vec<usize> =
        scored[..keep.min(scored.len())].iter().map(|(_, i)| *i).collect();
    keep_idx.sort_unstable();
    // CoLISA builds one short passage from the selected sentences (in
    // document order), so in-passage coreference still works.
    let passage =
        keep_idx.into_iter().map(|i| sentences[i].clone()).collect::<Vec<_>>().join(" ");
    if passage.is_empty() {
        Vec::new()
    } else {
        vec![passage]
    }
}

/// RAPTOR analog: k-means over leaf-chunk embeddings, one extractive
/// summary per cluster, everything indexed together ("collapsed tree"),
/// fixed-K retrieval.
fn build_raptor(models: &TrainedModels, profile: LlmProfile, doc: &Document) -> RagSystem {
    // Leaf chunks.
    let leaves = sage_segment::SentenceSegmenter { max_tokens: 100 }.segment(&doc.text());
    let embedder = HashedEmbedder::default_model();
    let vectors: Vec<Vec<f32>> = leaves.iter().map(|c| embedder.embed(c)).collect();
    let k = (leaves.len() as f32).sqrt().ceil() as usize;
    let assignments = sage_nn::cluster::kmeans(&vectors, k.max(1), 5).assignments;
    // Cluster summaries: two most central sentences per cluster.
    let mut summaries: Vec<String> = Vec::new();
    for cluster in 0..k.max(1) {
        let members: Vec<&String> = leaves
            .iter()
            .zip(&assignments)
            .filter(|(_, &a)| a == cluster)
            .map(|(l, _)| l)
            .collect();
        if members.is_empty() {
            continue;
        }
        let text = members.iter().map(|m| m.as_str()).collect::<Vec<_>>().join(" ");
        let sentences = split_sentences(&text);
        summaries.push(sentences.into_iter().take(2).collect::<Vec<_>>().join(" "));
    }
    // Collapsed tree: leaves + summaries form the retrieval corpus. The
    // summaries are separated by newlines so segmentation-off chunking
    // keeps them as-is.
    let mut collapsed: Vec<String> = leaves;
    collapsed.extend(summaries);
    let corpus = vec![collapsed.join("\n")];
    RagSystem::build(
        models,
        RetrieverKind::OpenAiSim,
        SageConfig { min_k: 10, naive_chunk_tokens: 110, ..SageConfig::naive_rag() },
        profile,
        &corpus,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::TrainBudget;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sage_corpus::document::{generate_document, DocSpec};
    use std::sync::OnceLock;

    fn models() -> &'static TrainedModels {
        static M: OnceLock<TrainedModels> = OnceLock::new();
        M.get_or_init(|| TrainedModels::train(TrainBudget::tiny()))
    }

    fn doc() -> Document {
        let mut rng = StdRng::seed_from_u64(77);
        generate_document(0, &DocSpec::default(), &mut rng).document
    }

    #[test]
    fn all_methods_build_and_answer() {
        let d = doc();
        let methods = [
            Method::Sage(RetrieverKind::OpenAiSim),
            Method::NaiveRag(RetrieverKind::Bm25),
            Method::TitleAbstract,
            Method::Bm25Bert,
            Method::RecursiveSummary,
            Method::Raptor,
            Method::BiDaf,
            Method::Longformer,
            Method::Colisa,
            Method::DprReader,
        ];
        for m in methods {
            let sys = m.build(models(), LlmProfile::gpt4o_mini(), &d);
            let r = sys.answer("Where does anyone live?", None);
            assert!(!r.answer.text.is_empty(), "{} returned empty", m.label());
            assert!(r.cost.input_tokens > 0, "{} has no cost", m.label());
        }
    }

    #[test]
    fn truncation_respects_budget() {
        let d = doc();
        let small = truncate_tokens(&d.text(), 100);
        assert_eq!(small.len(), 1);
        assert!(count_tokens(&small[0]) <= 130, "{}", count_tokens(&small[0]));
        let all = truncate_tokens(&d.text(), 1_000_000);
        assert!(count_tokens(&all[0]) > count_tokens(&small[0]));
    }

    #[test]
    fn recursive_summary_shrinks_text() {
        let d = doc();
        let original = count_tokens(&d.text());
        let summary = recursive_summary(&d.text(), 200);
        let after: usize = summary.iter().map(|s| count_tokens(s)).sum();
        assert!(after < original, "{after} !< {original}");
        assert!(!summary.is_empty());
    }

    #[test]
    fn colisa_keeps_option_relevant_sentences() {
        let sentences = vec![
            "Whiskers has bright green eyes.".to_string(),
            "The fog settled over the valley.".to_string(),
            "Brone has orange eyes.".to_string(),
            "Bells rang from the tower.".to_string(),
        ];
        let options = vec!["green".to_string(), "orange".to_string()];
        let ctx = colisa_select(&sentences, "What color are the eyes?", Some(&options), 2);
        // One short passage of the two option-relevant sentences.
        assert_eq!(ctx.len(), 1);
        assert!(ctx[0].contains("green"));
        assert!(ctx[0].contains("orange"));
        assert!(!ctx[0].contains("fog"));
    }

    #[test]
    fn kmeans_clusters_separable_points() {
        let mut vectors = Vec::new();
        for i in 0..10 {
            vectors.push(vec![0.0 + i as f32 * 0.01, 0.0]);
            vectors.push(vec![10.0 + i as f32 * 0.01, 0.0]);
        }
        let assignments = sage_nn::cluster::kmeans(&vectors, 2, 10).assignments;
        // All evens together, all odds together.
        let a0 = assignments[0];
        let a1 = assignments[1];
        assert_ne!(a0, a1);
        for (i, &a) in assignments.iter().enumerate() {
            assert_eq!(a, if i % 2 == 0 { a0 } else { a1 }, "point {i}");
        }
    }

    #[test]
    fn kmeans_edge_cases() {
        assert!(sage_nn::cluster::kmeans(&[], 3, 5).assignments.is_empty());
        let one = sage_nn::cluster::kmeans(&[vec![1.0, 2.0]], 3, 5);
        assert_eq!(one.assignments, vec![0]);
    }

    #[test]
    fn method_labels_are_distinct() {
        let labels: std::collections::HashSet<String> = [
            Method::Sage(RetrieverKind::OpenAiSim),
            Method::NaiveRag(RetrieverKind::OpenAiSim),
            Method::TitleAbstract,
            Method::Bm25Bert,
            Method::RecursiveSummary,
            Method::Raptor,
            Method::BiDaf,
            Method::Longformer,
            Method::Colisa,
            Method::DprReader,
        ]
        .iter()
        .map(|m| m.label())
        .collect();
        assert_eq!(labels.len(), 10);
    }
}
