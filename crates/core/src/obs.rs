//! Core ↔ `sage-obs` bridge: the single place the pipeline touches the
//! flight recorder.
//!
//! The `recorder-behind-obs` lint rule confines recorder mutation
//! (`capture_query`/`capture_shed`/`roll_window`) to the `sage-obs` crate
//! and to `obs`-named modules like this one; the executor and the soak
//! harness call the narrow helpers below instead. Two capture paths feed
//! the recorder:
//!
//! - **Ad-hoc queries** (`answer_open` and friends): the executor's
//!   `finalize` middleware calls [`observe_adhoc`] once per query. The
//!   observation is built from *virtual* quantities only (simulated
//!   latencies, token counts), so retention stays deterministic.
//! - **Driven runs** (the soak harness): the loop owns richer context
//!   (arrival clock, class, deadline) and records complete observations
//!   through [`observe`]/[`observe_shed`]; it brackets the run with
//!   [`set_driven`] so the ad-hoc hook stays silent and nothing is
//!   double-counted.

use crate::pipeline::RagSystem;
use crate::QueryResult;
use sage_obs::{FlightRecorder, Outcome, QueryObs, RecorderConfig, RecorderStats};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Recorder state hung off a [`RagSystem`].
#[derive(Debug)]
pub struct ObsState {
    recorder: Mutex<FlightRecorder>,
    /// True while an external driver (the soak loop) is supplying
    /// observations; suppresses the executor's ad-hoc capture.
    driven: AtomicBool,
}

impl RagSystem {
    /// Attach a flight recorder. Subsequent queries are observed by the
    /// executor; `run_soak` supplies its own richer observations.
    pub fn enable_recorder(&mut self, cfg: RecorderConfig) {
        self.obs = Some(ObsState {
            recorder: Mutex::new(FlightRecorder::new(cfg)),
            driven: AtomicBool::new(false),
        });
    }

    /// Detach the recorder, dropping retained records.
    pub fn disable_recorder(&mut self) {
        self.obs = None;
    }

    /// Whether a recorder is attached.
    pub fn recorder_enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// Recorder self-accounting, if attached.
    pub fn recorder_stats(&self) -> Option<RecorderStats> {
        self.with_recorder(|r| r.stats())
    }

    /// Retained records as JSON Lines, if attached.
    pub fn recorder_jsonl(&self) -> Option<String> {
        self.with_recorder(|r| r.to_jsonl())
    }

    /// Run `f` against the recorder under its lock, if attached.
    pub fn with_recorder<R>(&self, f: impl FnOnce(&FlightRecorder) -> R) -> Option<R> {
        let state = self.obs.as_ref()?;
        let rec = state.recorder.lock().unwrap_or_else(|e| e.into_inner());
        Some(f(&rec))
    }
}

/// Virtual service latency of a completed query in nanoseconds: simulated
/// LLM latencies plus degradation delays. The same formula the soak
/// harness charges its virtual servers with — wall-clock never appears.
pub fn virtual_service_ns(result: &QueryResult) -> u64 {
    (result.answer_latency + result.feedback_latency + result.degraded.total_delay()).as_nanos()
        as u64
}

/// Reader confidence as milli-units in `[0, 1000]`.
pub fn confidence_milli(confidence: f32) -> u32 {
    (confidence.clamp(0.0, 1.0) * 1000.0).round() as u32
}

/// The executor's per-query hook: capture an ad-hoc observation unless an
/// external driver owns observation for this system.
pub(crate) fn observe_adhoc(sys: &RagSystem, question: &str, result: &QueryResult) {
    let Some(state) = &sys.obs else { return };
    // sage-lint: allow(relaxed-atomics-confined) - a telemetry-style suppression flag: the soak driver toggles it around a single-threaded loop and no data is published under it
    if state.driven.load(Ordering::Relaxed) {
        return;
    }
    let mut rec = state.recorder.lock().unwrap_or_else(|e| e.into_inner());
    let service = virtual_service_ns(result);
    let obs = QueryObs {
        seq: rec.stats().captured,
        class: "adhoc",
        arrival_us: 0,
        end_us: 0,
        sojourn_ns: service,
        service_ns: service,
        outcome: Outcome::Done,
        brownout: result.brownout.idx() as u8,
        degraded: result.degraded.events.len() as u32,
        deadline_missed: false,
        tokens: result.cost.input_tokens + result.cost.output_tokens,
        confidence_milli: confidence_milli(result.answer.confidence),
        question: question.to_string(),
    };
    rec.capture_query(&obs);
}

/// Record one externally-built observation (the soak loop's terminal
/// events). No-op when no recorder is attached.
pub(crate) fn observe(sys: &RagSystem, obs: &QueryObs) {
    if let Some(state) = &sys.obs {
        let mut rec = state.recorder.lock().unwrap_or_else(|e| e.into_inner());
        rec.capture_query(obs);
    }
}

/// Mark the system as externally driven (or not). While driven, the
/// executor's ad-hoc hook is suppressed so the driver's observations are
/// the only ones captured.
pub(crate) fn set_driven(sys: &RagSystem, driven: bool) {
    if let Some(state) = &sys.obs {
        // sage-lint: allow(relaxed-atomics-confined) - see the load above: a flag with no ordering dependency, set and read on the driving thread
        state.driven.store(driven, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RetrieverKind, SageConfig};
    use crate::models::{TrainBudget, TrainedModels};
    use sage_llm::LlmProfile;
    use std::sync::OnceLock;

    fn models() -> &'static TrainedModels {
        static M: OnceLock<TrainedModels> = OnceLock::new();
        M.get_or_init(|| TrainedModels::train(TrainBudget::tiny()))
    }

    fn system() -> RagSystem {
        RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &["Whiskers is a playful tabby cat. He has bright green eyes.".to_string()],
        )
    }

    #[test]
    fn adhoc_queries_are_captured_once() {
        let mut sys = system();
        sys.enable_recorder(RecorderConfig::default());
        sys.answer_open("What color are Whiskers's eyes?");
        sys.answer_open("What animal is Whiskers?");
        let stats = sys.recorder_stats().unwrap();
        assert_eq!(stats.captured, 2);
        let jsonl = sys.recorder_jsonl().unwrap();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"class\":\"adhoc\""), "{jsonl}");
    }

    #[test]
    fn detached_system_records_nothing() {
        let sys = system();
        sys.answer_open("What color are Whiskers's eyes?");
        assert!(sys.recorder_stats().is_none());
    }

    #[test]
    fn driven_mode_suppresses_adhoc_capture() {
        let mut sys = system();
        sys.enable_recorder(RecorderConfig::default());
        set_driven(&sys, true);
        sys.answer_open("What color are Whiskers's eyes?");
        assert_eq!(sys.recorder_stats().unwrap().captured, 0);
        set_driven(&sys, false);
        sys.answer_open("What color are Whiskers's eyes?");
        assert_eq!(sys.recorder_stats().unwrap().captured, 1);
    }

    #[test]
    fn adhoc_capture_is_deterministic() {
        let capture = || {
            let mut sys = system();
            sys.enable_recorder(RecorderConfig::default());
            sys.answer_open("What color are Whiskers's eyes?");
            sys.recorder_jsonl().unwrap()
        };
        assert_eq!(capture(), capture());
    }
}
