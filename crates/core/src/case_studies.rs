//! The paper's §VIII case studies, as programmatic drivers:
//!
//! * [`noisy_retrieval_sweep`] — Figure 8: sweep the fixed K and watch the
//!   answer flip from correct to distractor-supported as noise accumulates;
//! * [`missing_retrieval_sweep`] — Figure 9: an elimination question that
//!   fails at small K, succeeds at large K, and whose reranker score curve
//!   is smooth (so SAGE's gradient selection keeps extending);
//! * [`incomplete_chunks_case`] — Figure 10: fixed-length segmentation
//!   splits an intro+fact pair so the pronoun-form fact cannot be used;
//! * [`score_curves`] — Figure 5: the reranker's sorted score patterns for
//!   a focused vs. a broad question.

use crate::config::{RetrieverKind, SageConfig};
use crate::models::TrainedModels;
use crate::pipeline::RagSystem;
use sage_llm::LlmProfile;

/// One K-sweep step.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Fixed K used.
    pub k: usize,
    /// Option the reader picked.
    pub picked: usize,
    /// Whether it was correct.
    pub correct: bool,
}

/// Outcome of a case study sweep plus SAGE's dynamic behaviour.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// The question.
    pub question: String,
    /// The options.
    pub options: Vec<String>,
    /// Index of the correct option.
    pub correct_option: usize,
    /// Fixed-K sweep results.
    pub sweep: Vec<SweepPoint>,
    /// Number of chunks SAGE's gradient selection chose.
    pub sage_selected: usize,
    /// Whether SAGE answered correctly.
    pub sage_correct: bool,
    /// Reranker scores of the candidates, sorted descending (the Figure
    /// 5 curve for this question).
    pub score_curve: Vec<f32>,
}

/// The Figure-8 corpus: one target fact plus many same-relation
/// conflicting distractors supporting one specific wrong option.
fn noisy_corpus() -> (String, String, Vec<String>, usize) {
    let mut paragraphs = vec![
        "Whiskers is a playful tabby cat. He has bright green eyes.".to_string(),
    ];
    // Distractors that lend support to "orange".
    for name in ["Patchy", "Brone", "Mossy", "Fidget", "Tufty", "Bramble", "Clover", "Dapple"] {
        paragraphs.push(format!(
            "{name} is another pet in the house. {name} has bright orange eyes."
        ));
    }
    // Generic filler.
    for i in 0..6 {
        paragraphs.push(format!(
            "The market square was quiet that season, stall {i}, while the town carried on."
        ));
    }
    let corpus = paragraphs.join("\n");
    let question = "What is the color of Whiskers's eyes?".to_string();
    let options: Vec<String> =
        ["green", "orange", "violet", "gray"].iter().map(|s| s.to_string()).collect();
    (corpus, question, options, 0)
}

/// The Figure-9 corpus: an inventor with many development facts spread
/// over several paragraphs, plus filler; the elimination question needs
/// most of them.
fn elimination_corpus() -> (String, String, Vec<String>, usize) {
    let devices = ["vapor engine", "tide clock", "salt battery", "spring loom", "gear press"];
    let mut paragraphs = vec!["Vorden was well known in the region.".to_string()];
    // Interleave unrelated scenery between the development facts so the
    // evidence spreads across many retrieval chunks — the paper's missing-
    // retrieval setup needs the facts to *not* sit in one chunk.
    for (i, d) in devices.iter().enumerate() {
        paragraphs.push(format!(
            "In year {}, Vorden developed the {d}. The work took months.",
            1890 + i * 3
        ));
        paragraphs.push(format!(
            "Rain tapped gently on the old roof, night {i}, and the day passed slowly."
        ));
    }
    let corpus = paragraphs.join("\n");
    let question = "Which device was not developed by Vorden?".to_string();
    // Three held devices + the unheld echo compass (correct).
    let options: Vec<String> = ["vapor engine", "salt battery", "echo compass", "gear press"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    (corpus, question, options, 2)
}

fn run_case(
    models: &TrainedModels,
    profile: LlmProfile,
    corpus: String,
    question: String,
    options: Vec<String>,
    correct: usize,
    max_k: usize,
) -> CaseStudy {
    let corpus = vec![corpus];
    // Fixed-K sweep: selection off, min_k = K.
    let mut sweep = Vec::new();
    for k in 1..=max_k {
        let cfg = SageConfig {
            min_k: k,
            use_rerank: true,
            use_segmentation: true,
            use_selection: false,
            use_feedback: false,
            ..SageConfig::default()
        };
        let system = RagSystem::build(models, RetrieverKind::OpenAiSim, cfg, profile, &corpus);
        let r = system.answer_multiple_choice(&question, &options);
        // A reader that declines to pick is scored as the out-of-range
        // option index, i.e. incorrect, rather than aborting the sweep.
        let picked = r.picked_option.unwrap_or(options.len());
        sweep.push(SweepPoint { k, picked, correct: picked == correct });
    }
    // SAGE with gradient selection (no feedback, to isolate selection).
    let sage_cfg = SageConfig { use_feedback: false, ..SageConfig::sage() };
    let system = RagSystem::build(models, RetrieverKind::OpenAiSim, sage_cfg, profile, &corpus);
    let r = system.answer_multiple_choice(&question, &options);
    let score_curve = system.rerank_scores(&question);
    CaseStudy {
        question,
        options,
        correct_option: correct,
        sweep,
        sage_selected: r.selected.len(),
        sage_correct: r.picked_option == Some(correct),
        score_curve,
    }
}

/// Figure 8: noisy retrieval. The reader is correct at small K and drifts
/// toward the distractor-supported option as K grows.
pub fn noisy_retrieval_sweep(models: &TrainedModels, profile: LlmProfile) -> CaseStudy {
    let (corpus, question, options, correct) = noisy_corpus();
    run_case(models, profile, corpus, question, options, correct, 15)
}

/// Figure 9: missing retrieval. The elimination question fails at small K
/// and succeeds once all development facts are in context; SAGE's smooth
/// score curve makes gradient selection keep extending.
pub fn missing_retrieval_sweep(models: &TrainedModels, profile: LlmProfile) -> CaseStudy {
    let (corpus, question, options, correct) = elimination_corpus();
    run_case(models, profile, corpus, question, options, correct, 15)
}

/// Figure 10 outcome: the same question answered over fixed-length chunks
/// vs. semantic chunks.
#[derive(Debug, Clone)]
pub struct SegmentationCase {
    /// The question.
    pub question: String,
    /// Gold answer.
    pub gold: String,
    /// Answer over fixed-length (mid-sentence) chunks.
    pub fixed_answer: String,
    /// Answer over semantic chunks.
    pub semantic_answer: String,
    /// Whether the fixed-length chunking separated the fact from its
    /// antecedent (diagnosed on the actual chunks).
    pub fixed_split_evidence: bool,
}

/// Figure 10: ineffective corpus segmentation. A pronoun-form fact whose
/// antecedent lands in a different fixed-length chunk cannot be used.
pub fn incomplete_chunks_case(models: &TrainedModels, profile: LlmProfile) -> SegmentationCase {
    // A long lead-in pushes the intro and the pronoun fact across the
    // fixed-length chunk boundary.
    let corpus_text = "The festival had gone on for three long days and the lanterns still \
         burned along every street of the town while visitors kept arriving from distant \
         villages with carts and songs. Gavir is a quiet shepherd. He sang a tribal song for \
         the moderator. The crowd fell silent when the song ended and the judges wrote \
         their notes slowly."
        .to_string();
    let question = "What did Gavir sing for the moderator?".to_string();
    let gold = "tribal song".to_string();

    use sage_segment::{FixedLengthSegmenter, Segmenter, SemanticSegmenter};
    // Fixed-length segmentation splits the intro from the pronoun fact for
    // *some* chunk sizes (the paper's point is that no fixed size is safe);
    // scan a few realistic sizes and demonstrate one that does.
    let mut fixed_chunks = FixedLengthSegmenter { max_tokens: 28 }.segment(&corpus_text);
    let splits = |chunks: &[String]| {
        !chunks
            .iter()
            .any(|c| c.contains("Gavir is a quiet shepherd") && c.contains("sang a tribal song"))
    };
    let mut fixed_split_evidence = splits(&fixed_chunks);
    for max_tokens in [18usize, 24, 36, 12, 20] {
        if fixed_split_evidence {
            break;
        }
        fixed_chunks = FixedLengthSegmenter { max_tokens }.segment(&corpus_text);
        fixed_split_evidence = splits(&fixed_chunks);
    }
    let semantic = SemanticSegmenter::with_params(models.segmentation.clone(), 0.55, 400);
    let semantic_chunks = semantic.segment(&corpus_text);

    let llm = sage_llm::SimLlm::new(profile);
    let fixed_answer = llm.answer_open(&question, &fixed_chunks).text;
    let semantic_answer = llm.answer_open(&question, &semantic_chunks).text;
    SegmentationCase { question, gold, fixed_answer, semantic_answer, fixed_split_evidence }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::TrainBudget;
    use std::sync::OnceLock;

    fn models() -> &'static TrainedModels {
        static M: OnceLock<TrainedModels> = OnceLock::new();
        M.get_or_init(|| TrainedModels::train(TrainBudget::tiny()))
    }

    #[test]
    fn noisy_sweep_correct_at_low_k() {
        let cs = noisy_retrieval_sweep(models(), LlmProfile::gpt4o_mini());
        assert_eq!(cs.sweep.len(), 15);
        // The first few K values retrieve the target first: correct.
        assert!(cs.sweep[0].correct || cs.sweep[1].correct, "{:?}", &cs.sweep[..3]);
        // SAGE stays correct by cutting noise.
        assert!(cs.sage_correct, "SAGE selected {} chunks", cs.sage_selected);
        // Score curve is descending.
        for w in cs.score_curve.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn missing_sweep_needs_large_k() {
        let cs = missing_retrieval_sweep(models(), LlmProfile::gpt4());
        let small_k_correct = cs.sweep[..3].iter().filter(|p| p.correct).count();
        let large_k_correct = cs.sweep[10..].iter().filter(|p| p.correct).count();
        assert!(
            large_k_correct > small_k_correct,
            "large K should beat small K: {:?}",
            cs.sweep
        );
        // SAGE keeps extending on the smooth curve: selects more than the
        // default min_k.
        assert!(cs.sage_selected >= 7, "selected {}", cs.sage_selected);
    }

    #[test]
    fn incomplete_chunks_fixed_splits_semantic_does_not() {
        let cs = incomplete_chunks_case(models(), LlmProfile::gpt4o_mini());
        assert!(cs.fixed_split_evidence, "fixed-length chunking should split the evidence");
        assert!(
            cs.semantic_answer.contains("song") || cs.semantic_answer.contains("tribal"),
            "semantic answer: {}",
            cs.semantic_answer
        );
    }
}
